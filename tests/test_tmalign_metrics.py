"""GDT-TS / GDT-HA / MaxSub scores."""

import numpy as np
import pytest

from repro.geometry.transforms import RigidTransform, random_rotation
from repro.tmalign import tm_align
from repro.tmalign.metrics import gdt_ha, gdt_score, gdt_ts, maxsub_score


class TestIdentity:
    def test_self_scores_one(self, small_fold_pair):
        parent, _ = small_fold_pair
        assert gdt_ts(parent, parent) == pytest.approx(1.0)
        assert gdt_ha(parent, parent) == pytest.approx(1.0)
        assert maxsub_score(parent, parent) == pytest.approx(1.0, abs=1e-6)

    def test_rigid_motion_invariant(self, small_fold_pair, rng):
        parent, _ = small_fold_pair
        xf = RigidTransform(random_rotation(rng), rng.normal(size=3) * 20)
        moved = parent.transformed(xf)
        assert gdt_ts(parent, moved) == pytest.approx(1.0)
        assert maxsub_score(parent, moved) == pytest.approx(1.0, abs=1e-6)


class TestOrdering:
    def test_ha_never_exceeds_ts(self, small_fold_pair):
        parent, child = small_fold_pair
        res = tm_align(parent, child)
        ts = gdt_ts(parent, child, res.alignment)
        ha = gdt_ha(parent, child, res.alignment)
        assert ha <= ts + 1e-9

    def test_family_beats_stranger(self, small_fold_pair, unrelated_fold):
        parent, child = small_fold_pair
        fam_ali = tm_align(parent, child).alignment
        cross_ali = tm_align(parent, unrelated_fold).alignment
        assert gdt_ts(parent, child, fam_ali) > gdt_ts(
            parent, unrelated_fold, cross_ali
        )
        assert maxsub_score(parent, child, fam_ali) > maxsub_score(
            parent, unrelated_fold, cross_ali
        )

    def test_scores_in_unit_interval(self, small_fold_pair, unrelated_fold):
        parent, child = small_fold_pair
        for a, b in ((parent, child), (parent, unrelated_fold)):
            ali = tm_align(a, b).alignment
            for fn in (gdt_ts, gdt_ha, maxsub_score):
                val = fn(a, b, ali)
                assert 0.0 <= val <= 1.0


class TestValidation:
    def test_unequal_lengths_need_alignment(self, small_fold_pair):
        parent, child = small_fold_pair
        if len(parent) == len(child):
            pytest.skip("equal lengths")
        with pytest.raises(ValueError):
            gdt_ts(parent, child)

    def test_bad_cutoffs(self, small_fold_pair):
        parent, _ = small_fold_pair
        with pytest.raises(ValueError):
            gdt_score(parent, parent, cutoffs=())
        with pytest.raises(ValueError):
            gdt_score(parent, parent, cutoffs=(1.0, -2.0))


class TestScenarios:
    def test_one_vs_all_scc(self):
        from repro.core.scenarios import one_vs_all_pair_list, run_one_vs_all_scc
        from repro.datasets import load_dataset
        from repro.psc.evaluator import JobEvaluator

        ds = load_dataset("ck34-mini")
        ev = JobEvaluator(ds)
        rep = run_one_vs_all_scc(ds, ds[0].name, n_slaves=4, evaluator=ev)
        assert rep.n_jobs == len(ds) - 1
        touched = {i for r in rep.results for i in (r.payload["i"], r.payload["j"])}
        assert 0 in touched

    def test_one_vs_all_pair_list_validation(self):
        from repro.core.scenarios import one_vs_all_pair_list
        from repro.datasets import load_dataset

        ds = load_dataset("ck34-mini")
        with pytest.raises(KeyError):
            one_vs_all_pair_list(ds, "missing")
        with pytest.raises(IndexError):
            one_vs_all_pair_list(ds, 99)

    def test_database_update_counts(self):
        from repro.core.scenarios import run_database_update_scc, update_pair_list
        from repro.datasets import load_dataset
        from repro.psc.evaluator import JobEvaluator

        ds = load_dataset("ck34-mini")
        n = len(ds)
        pairs = update_pair_list(ds, 2)
        # new chains j in {n-2, n-1}: (n-2) + (n-1) pairs
        assert len(pairs) == (n - 2) + (n - 1)
        ev = JobEvaluator(ds)
        rep = run_database_update_scc(ds, n_new=2, n_slaves=4, evaluator=ev)
        assert rep.n_jobs == len(pairs)

    def test_update_cheaper_than_full(self):
        from repro.core.rckalign import RckAlignConfig, run_rckalign
        from repro.core.scenarios import run_database_update_scc
        from repro.datasets import load_dataset
        from repro.psc.evaluator import JobEvaluator

        ds = load_dataset("ck34-mini")
        ev = JobEvaluator(ds)
        full = run_rckalign(RckAlignConfig(dataset=ds, n_slaves=4), evaluator=ev)
        update = run_database_update_scc(ds, n_new=1, n_slaves=4, evaluator=ev)
        assert update.total_seconds < full.total_seconds / 2

    def test_update_validation(self):
        from repro.core.scenarios import update_pair_list
        from repro.datasets import load_dataset

        ds = load_dataset("ck34-mini")
        with pytest.raises(ValueError):
            update_pair_list(ds, 0)
        with pytest.raises(ValueError):
            update_pair_list(ds, len(ds))
