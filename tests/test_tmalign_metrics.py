"""GDT-TS / GDT-HA / MaxSub / LDDT scores."""

import numpy as np
import pytest

from repro.geometry.distances import lddt_score
from repro.geometry.transforms import RigidTransform, random_rotation
from repro.structure.model import Chain
from repro.tmalign import tm_align
from repro.tmalign.metrics import gdt_ha, gdt_score, gdt_ts, lddt, maxsub_score


class TestIdentity:
    def test_self_scores_one(self, small_fold_pair):
        parent, _ = small_fold_pair
        assert gdt_ts(parent, parent) == pytest.approx(1.0)
        assert gdt_ha(parent, parent) == pytest.approx(1.0)
        assert maxsub_score(parent, parent) == pytest.approx(1.0, abs=1e-6)

    def test_rigid_motion_invariant(self, small_fold_pair, rng):
        parent, _ = small_fold_pair
        xf = RigidTransform(random_rotation(rng), rng.normal(size=3) * 20)
        moved = parent.transformed(xf)
        assert gdt_ts(parent, moved) == pytest.approx(1.0)
        assert maxsub_score(parent, moved) == pytest.approx(1.0, abs=1e-6)


class TestOrdering:
    def test_ha_never_exceeds_ts(self, small_fold_pair):
        parent, child = small_fold_pair
        res = tm_align(parent, child)
        ts = gdt_ts(parent, child, res.alignment)
        ha = gdt_ha(parent, child, res.alignment)
        assert ha <= ts + 1e-9

    def test_family_beats_stranger(self, small_fold_pair, unrelated_fold):
        parent, child = small_fold_pair
        fam_ali = tm_align(parent, child).alignment
        cross_ali = tm_align(parent, unrelated_fold).alignment
        assert gdt_ts(parent, child, fam_ali) > gdt_ts(
            parent, unrelated_fold, cross_ali
        )
        assert maxsub_score(parent, child, fam_ali) > maxsub_score(
            parent, unrelated_fold, cross_ali
        )

    def test_scores_in_unit_interval(self, small_fold_pair, unrelated_fold):
        parent, child = small_fold_pair
        for a, b in ((parent, child), (parent, unrelated_fold)):
            ali = tm_align(a, b).alignment
            for fn in (gdt_ts, gdt_ha, maxsub_score):
                val = fn(a, b, ali)
                assert 0.0 <= val <= 1.0


class TestHandCheckedGoldens:
    """Small constructed cases whose scores are derivable on paper."""

    def test_lddt_collinear_displacement(self):
        # reference points at x = 0, 4, 8, 12; model moves the last one
        # by +1.5 along x.  All 6 pairs are inside the 15 A inclusion
        # radius; the 3 pairs touching the moved point change by exactly
        # 1.5, the other 3 by 0.  Preserved fractions per tolerance
        # (0.5, 1, 2, 4): 3/6, 3/6, 6/6, 6/6 -> mean 0.75.
        ref = np.array([[0, 0, 0], [4, 0, 0], [8, 0, 0], [12, 0, 0]], float)
        mod = ref.copy()
        mod[3, 0] += 1.5
        assert lddt_score(mod, ref) == pytest.approx(0.75)

    def test_gdt_one_of_eight_displaced(self):
        # one of eight residues moved 3 A: the close-subset refit pins
        # the 7 unmoved at d = 0 and the moved one at 3 A, so fractions
        # per cutoff (1, 2, 4, 8) are 7/8, 7/8, 1, 1 -> GDT_TS 0.9375;
        # per (0.5, 1, 2, 4) they are 7/8 thrice then 1 -> GDT_HA 0.90625.
        rng = np.random.default_rng(0)
        coords = np.cumsum(rng.normal(0, 1, (8, 3)), axis=0) * 3
        moved = coords.copy()
        moved[3] += [0.0, 3.0, 0.0]
        a = Chain("a", coords, "ACDEFGHI")
        b = Chain("b", moved, "ACDEFGHI")
        assert gdt_ts(a, b) == pytest.approx(0.9375)
        assert gdt_ha(a, b) == pytest.approx(0.90625)


class TestLddt:
    def test_self_scores_one(self, small_fold_pair):
        parent, _ = small_fold_pair
        assert lddt(parent, parent) == pytest.approx(1.0)

    def test_rigid_motion_invariant(self, small_fold_pair, rng):
        # superposition-free: moving either chain rigidly changes no
        # internal distance, so the score is bit-for-bit stable
        parent, child = small_fold_pair
        ali = tm_align(parent, child).alignment
        base = lddt(parent, child, ali)
        xf = RigidTransform(random_rotation(rng), rng.normal(size=3) * 50)
        assert lddt(parent.transformed(xf), child, ali) == pytest.approx(
            base, abs=1e-12
        )
        assert lddt(parent, child.transformed(xf), ali) == pytest.approx(
            base, abs=1e-12
        )

    def test_family_beats_stranger(self, small_fold_pair, unrelated_fold):
        parent, child = small_fold_pair
        fam = lddt(parent, child, tm_align(parent, child).alignment)
        cross = lddt(
            parent, unrelated_fold, tm_align(parent, unrelated_fold).alignment
        )
        assert 0.0 <= cross < fam <= 1.0

    def test_no_pairs_in_radius_scores_one(self):
        # two residues 40 A apart: nothing inside the inclusion radius
        far = np.array([[0, 0, 0], [40, 0, 0]], float)
        assert lddt_score(far, far) == 1.0

    def test_validation(self, small_fold_pair):
        parent, _ = small_fold_pair
        with pytest.raises(ValueError):
            lddt(parent, parent, inclusion_radius=0.0)
        with pytest.raises(ValueError):
            lddt(parent, parent, tolerances=())
        with pytest.raises(ValueError):
            lddt_score(np.zeros((3, 3)), np.zeros((4, 3)))


class TestValidation:
    def test_unequal_lengths_need_alignment(self, small_fold_pair):
        parent, child = small_fold_pair
        if len(parent) == len(child):
            pytest.skip("equal lengths")
        with pytest.raises(ValueError):
            gdt_ts(parent, child)

    def test_bad_cutoffs(self, small_fold_pair):
        parent, _ = small_fold_pair
        with pytest.raises(ValueError):
            gdt_score(parent, parent, cutoffs=())
        with pytest.raises(ValueError):
            gdt_score(parent, parent, cutoffs=(1.0, -2.0))


class TestScenarios:
    def test_one_vs_all_scc(self):
        from repro.core.scenarios import one_vs_all_pair_list, run_one_vs_all_scc
        from repro.datasets import load_dataset
        from repro.psc.evaluator import JobEvaluator

        ds = load_dataset("ck34-mini")
        ev = JobEvaluator(ds)
        rep = run_one_vs_all_scc(ds, ds[0].name, n_slaves=4, evaluator=ev)
        assert rep.n_jobs == len(ds) - 1
        touched = {i for r in rep.results for i in (r.payload["i"], r.payload["j"])}
        assert 0 in touched

    def test_one_vs_all_pair_list_validation(self):
        from repro.core.scenarios import one_vs_all_pair_list
        from repro.datasets import load_dataset

        ds = load_dataset("ck34-mini")
        with pytest.raises(KeyError):
            one_vs_all_pair_list(ds, "missing")
        with pytest.raises(IndexError):
            one_vs_all_pair_list(ds, 99)

    def test_database_update_counts(self):
        from repro.core.scenarios import run_database_update_scc, update_pair_list
        from repro.datasets import load_dataset
        from repro.psc.evaluator import JobEvaluator

        ds = load_dataset("ck34-mini")
        n = len(ds)
        pairs = update_pair_list(ds, 2)
        # new chains j in {n-2, n-1}: (n-2) + (n-1) pairs
        assert len(pairs) == (n - 2) + (n - 1)
        ev = JobEvaluator(ds)
        rep = run_database_update_scc(ds, n_new=2, n_slaves=4, evaluator=ev)
        assert rep.n_jobs == len(pairs)

    def test_update_cheaper_than_full(self):
        from repro.core.rckalign import RckAlignConfig, run_rckalign
        from repro.core.scenarios import run_database_update_scc
        from repro.datasets import load_dataset
        from repro.psc.evaluator import JobEvaluator

        ds = load_dataset("ck34-mini")
        ev = JobEvaluator(ds)
        full = run_rckalign(RckAlignConfig(dataset=ds, n_slaves=4), evaluator=ev)
        update = run_database_update_scc(ds, n_new=1, n_slaves=4, evaluator=ev)
        assert update.total_seconds < full.total_seconds / 2

    def test_update_validation(self):
        from repro.core.scenarios import update_pair_list
        from repro.datasets import load_dataset

        ds = load_dataset("ck34-mini")
        with pytest.raises(ValueError):
            update_pair_list(ds, 0)
        with pytest.raises(ValueError):
            update_pair_list(ds, len(ds))
