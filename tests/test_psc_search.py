"""One-vs-all ranked search and all-vs-all score tables."""

import pytest

from repro.cost.counters import CostCounter
from repro.psc.methods import SSECompositionMethod, TMAlignMethod
from repro.psc.search import all_vs_all, one_vs_all


class TestOneVsAll:
    def test_ranked_descending(self, ck34_mini):
        hits = one_vs_all(ck34_mini[0], ck34_mini, method=SSECompositionMethod())
        scores = [h.score for h in hits]
        assert scores == sorted(scores, reverse=True)

    def test_self_excluded(self, ck34_mini):
        hits = one_vs_all(ck34_mini[0], ck34_mini)
        assert ck34_mini[0].name not in [h.chain_name for h in hits]

    def test_self_included_ranks_first(self, ck34_mini):
        hits = one_vs_all(
            ck34_mini[0], ck34_mini, method=SSECompositionMethod(), exclude_self=False
        )
        assert hits[0].chain_name == ck34_mini[0].name

    def test_family_members_rank_high_with_tmalign(self, ck34):
        """The paper's motivating use case: structurally similar proteins
        rank higher."""
        sub = ck34.subset(12, "ck34-search")  # globins + start of tim family
        query = sub.by_name("ck_globin_01")
        hits = one_vs_all(query, sub, method=TMAlignMethod())
        top3 = [h.chain_name for h in hits[:3]]
        assert all(name.startswith("ck_globin") for name in top3)

    def test_counter_accumulates(self, ck34_mini):
        ctr = CostCounter()
        one_vs_all(ck34_mini[0], ck34_mini, method=SSECompositionMethod(), counter=ctr)
        assert ctr["align_fixed"] > 0

    def test_hit_details_preserved(self, ck34_mini):
        hits = one_vs_all(ck34_mini[0], ck34_mini, method=SSECompositionMethod())
        assert all("similarity" in h.details for h in hits)


class TestAllVsAll:
    def test_pair_count(self, ck34_mini):
        table = all_vs_all(ck34_mini, method=SSECompositionMethod())
        n = len(ck34_mini)
        assert len(table) == n * (n - 1) // 2

    def test_keys_are_name_pairs(self, ck34_mini):
        table = all_vs_all(ck34_mini, method=SSECompositionMethod())
        names = {c.name for c in ck34_mini}
        for a, b in table:
            assert a in names and b in names


class TestRankHitsTieBreak:
    def test_equal_scores_order_by_chain_name(self):
        from repro.psc.search import rank_hits

        method = SSECompositionMethod()
        scores = {"similarity": 0.5}
        rows = [("zeta", dict(scores)), ("alpha", dict(scores)),
                ("mid", dict(scores))]
        hits = rank_hits(rows, method)
        assert [h.chain_name for h in hits] == ["alpha", "mid", "zeta"]

    def test_score_dominates_name(self):
        from repro.psc.search import rank_hits

        method = SSECompositionMethod()
        rows = [("alpha", {"similarity": 0.1}), ("zeta", {"similarity": 0.9})]
        hits = rank_hits(rows, method)
        assert [h.chain_name for h in hits] == ["zeta", "alpha"]


class TestPrefilteredSearch:
    """Hierarchical search wiring: promotion in front of the exact tier."""

    @staticmethod
    def _pf(dataset, keep=0.5, min_keep=2):
        from repro.seqalign.prefilter import PrefilterConfig, SequencePrefilter

        return SequencePrefilter.from_chains(
            list(dataset), PrefilterConfig(keep=keep, min_keep=min_keep)
        )

    def test_off_path_identical(self, ck34_mini):
        method = SSECompositionMethod()
        plain = one_vs_all(ck34_mini[0], ck34_mini, method=method)
        off = one_vs_all(ck34_mini[0], ck34_mini, method=method, prefilter=None)
        assert plain == off

    def test_subset_preserves_exact_order(self, ck34_mini):
        method = SSECompositionMethod()
        pf = self._pf(ck34_mini)
        exact = one_vs_all(ck34_mini[0], ck34_mini, method=method)
        hits = one_vs_all(ck34_mini[0], ck34_mini, method=method, prefilter=pf)
        promoted = {h.chain_name for h in hits}
        assert len(hits) == pf.config.n_promoted(len(ck34_mini) - 1)
        # the prefiltered ranking is the exact ranking minus demotions
        assert [h for h in exact if h.chain_name in promoted] == hits

    def test_config_builds_prefilter(self, ck34_mini):
        from repro.seqalign.prefilter import PrefilterConfig

        cfg = PrefilterConfig(keep=0.5, min_keep=2)
        hits = one_vs_all(
            ck34_mini[0], ck34_mini, method=SSECompositionMethod(),
            prefilter=cfg,
        )
        assert len(hits) == cfg.n_promoted(len(ck34_mini) - 1)

    def test_serial_matches_parallel_one_vs_all(self, ck34_mini):
        method = SSECompositionMethod()
        pf = self._pf(ck34_mini)
        serial = one_vs_all(ck34_mini[1], ck34_mini, method=method, prefilter=pf)
        par = one_vs_all(
            ck34_mini[1], ck34_mini, method=method, prefilter=pf, workers=2
        )
        assert serial == par

    def test_all_vs_all_union_semantics(self, ck34_mini):
        method = SSECompositionMethod()
        pf = self._pf(ck34_mini)
        full = all_vs_all(ck34_mini, method=method)
        table = all_vs_all(ck34_mini, method=method, prefilter=pf)
        names = [c.name for c in ck34_mini]
        idx = {name: k for k, name in enumerate(names)}
        promoted = [
            set(pf.promote_chain(ck34_mini[i], exclude={i}))
            for i in range(len(ck34_mini))
        ]
        for (a, b), scores in full.items():
            i, j = idx[a], idx[b]
            kept = j in promoted[i] or i in promoted[j]
            assert ((a, b) in table) == kept
            if kept:  # kept pairs carry the exact tier's scores
                assert table[(a, b)] == scores
        assert set(table) <= set(full)

    def test_all_vs_all_serial_matches_parallel(self, ck34_mini):
        method = SSECompositionMethod()
        pf = self._pf(ck34_mini)
        serial = all_vs_all(ck34_mini, method=method, prefilter=pf)
        par = all_vs_all(ck34_mini, method=method, prefilter=pf, workers=2)
        assert serial == par

    def test_resolve_prefilter_rejects_wrong_corpus(self, ck34_mini):
        from repro.psc.search import resolve_prefilter
        from repro.seqalign.prefilter import SequencePrefilter

        other = SequencePrefilter(["x"], ["AAA"], ["CCC"])
        with pytest.raises(ValueError):
            resolve_prefilter(other, ck34_mini)
        with pytest.raises(TypeError):
            resolve_prefilter(object(), ck34_mini)
