"""One-vs-all ranked search and all-vs-all score tables."""

import pytest

from repro.cost.counters import CostCounter
from repro.psc.methods import SSECompositionMethod, TMAlignMethod
from repro.psc.search import all_vs_all, one_vs_all


class TestOneVsAll:
    def test_ranked_descending(self, ck34_mini):
        hits = one_vs_all(ck34_mini[0], ck34_mini, method=SSECompositionMethod())
        scores = [h.score for h in hits]
        assert scores == sorted(scores, reverse=True)

    def test_self_excluded(self, ck34_mini):
        hits = one_vs_all(ck34_mini[0], ck34_mini)
        assert ck34_mini[0].name not in [h.chain_name for h in hits]

    def test_self_included_ranks_first(self, ck34_mini):
        hits = one_vs_all(
            ck34_mini[0], ck34_mini, method=SSECompositionMethod(), exclude_self=False
        )
        assert hits[0].chain_name == ck34_mini[0].name

    def test_family_members_rank_high_with_tmalign(self, ck34):
        """The paper's motivating use case: structurally similar proteins
        rank higher."""
        sub = ck34.subset(12, "ck34-search")  # globins + start of tim family
        query = sub.by_name("ck_globin_01")
        hits = one_vs_all(query, sub, method=TMAlignMethod())
        top3 = [h.chain_name for h in hits[:3]]
        assert all(name.startswith("ck_globin") for name in top3)

    def test_counter_accumulates(self, ck34_mini):
        ctr = CostCounter()
        one_vs_all(ck34_mini[0], ck34_mini, method=SSECompositionMethod(), counter=ctr)
        assert ctr["align_fixed"] > 0

    def test_hit_details_preserved(self, ck34_mini):
        hits = one_vs_all(ck34_mini[0], ck34_mini, method=SSECompositionMethod())
        assert all("similarity" in h.details for h in hits)


class TestAllVsAll:
    def test_pair_count(self, ck34_mini):
        table = all_vs_all(ck34_mini, method=SSECompositionMethod())
        n = len(ck34_mini)
        assert len(table) == n * (n - 1) // 2

    def test_keys_are_name_pairs(self, ck34_mini):
        table = all_vs_all(ck34_mini, method=SSECompositionMethod())
        names = {c.name for c in ck34_mini}
        for a, b in table:
            assert a in names and b in names
