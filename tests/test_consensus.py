"""Consensus scoring over multiple PSC methods."""

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.psc.consensus import CONSENSUS_SCHEMES, consensus_scores
from repro.psc.metrics import family_auc, roc_auc
from repro.psc.methods import KabschRmsdMethod, SSECompositionMethod
from repro.psc.search import all_vs_all


class TestConsensusScores:
    def _tables(self):
        return {
            "m1": {("a", "b"): 0.9, ("a", "c"): 0.2, ("b", "c"): 0.5},
            "m2": {("a", "b"): 0.8, ("a", "c"): 0.1, ("b", "c"): 0.6},
        }

    @pytest.mark.parametrize("scheme", CONSENSUS_SCHEMES)
    def test_agreeing_methods_preserve_order(self, scheme):
        combined = consensus_scores(self._tables(), scheme)
        assert combined[("a", "b")] > combined[("b", "c")] > combined[("a", "c")]

    def test_single_method_is_monotone_identity(self):
        table = {"m": {("a", "b"): 0.9, ("a", "c"): 0.1}}
        combined = consensus_scores(table, "borda")
        assert combined[("a", "b")] > combined[("a", "c")]

    def test_disagreement_averages(self):
        tables = {
            "m1": {("x", "y"): 1.0, ("x", "z"): 0.0},
            "m2": {("x", "y"): 0.0, ("x", "z"): 1.0},
        }
        combined = consensus_scores(tables, "borda")
        assert combined[("x", "y")] == pytest.approx(combined[("x", "z")])

    def test_mismatched_pair_sets_rejected(self):
        tables = {
            "m1": {("a", "b"): 1.0},
            "m2": {("a", "c"): 1.0},
        }
        with pytest.raises(ValueError):
            consensus_scores(tables)

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            consensus_scores(self._tables(), "oracle")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            consensus_scores({})

    def test_zscore_handles_constant_method(self):
        tables = {
            "flat": {("a", "b"): 0.5, ("a", "c"): 0.5},
            "real": {("a", "b"): 0.9, ("a", "c"): 0.1},
        }
        combined = consensus_scores(tables, "zscore")
        assert combined[("a", "b")] > combined[("a", "c")]


class TestConsensusQuality:
    def test_consensus_auc_at_least_weakest_member(self):
        """On CK34, the consensus of two cheap methods should not be
        dramatically worse than either member (and usually helps)."""
        ds = load_dataset("ck34")
        sse = all_vs_all(ds, method=SSECompositionMethod())
        kr = all_vs_all(ds, method=KabschRmsdMethod())
        tables = {
            "sse": {k: v["similarity"] for k, v in sse.items()},
            "kr": {k: v["similarity"] for k, v in kr.items()},
        }
        combined = consensus_scores(tables, "borda")
        auc_combined = family_auc({k: {"s": v} for k, v in combined.items()}, ds, "s")
        auc_sse = family_auc(sse, ds, "similarity")
        auc_kr = family_auc(kr, ds, "similarity")
        assert auc_combined >= min(auc_sse, auc_kr) - 0.02


class TestConsensusFromMcPsc:
    def test_end_to_end(self):
        from repro.core.framework import McPscConfig, run_mcpsc
        from repro.core.skeletons import FarmConfig
        from repro.psc.consensus import consensus_from_mcpsc
        from repro.psc.evaluator import EvalMode

        ds = load_dataset("ck34-mini")
        report = run_mcpsc(
            McPscConfig(
                dataset=ds,
                methods=("kabsch_rmsd", "sse_composition"),
                n_slaves=4,
                mode=EvalMode.MEASURED,
                farm=FarmConfig(slave_boot_seconds=0.0),
            )
        )
        combined = consensus_from_mcpsc(
            report,
            {"kabsch_rmsd": "similarity", "sse_composition": "similarity"},
            ds,
        )
        n = len(ds)
        assert len(combined) == n * (n - 1) // 2

    def test_no_overlap_rejected(self):
        from repro.psc.consensus import consensus_from_mcpsc

        class FakeReport:
            per_method_results = {"x": []}

        with pytest.raises(ValueError):
            consensus_from_mcpsc(FakeReport(), {"other": "s"}, None)
