"""Result cache: LRU eviction order, params sensitivity, byte identity."""

import json

import pytest

from repro.psc import get_method
from repro.service import ResultCache, pair_key, resolve_method
from repro.service.batcher import PairJob, result_body
from repro.service.protocol import canonical_json
from repro.service.registry import chain_content_hash


def key(tag: str):
    return pair_key(f"hash-{tag}", "hash-other", "tmalign", "params-0")


class TestLRUOrder:
    def test_capacity_is_enforced_oldest_first(self):
        cache = ResultCache(capacity=2)
        cache.put(key("a"), "A")
        cache.put(key("b"), "B")
        cache.put(key("c"), "C")
        assert key("a") not in cache
        assert cache.keys() == [key("b"), key("c")]
        assert cache.stats()["evictions"] == 1

    def test_get_refreshes_recency(self):
        cache = ResultCache(capacity=2)
        cache.put(key("a"), "A")
        cache.put(key("b"), "B")
        assert cache.get(key("a")) == "A"  # a becomes most recent
        cache.put(key("c"), "C")
        assert key("b") not in cache
        assert cache.keys() == [key("a"), key("c")]

    def test_put_refreshes_recency_without_evicting(self):
        cache = ResultCache(capacity=2)
        cache.put(key("a"), "A")
        cache.put(key("b"), "B")
        cache.put(key("a"), "A2")  # refresh, not insert
        assert len(cache) == 2 and cache.stats()["evictions"] == 0
        cache.put(key("c"), "C")
        assert key("b") not in cache and cache.get(key("a")) == "A2"

    def test_hit_miss_counters(self):
        cache = ResultCache(capacity=4)
        assert cache.get(key("a")) is None
        cache.put(key("a"), "A")
        assert cache.get(key("a")) == "A"
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["size"] == 1 and stats["capacity"] == 4

    def test_direction_matters(self):
        cache = ResultCache(capacity=4)
        cache.put(pair_key("h1", "h2", "tmalign", "p"), "fwd")
        assert cache.get(pair_key("h2", "h1", "tmalign", "p")) is None


class TestParamsSensitivity:
    def test_changed_tmalign_knob_changes_the_key(self):
        _m0, hash_default = resolve_method("tmalign", None)
        _m1, hash_tweaked = resolve_method("tmalign", {"max_refine_iters": 5})
        assert hash_default != hash_tweaked
        cache = ResultCache(capacity=8)
        cache.put(pair_key("a", "b", "tmalign", hash_default), "default-body")
        assert cache.get(pair_key("a", "b", "tmalign", hash_tweaked)) is None

    def test_default_spelled_explicitly_shares_the_key(self):
        _m0, hash_default = resolve_method("tmalign", None)
        _m1, hash_spelled = resolve_method("tmalign", {"gap_open": -0.6})
        assert hash_default == hash_spelled

    def test_methods_never_collide(self):
        _ma, ha = resolve_method("sse_composition", None)
        _mb, hb = resolve_method("kabsch_rmsd", None)
        cache = ResultCache(capacity=8)
        cache.put(pair_key("a", "b", "sse_composition", ha), "sse")
        assert cache.get(pair_key("a", "b", "kabsch_rmsd", hb)) is None


class TestByteIdentity:
    def test_recomputed_body_is_byte_identical_to_cached(self, small_fold_pair):
        """The property the service guarantees: a cache hit serves bytes
        identical to what a fresh evaluation of the same pair produces."""
        parent, child = small_fold_pair
        method, params_hash = resolve_method("sse_composition", None)
        k = pair_key(
            chain_content_hash(parent),
            chain_content_hash(child),
            "sse_composition",
            params_hash,
        )
        job = PairJob(k, parent, child, method)

        def evaluate_once() -> str:
            from repro.cost.counters import CostCounter

            return result_body(job, method.compare(parent, child, CostCounter()))

        first, second = evaluate_once(), evaluate_once()
        assert first == second  # recompute is bit-identical
        cache = ResultCache(capacity=4)
        cache.put(k, first)
        assert cache.get(k) == second

    def test_body_is_canonical_json(self, small_fold_pair):
        from repro.cost.counters import CostCounter

        parent, child = small_fold_pair
        method = get_method("sse_composition")
        _m, params_hash = resolve_method("sse_composition", None)
        k = pair_key("ha", "hb", "sse_composition", params_hash)
        body = result_body(PairJob(k, parent, child, method),
                           method.compare(parent, child, CostCounter()))
        # decoding and canonically re-encoding reproduces the exact bytes,
        # so a served cache hit cannot differ from the original response
        assert canonical_json(json.loads(body)) == body

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=0)
