"""Mesh topology and XY routing."""

import pytest

from repro.noc.mesh import Mesh, TileCoord


class TestTopology:
    def test_tile_count(self):
        assert Mesh(6, 4).n_tiles == 24

    def test_coord_roundtrip(self):
        mesh = Mesh(6, 4)
        for t in range(mesh.n_tiles):
            assert mesh.tile_id(mesh.coord(t)) == t

    def test_coord_layout_row_major(self):
        mesh = Mesh(6, 4)
        assert mesh.coord(0) == TileCoord(0, 0)
        assert mesh.coord(5) == TileCoord(5, 0)
        assert mesh.coord(6) == TileCoord(0, 1)
        assert mesh.coord(23) == TileCoord(5, 3)

    def test_out_of_range(self):
        mesh = Mesh(6, 4)
        with pytest.raises(ValueError):
            mesh.coord(24)
        with pytest.raises(ValueError):
            mesh.tile_id(TileCoord(6, 0))

    def test_neighbors_corner(self):
        mesh = Mesh(6, 4)
        nbs = set(mesh.neighbors(TileCoord(0, 0)))
        assert nbs == {TileCoord(1, 0), TileCoord(0, 1)}

    def test_neighbors_interior(self):
        mesh = Mesh(6, 4)
        assert len(list(mesh.neighbors(TileCoord(2, 2)))) == 4

    def test_bad_dimensions(self):
        with pytest.raises(ValueError):
            Mesh(0, 4)


class TestXYRouting:
    def test_x_first(self):
        mesh = Mesh(6, 4)
        hops = mesh.xy_route(TileCoord(0, 0), TileCoord(3, 2))
        # first 3 hops move in x, then 2 in y
        assert [h[1].x - h[0].x for h in hops[:3]] == [1, 1, 1]
        assert [h[1].y - h[0].y for h in hops[3:]] == [1, 1]

    def test_hop_count_is_manhattan(self):
        mesh = Mesh(6, 4)
        for src, dst in [((0, 0), (5, 3)), ((2, 1), (2, 1)), ((4, 3), (1, 0))]:
            s, d = TileCoord(*src), TileCoord(*dst)
            assert len(mesh.xy_route(s, d)) == mesh.hop_count(s, d)

    def test_self_route_empty(self):
        mesh = Mesh(6, 4)
        assert mesh.xy_route(TileCoord(1, 1), TileCoord(1, 1)) == ()

    def test_hops_adjacent(self):
        mesh = Mesh(6, 4)
        for a, b in mesh.xy_route(TileCoord(0, 3), TileCoord(5, 0)):
            assert abs(a.x - b.x) + abs(a.y - b.y) == 1

    def test_deterministic(self):
        mesh = Mesh(6, 4)
        r1 = mesh.xy_route(TileCoord(0, 0), TileCoord(5, 3))
        r2 = mesh.xy_route(TileCoord(0, 0), TileCoord(5, 3))
        assert r1 == r2

    def test_route_validates_bounds(self):
        mesh = Mesh(6, 4)
        with pytest.raises(ValueError):
            mesh.xy_route(TileCoord(0, 0), TileCoord(9, 9))


class TestNetworkx:
    def test_graph_shape(self):
        g = Mesh(6, 4).to_networkx()
        assert g.number_of_nodes() == 24
        # grid graph edges: (w-1)*h + w*(h-1)
        assert g.number_of_edges() == 5 * 4 + 6 * 3

    def test_graph_connected(self):
        import networkx as nx

        assert nx.is_connected(Mesh(3, 3).to_networkx())
