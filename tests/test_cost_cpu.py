"""CPU models."""

import pytest

from repro.cost.counters import CostCounter
from repro.cost.cpu import (
    AMD_ATHLON_2400,
    BASE_WEIGHTS,
    CPU_MODELS,
    MCPC_HOST,
    OVERHEAD_GROUP,
    P54C_800,
    SCALE_GROUP,
    CpuModel,
)


class TestCpuModel:
    def test_cycles_linear_in_counts(self):
        one = P54C_800.cycles({"dp_cell": 1})
        many = P54C_800.cycles({"dp_cell": 1000})
        assert many == pytest.approx(1000 * one)

    def test_seconds_from_cycles(self):
        assert P54C_800.seconds_from_cycles(800e6) == pytest.approx(1.0)

    def test_counter_and_dict_agree(self):
        ctr = CostCounter({"dp_cell": 10, "kabsch": 2})
        assert P54C_800.cycles(ctr) == P54C_800.cycles({"dp_cell": 10, "kabsch": 2})

    def test_overhead_vs_scale_groups_partition_ops(self):
        assert set(OVERHEAD_GROUP) | set(SCALE_GROUP) == set(BASE_WEIGHTS)
        assert not set(OVERHEAD_GROUP) & set(SCALE_GROUP)

    def test_overhead_scale_used_for_align_fixed(self):
        cheap = CpuModel("x", 1e9, work_scale=1.0, overhead_scale=1.0)
        costly = CpuModel("y", 1e9, work_scale=1.0, overhead_scale=100.0)
        counts = {"align_fixed": 1}
        assert costly.cycles(counts) == pytest.approx(100 * cheap.cycles(counts))

    def test_validation(self):
        with pytest.raises(ValueError):
            CpuModel("bad", -1, 1, 1)
        with pytest.raises(ValueError):
            CpuModel("bad", 1e9, 0, 1)

    def test_registry_complete(self):
        assert set(CPU_MODELS) == {"p54c", "amd", "mcpc"}
        assert CPU_MODELS["p54c"] is P54C_800


class TestPaperRelationships:
    def test_p54c_slower_than_amd_per_comparison(self):
        """For a typical pair, the AMD must be faster overall."""
        counts = {"dp_cell": 5e6, "score_pair": 5e6, "align_fixed": 1}
        assert P54C_800.seconds(counts) > AMD_ATHLON_2400.seconds(counts)

    def test_overhead_relatively_worse_on_p54c(self):
        """The P54C's per-pair fixed overhead is disproportionately
        expensive — the mechanism behind Table III's dataset-dependent
        speed ratio (see repro.cost.cpu docstring)."""
        ovh = {"align_fixed": 1}
        work = {"dp_cell": 1e6}
        ratio_ovh = P54C_800.seconds(ovh) / AMD_ATHLON_2400.seconds(ovh)
        ratio_work = P54C_800.seconds(work) / AMD_ATHLON_2400.seconds(work)
        assert ratio_ovh > ratio_work

    def test_mcpc_is_fast(self):
        counts = {"io_byte": 1e6}
        assert MCPC_HOST.seconds(counts) < P54C_800.seconds(counts)
