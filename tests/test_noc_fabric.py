"""NoC fabric: latency model, contention, memory controllers."""

import pytest

from repro.noc.fabric import NocConfig, NocFabric
from repro.sim.engine import Environment


def make_fabric(**kwargs):
    env = Environment()
    return env, NocFabric(env, NocConfig(**kwargs))


class TestTransferLatency:
    def test_local_transfer_pays_local_latency(self):
        env, fabric = make_fabric()
        done = env.process(fabric.transfer(0, 0, 1024))
        env.run(done)
        assert env.now == pytest.approx(fabric.config.local_latency_s)

    def test_latency_grows_with_hops(self):
        env1, fab1 = make_fabric()
        p = env1.process(fab1.transfer(0, 1, 100))
        env1.run(p)
        one_hop = env1.now

        env2, fab2 = make_fabric()
        p = env2.process(fab2.transfer(0, 5, 100))
        env2.run(p)
        assert env2.now == pytest.approx(5 * one_hop)

    def test_latency_grows_with_size(self):
        env1, fab1 = make_fabric()
        env1.run(env1.process(fab1.transfer(0, 1, 100)))
        small = env1.now
        env2, fab2 = make_fabric()
        env2.run(env2.process(fab2.transfer(0, 1, 100_000)))
        assert env2.now > small

    def test_exact_formula_single_hop(self):
        env, fabric = make_fabric()
        nbytes = 4096
        env.run(env.process(fabric.transfer(0, 1, nbytes)))
        cfg = fabric.config
        want = cfg.hop_latency_s + nbytes / cfg.link_bandwidth_bytes_per_s
        assert env.now == pytest.approx(want)

    def test_negative_bytes_rejected(self):
        env, fabric = make_fabric()
        with pytest.raises(ValueError):
            next(fabric.transfer(0, 1, -1))


class TestContention:
    def test_shared_link_serializes(self):
        """Two simultaneous big messages over the same link take twice
        as long as one."""
        env, fabric = make_fabric()
        ends = []

        def send():
            yield from fabric.transfer(0, 1, 1_000_000)
            ends.append(env.now)

        env.process(send())
        env.process(send())
        env.run()
        assert ends[1] == pytest.approx(2 * ends[0], rel=1e-6)

    def test_disjoint_paths_parallel(self):
        env, fabric = make_fabric()
        ends = []

        def send(src, dst):
            yield from fabric.transfer(src, dst, 1_000_000)
            ends.append(env.now)

        env.process(send(0, 1))  # row 0
        env.process(send(6, 7))  # row 1 (disjoint links)
        env.run()
        assert ends[0] == pytest.approx(ends[1])

    def test_utilization_instrumented(self):
        env, fabric = make_fabric()
        env.run(env.process(fabric.transfer(0, 2, 100)))
        util = fabric.link_utilization()
        used = [k for k, v in util.items() if v > 0]
        assert len(used) == 2  # two hops

    def test_message_stats(self):
        env, fabric = make_fabric()
        env.run(env.process(fabric.transfer(0, 3, 500)))
        assert fabric.messages_sent == 1
        assert fabric.bytes_sent == 500


class TestMemoryControllers:
    def test_dram_read_latency(self):
        env, fabric = make_fabric()
        env.run(env.process(fabric.dram_read(0, 0)))
        # at least the DRAM latency plus the local hop
        assert env.now >= fabric.config.dram_latency_s

    def test_dram_bandwidth_limits(self):
        env, fabric = make_fabric()
        env.run(env.process(fabric.dram_read(0, 53_000_000)))
        assert env.now >= 53_000_000 / fabric.config.dram_bandwidth_bytes_per_s

    def test_nearest_controller_used(self):
        env, fabric = make_fabric()
        env.run(env.process(fabric.dram_read(0, 1000)))
        served = [mc for mc in fabric.memory_controllers if mc.bytes_served > 0]
        assert len(served) == 1
        assert served[0].coord.x == 0 and served[0].coord.y == 0

    def test_concurrent_reads_on_one_port_serialize(self):
        env, fabric = make_fabric()
        ends = []

        def read():
            yield from fabric.dram_read(0, 5_300_000)  # 1ms service
            ends.append(env.now)

        env.process(read())
        env.process(read())
        env.run()
        assert ends[1] > ends[0] * 1.9


class TestConfig:
    def test_defaults_match_table1(self):
        cfg = NocConfig()
        assert (cfg.width, cfg.height) == (6, 4)
        assert len(cfg.mc_coords) == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            NocConfig(mesh_freq_hz=-1)
        with pytest.raises(ValueError):
            NocConfig(router_latency_cycles=-1)

    def test_bad_link_lookup(self):
        env, fabric = make_fabric()
        from repro.noc.mesh import TileCoord

        with pytest.raises(ValueError):
            fabric.link(TileCoord(0, 0), TileCoord(2, 0))
