"""Shared fixtures: seeded RNGs, small structures, mini datasets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.structure.model import Chain
from repro.structure.synthetic import FoldSpec, generate_fold


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_fold_pair():
    """Two related ~60-residue folds (parent + noisy copy)."""
    from repro.structure.synthetic import perturb_chain

    rng = np.random.default_rng(42)
    spec = FoldSpec.of(("H", 12), ("C", 4), ("E", 7), ("C", 3), ("H", 10), ("C", 4), ("E", 6), ("C", 3), ("H", 9))
    parent = generate_fold(spec, rng, name="parent", family="testfam")
    child = perturb_chain(parent, rng, name="child", jitter=0.4, max_indel=3)
    return parent, child


@pytest.fixture(scope="session")
def unrelated_fold(small_fold_pair):
    """A fold unrelated to small_fold_pair."""
    rng = np.random.default_rng(4242)
    spec = FoldSpec.of(("E", 6), ("C", 3), ("E", 6), ("C", 3), ("E", 7), ("C", 4), ("E", 6), ("C", 5), ("E", 8))
    return generate_fold(spec, rng, name="stranger", family="otherfam")


@pytest.fixture(scope="session")
def ck34_mini():
    return load_dataset("ck34-mini")


@pytest.fixture(scope="session")
def ck34():
    return load_dataset("ck34")


@pytest.fixture
def tiny_chain() -> Chain:
    rng = np.random.default_rng(7)
    coords = np.cumsum(rng.normal(0, 1, (12, 3)), axis=0) * 2.0
    return Chain("tiny", coords, "ACDEFGHIKLMN")
