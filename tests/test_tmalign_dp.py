"""Needleman–Wunsch DP: optimality vs brute force, structure, costs."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cost.counters import CostCounter
from repro.tmalign.dp import nw_align, nw_score_only
from repro.tmalign.result import Alignment


def brute_force_oracle(score, gap_open):
    """Exhaustive oracle mirroring the three-state gap model: each
    interior gap run costs gap_open once (an L-shaped segment is two
    runs); leading runs are free; trailing runs cost like interior ones
    because the traceback ends at the corner.  The empty alignment is a
    single all-gap run costing one open."""
    la, lb = score.shape
    best = gap_open  # empty alignment: one L-shaped run of pure gaps
    cells = [(i, j) for i in range(la) for j in range(lb)]
    from itertools import combinations

    for size in range(1, min(la, lb) + 1):
        for combo in combinations(cells, size):
            ok = all(
                combo[k][0] < combo[k + 1][0] and combo[k][1] < combo[k + 1][1]
                for k in range(len(combo) - 1)
            )
            if not ok:
                continue
            total = sum(score[i, j] for i, j in combo)
            runs = 0
            for k in range(len(combo) - 1):
                di = combo[k + 1][0] - combo[k][0]
                dj = combo[k + 1][1] - combo[k][1]
                if di > 1 and dj > 1:
                    runs += 2  # vertical run + horizontal run
                elif di > 1 or dj > 1:
                    runs += 1
            # trailing runs are charged (traceback ends at the corner)
            runs += int(combo[-1][0] < la - 1) + int(combo[-1][1] < lb - 1)
            total += gap_open * runs
            best = max(best, total)
    return best


class TestOptimality:
    @given(st.integers(0, 2**31 - 1), st.integers(2, 5), st.integers(2, 5))
    @settings(max_examples=40, deadline=None)
    def test_matches_exhaustive_oracle(self, seed, la, lb):
        rng = np.random.default_rng(seed)
        score = rng.uniform(0, 1, (la, lb))
        got = nw_score_only(score, -0.6)
        want = brute_force_oracle(score, -0.6)
        assert got == pytest.approx(want, abs=1e-9)

    def test_alignment_score_consistent_with_dp_value(self, rng):
        score = rng.uniform(0, 1, (8, 10))
        ali = nw_align(score, -0.6)
        assert ali.dp_score == pytest.approx(nw_score_only(score, -0.6))


class TestAlignmentStructure:
    def test_identity_on_diagonal_matrix(self):
        score = np.eye(6)
        ali = nw_align(score, -0.6)
        np.testing.assert_array_equal(ali.ai, np.arange(6))
        np.testing.assert_array_equal(ali.aj, np.arange(6))

    def test_shifted_diagonal_found(self):
        score = np.zeros((6, 9))
        for k in range(6):
            score[k, k + 3] = 1.0
        ali = nw_align(score, -0.6)
        np.testing.assert_array_equal(ali.ai, np.arange(6))
        np.testing.assert_array_equal(ali.aj, np.arange(6) + 3)

    def test_gap_opened_when_worth_it(self):
        # two strong blocks separated by a bad row in A
        score = np.zeros((5, 4))
        score[0, 0] = score[1, 1] = 1.0
        score[3, 2] = score[4, 3] = 1.0
        ali = nw_align(score, -0.5)
        pairs = set(zip(ali.ai.tolist(), ali.aj.tolist()))
        assert {(0, 0), (1, 1), (3, 2), (4, 3)} <= pairs

    def test_monotone_increasing(self, rng):
        score = rng.uniform(0, 1, (20, 25))
        ali = nw_align(score, -0.6)
        assert (np.diff(ali.ai) > 0).all()
        assert (np.diff(ali.aj) > 0).all()

    def test_indices_in_bounds(self, rng):
        score = rng.uniform(0, 1, (7, 13))
        ali = nw_align(score, -0.6)
        assert ali.ai.min() >= 0 and ali.ai.max() < 7
        assert ali.aj.min() >= 0 and ali.aj.max() < 13

    def test_leading_gaps_free_trailing_charged_once(self):
        # a single huge score in the bottom-left corner: the 9 leading
        # vertical gaps are free, the trailing horizontal run costs one
        # open -> 5.0 - 0.6
        score = np.zeros((10, 10))
        score[9, 0] = 5.0
        ali = nw_align(score, -0.6)
        assert (9, 0) in set(zip(ali.ai.tolist(), ali.aj.tolist()))
        assert ali.dp_score == pytest.approx(5.0 - 0.6)


class TestEdgeCases:
    def test_single_cell(self):
        ali = nw_align(np.array([[2.0]]), -0.6)
        assert len(ali) == 1 and ali.dp_score == pytest.approx(2.0)

    def test_single_row(self):
        score = np.array([[0.1, 0.9, 0.2]])
        ali = nw_align(score, -0.6)
        assert len(ali) == 1
        assert ali.aj[0] == 1

    def test_single_column(self):
        score = np.array([[0.1], [0.9], [0.2]])
        ali = nw_align(score, -0.6)
        assert len(ali) == 1 and ali.ai[0] == 1

    def test_all_zero_scores(self):
        ali = nw_align(np.zeros((4, 4)), -0.6)
        assert ali.dp_score == pytest.approx(0.0)

    def test_positive_gap_rejected(self):
        with pytest.raises(ValueError):
            nw_align(np.zeros((3, 3)), 0.5)

    def test_empty_matrix_rejected(self):
        with pytest.raises(ValueError):
            nw_align(np.zeros((0, 3)), -0.6)


class TestCostCounting:
    def test_dp_cells_charged(self, rng):
        ctr = CostCounter()
        nw_align(rng.uniform(size=(12, 17)), -0.6, counter=ctr)
        assert ctr["dp_cell"] == 12 * 17

    def test_score_only_charges_too(self, rng):
        ctr = CostCounter()
        nw_score_only(rng.uniform(size=(5, 6)), -0.6, counter=ctr)
        assert ctr["dp_cell"] == 30


class TestAlignmentContainer:
    def test_non_monotone_rejected(self):
        with pytest.raises(ValueError):
            Alignment(np.array([0, 2, 1]), np.array([0, 1, 2]))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Alignment(np.array([0, 1]), np.array([0, 1, 2]))

    def test_equality_by_indices(self):
        a = Alignment(np.array([0, 1]), np.array([2, 3]), dp_score=1.0)
        b = Alignment(np.array([0, 1]), np.array([2, 3]), dp_score=9.0)
        assert a == b
        assert a.key() == b.key()

    def test_strings_render_gaps(self):
        ali = Alignment(np.array([0, 2]), np.array([0, 1]))
        sa, mark, sb = ali.strings("ABC", "AC")
        assert sa == "ABC"
        assert sb == "A-C"
        assert mark == ": :"
