"""PSC methods and the evaluator."""

import pytest

from repro.cost.counters import CostCounter
from repro.datasets import load_dataset
from repro.psc.evaluator import EvalMode, JobEvaluator
from repro.psc.methods import (
    METHOD_REGISTRY,
    KabschRmsdMethod,
    SSECompositionMethod,
    TMAlignMethod,
    get_method,
)


class TestRegistry:
    def test_all_methods_instantiable(self):
        for name in METHOD_REGISTRY:
            m = get_method(name)
            assert m.name == name

    def test_unknown_method(self):
        with pytest.raises(KeyError):
            get_method("foldseek")


class TestMethodContracts:
    @pytest.mark.parametrize("name", sorted(METHOD_REGISTRY))
    def test_compare_returns_score_key(self, name, small_fold_pair):
        parent, child = small_fold_pair
        method = get_method(name)
        ctr = CostCounter()
        result = method.compare(parent, child, ctr)
        assert method.score_key in result
        assert 0 <= method.similarity(result) <= 1.0

    @pytest.mark.parametrize("name", sorted(METHOD_REGISTRY))
    def test_self_similarity_maximal(self, name, small_fold_pair, unrelated_fold):
        parent, _ = small_fold_pair
        method = get_method(name)
        self_sim = method.similarity(method.compare(parent, parent, CostCounter()))
        cross_sim = method.similarity(
            method.compare(parent, unrelated_fold, CostCounter())
        )
        assert self_sim >= cross_sim

    @pytest.mark.parametrize("name", sorted(METHOD_REGISTRY))
    def test_estimate_counts_nonnegative(self, name):
        method = get_method(name)
        counts = method.estimate_counts(100, 200)
        assert all(v >= 0 for v in counts.values())

    def test_methods_have_distinct_costs(self):
        """MC-PSC partitioning needs genuinely different complexities."""
        from repro.cost.cpu import P54C_800

        costs = {
            name: P54C_800.cycles(dict(get_method(name).estimate_counts(150, 150)))
            for name in METHOD_REGISTRY
        }
        assert costs["tmalign"] > 10 * costs["kabsch_rmsd"] > costs["sse_composition"]


class TestTMAlignFullDegenerate:
    """A degenerate best alignment (< 3 matched pairs) must score the
    extra metrics 0.0 instead of raising — one pathological pair inside
    a farm worker must not abort a whole matrix build."""

    @pytest.mark.parametrize("n_matched", [0, 1, 2])
    def test_degenerate_alignment_scores_zero_not_raises(
        self, n_matched, small_fold_pair, monkeypatch
    ):
        import numpy as np

        from repro.geometry.transforms import RigidTransform
        from repro.psc import methods as methods_mod
        from repro.tmalign.result import Alignment, TMAlignResult

        parent, child = small_fold_pair
        idx = np.arange(n_matched)
        degenerate = TMAlignResult(
            name_a=parent.name,
            name_b=child.name,
            len_a=len(parent),
            len_b=len(child),
            tm_norm_a=0.01,
            tm_norm_b=0.01,
            rmsd=9.9,
            n_aligned=n_matched,
            seq_identity=0.0,
            alignment=Alignment(ai=idx, aj=idx),
            transform=RigidTransform.identity(),
        )
        monkeypatch.setattr(
            methods_mod, "tm_align", lambda *a, **kw: degenerate
        )
        result = get_method("tmalign_full").compare(
            parent, child, CostCounter()
        )
        assert result["gdt_ts"] == 0.0  # needs >= 3 pairs
        if n_matched < 2:
            assert result["lddt"] == 0.0  # needs >= 2 pairs
        # 0.0, never NaN: the matrix store reserves NaN for holes
        assert result["gdt_ts"] == result["gdt_ts"]
        assert result["lddt"] == result["lddt"]


class TestKabschRmsd:
    def test_identical_chains_perfect(self, small_fold_pair):
        parent, _ = small_fold_pair
        result = KabschRmsdMethod().compare(parent, parent, CostCounter())
        assert result["best_rmsd"] == pytest.approx(0.0, abs=1e-9)
        assert result["similarity"] == pytest.approx(1.0)

    def test_family_beats_stranger(self, small_fold_pair, unrelated_fold):
        parent, child = small_fold_pair
        m = KabschRmsdMethod()
        fam = m.compare(parent, child, CostCounter())["similarity"]
        cross = m.compare(parent, unrelated_fold, CostCounter())["similarity"]
        assert fam > cross

    def test_stride_validation(self):
        with pytest.raises(ValueError):
            KabschRmsdMethod(stride=0)


class TestSseComposition:
    def test_identical_composition_scores_one(self, small_fold_pair):
        parent, _ = small_fold_pair
        r = SSECompositionMethod().compare(parent, parent, CostCounter())
        assert r["similarity"] == pytest.approx(1.0)

    def test_cheap(self, small_fold_pair):
        parent, child = small_fold_pair
        ctr = CostCounter()
        SSECompositionMethod().compare(parent, child, ctr)
        assert ctr["kabsch"] == 0
        assert ctr["dp_cell"] == 0


class TestJobEvaluator:
    def test_model_mode_no_alignment(self, ck34_mini):
        ev = JobEvaluator(ck34_mini, mode=EvalMode.MODEL)
        scores, counts = ev.evaluate(0, 1)
        assert counts["dp_cell"] > 0
        assert "tm_norm_a" not in scores  # model mode prices only

    def test_measured_mode_scores_and_cache(self, ck34_mini):
        ev = JobEvaluator(ck34_mini, mode=EvalMode.MEASURED)
        s1, c1 = ev.evaluate(0, 1)
        s2, c2 = ev.evaluate(0, 1)
        assert s1 == s2
        assert c1.as_dict() == c2.as_dict()
        assert 0 <= s1["tm_norm_a"] <= 1

    def test_measured_counts_are_copies(self, ck34_mini):
        ev = JobEvaluator(ck34_mini, mode=EvalMode.MEASURED)
        _, c1 = ev.evaluate(0, 1)
        c1.add("dp_cell", 999)
        _, c2 = ev.evaluate(0, 1)
        assert c2["dp_cell"] != c1["dp_cell"]

    def test_job_bytes_reflect_chain_sizes(self, ck34_mini):
        ev = JobEvaluator(ck34_mini)
        expected = ck34_mini[0].nbytes_wire + ck34_mini[1].nbytes_wire + 64
        assert ev.job_nbytes(0, 1) == expected

    def test_bad_mode_rejected(self, ck34_mini):
        with pytest.raises(ValueError):
            JobEvaluator(ck34_mini, mode="quantum")
