"""SCC configuration and machine."""

import pytest

from repro.cost.counters import CostCounter
from repro.scc.config import SccConfig
from repro.scc.machine import SccMachine


class TestSccConfig:
    def test_table1_defaults(self):
        cfg = SccConfig()
        assert cfg.n_tiles == 24
        assert cfg.n_cores == 48
        assert cfg.mpb_bytes_per_tile == 16 * 1024
        assert cfg.mpb_bytes_per_core == 8 * 1024
        assert cfg.core_cpu.freq_hz == 800e6

    def test_tile_of_core(self):
        cfg = SccConfig()
        assert cfg.tile_of_core(0) == 0
        assert cfg.tile_of_core(1) == 0
        assert cfg.tile_of_core(2) == 1
        assert cfg.tile_of_core(47) == 23

    def test_tile_of_core_bounds(self):
        with pytest.raises(ValueError):
            SccConfig().tile_of_core(48)

    def test_chunk_bytes_smaller_than_mpb_share(self):
        cfg = SccConfig()
        assert 0 < cfg.rcce_chunk_bytes < cfg.mpb_bytes_per_core

    def test_validation(self):
        with pytest.raises(ValueError):
            SccConfig(cores_per_tile=0)


class TestCoreExecution:
    def test_compute_cycles_advances_clock(self):
        m = SccMachine()

        def prog(core):
            yield from core.compute_cycles(800e6)  # 1 second at 800 MHz

        m.spawn(0, prog)
        m.run()
        assert m.now == pytest.approx(1.0)
        assert m.core(0).stats.compute_s == pytest.approx(1.0)

    def test_compute_counts_uses_cpu_model(self):
        m = SccMachine()
        counts = CostCounter({"dp_cell": 1000})
        want = m.config.core_cpu.seconds(counts)

        def prog(core):
            yield from core.compute_counts(counts)

        m.spawn(5, prog)
        m.run()
        assert m.now == pytest.approx(want)

    def test_cores_run_concurrently(self):
        m = SccMachine()

        def prog(core):
            yield from core.compute_cycles(800e6)

        for c in range(10):
            m.spawn(c, prog)
        m.run()
        assert m.now == pytest.approx(1.0)  # parallel, not 10 s

    def test_negative_cycles_rejected(self):
        m = SccMachine()

        def prog(core):
            yield from core.compute_cycles(-5)

        m.spawn(0, prog)
        with pytest.raises(ValueError):
            m.run()

    def test_dram_read_counts_as_comm(self):
        m = SccMachine()

        def prog(core):
            yield from core.dram_read(1_000_000)

        m.spawn(3, prog)
        m.run()
        assert m.core(3).stats.comm_s > 0

    def test_core_repr_and_tile(self):
        m = SccMachine()
        core = m.core(7)
        assert core.tile == 3
        assert "rck07" in repr(core)
