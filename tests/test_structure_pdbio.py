"""PDB round-trip I/O."""

import numpy as np
import pytest

from repro.structure.model import Chain
from repro.structure.pdbio import (
    chain_from_pdb,
    chain_to_pdb,
    read_pdb_file,
    write_pdb_file,
)


def _chain(n=8, seed=3):
    rng = np.random.default_rng(seed)
    coords = np.round(np.cumsum(rng.normal(0, 2, (n, 3)), axis=0), 3)
    seq = "ACDEFGHIKLMNPQRSTVWY"[:n]
    return Chain("test", coords, seq, family="fam1")


class TestRoundTrip:
    def test_coords_survive(self):
        c = _chain()
        back = chain_from_pdb(chain_to_pdb(c), "test")
        np.testing.assert_allclose(back.coords, c.coords, atol=1e-3)

    def test_sequence_survives(self):
        c = _chain()
        back = chain_from_pdb(chain_to_pdb(c))
        assert back.sequence == c.sequence

    def test_family_survives_via_remark(self):
        c = _chain()
        back = chain_from_pdb(chain_to_pdb(c))
        assert back.family == "fam1"

    def test_file_roundtrip(self, tmp_path):
        c = _chain(12)
        path = tmp_path / "test.pdb"
        write_pdb_file(c, path)
        back = read_pdb_file(path)
        np.testing.assert_allclose(back.coords, c.coords, atol=1e-3)
        assert back.name == "test"


class TestParserRobustness:
    def test_ignores_non_ca_atoms(self):
        text = (
            "ATOM      1  N   ALA A   1       0.000   0.000   0.000  1.00  0.00\n"
            "ATOM      2  CA  ALA A   1       1.000   0.000   0.000  1.00  0.00\n"
            "ATOM      3  CA  GLY A   2       2.000   0.000   0.000  1.00  0.00\n"
            "ATOM      4  CA  VAL A   3       3.000   0.000   0.000  1.00  0.00\n"
            "END\n"
        )
        c = chain_from_pdb(text)
        assert len(c) == 3
        assert c.sequence == "AGV"

    def test_first_chain_only(self):
        lines = []
        for i in range(1, 5):
            lines.append(
                f"ATOM  {i:5d}  CA  ALA A{i:4d}    {float(i):8.3f}{0.0:8.3f}{0.0:8.3f}"
            )
        lines.append(
            f"ATOM  {9:5d}  CA  GLY B{1:4d}    {99.0:8.3f}{0.0:8.3f}{0.0:8.3f}"
        )
        c = chain_from_pdb("\n".join(lines))
        assert len(c) == 4
        assert "G" not in c.sequence

    def test_first_model_only(self):
        block = "\n".join(
            f"ATOM  {i:5d}  CA  ALA A{i:4d}    {float(i):8.3f}{0.0:8.3f}{0.0:8.3f}"
            for i in range(1, 5)
        )
        text = block + "\nENDMDL\n" + block + "\n"
        assert len(chain_from_pdb(text)) == 4

    def test_altloc_b_skipped(self):
        text = (
            "ATOM      1  CA  ALA A   1       0.000   0.000   0.000\n"
            "ATOM      2  CA BALA A   1       9.000   9.000   9.000\n"
            "ATOM      3  CA  ALA A   2       1.000   0.000   0.000\n"
            "ATOM      4  CA  ALA A   3       2.000   0.000   0.000\n"
        )
        c = chain_from_pdb(text)
        assert len(c) == 3

    def test_too_few_atoms_rejected(self):
        with pytest.raises(ValueError):
            chain_from_pdb("ATOM      1  CA  ALA A   1       0.0     0.0     0.0\n")

    def test_unknown_residue_becomes_alanine(self):
        text = "\n".join(
            f"ATOM  {i:5d}  CA  XYZ A{i:4d}    {float(i):8.3f}{0.0:8.3f}{0.0:8.3f}"
            for i in range(1, 4)
        )
        assert chain_from_pdb(text).sequence == "AAA"


class TestFormat:
    def test_atom_lines_fixed_columns(self):
        text = chain_to_pdb(_chain(3))
        atom_lines = [l for l in text.splitlines() if l.startswith("ATOM")]
        assert len(atom_lines) == 3
        for line in atom_lines:
            assert line[12:16].strip() == "CA"
            float(line[30:38]), float(line[38:46]), float(line[46:54])

    def test_ends_with_end(self):
        assert chain_to_pdb(_chain()).rstrip().endswith("END")
