"""Table III calibration."""

import pytest

from repro.cost.calibration import (
    TABLE3_SECONDS,
    calibrate_two_class,
    dataset_group_work,
    group_work,
    recalibrate_cpus,
)
from repro.cost.counters import CostCounter
from repro.cost.cpu import AMD_ATHLON_2400, P54C_800


class TestGroupWork:
    def test_partitions_counts(self):
        ctr = CostCounter({"dp_cell": 100, "align_fixed": 2})
        work, ovh = group_work(ctr)
        assert work == 100.0  # dp_cell base weight 1.0
        assert ovh == 2 * 20000.0  # align_fixed base weight

    def test_empty_counter_zero(self):
        assert group_work(CostCounter()) == (0.0, 0.0)

    def test_dataset_work_scales_with_size(self):
        small = dataset_group_work([100] * 5)
        big = dataset_group_work([100] * 10)
        assert big[0] > small[0] and big[1] > small[1]


class TestCalibrateTwoClass:
    def test_exact_solution_recovered(self):
        # construct a synthetic system with known scales
        works = {"a": (1e9, 1e6), "b": (20e9, 12e6)}
        want = (50.0, 1e5)
        targets = {
            d: (want[0] * w[0] + want[1] * w[1]) / 1e9 for d, w in works.items()
        }
        res = calibrate_two_class(works, targets, 1e9)
        assert res.work_scale == pytest.approx(want[0])
        assert res.overhead_scale == pytest.approx(want[1])
        assert res.max_relative_error < 1e-9

    def test_singular_system_rejected(self):
        works = {"a": (1.0, 1.0), "b": (2.0, 2.0)}
        with pytest.raises(ValueError):
            calibrate_two_class(works, {"a": 1.0, "b": 2.0}, 1e9)

    def test_negative_solution_rejected(self):
        works = {"a": (1.0, 100.0), "b": (100.0, 1.0)}
        # targets that force a negative scale
        with pytest.raises(ValueError):
            calibrate_two_class(works, {"a": 1e-9, "b": 1.0}, 1e9)

    def test_needs_two_datasets(self):
        with pytest.raises(ValueError):
            calibrate_two_class({"a": (1, 1)}, {"a": 1.0}, 1e9)


class TestBakedConstants:
    def test_recalibration_matches_baked_scales(self):
        """The constants in repro.cost.cpu must be what recalibration
        produces for the bundled datasets (guards against drift)."""
        res = recalibrate_cpus()
        assert res["p54c"].work_scale == pytest.approx(P54C_800.work_scale, rel=0.02)
        assert res["p54c"].overhead_scale == pytest.approx(
            P54C_800.overhead_scale, rel=0.02
        )
        assert res["amd"].work_scale == pytest.approx(
            AMD_ATHLON_2400.work_scale, rel=0.02
        )
        assert res["amd"].overhead_scale == pytest.approx(
            AMD_ATHLON_2400.overhead_scale, rel=0.02
        )

    def test_predictions_hit_paper_numbers(self):
        res = recalibrate_cpus()
        for cpu in ("p54c", "amd"):
            for ds, want in TABLE3_SECONDS[cpu].items():
                assert res[cpu].predicted_seconds[ds] == pytest.approx(want, rel=1e-6)
