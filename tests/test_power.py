"""SCC power/energy model."""

import pytest

from repro.core.rckalign import RckAlignConfig, run_rckalign
from repro.datasets import load_dataset
from repro.psc.evaluator import JobEvaluator
from repro.scc.power import (
    EnergyReport,
    PowerConfig,
    cpu_energy,
    estimate_rckalign_energy,
)


class TestPowerConfig:
    def test_published_envelope(self):
        cfg = PowerConfig()
        assert cfg.chip_power(0) == pytest.approx(25.0, abs=1.0)
        assert cfg.chip_power(48) == pytest.approx(125.0, abs=2.0)

    def test_power_monotone_in_busy_cores(self):
        cfg = PowerConfig()
        powers = [cfg.chip_power(n) for n in range(0, 49, 8)]
        assert all(a < b for a, b in zip(powers, powers[1:]))

    def test_frequency_scaling_cubic(self):
        base = PowerConfig(freq_multiplier=1.0)
        double = PowerConfig(freq_multiplier=2.0)
        assert double.active_core_w == pytest.approx(8 * base.active_core_w)

    def test_linear_scaling_option(self):
        double = PowerConfig(freq_multiplier=2.0, voltage_tracks_frequency=False)
        base = PowerConfig()
        assert double.active_core_w == pytest.approx(2 * base.active_core_w)

    def test_validation(self):
        with pytest.raises(ValueError):
            PowerConfig(uncore_w=-1)
        with pytest.raises(ValueError):
            PowerConfig(freq_multiplier=0)
        with pytest.raises(ValueError):
            PowerConfig().chip_power(99)


class TestEnergyEstimate:
    @pytest.fixture(scope="class")
    def reports(self):
        ds = load_dataset("ck34-mini")
        ev = JobEvaluator(ds)
        return {
            n: run_rckalign(RckAlignConfig(dataset=ds, n_slaves=n), evaluator=ev)
            for n in (1, 8)
        }

    def test_energy_positive_and_consistent(self, reports):
        e = estimate_rckalign_energy(reports[8])
        assert e.total_joules > 0
        assert e.average_watts == pytest.approx(e.total_joules / e.makespan_s)

    def test_average_power_within_envelope(self, reports):
        for rep in reports.values():
            e = estimate_rckalign_energy(rep)
            assert 25.0 <= e.average_watts <= 125.0

    def test_more_slaves_less_total_energy(self, reports):
        """Shorter makespan means less uncore+idle energy."""
        e1 = estimate_rckalign_energy(reports[1])
        e8 = estimate_rckalign_energy(reports[8])
        assert e8.total_joules < e1.total_joules
        assert e8.energy_delay_product < e1.energy_delay_product

    def test_busy_energy_invariant(self, reports):
        """Total busy core-seconds are the same work regardless of slave
        count (same jobs)."""
        e1 = estimate_rckalign_energy(reports[1])
        e8 = estimate_rckalign_energy(reports[8])
        assert e1.busy_core_seconds == pytest.approx(e8.busy_core_seconds, rel=0.01)


class TestCpuEnergy:
    def test_simple_product(self):
        assert cpu_energy(10.0, 65.0) == pytest.approx(650.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            cpu_energy(-1, 65)
