"""RCCE message passing: integrity, rendezvous semantics, collectives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scc.config import SccConfig
from repro.scc.machine import SccMachine
from repro.scc.rcce import Rcce


def run_pair(payload, nbytes, src=0, dst=1):
    m = SccMachine()
    rcce = Rcce(m)
    box = {}

    def sender(core):
        yield from rcce.send(core, dst, payload, nbytes=nbytes)

    def receiver(core):
        msg = yield from rcce.recv(core, src)
        box["msg"] = msg

    m.spawn(src, sender)
    m.spawn(dst, receiver)
    m.run()
    return m, box["msg"]


class TestPayloadIntegrity:
    def test_object_delivered_unchanged(self):
        payload = {"coords": [1, 2, 3], "name": "abc"}
        _, msg = run_pair(payload, 1024)
        assert msg.payload is payload
        assert msg.source == 0
        assert msg.nbytes == 1024

    @given(st.integers(0, 200_000))
    @settings(max_examples=20, deadline=None)
    def test_any_size_delivered(self, nbytes):
        _, msg = run_pair("data", nbytes)
        assert msg.nbytes == nbytes

    def test_zero_byte_message(self):
        _, msg = run_pair("signal", 0)
        assert msg.payload == "signal"


class TestTimingSemantics:
    def test_bigger_messages_take_longer(self):
        m1, _ = run_pair("x", 100)
        m2, _ = run_pair("x", 100_000)
        assert m2.now > m1.now

    def test_chunking_kicks_in_above_mpb_share(self):
        cfg = SccConfig()
        just_under = cfg.rcce_chunk_bytes
        m1, _ = run_pair("x", just_under)
        m2, _ = run_pair("x", just_under * 4)
        # 4 chunks need 4 flag round-trips: more than 4x one-chunk time
        assert m2.now > 2 * m1.now

    def test_farther_cores_take_longer(self):
        m_near, _ = run_pair("x", 8000, src=0, dst=2)  # next tile
        m_far, _ = run_pair("x", 8000, src=0, dst=47)  # opposite corner
        assert m_far.now > m_near.now

    def test_send_blocks_until_receiver_arrives(self):
        m = SccMachine()
        rcce = Rcce(m)
        times = {}

        def sender(core):
            yield from rcce.send(core, 1, "hello", nbytes=64)
            times["send_done"] = core.env.now

        def late_receiver(core):
            yield core.env.timeout(1.0)  # not ready for a full second
            yield from rcce.recv(core, 0)

        m.spawn(0, sender)
        m.spawn(1, late_receiver)
        m.run()
        assert times["send_done"] > 1.0

    def test_comm_time_accounted(self):
        m, _ = run_pair("x", 50_000)
        assert m.core(0).stats.comm_s > 0
        assert m.core(1).stats.comm_s > 0


class TestValidation:
    def test_send_to_self_rejected(self):
        m = SccMachine()
        rcce = Rcce(m)

        def prog(core):
            yield from rcce.send(core, 0, "x")

        m.spawn(0, prog)
        with pytest.raises(ValueError):
            m.run()

    def test_recv_from_self_rejected(self):
        m = SccMachine()
        rcce = Rcce(m)

        def prog(core):
            yield from rcce.recv(core, 0)

        m.spawn(0, prog)
        with pytest.raises(ValueError):
            m.run()


class TestManyMessages:
    def test_sequence_preserved(self):
        m = SccMachine()
        rcce = Rcce(m)
        received = []

        def sender(core):
            for k in range(10):
                yield from rcce.send(core, 1, k, nbytes=64)

        def receiver(core):
            for _ in range(10):
                msg = yield from rcce.recv(core, 0)
                received.append(msg.payload)

        m.spawn(0, sender)
        m.spawn(1, receiver)
        m.run()
        assert received == list(range(10))

    def test_bidirectional_no_deadlock(self):
        m = SccMachine()
        rcce = Rcce(m)
        log = []

        def ping(core):
            yield from rcce.send(core, 1, "ping", nbytes=64)
            msg = yield from rcce.recv(core, 1)
            log.append(msg.payload)

        def pong(core):
            msg = yield from rcce.recv(core, 0)
            yield from rcce.send(core, 0, msg.payload + "-pong", nbytes=64)

        m.spawn(0, ping)
        m.spawn(1, pong)
        m.run()
        assert log == ["ping-pong"]


class TestCollectives:
    def test_barrier_synchronizes(self):
        m = SccMachine()
        rcce = Rcce(m)
        group = [0, 1, 2, 3]
        after = {}

        def prog(core, delay):
            yield core.env.timeout(delay)
            yield from rcce.barrier(core, group)
            after[core.id] = core.env.now

        for k, c in enumerate(group):
            m.spawn(c, prog, 0.25 * k)
        m.run()
        # nobody exits the barrier before the slowest member arrived
        assert min(after.values()) >= 0.75

    def test_barrier_requires_membership(self):
        m = SccMachine()
        rcce = Rcce(m)

        def prog(core):
            yield from rcce.barrier(core, [1, 2])

        m.spawn(0, prog)
        with pytest.raises(ValueError):
            m.run()

    def test_bcast_delivers_to_all(self):
        m = SccMachine()
        rcce = Rcce(m)
        group = [0, 1, 2, 3, 4]
        got = {}

        def prog(core):
            value = yield from rcce.bcast(core, 0, group, payload="cfg" if core.id == 0 else None, nbytes=256)
            got[core.id] = value

        for c in group:
            m.spawn(c, prog)
        m.run()
        assert all(v == "cfg" for v in got.values())

    def test_stats_counted(self):
        m, _ = run_pair("x", 1000)
        # header + data chunks counted once each via send()
        pass  # statistics sanity below

    def test_rcce_send_counter(self):
        m = SccMachine()
        rcce = Rcce(m)

        def sender(core):
            yield from rcce.send(core, 1, "x", nbytes=10)

        def receiver(core):
            yield from rcce.recv(core, 0)

        m.spawn(0, sender)
        m.spawn(1, receiver)
        m.run()
        assert rcce.sends == 1
        assert rcce.bytes_total == 10
