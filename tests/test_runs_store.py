"""The durable run store: journals, manifests, resume semantics.

The contract under test is the resilient-runs acceptance criterion:
``matrix_run`` with ``resume=`` recomputes *zero* journaled pairs
(asserted through method call counts) and its finalized CSV is
byte-identical to the one an uninterrupted run writes — even when the
original run died to an injected worker failure.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.faults import FarmFaultPlan, InjectedFault
from repro.parallel import ParallelConfig, RetryPolicy
from repro.psc import get_method
from repro.psc.methods import SSECompositionMethod
from repro.runs import (
    Run,
    RunJournal,
    RunManifest,
    RunStore,
    RunStoreError,
    dataset_fingerprint,
    matrix_run,
)

SCORES_A = {"tm": 0.75, "rmsd": 1.25}
SCORES_B = {"tm": 0.5, "rmsd": 2.0}


class CountingMethod(SSECompositionMethod):
    """Counts compare() calls — proves --resume recomputes nothing.

    Keeps the parent's ``name`` so a resumed run passes the manifest's
    method check.  Only valid with workers=0 (in-process evaluation).
    """

    def __init__(self) -> None:
        self.calls = 0

    def compare(self, chain_a, chain_b, counter):
        self.calls += 1
        return super().compare(chain_a, chain_b, counter)


@pytest.fixture
def store(tmp_path):
    return RunStore(tmp_path / "runs")


def make_run(store, ck34_mini, run_id="r1", command="matrix", n_pairs=28):
    manifest = RunManifest.for_task(
        run_id=run_id,
        command=command,
        dataset=ck34_mini,
        method_name="sse_composition",
        n_pairs=n_pairs,
    )
    return store.create(manifest)


class TestJournal:
    def test_round_trip(self, store, ck34_mini):
        run = make_run(store, ck34_mini)
        with run.journal() as journal:
            journal.append(0, 1, SCORES_A)
            journal.append(0, 2, SCORES_B)
        state = run.load_journal()
        assert state.keys == ("rmsd", "tm")  # sorted key order
        assert len(state) == 2 and (0, 1) in state and (0, 2) in state
        assert state.scores((0, 1)) == SCORES_A
        assert state.scores((0, 2)) == SCORES_B
        assert state.dropped == 0

    def test_truncated_tail_dropped(self, store, ck34_mini):
        run = make_run(store, ck34_mini)
        with run.journal() as journal:
            journal.append(0, 1, SCORES_A)
            journal.append(0, 2, SCORES_B)
        with open(run.journal_path, encoding="ascii") as fh:
            intact = fh.read()
        # a SIGKILL mid-append leaves a partial final line
        with open(run.journal_path, "w", encoding="ascii") as fh:
            fh.write(intact + "0,3,0.123")  # no CRC, no newline
        state = run.load_journal()
        assert len(state) == 2
        assert (0, 3) not in state
        assert state.dropped == 1

    def test_corrupt_record_before_intact_ones_raises(self, store, ck34_mini):
        run = make_run(store, ck34_mini)
        with run.journal() as journal:
            journal.append(0, 1, SCORES_A)
            journal.append(0, 2, SCORES_B)
        lines = open(run.journal_path, encoding="ascii").read().splitlines(True)
        lines[1] = lines[1].replace(",", ";", 1)  # damage a mid-file record
        with open(run.journal_path, "w", encoding="ascii") as fh:
            fh.writelines(lines)
        with pytest.raises(RunStoreError, match="damaged"):
            run.load_journal()

    def test_reopen_for_append_keeps_single_header(self, store, ck34_mini):
        # the resume path: a second RunJournal on the same file must adopt
        # the existing #keys= header, not write another one mid-file
        run = make_run(store, ck34_mini)
        with run.journal() as journal:
            journal.append(0, 1, SCORES_A)
        with run.journal() as journal:
            assert journal.keys == ("rmsd", "tm")
            journal.append(0, 2, SCORES_B)
        text = open(run.journal_path, encoding="ascii").read()
        assert text.count("#keys=") == 1
        assert len(run.load_journal()) == 2

    def test_mismatched_keys_rejected(self, store, ck34_mini):
        run = make_run(store, ck34_mini)
        with run.journal() as journal:
            journal.append(0, 1, SCORES_A)
            with pytest.raises(RunStoreError, match="score keys"):
                journal.append(0, 2, {"different": 1.0})
        with pytest.raises(RunStoreError, match="caller expects"):
            RunJournal(run.journal_path, keys=["zz"])

    def test_corrupt_record_is_the_shared_typed_error(self, store, ck34_mini):
        # JournalCorrupt is the one error both the runs reader and the
        # matstore verifier surface; callers match on the type, not text
        from repro.runs import JournalCorrupt, read_journal

        run = make_run(store, ck34_mini)
        with run.journal() as journal:
            journal.append(0, 1, SCORES_A)
            journal.append(0, 2, SCORES_B)
        lines = open(run.journal_path, encoding="ascii").read().splitlines(True)
        lines[1] = lines[1].replace(",", ";", 1)
        with open(run.journal_path, "w", encoding="ascii") as fh:
            fh.writelines(lines)
        with pytest.raises(JournalCorrupt):
            read_journal(run.journal_path)
        assert issubclass(JournalCorrupt, RunStoreError)

    def test_values_survive_as_exact_format_strings(self, store, ck34_mini):
        run = make_run(store, ck34_mini)
        value = 0.1 + 0.2  # 0.30000000000000004
        with run.journal() as journal:
            journal.append(3, 4, {"tm": value})
        state = run.load_journal()
        assert state.rows[(3, 4)] == [format(value, "")]
        assert state.scores((3, 4))["tm"] == value  # bit-exact round trip


class TestManifest:
    def test_check_inputs_rejects_other_method(self, ck34_mini):
        m = RunManifest.for_task("r", "matrix", ck34_mini, "tmalign")
        with pytest.raises(ValueError, match="method"):
            m.check_inputs(ck34_mini, "sse_composition")

    def test_check_inputs_rejects_other_dataset(self, ck34_mini):
        m = RunManifest.for_task("r", "matrix", ck34_mini, "tmalign")
        other = ck34_mini.subset(4, name="other")
        with pytest.raises(ValueError, match="refusing to mix"):
            m.check_inputs(other, "tmalign")
        m.check_inputs(ck34_mini, "tmalign")  # identity passes

    def test_fingerprint_depends_on_content(self, ck34_mini):
        assert dataset_fingerprint(ck34_mini) == dataset_fingerprint(ck34_mini)
        assert dataset_fingerprint(ck34_mini) != dataset_fingerprint(
            ck34_mini.subset(4, name="other")
        )

    def test_version_gate(self, ck34_mini):
        m = RunManifest.for_task("r", "matrix", ck34_mini, "tmalign")
        payload = json.loads(m.to_json())
        payload["version"] = 999
        with pytest.raises(ValueError, match="version"):
            RunManifest.from_json(json.dumps(payload))
        again = RunManifest.from_json(m.to_json())
        assert again == m


class TestStore:
    def test_illegal_run_ids(self, store):
        for bad in ("", "a/b", ".hidden"):
            with pytest.raises(RunStoreError, match="illegal"):
                store.run_dir(bad)

    def test_open_missing_run(self, store):
        with pytest.raises(RunStoreError, match="no run"):
            store.open("nope")

    def test_create_open_list(self, store, ck34_mini):
        run = make_run(store, ck34_mini, run_id="alpha")
        assert store.exists("alpha")
        with pytest.raises(RunStoreError, match="already exists"):
            make_run(store, ck34_mini, run_id="alpha")
        reopened = store.open("alpha")
        assert reopened.manifest == run.manifest
        assert list(store.list_ids()) == ["alpha"]

    def test_new_run_id_unique(self, store, ck34_mini):
        first = store.new_run_id("matrix")
        make_run(store, ck34_mini, run_id=first)
        second = store.new_run_id("matrix")
        assert second != first
        assert not store.exists(second)

    def test_status_transitions_persisted(self, store, ck34_mini):
        run = make_run(store, ck34_mini, run_id="s")
        assert store.open("s").manifest.status == "running"
        run.mark("interrupted")
        assert store.open("s").manifest.status == "interrupted"

    def test_finalize_refuses_incomplete_journal(self, store, ck34_mini, tmp_path):
        run = make_run(store, ck34_mini)
        with pytest.raises(RunStoreError, match="empty journal"):
            run.finalize_csv([(0, 1)], ["a", "b"], tmp_path / "out.csv")
        with run.journal() as journal:
            journal.append(0, 1, SCORES_A)
        with pytest.raises(RunStoreError, match="incomplete"):
            run.finalize_csv(
                [(0, 1), (0, 2)], ["a", "b", "c"], tmp_path / "out.csv"
            )


class TestMatrixRun:
    def run_matrix(self, ck34_mini, store, out, method=None, **kw):
        return matrix_run(
            ck34_mini,
            method or CountingMethod(),
            str(out),
            store,
            config=kw.pop("config", ParallelConfig(workers=0)),
            **kw,
        )

    def test_fresh_run_completes(self, store, ck34_mini, tmp_path):
        method = CountingMethod()
        res = self.run_matrix(
            ck34_mini, store, tmp_path / "full.csv", method=method
        )
        assert res.n_pairs == res.n_computed == res.n_rows == 28
        assert res.n_journaled == 0
        assert method.calls == 28
        assert store.open(res.run_id).manifest.status == "complete"

    def test_resume_recomputes_zero_pairs(self, store, ck34_mini, tmp_path):
        want = self.run_matrix(ck34_mini, store, tmp_path / "full.csv")
        golden = open(tmp_path / "full.csv", "rb").read()

        # interrupt a second run mid-matrix with an injected failure
        with pytest.raises(InjectedFault):
            self.run_matrix(
                ck34_mini, store, tmp_path / "broken.csv",
                run_id="broken",
                faults=FarmFaultPlan.single("raise", (2, 5)),
            )
        assert store.open("broken").manifest.status == "interrupted"
        assert not os.path.exists(tmp_path / "broken.csv")  # atomic: no partial CSV

        method = CountingMethod()
        res = self.run_matrix(
            ck34_mini, store, tmp_path / "broken.csv",
            method=method, resume="broken",
        )
        # (2, 5) is the 16th pair in row-major order: 15 journaled, 13 left
        assert res.n_journaled == 15
        assert res.n_computed == 13
        assert method.calls == 13  # zero journaled pairs re-evaluated
        assert res.run_id == "broken"
        assert store.open("broken").manifest.status == "complete"
        assert open(tmp_path / "broken.csv", "rb").read() == golden
        assert res.score_sum == pytest.approx(want.score_sum)

    def test_resume_completed_run_computes_nothing(
        self, store, ck34_mini, tmp_path
    ):
        first = self.run_matrix(
            ck34_mini, store, tmp_path / "full.csv", run_id="done"
        )
        golden = open(tmp_path / "full.csv", "rb").read()
        method = CountingMethod()
        res = self.run_matrix(
            ck34_mini, store, tmp_path / "again.csv",
            method=method, resume="done",
        )
        assert method.calls == 0
        assert res.n_computed == 0 and res.n_journaled == 28
        assert open(tmp_path / "again.csv", "rb").read() == golden
        assert first.run_id == res.run_id

    def test_resume_guards(self, store, ck34_mini, tmp_path):
        with pytest.raises(ValueError, match="not both"):
            self.run_matrix(
                ck34_mini, store, tmp_path / "x.csv",
                run_id="a", resume="b",
            )
        make_run(store, ck34_mini, run_id="srch", command="search")
        with pytest.raises(RunStoreError, match="not a matrix"):
            self.run_matrix(
                ck34_mini, store, tmp_path / "x.csv", resume="srch"
            )

    def test_sigkilled_worker_with_retry_byte_identical(
        self, store, ck34_mini, tmp_path
    ):
        # the headline acceptance criterion: a worker SIGKILLed mid-run
        # is absorbed by the retry policy and the CSV is byte-identical
        # to the serial, fault-free run
        method = get_method("sse_composition")
        self.run_matrix(
            ck34_mini, store, tmp_path / "serial.csv",
            method=method, run_id="serial",
        )
        res = self.run_matrix(
            ck34_mini, store, tmp_path / "farmed.csv",
            method=method, run_id="farmed",
            config=ParallelConfig(
                workers=2, chunk=2,
                retry=RetryPolicy(max_retries=2, backoff_seconds=0.01),
            ),
            faults=FarmFaultPlan.single("kill", (1, 2)),
        )
        assert res.stats.pool_restarts >= 1
        serial = open(tmp_path / "serial.csv", "rb").read()
        farmed = open(tmp_path / "farmed.csv", "rb").read()
        assert farmed == serial
