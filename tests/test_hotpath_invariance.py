"""Hot-path optimizations must not move simulated time by one ULP.

The performance overhaul (memoized pair costs, cached poll/route costs,
synchronous uncontended resource grants) is only admissible if the
simulation produces bit-identical results.  This module pins that:

* golden values captured from the unoptimised code path (commit
  1f722f2) for the quick CK34 sweep — ``repr`` equality, so even a
  last-bit float drift fails;
* a determinism regression: the same config run twice, with a fresh and
  a pre-warmed evaluator, must agree on every report field;
* the subset-farm fix: ``farm(ue_ids=<subset>)`` completes when only
  that subset of the runtime's slaves was ever spawned.
"""

import pytest

from repro.core.rckalign import RckAlignConfig, run_rckalign
from repro.core.skeletons import FarmConfig, Job, SkeletonRuntime
from repro.datasets.registry import load_dataset
from repro.psc.evaluator import JobEvaluator
from repro.scc.machine import SccMachine
from repro.scc.rcce import Rcce

# Captured from the pre-overhaul simulator: quick-grid CK34 MODEL sweep,
# one evaluator shared across the sweep, grid order as listed.
# n_slaves -> (repr(total_seconds), n_jobs, noc_bytes, noc_messages,
#              poll_visits)
GOLDEN_CK34_QUICK = {
    1: ("2063.1343003291277", 561, 6088305, 3656, 1122),
    3: ("689.0384921194933", 561, 6088625, 3664, 2272),
    11: ("192.64560718230547", 561, 6089905, 3696, 6050),
    23: ("97.14207901750682", 561, 6091825, 3744, 10294),
    47: ("57.45974631907288", 561, 6095665, 3840, 9684),
}
GOLDEN_LOAD_SECONDS = "0.03782438916037736"


def test_zero_drift_against_pre_overhaul_goldens():
    ds = load_dataset("ck34")
    evaluator = JobEvaluator(ds)
    for n, (total_repr, n_jobs, noc_bytes, noc_messages, poll_visits) in (
        GOLDEN_CK34_QUICK.items()
    ):
        rep = run_rckalign(
            RckAlignConfig(dataset=ds, n_slaves=n), evaluator=evaluator
        )
        assert repr(rep.total_seconds) == total_repr, f"n_slaves={n}"
        assert rep.n_jobs == n_jobs
        assert rep.noc_bytes == noc_bytes
        assert rep.noc_messages == noc_messages
        assert rep.poll_visits == poll_visits
        assert repr(rep.load_seconds) == GOLDEN_LOAD_SECONDS


def _report_fields(rep):
    return (
        rep.total_seconds,
        rep.load_seconds,
        rep.n_jobs,
        rep.poll_visits,
        rep.noc_messages,
        rep.noc_bytes,
        rep.sim_events,
        rep.master_compute_seconds,
        rep.slave_busy_seconds,
        rep.slave_jobs,
        sorted((r.job_id, r.slave_id, r.finished_at) for r in rep.results),
    )


def test_repeated_runs_are_bit_identical():
    ds = load_dataset("ck34-mini")
    cfg = RckAlignConfig(dataset=ds, n_slaves=7)
    first = run_rckalign(cfg, evaluator=JobEvaluator(ds))
    # second run with a pre-warmed memo cache must not diverge either
    warmed = JobEvaluator(ds)
    for i in range(len(ds)):
        for j in range(i + 1, len(ds)):
            warmed.evaluate(i, j)
    second = run_rckalign(cfg, evaluator=warmed)
    assert _report_fields(first) == _report_fields(second)


def test_farm_subset_completes_with_only_subset_spawned():
    """farm(ue_ids=subset) must not wait for slaves that never boot."""
    machine = SccMachine()
    rcce = Rcce(machine)
    runtime = SkeletonRuntime(
        machine,
        rcce,
        0,
        [1, 2, 3, 4],
        FarmConfig(
            master_job_cycles=1000, master_result_cycles=1000, slave_boot_seconds=0.0
        ),
    )

    def handler(core, payload):
        yield from core.compute_cycles(1000)
        return payload, 64

    done = {}

    def master(core):
        done["results"] = yield from runtime.farm(
            core,
            [Job(job_id=k, payload=k, nbytes=128) for k in range(6)],
            ue_ids=[1, 2],
        )

    machine.spawn(0, master)
    # slaves 3 and 4 exist in the runtime but are never spawned
    machine.spawn(1, runtime.slave_loop, handler)
    machine.spawn(2, runtime.slave_loop, handler)
    machine.run()

    results = done["results"]
    assert sorted(r.job_id for r in results) == list(range(6))
    assert {r.slave_id for r in results} == {1, 2}


def test_farm_grouped_partition_completes_with_only_partition_spawned():
    machine = SccMachine()
    rcce = Rcce(machine)
    runtime = SkeletonRuntime(
        machine,
        rcce,
        0,
        [1, 2, 3, 4],
        FarmConfig(
            master_job_cycles=1000, master_result_cycles=1000, slave_boot_seconds=0.0
        ),
    )

    def handler(core, payload):
        yield from core.compute_cycles(1000)
        return payload, 64

    done = {}

    def master(core):
        done["results"] = yield from runtime.farm_grouped(
            core,
            {
                "a": ([Job(job_id=k, payload=k, nbytes=128) for k in range(4)], [1]),
                "b": ([Job(job_id=4 + k, payload=k, nbytes=128) for k in range(4)], [2]),
            },
            terminate=False,
        )
        yield from runtime.shutdown(core, [1, 2])

    machine.spawn(0, master)
    machine.spawn(1, runtime.slave_loop, handler)
    machine.spawn(2, runtime.slave_loop, handler)
    machine.run()

    results = done["results"]
    assert sorted(r.job_id for r in results["a"]) == [0, 1, 2, 3]
    assert sorted(r.job_id for r in results["b"]) == [4, 5, 6, 7]
