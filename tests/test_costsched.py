"""Cost-model-driven scheduling: pair pricing, chunk packing, adaptive
concurrency control.

The controller tests drive :class:`AdaptiveController` with a fake clock,
so every backoff decision is deterministic: a "fast" level advances the
clock a little per chunk, a "slow" one a lot.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cost.cpu import AMD_ATHLON_2400
from repro.cost.model import DEFAULT_PAIR_COST_MODEL
from repro.parallel import (
    AdaptiveController,
    pack_chunks,
    predict_pair_seconds,
)
from repro.parallel.costsched import CHUNKS_PER_WORKER, MAX_CHUNK_PAIRS


class TestPredictPairSeconds:
    def test_matches_scalar_cost_model(self):
        """The vectorized predictor is the noiseless PairCostModel priced
        by the CpuModel, exactly."""
        cases = [(146, 153), (80, 300), (40, 40), (500, 120)]
        got = predict_pair_seconds([a for a, _ in cases], [b for _, b in cases])
        for k, (la, lb) in enumerate(cases):
            counts = DEFAULT_PAIR_COST_MODEL.counts(la, lb, pair_key=None)
            want = AMD_ATHLON_2400.seconds(counts)
            assert got[k] == pytest.approx(want, rel=1e-12), (la, lb)

    def test_monotone_in_length(self):
        lengths = [40, 80, 160, 320, 640]
        costs = predict_pair_seconds(lengths, lengths)
        assert all(np.diff(costs) > 0)

    def test_positive_and_finite(self):
        costs = predict_pair_seconds([1, 5, 2000], [1, 700, 2000])
        assert np.all(costs > 0)
        assert np.all(np.isfinite(costs))


pair_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=50),
        st.integers(min_value=0, max_value=50),
    ),
    min_size=1,
    max_size=200,
)
cost_lists = st.lists(
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    min_size=1,
    max_size=200,
)


class TestPackChunks:
    @given(st.data(), st.integers(min_value=1, max_value=16))
    @settings(max_examples=50, deadline=None)
    def test_conservation_and_order(self, data, workers):
        """Concatenating the chunks reproduces the job list exactly —
        the invariant the ordered-result stream depends on."""
        pairs = data.draw(pair_lists)
        costs = data.draw(
            st.lists(
                st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
                min_size=len(pairs),
                max_size=len(pairs),
            )
        )
        plan = pack_chunks(pairs, costs, workers)
        flat = [p for c in plan.chunks for p in c]
        assert flat == [tuple(p) for p in pairs]
        assert all(len(c) >= 1 for c in plan.chunks)
        assert len(plan.predicted_seconds) == plan.n_chunks

    @given(st.data(), st.integers(min_value=1, max_value=16))
    @settings(max_examples=50, deadline=None)
    def test_budget_bound(self, data, workers):
        """No chunk overshoots the budget by more than one pair, and the
        pair-count cap always holds."""
        pairs = data.draw(pair_lists)
        costs = data.draw(
            st.lists(
                st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
                min_size=len(pairs),
                max_size=len(pairs),
            )
        )
        plan = pack_chunks(pairs, costs, workers)
        max_single = max(max(costs), 0.0)
        for chunk, cost in zip(plan.chunks, plan.predicted_seconds):
            assert len(chunk) <= MAX_CHUNK_PAIRS
            assert cost <= plan.budget_seconds + max_single + 1e-9

    def test_equal_costs_give_equal_counts(self):
        pairs = [(0, j) for j in range(96)]
        plan = pack_chunks(pairs, [1.0] * 96, workers=4)
        sizes = {len(c) for c in plan.chunks}
        assert max(sizes) - min(sizes) <= 1
        assert plan.n_chunks == 4 * CHUNKS_PER_WORKER

    def test_expensive_pairs_get_small_chunks(self):
        """A run of 10x-cost pairs is cut ~10x finer than the cheap run."""
        pairs = [(0, j) for j in range(80)]
        costs = [10.0] * 40 + [1.0] * 40
        plan = pack_chunks(pairs, costs, workers=2)
        cheap = [len(c) for c in plan.chunks if all(j >= 40 for _, j in c)]
        dear = [len(c) for c in plan.chunks if all(j < 40 for _, j in c)]
        assert dear and cheap
        assert max(dear) < min(cheap)

    def test_single_huge_pair_is_its_own_chunk(self):
        plan = pack_chunks(
            [(0, 1), (0, 2), (0, 3)], [0.1, 100.0, 0.1], workers=8
        )
        assert [len(c) for c in plan.chunks] == [1, 1, 1]

    def test_empty_and_mismatch(self):
        assert pack_chunks([], [], 4).n_chunks == 0
        with pytest.raises(ValueError):
            pack_chunks([(0, 1)], [], 4)


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


def drive_round(ctl, clock, n, seconds_per_chunk, cost=1.0):
    """Complete ``n`` chunks, each taking ``seconds_per_chunk``."""
    for _ in range(n):
        clock.advance(seconds_per_chunk)
        ctl.record(cost)


class TestAdaptiveController:
    def make(self, workers=4, n_chunks=100, **kw):
        clock = FakeClock()
        ctl = AdaptiveController(workers, n_chunks, clock=clock, **kw)
        return ctl, clock

    def test_disabled_when_serial_or_tiny(self):
        ctl, _ = self.make(workers=1)
        assert not ctl.enabled
        ctl, _ = self.make(workers=4, n_chunks=5)
        assert not ctl.enabled
        assert ctl.window == max(2 * 4, 4)  # static resilient window

    def test_backs_off_when_lower_level_keeps_up(self):
        """Same per-chunk time at every level = pure oversubscription:
        the controller walks 4 -> 2 -> 1 and asks for a serial probe."""
        ctl, clock = self.make(workers=4)
        assert ctl.window == 4
        drive_round(ctl, clock, 4, 1.0)  # round at 4: tput 1.0
        assert ctl.window == 2  # first probe down
        drive_round(ctl, clock, 2, 1.0)  # round at 2: tput 1.0 — kept up
        assert ctl.backoffs == 1
        assert ctl.window == 1
        drive_round(ctl, clock, 2, 1.0)  # round at 1 (min len 2): kept up
        assert ctl.backoffs == 2
        assert ctl.wants_serial_probe
        assert ctl.window == 0  # drain the pool, probe in-process

    def test_restores_best_level_when_backoff_loses(self):
        """Halving the workers halves the throughput = real parallelism:
        lock back to the measured-best level and stop probing."""
        ctl, clock = self.make(workers=4)
        drive_round(ctl, clock, 4, 1.0)  # tput 1.0 at level 4
        assert ctl.window == 2
        drive_round(ctl, clock, 2, 2.0)  # tput 0.5 at level 2 — worse
        assert ctl.locked
        assert ctl.window == 4
        assert ctl.backoffs == 0
        drive_round(ctl, clock, 10, 5.0)  # locked: no further changes
        assert ctl.window == 4

    def test_serial_probe_decides_serial_mode(self):
        ctl, clock = self.make(workers=2)
        drive_round(ctl, clock, 2, 1.0)  # level 2
        drive_round(ctl, clock, 2, 1.0)  # level 1 kept up -> probe
        assert ctl.wants_serial_probe
        ctl.note_serial(1.0, 0.9)  # in-process beats the pool's 1.0 s/cost
        assert ctl.serial_mode
        assert ctl.window == 0

    def test_single_cpu_goes_serial_immediately(self):
        """One core means pool workers can only add IPC overhead: no
        measurement rounds, straight to the serial in-process path."""
        ctl, _ = self.make(workers=4, single_cpu=True)
        assert ctl.enabled
        assert ctl.serial_mode
        assert ctl.locked
        assert ctl.window == 0
        assert not ctl.wants_serial_probe
        assert ctl.backoffs == 0

    def test_single_cpu_flag_ignored_when_disabled(self):
        ctl, _ = self.make(workers=1, single_cpu=True)
        assert not ctl.enabled
        assert not ctl.serial_mode
        assert ctl.window == max(2 * 1, 4)

    def test_serial_probe_can_choose_the_pool(self):
        ctl, clock = self.make(workers=2)
        drive_round(ctl, clock, 2, 1.0)
        drive_round(ctl, clock, 2, 1.0)
        assert ctl.wants_serial_probe
        ctl.note_serial(1.0, 10.0)  # in-process is 10x slower: keep pool
        assert not ctl.serial_mode
        assert ctl.window == 1
