"""Initial alignment generators."""

import numpy as np
import pytest

from repro.geometry.transforms import RigidTransform, random_rotation
from repro.structure.synthetic import build_helix, build_strand
from repro.tmalign.initial import (
    combined_alignment,
    fragment_threading,
    gapless_threading,
    ss_alignment,
)
from repro.tmalign.params import TMAlignParams, d0_from_length


class TestGaplessThreading:
    def test_identity_shift_found_for_identical(self, rng):
        pts = build_helix(30)
        alis = gapless_threading(pts, pts, d0_from_length(30), 30)
        best = alis[0]
        np.testing.assert_array_equal(best.ai, best.aj)
        assert len(best) == 30

    def test_finds_known_offset(self, rng):
        long_ = build_helix(50) + rng.normal(0, 0.05, (50, 3))
        short = long_[12:34].copy()
        alis = gapless_threading(short, long_, d0_from_length(22), 22)
        best = alis[0]
        assert best.aj[0] - best.ai[0] == 12

    def test_rotation_invariant_choice(self, rng):
        long_ = build_helix(40)
        short = long_[5:25].copy()
        xf = RigidTransform(random_rotation(rng), rng.normal(size=3) * 10)
        a1 = gapless_threading(short, long_, 3.0, 20)[0]
        a2 = gapless_threading(xf.apply(short), long_, 3.0, 20)[0]
        assert a1 == a2

    def test_n_best_respected(self):
        pts = build_helix(20)
        alis = gapless_threading(pts, pts, 3.0, 20, n_best=3)
        assert len(alis) <= 3

    def test_alignments_are_gapless(self, rng):
        a = rng.normal(size=(15, 3)) * 5
        b = rng.normal(size=(22, 3)) * 5
        for ali in gapless_threading(a, b, 3.0, 15):
            assert (np.diff(ali.ai) == 1).all()
            assert (np.diff(ali.aj) == 1).all()


class TestSsAlignment:
    def test_identical_strings_align_identity(self):
        ali = ss_alignment("HHHHCCEEEE", "HHHHCCEEEE")
        np.testing.assert_array_equal(ali.ai, np.arange(10))
        np.testing.assert_array_equal(ali.aj, np.arange(10))

    def test_shifted_motif_found(self):
        a = "HHHHHH"
        b = "CCCHHHHHHCC"
        ali = ss_alignment(a, b)
        match_js = ali.aj[np.array([a[i] == "H" for i in ali.ai.tolist()])]
        assert set(match_js.tolist()) <= set(range(3, 9))

    def test_empty_overlap_degrades_gracefully(self):
        ali = ss_alignment("HHH", "EEE")
        assert len(ali) >= 0  # may align with zero score, must not crash


class TestCombinedAlignment:
    def test_uses_transform_distance_signal(self, rng):
        pts = build_helix(25)
        xf = RigidTransform(random_rotation(rng), rng.normal(size=3) * 5)
        moved = xf.apply(pts)
        ss = "C" * 25
        ali = combined_alignment(pts, moved, xf, ss, ss, d0_from_length(25))
        # under the correct transform the identity alignment dominates
        assert len(ali) == 25
        np.testing.assert_array_equal(ali.ai, ali.aj)

    def test_ss_mix_extremes(self, rng):
        pts = build_helix(20)
        ss_a = "H" * 20
        ss_b = "H" * 20
        only_ss = combined_alignment(
            pts, pts, RigidTransform.identity(), ss_a, ss_b, 3.0,
            params=TMAlignParams(ss_mix=1.0),
        )
        assert len(only_ss) > 0


class TestFragmentThreading:
    def test_submatch_located(self, rng):
        long_ = build_helix(60) + rng.normal(0, 0.05, (60, 3))
        # short chain whose first half matches long_[20:35]
        short = np.vstack([long_[20:35], rng.normal(0, 8, (15, 3)) + 50.0])
        ali = fragment_threading(short, long_, 3.0, 30)
        assert ali is not None
        # the fragment window should overlap the true region
        assert len(set(ali.aj.tolist()) & set(range(15, 40))) > 0

    def test_none_for_tiny_chains(self, rng):
        pts = rng.normal(size=(5, 3))
        params = TMAlignParams(min_seed_len=4, fragment_fraction=2)
        result = fragment_threading(pts, pts, 3.0, 5, params=params)
        assert result is None or len(result) >= 2

    def test_swapped_orientation_consistent(self, rng):
        a = build_helix(20)
        b = build_strand(35)
        ali = fragment_threading(a, b, 3.0, 20)
        if ali is not None:
            assert ali.ai.max() < 20
            assert ali.aj.max() < 35
