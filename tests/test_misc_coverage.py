"""Coverage for remaining small public APIs."""

import numpy as np
import pytest

from repro.cost.cpu import P54C_800
from repro.cost.model import dataset_total_seconds, pair_seconds
from repro.datasets import load_dataset
from repro.scc.machine import SccMachine


class TestDatasetTotalSeconds:
    def test_matches_pairwise_sum(self):
        lengths = [100, 150, 200]
        names = ["a", "b", "c"]
        total = dataset_total_seconds(lengths, P54C_800, names)
        manual = (
            pair_seconds(P54C_800, 100, 150, "a|b")
            + pair_seconds(P54C_800, 100, 200, "a|c")
            + pair_seconds(P54C_800, 150, 200, "b|c")
        )
        assert total == pytest.approx(manual)

    def test_matches_serial_baseline_compute(self):
        from repro.baselines.serial import SerialConfig, run_serial

        ds = load_dataset("ck34-mini")
        rep = run_serial(SerialConfig(dataset=ds))
        total = dataset_total_seconds(
            [len(c) for c in ds], P54C_800, [c.name for c in ds]
        )
        assert rep.compute_seconds == pytest.approx(total, rel=1e-9)


class TestCoreComputeSeconds:
    def test_advances_clock_directly(self):
        m = SccMachine()

        def prog(core):
            yield from core.compute_seconds(2.5)

        m.spawn(0, prog)
        m.run()
        assert m.now == pytest.approx(2.5)
        assert m.core(0).stats.compute_s == pytest.approx(2.5)

    def test_negative_rejected(self):
        m = SccMachine()

        def prog(core):
            yield from core.compute_seconds(-1.0)

        m.spawn(0, prog)
        with pytest.raises(ValueError):
            m.run()


class TestMemoryControllerValidation:
    def test_negative_read_rejected(self):
        from repro.noc.fabric import NocConfig, NocFabric
        from repro.sim.engine import Environment

        env = Environment()
        fabric = NocFabric(env, NocConfig())
        with pytest.raises(ValueError):
            next(fabric.memory_controllers[0].read(-1))


class TestDatasetsMetadata:
    def test_total_residues_and_mean(self, ck34_mini):
        total = sum(len(c) for c in ck34_mini)
        assert ck34_mini.total_residues == total
        assert ck34_mini.mean_length == pytest.approx(total / len(ck34_mini))

    def test_families_mapping_complete(self, ck34_mini):
        fams = ck34_mini.families
        assert sum(len(v) for v in fams.values()) == len(ck34_mini)


class TestTracerBusyFraction:
    def test_zero_horizon(self):
        from repro.scc.trace import Tracer

        m = SccMachine()
        tracer = Tracer(m)
        assert tracer.busy_fraction(0) == 0.0


class TestAsciiPlotMultiSeries:
    def test_many_series_distinct_marks(self):
        from repro.experiments.common import ascii_plot

        series = {f"s{k}": [(1.0, k + 1.0), (2.0, k + 2.0)] for k in range(7)}
        out = ascii_plot(series)
        assert "legend" in out
        # marks cycle after 6
        assert "o=s0" in out and "o=s6" in out
