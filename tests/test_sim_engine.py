"""Discrete-event kernel: ordering, processes, waits, errors."""

import pytest

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    SimulationError,
)


class TestClockAndOrdering:
    def test_timeouts_fire_in_order(self):
        env = Environment()
        log = []

        def proc(delay, tag):
            yield env.timeout(delay)
            log.append((env.now, tag))

        env.process(proc(3.0, "c"))
        env.process(proc(1.0, "a"))
        env.process(proc(2.0, "b"))
        env.run()
        assert log == [(1.0, "a"), (2.0, "b"), (3.0, "c")]

    def test_same_time_fifo(self):
        env = Environment()
        log = []

        def proc(tag):
            yield env.timeout(1.0)
            log.append(tag)

        for tag in "abcd":
            env.process(proc(tag))
        env.run()
        assert log == list("abcd")

    def test_run_until_time(self):
        env = Environment()

        def proc():
            for _ in range(10):
                yield env.timeout(1.0)

        env.process(proc())
        env.run(until=4.5)
        assert env.now == 4.5

    def test_negative_timeout_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            env.timeout(-1.0)

    def test_event_count_tracked(self):
        env = Environment()

        def proc():
            yield env.timeout(1)
            yield env.timeout(1)

        env.process(proc())
        env.run()
        assert env.event_count >= 2


class TestProcesses:
    def test_return_value_via_yield(self):
        env = Environment()

        def child():
            yield env.timeout(2.0)
            return 42

        result = {}

        def parent():
            result["value"] = yield env.process(child())

        env.process(parent())
        env.run()
        assert result["value"] == 42

    def test_nested_yield_from(self):
        env = Environment()

        def inner():
            yield env.timeout(1.0)
            return "deep"

        def outer():
            value = yield from inner()
            return value + "er"

        p = env.process(outer())
        env.run()
        assert p.value == "deeper"

    def test_non_generator_rejected(self):
        env = Environment()
        with pytest.raises(TypeError):
            env.process(lambda: None)

    def test_yielding_non_event_fails(self):
        env = Environment()

        def bad():
            yield 42

        env.process(bad())
        with pytest.raises(SimulationError):
            env.run()

    def test_exception_propagates_to_waiter(self):
        env = Environment()

        def boom():
            yield env.timeout(1.0)
            raise RuntimeError("bang")

        caught = {}

        def parent():
            try:
                yield env.process(boom())
            except RuntimeError as exc:
                caught["exc"] = str(exc)

        env.process(parent())
        env.run()
        assert caught["exc"] == "bang"

    def test_unhandled_exception_escapes_run(self):
        env = Environment()

        def boom():
            yield env.timeout(1.0)
            raise ValueError("unhandled")

        env.process(boom())
        with pytest.raises(ValueError):
            env.run()

    def test_interrupt(self):
        env = Environment()
        log = []

        def sleeper():
            try:
                yield env.timeout(100.0)
            except Interrupt as i:
                log.append((env.now, i.cause))

        def waker(victim):
            yield env.timeout(2.0)
            victim.interrupt("wake up")

        victim = env.process(sleeper())
        env.process(waker(victim))
        env.run()
        assert log == [(2.0, "wake up")]


class TestEvents:
    def test_manual_event(self):
        env = Environment()
        ev = env.event()
        got = {}

        def waiter():
            got["v"] = yield ev

        def trigger():
            yield env.timeout(5.0)
            ev.succeed("hello")

        env.process(waiter())
        env.process(trigger())
        env.run()
        assert got["v"] == "hello"

    def test_double_trigger_rejected(self):
        env = Environment()
        ev = env.event()
        ev.succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)

    def test_run_until_event_returns_value(self):
        env = Environment()

        def proc():
            yield env.timeout(3.0)
            return "done"

        assert env.run(env.process(proc())) == "done"
        assert env.now == 3.0

    def test_deadlock_detected(self):
        env = Environment()
        ev = env.event()  # nobody will trigger it

        def stuck():
            yield ev

        p = env.process(stuck())
        with pytest.raises(SimulationError):
            env.run(p)

    def test_value_before_fire_raises(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.event().value


class TestCombinators:
    def test_all_of(self):
        env = Environment()

        def proc(d, v):
            yield env.timeout(d)
            return v

        got = {}

        def parent():
            got["v"] = yield env.all_of(
                [env.process(proc(2, "a")), env.process(proc(1, "b"))]
            )

        env.process(parent())
        env.run()
        assert got["v"] == ["a", "b"]
        assert env.now == 2.0

    def test_all_of_empty(self):
        env = Environment()
        ev = env.all_of([])
        env.run()
        assert ev.processed

    def test_any_of_first_wins(self):
        env = Environment()

        def proc(d, v):
            yield env.timeout(d)
            return v

        got = {}

        def parent():
            got["v"] = yield env.any_of(
                [env.process(proc(5, "slow")), env.process(proc(1, "fast"))]
            )

        env.process(parent())
        env.run()
        assert got["v"] == (1, "fast")

    def test_any_of_empty_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            env.any_of([])


class TestDeterminism:
    def test_identical_runs_identical_traces(self):
        def build():
            env = Environment()
            trace = []

            def worker(k):
                for step in range(3):
                    yield env.timeout(0.5 * (k + 1))
                    trace.append((round(env.now, 6), k, step))

            for k in range(4):
                env.process(worker(k))
            env.run()
            return trace

        assert build() == build()
