"""TM-score machinery and the superposition search."""

import numpy as np
import pytest

from repro.cost.counters import CostCounter
from repro.geometry.transforms import RigidTransform, random_rotation
from repro.structure.synthetic import build_helix
from repro.tmalign.params import TMAlignParams, d0_from_length, d0_search_bounds, d8_cutoff
from repro.tmalign.tmscore import superposition_search, tm_score_from_distances


class TestD0:
    def test_published_formula(self):
        # d0(100) = 1.24 * 85^(1/3) - 1.8
        assert d0_from_length(100) == pytest.approx(1.24 * 85 ** (1 / 3) - 1.8)

    def test_short_chains_clamped(self):
        for n in (1, 5, 15, 21):
            assert d0_from_length(n) == 0.5

    def test_monotone_in_length(self):
        vals = [d0_from_length(n) for n in range(22, 500, 25)]
        assert all(a < b for a, b in zip(vals, vals[1:]))

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            d0_from_length(0)

    def test_search_bounds_clipped(self):
        lo, hi = d0_search_bounds(2.0)
        assert lo == 4.5
        lo, hi = d0_search_bounds(10.0)
        assert hi == 8.0

    def test_d8_grows_with_length(self):
        assert d8_cutoff(300) > d8_cutoff(50)


class TestTmScoreFromDistances:
    def test_zero_distance_is_one(self):
        d = np.zeros(10)
        assert tm_score_from_distances(d, 2.0, 10) == pytest.approx(1.0)

    def test_partial_normalisation(self):
        d = np.zeros(5)
        assert tm_score_from_distances(d, 2.0, 10) == pytest.approx(0.5)

    def test_far_pairs_contribute_little(self):
        d = np.full(10, 100.0)
        assert tm_score_from_distances(d, 2.0, 10) < 0.01

    def test_d0_scales_tolerance(self):
        d = np.full(4, 3.0)
        loose = tm_score_from_distances(d, 6.0, 4)
        tight = tm_score_from_distances(d, 1.0, 4)
        assert loose > tight

    def test_counter_charged(self):
        ctr = CostCounter()
        tm_score_from_distances(np.zeros(7), 2.0, 7, counter=ctr)
        assert ctr["score_pair"] == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            tm_score_from_distances(np.zeros(3), -1.0, 3)
        with pytest.raises(ValueError):
            tm_score_from_distances(np.zeros(3), 2.0, 0)


class TestSuperpositionSearch:
    def test_perfect_match_scores_one(self, rng):
        pts = build_helix(40)
        xf = RigidTransform(random_rotation(rng), rng.normal(size=3) * 10)
        tm, found = superposition_search(pts, xf.apply(pts), d0_from_length(40), 40)
        assert tm == pytest.approx(1.0, abs=1e-6)
        np.testing.assert_allclose(found.rotation, xf.rotation, atol=1e-5)

    def test_partial_match_found_through_fragment_seeds(self, rng):
        """Only the first half matches; fragment seeding must lock onto it."""
        n = 60
        pa = build_helix(n)
        xf = RigidTransform(random_rotation(rng), rng.normal(size=3) * 5)
        pb = xf.apply(pa).copy()
        pb[n // 2 :] += rng.normal(0, 30.0, (n - n // 2, 3))  # ruin second half
        tm, _ = superposition_search(pa, pb, d0_from_length(n), n)
        assert 0.4 < tm < 0.75  # ~half the residues superpose

    def test_score_bounded_by_one(self, rng):
        pa = rng.normal(size=(20, 3)) * 8
        pb = rng.normal(size=(20, 3)) * 8
        tm, _ = superposition_search(pa, pb, 2.0, 20)
        assert 0.0 < tm <= 1.0

    def test_returns_proper_transform(self, rng):
        pa = rng.normal(size=(15, 3)) * 5
        pb = rng.normal(size=(15, 3)) * 5
        _, xf = superposition_search(pa, pb, 2.0, 15)
        assert xf.is_proper()

    def test_at_least_as_good_as_plain_kabsch(self, rng):
        from repro.geometry.kabsch import kabsch

        pa = rng.normal(size=(25, 3)) * 6
        pb = rng.normal(size=(25, 3)) * 6
        d0 = d0_from_length(25)
        xf0 = kabsch(pa, pb)
        diff = xf0.apply(pa) - pb
        base = tm_score_from_distances(np.sqrt((diff * diff).sum(axis=1)), d0, 25)
        tm, _ = superposition_search(pa, pb, d0, 25)
        assert tm >= base - 1e-9

    def test_too_few_pairs_rejected(self, rng):
        pts = rng.normal(size=(2, 3))
        with pytest.raises(ValueError):
            superposition_search(pts, pts, 2.0, 2)

    def test_mismatched_shapes_rejected(self, rng):
        with pytest.raises(ValueError):
            superposition_search(
                rng.normal(size=(5, 3)), rng.normal(size=(6, 3)), 2.0, 5
            )

    def test_counter_accumulates(self, rng):
        pts = build_helix(30)
        ctr = CostCounter()
        superposition_search(pts, pts, 2.0, 30, counter=ctr)
        assert ctr["kabsch"] >= 1
        assert ctr["score_pair"] >= 30

    def test_seed_fraction_override_reduces_work(self):
        pts = build_helix(48)
        full, cheap = CostCounter(), CostCounter()
        superposition_search(pts, pts, 2.0, 48, counter=full)
        superposition_search(pts, pts, 2.0, 48, seed_fractions=(1,), counter=cheap)
        assert cheap["kabsch"] <= full["kabsch"]

    def test_deterministic(self, rng):
        pa = rng.normal(size=(20, 3)) * 5
        pb = rng.normal(size=(20, 3)) * 5
        tm1, xf1 = superposition_search(pa, pb, 2.0, 20)
        tm2, xf2 = superposition_search(pa, pb, 2.0, 20)
        assert tm1 == tm2
        np.testing.assert_array_equal(xf1.rotation, xf2.rotation)
