"""The shared-memory dataset plane: layout, lifecycle, cache, fallback.

The plane's contract is airtight teardown and content fidelity: an
attached view must reproduce every chain bit-for-bit, a stale or
foreign segment must refuse to attach, a dead *worker* must never
unlink the live plane under the owner, and any shared-memory failure
must degrade to the pickling path rather than error out.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import signal
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.datasets.registry import Dataset
from repro.parallel import shmplane
from repro.parallel.shmplane import (
    PLANE_CACHE_CAPACITY,
    DatasetPlane,
    PlaneUnavailable,
    ShmDataset,
    active_planes,
    plane_fingerprint,
    plane_for,
)
from repro.structure.model import Chain


def _shm_supported() -> bool:
    from multiprocessing import shared_memory

    try:
        seg = shared_memory.SharedMemory(create=True, size=16)
    except (OSError, ValueError):
        return False
    seg.close()
    seg.unlink()
    return True


pytestmark = pytest.mark.skipif(
    not _shm_supported(), reason="POSIX shared memory unavailable"
)


def _tiny_dataset(name: str = "plane-unit", n: int = 4) -> Dataset:
    rng = np.random.default_rng(hash(name) % (2**32))
    chains = []
    for k in range(n):
        length = 10 + 3 * k
        coords = np.cumsum(rng.normal(0, 1, (length, 3)), axis=0) * 2.0
        seq = "".join("ACDEFGHIKLMNPQRSTVWY"[int(x) % 20]
                      for x in rng.integers(0, 20, length))
        chains.append(Chain(f"{name}_{k}", coords, seq,
                            family="fam" if k % 2 else None))
    return Dataset(name, tuple(chains), "shmplane unit fixture")


class TestRoundTrip:
    def test_attach_reproduces_every_chain_exactly(self, ck34_mini):
        with DatasetPlane.create(ck34_mini) as plane:
            view = plane.attach()
            try:
                assert len(view) == len(ck34_mini)
                assert view.name == ck34_mini.name
                assert view.total_residues == sum(len(c) for c in ck34_mini)
                for want, got in zip(ck34_mini, view):
                    assert got.name == want.name
                    assert got.family == want.family
                    assert got.sequence == want.sequence
                    # bit equality, not tolerance: the farm's whole
                    # contract is that the plane is invisible in numbers
                    assert got.coords.tobytes() == want.coords.tobytes()
                    assert got.secondary == want.secondary
            finally:
                view.detach()

    def test_views_are_zero_copy_and_read_only(self, ck34_mini):
        with DatasetPlane.create(ck34_mini) as plane:
            view = plane.attach()
            try:
                chain = view[0]
                assert not chain.coords.flags.writeable
                assert not chain.coords.flags.owndata  # view, not copy
                with pytest.raises((ValueError, RuntimeError)):
                    chain.coords[0, 0] = 1.0
                # lazy materialization is cached
                assert view[0] is chain
            finally:
                view.detach()

    def test_by_name_and_missing_chain(self, ck34_mini):
        with DatasetPlane.create(ck34_mini) as plane:
            view = plane.attach()
            try:
                want = ck34_mini[3]
                assert view.by_name(want.name).sequence == want.sequence
                with pytest.raises(KeyError, match="no chain named"):
                    view.by_name("does-not-exist")
            finally:
                view.detach()

    def test_worker_spec_is_tiny(self, ck34_mini):
        with DatasetPlane.create(ck34_mini) as plane:
            spec = plane.worker_spec()
            assert spec[0] == "plane"
            # the whole point: initializer payload is ~100 bytes, not MBs
            assert len(pickle.dumps(spec)) < 512


class TestGenerationGuard:
    def test_fingerprint_mismatch_refuses_stale_attach(self, ck34_mini):
        with DatasetPlane.create(ck34_mini) as plane:
            with pytest.raises(PlaneUnavailable, match="stale attach"):
                ShmDataset.attach(plane.name, fingerprint="0" * 64)

    def test_foreign_segment_refused(self):
        from multiprocessing import shared_memory

        seg = shared_memory.SharedMemory(create=True, size=64)
        try:
            seg.buf[:8] = b"NOTAPLAN"
            with pytest.raises(PlaneUnavailable, match="not a dataset plane"):
                ShmDataset.attach(seg.name)
        finally:
            seg.close()
            seg.unlink()

    def test_missing_segment_raises_unavailable(self):
        with pytest.raises(PlaneUnavailable, match="cannot attach"):
            ShmDataset.attach("psc-no-such-segment")

    def test_fingerprint_keys_on_chain_names(self):
        # MODEL mode seeds jitter from chain names: same coordinates
        # under different names must not share a plane generation
        ds_a = _tiny_dataset("fpname-a")
        renamed = tuple(
            Chain(f"other_{k}", c.coords.copy(), c.sequence, family=c.family)
            for k, c in enumerate(ds_a)
        )
        ds_b = Dataset(ds_a.name, renamed, ds_a.description)
        assert plane_fingerprint(ds_a) != plane_fingerprint(ds_b)


class TestLifecycle:
    def test_unlink_is_idempotent_and_kills_attach(self):
        plane = DatasetPlane.create(_tiny_dataset("life-a"))
        name = plane.name
        assert plane.live
        plane.unlink()
        assert not plane.live
        plane.unlink()  # second call must be a silent no-op
        with pytest.raises(PlaneUnavailable):
            ShmDataset.attach(name)

    def test_context_manager_unlinks_on_exception(self):
        name = None
        with pytest.raises(RuntimeError, match="boom"):
            with DatasetPlane.create(_tiny_dataset("life-b")) as plane:
                name = plane.name
                raise RuntimeError("boom")
        with pytest.raises(PlaneUnavailable):
            ShmDataset.attach(name)

    def test_oversized_dataset_degrades_to_unavailable(self):
        ds = _tiny_dataset("life-c", n=1)
        huge = Dataset(ds.name, ds.chains, ds.description)
        real_len = Chain.__len__
        try:
            Chain.__len__ = lambda self: 2**31  # overflow the int32 table
            with pytest.raises(PlaneUnavailable, match="int32"):
                DatasetPlane.create(huge, fingerprint="f" * 64)
        finally:
            Chain.__len__ = real_len


class TestPlaneCache:
    @pytest.fixture(autouse=True)
    def _fresh_cache(self):
        shmplane.shutdown_planes()
        yield
        shmplane.shutdown_planes()

    def test_plane_for_reuses_by_fingerprint(self):
        ds = _tiny_dataset("cache-a")
        first = plane_for(ds)
        assert first is not None and first.pinned
        second = plane_for(ds)
        assert second is first
        shmplane.release(first)
        shmplane.release(second)
        assert not first.pinned
        assert first.live  # released, but kept warm in the cache

    def test_lru_eviction_spares_pinned_planes(self):
        pinned = plane_for(_tiny_dataset("cache-pin"))
        assert pinned is not None
        extras = [plane_for(_tiny_dataset(f"cache-x{k}"))
                  for k in range(PLANE_CACHE_CAPACITY + 1)]
        assert all(p is not None for p in extras)
        assert pinned.live  # oldest, but pinned: never evicted under us
        for p in extras:
            shmplane.release(p)
        shmplane.release(pinned)

    def test_evict_while_pinned_defers_unlink_to_release(self):
        plane = plane_for(_tiny_dataset("cache-doom"))
        assert plane is not None
        plane.evict()
        assert plane.live  # doomed, not dead: a drain still holds it
        shmplane.release(plane)
        assert not plane.live

    def test_active_planes_reports_cache(self):
        plane = plane_for(_tiny_dataset("cache-report"))
        assert plane is not None
        entries = {e["fingerprint"]: e for e in active_planes()}
        entry = entries[plane.fingerprint]
        assert entry["segment"] == plane.name
        assert entry["pinned"] is True
        shmplane.release(plane)

    def test_shutdown_unlinks_everything(self):
        plane = plane_for(_tiny_dataset("cache-shutdown"))
        assert plane is not None
        shmplane.shutdown_planes()
        assert not plane.live
        assert active_planes() == []

    def test_unplanable_dataset_returns_none(self, monkeypatch):
        def refuse(cls, dataset, fingerprint=None):
            raise PlaneUnavailable("no /dev/shm in this test")

        monkeypatch.setattr(DatasetPlane, "create", classmethod(refuse))
        assert plane_for(_tiny_dataset("cache-refuse")) is None


def _attach_and_die(name: str, fingerprint: str) -> None:
    """Child body: attach the plane, then die without any cleanup."""
    ShmDataset.attach(name, fingerprint=fingerprint)
    os.kill(os.getpid(), signal.SIGKILL)


class TestWorkerDeathSafety:
    def test_killed_attacher_does_not_unlink_live_plane(self, ck34_mini):
        """A SIGKILLed worker must not tear the plane down under the
        owner (the resource tracker would, if attaches were tracked)."""
        with DatasetPlane.create(ck34_mini) as plane:
            for method in ("fork", "spawn"):
                if method not in multiprocessing.get_all_start_methods():
                    continue
                ctx = multiprocessing.get_context(method)
                child = ctx.Process(
                    target=_attach_and_die,
                    args=(plane.name, plane.fingerprint),
                )
                child.start()
                child.join(timeout=60)
                assert child.exitcode == -signal.SIGKILL
                # the owner's plane must still be fully attachable
                view = plane.attach()
                try:
                    assert len(view) == len(ck34_mini)
                finally:
                    view.detach()

    def test_no_tracker_leak_warnings_on_interpreter_exit(self, tmp_path):
        """End-to-end in a fresh interpreter: create, attach from a
        killed child, unlink, exit — stderr must stay free of the
        resource tracker's 'leaked shared_memory' / KeyError noise."""
        script = tmp_path / "plane_exit_check.py"
        script.write_text(textwrap.dedent("""
            import multiprocessing, os, signal
            from repro.parallel.shmplane import DatasetPlane, ShmDataset, plane_for, release
            from tests.test_shmplane import _tiny_dataset

            def attach_and_die(name, fp):
                ShmDataset.attach(name, fingerprint=fp)
                os.kill(os.getpid(), signal.SIGKILL)

            if __name__ == "__main__":
                ds = _tiny_dataset("tracker-check")
                plane = plane_for(ds)
                assert plane is not None
                view = plane.attach()
                view.detach()
                ctx = multiprocessing.get_context(
                    "fork" if "fork" in multiprocessing.get_all_start_methods()
                    else "spawn")
                child = ctx.Process(
                    target=attach_and_die, args=(plane.name, plane.fingerprint))
                child.start()
                child.join(60)
                assert child.exitcode == -signal.SIGKILL
                release(plane)
                # second plane left for the atexit hook to reap
                leak = plane_for(_tiny_dataset("tracker-check-2"))
                assert leak is not None
                print("OK")
        """))
        env = dict(os.environ)
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (os.path.join(root, "src"), root,
                        env.get("PYTHONPATH")) if p
        )
        proc = subprocess.run(
            [sys.executable, str(script)], capture_output=True, text=True,
            env=env, timeout=180,
        )
        assert proc.returncode == 0, proc.stderr
        assert "OK" in proc.stdout
        assert "leaked" not in proc.stderr, proc.stderr
        assert "KeyError" not in proc.stderr, proc.stderr
        assert "Traceback" not in proc.stderr, proc.stderr
