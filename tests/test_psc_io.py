"""Score-table persistence."""

import os

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.psc.io import (
    read_score_table_csv,
    read_score_table_json,
    score_matrix,
    stream_score_table_csv,
    write_score_table_csv,
    write_score_table_json,
)
from repro.psc.methods import SSECompositionMethod
from repro.psc.search import all_vs_all


@pytest.fixture(scope="module")
def table():
    ds = load_dataset("ck34-mini")
    return ds, all_vs_all(ds, method=SSECompositionMethod())


class TestCsvRoundTrip:
    def test_roundtrip(self, table, tmp_path):
        ds, tab = table
        path = tmp_path / "scores.csv"
        write_score_table_csv(tab, path)
        back = read_score_table_csv(path)
        assert set(back) == set(tab)
        for pair in tab:
            assert back[pair]["similarity"] == pytest.approx(
                tab[pair]["similarity"]
            )

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_score_table_csv({}, tmp_path / "x.csv")

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("foo,bar\n1,2\n")
        with pytest.raises(ValueError):
            read_score_table_csv(path)


class TestStreamedCsv:
    def test_matches_bulk_writer_bytes(self, table, tmp_path):
        ds, tab = table
        bulk = tmp_path / "bulk.csv"
        streamed = tmp_path / "streamed.csv"
        write_score_table_csv(tab, bulk)
        # the bulk writer sorts pairs; feed the same order to the stream
        rows = ((a, b, tab[(a, b)]) for a, b in sorted(tab))
        assert stream_score_table_csv(rows, streamed) == len(tab)
        assert streamed.read_bytes() == bulk.read_bytes()

    def test_rows_stream_to_temp_not_a_table_in_memory(self, tmp_path):
        # rows are written (via the temp file) as the producer yields
        # them — proof nothing is being buffered into a table.  The
        # producer itself observes the temp file growing mid-stream.
        path = tmp_path / "grow.csv"
        observed = []

        def rows():
            yield "a", "b", {"s": 1.0}
            yield "a", "c", {"s": 2.0}
            tmp = tmp_path / f"grow.csv.tmp.{os.getpid()}"
            observed.append((tmp.exists(), path.exists()))

        assert stream_score_table_csv(rows(), path) == 2
        # mid-stream the temp file existed and the destination did not:
        # rows go straight to disk, the rename happens only at the end
        assert observed == [(True, False)]
        assert path.exists()
        assert list(tmp_path.glob("*.tmp.*")) == []

    def test_dead_producer_leaves_no_partial_table(self, tmp_path):
        # the atomic contract: a crash mid-stream never leaves a
        # truncated CSV at the destination, and a pre-existing table
        # there survives untouched
        path = tmp_path / "partial.csv"
        path.write_text("chain_a,chain_b,s\nold,row,0.5\n")

        def rows():
            yield "a", "b", {"s": 1.0}
            yield "a", "c", {"s": 2.0}
            raise RuntimeError("producer died")

        with pytest.raises(RuntimeError, match="producer died"):
            stream_score_table_csv(rows(), path)
        assert path.read_text() == "chain_a,chain_b,s\nold,row,0.5\n"
        assert list(tmp_path.glob("*.tmp.*")) == []  # temp cleaned up

    def test_roundtrips_through_reader(self, tmp_path):
        path = tmp_path / "s.csv"
        rows = [("a", "b", {"x": 0.5, "y": 1.5}), ("a", "c", {"x": 0.25, "y": 2.5})]
        assert stream_score_table_csv(iter(rows), path) == 2
        back = read_score_table_csv(path)
        assert back[("a", "b")] == {"x": 0.5, "y": 1.5}
        assert back[("a", "c")] == {"x": 0.25, "y": 2.5}

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            stream_score_table_csv(iter(()), tmp_path / "x.csv")

    def test_inconsistent_keys_rejected(self, tmp_path):
        rows = [("a", "b", {"s": 1.0}), ("a", "c", {"t": 2.0})]
        with pytest.raises(ValueError, match="score keys"):
            stream_score_table_csv(iter(rows), tmp_path / "x.csv")


class TestJsonRoundTrip:
    def test_roundtrip(self, table, tmp_path):
        ds, tab = table
        path = tmp_path / "scores.json"
        write_score_table_json(tab, path)
        back = read_score_table_json(path)
        assert back.keys() == dict(tab).keys()
        some_pair = next(iter(tab))
        assert back[some_pair] == pytest.approx(dict(tab[some_pair]))


class TestScoreMatrix:
    def test_shape_and_symmetry(self, table):
        ds, tab = table
        mat, names = score_matrix(tab, "similarity", dataset=ds)
        assert mat.shape == (len(ds), len(ds))
        assert names == [c.name for c in ds]
        np.testing.assert_allclose(mat, mat.T)

    def test_diagonal_filled(self, table):
        ds, tab = table
        mat, _ = score_matrix(tab, "similarity", dataset=ds, diagonal=1.0)
        np.testing.assert_allclose(np.diag(mat), 1.0)

    def test_all_offdiagonal_present(self, table):
        ds, tab = table
        mat, _ = score_matrix(tab, "similarity", dataset=ds)
        assert not np.isnan(mat).any()

    def test_inferred_name_order(self, table):
        _, tab = table
        mat, names = score_matrix(tab, "similarity")
        assert names == sorted(names)

    def test_unknown_pair_rejected(self):
        with pytest.raises(KeyError):
            score_matrix({("x", "y"): {"s": 1.0}}, "s", names=["x"])
