"""Score-table persistence."""

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.psc.io import (
    read_score_table_csv,
    read_score_table_json,
    score_matrix,
    write_score_table_csv,
    write_score_table_json,
)
from repro.psc.methods import SSECompositionMethod
from repro.psc.search import all_vs_all


@pytest.fixture(scope="module")
def table():
    ds = load_dataset("ck34-mini")
    return ds, all_vs_all(ds, method=SSECompositionMethod())


class TestCsvRoundTrip:
    def test_roundtrip(self, table, tmp_path):
        ds, tab = table
        path = tmp_path / "scores.csv"
        write_score_table_csv(tab, path)
        back = read_score_table_csv(path)
        assert set(back) == set(tab)
        for pair in tab:
            assert back[pair]["similarity"] == pytest.approx(
                tab[pair]["similarity"]
            )

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_score_table_csv({}, tmp_path / "x.csv")

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("foo,bar\n1,2\n")
        with pytest.raises(ValueError):
            read_score_table_csv(path)


class TestJsonRoundTrip:
    def test_roundtrip(self, table, tmp_path):
        ds, tab = table
        path = tmp_path / "scores.json"
        write_score_table_json(tab, path)
        back = read_score_table_json(path)
        assert back.keys() == dict(tab).keys()
        some_pair = next(iter(tab))
        assert back[some_pair] == pytest.approx(dict(tab[some_pair]))


class TestScoreMatrix:
    def test_shape_and_symmetry(self, table):
        ds, tab = table
        mat, names = score_matrix(tab, "similarity", dataset=ds)
        assert mat.shape == (len(ds), len(ds))
        assert names == [c.name for c in ds]
        np.testing.assert_allclose(mat, mat.T)

    def test_diagonal_filled(self, table):
        ds, tab = table
        mat, _ = score_matrix(tab, "similarity", dataset=ds, diagonal=1.0)
        np.testing.assert_allclose(np.diag(mat), 1.0)

    def test_all_offdiagonal_present(self, table):
        ds, tab = table
        mat, _ = score_matrix(tab, "similarity", dataset=ds)
        assert not np.isnan(mat).any()

    def test_inferred_name_order(self, table):
        _, tab = table
        mat, names = score_matrix(tab, "similarity")
        assert names == sorted(names)

    def test_unknown_pair_rejected(self):
        with pytest.raises(KeyError):
            score_matrix({("x", "y"): {"s": 1.0}}, "s", names=["x"])
