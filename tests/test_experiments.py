"""Experiment harnesses: shape assertions against the paper's claims.

These run the quick slave grid on the mini/real datasets in model mode,
checking the *relationships* the paper reports (who wins, monotonicity,
approximate factors) rather than exact numbers.
"""

import pytest

from repro.experiments.ablations import (
    run_ablation_balancing,
    run_ablation_hierarchy,
    run_ablation_mcpsc,
)
from repro.experiments.common import (
    SLAVE_GRID_FULL,
    SLAVE_GRID_QUICK,
    ascii_plot,
    render_table,
)
from repro.experiments.exp1 import run_exp1
from repro.experiments.exp2 import run_exp2
from repro.experiments.table1 import run_table1
from repro.experiments.table3 import run_table3
from repro.experiments.table5 import run_table5


class TestCommon:
    def test_grids(self):
        assert len(SLAVE_GRID_FULL) == 24
        assert SLAVE_GRID_FULL[0] == 1 and SLAVE_GRID_FULL[-1] == 47
        assert set(SLAVE_GRID_QUICK) <= set(SLAVE_GRID_FULL)

    def test_render_table_alignment(self):
        text = render_table(("a", "bb"), [(1, 2.5), (10, 0.25)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(l) == len(lines[0]) for l in lines)

    def test_ascii_plot_runs(self):
        out = ascii_plot({"s": [(1, 10.0), (2, 100.0)]}, logy=True)
        assert "legend" in out

    def test_ascii_plot_rejects_nonpositive_log(self):
        with pytest.raises(ValueError):
            ascii_plot({"s": [(1, 0.0)]}, logy=True)


class TestTable1:
    def test_mentions_key_features(self):
        text = run_table1().to_text()
        assert "6x4 mesh" in text
        assert "48 cores" in text
        assert "16KB" in text
        assert "4 iMCs" in text


class TestTable3:
    def test_reproduces_paper_within_tolerance(self):
        res = run_table3()
        for row in res.rows:
            # columns: cpu, ck34, ck34 paper, rs119, rs119 paper
            assert row[1] == pytest.approx(row[2], rel=0.02)
            assert row[3] == pytest.approx(row[4], rel=0.02)

    def test_amd_faster_than_p54c(self):
        res = run_table3()
        amd = next(r for r in res.rows if "AMD" in r[0])
        p54c = next(r for r in res.rows if "P54C" in r[0])
        assert amd[1] < p54c[1]


class TestExp1:
    @pytest.fixture(scope="class")
    def result(self):
        return run_exp1(dataset="ck34", slave_counts=SLAVE_GRID_QUICK)

    def test_rckalign_beats_distributed_at_every_count(self, result):
        for row in result.rows:
            _, rck, _, dist, _ = row
            assert rck < dist

    def test_advantage_factor_about_two_at_full_chip(self, result):
        last = result.rows[-1]
        assert last[0] == 47
        factor = last[3] / last[1]
        assert 1.6 < factor < 2.8  # paper: 120/56 = 2.14

    def test_both_columns_monotone_decreasing(self, result):
        rck = [r[1] for r in result.rows]
        dist = [r[3] for r in result.rows]
        assert all(a > b for a, b in zip(rck, rck[1:]))
        assert all(a > b for a, b in zip(dist, dist[1:]))

    def test_close_to_paper_endpoints(self, result):
        first, last = result.rows[0], result.rows[-1]
        assert first[1] == pytest.approx(first[2], rel=0.05)  # rck @1
        assert last[1] == pytest.approx(last[2], rel=0.10)  # rck @47
        assert first[3] == pytest.approx(first[4], rel=0.05)  # dist @1
        assert last[3] == pytest.approx(last[4], rel=0.10)  # dist @47

    def test_figure5_series_attached(self, result):
        assert set(result.extras["figure5"]) == {"rckAlign", "distributed"}


class TestExp2:
    @pytest.fixture(scope="class")
    def result(self):
        return run_exp2(datasets=("ck34", "rs119"), slave_counts=(1, 11, 23, 47))

    def test_speedup_near_linear(self, result):
        for row in result.rows:
            n = row[0]
            ck_speedup = row[1]
            assert ck_speedup == pytest.approx(n, rel=0.30)

    def test_speedups_match_paper_within_15pct(self, result):
        for row in result.rows:
            ck_speedup, ck_paper = row[1], row[2]
            rs_speedup, rs_paper = row[4], row[5]
            assert ck_speedup == pytest.approx(ck_paper, rel=0.15)
            assert rs_speedup == pytest.approx(rs_paper, rel=0.15)

    def test_larger_dataset_scales_better(self, result):
        """Paper: 'the larger the dataset the higher the speedup'."""
        last = result.rows[-1]
        ck_speedup, rs_speedup = last[1], last[4]
        assert rs_speedup > ck_speedup

    def test_one_slave_speedup_is_one(self, result):
        first = result.rows[0]
        assert first[1] == pytest.approx(1.0, abs=0.05)
        assert first[4] == pytest.approx(1.0, abs=0.05)


class TestTable5:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table5(datasets=("ck34", "rs119"))

    def test_headline_speedups(self, result):
        """~11x over the AMD and ~44x over the P54C on RS119."""
        rs = next(r for r in result.rows if r[0] == "rs119")
        vs_amd, vs_p54c = rs[4], rs[5]
        assert vs_amd == pytest.approx(11.4, rel=0.2)
        assert vs_p54c == pytest.approx(44.7, rel=0.15)

    def test_ordering_amd_p54c_rck(self, result):
        for row in result.rows:
            _, amd, p54c, rck, *_ = row
            assert rck < amd < p54c


class TestAblations:
    def test_balancing_none_is_worst_or_close(self):
        res = run_ablation_balancing(dataset="ck34", n_slaves=47)
        by_name = {r[0]: r[1] for r in res.rows}
        assert by_name["longest_first"] <= by_name["none"] * 1.02

    def test_hierarchy_rows_present(self):
        res = run_ablation_hierarchy(dataset="ck34-mini", n_workers=10,
                                     submaster_counts=(2,))
        assert len(res.rows) == 2

    def test_mcpsc_work_beats_even(self):
        res = run_ablation_mcpsc(dataset="ck34-mini", n_slaves=9)
        by_name = {r[0]: r[2] for r in res.rows}
        assert by_name["work"] < by_name["even"]


class TestCsvExport:
    def test_to_csv_roundtrips_columns(self, tmp_path):
        res = run_table1()
        path = tmp_path / "t1.csv"
        text = res.to_csv(path)
        assert path.exists()
        first_line = text.splitlines()[0]
        assert first_line == ",".join(res.columns)
        assert len(text.splitlines()) == 1 + len(res.rows)
