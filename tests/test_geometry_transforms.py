"""Unit + property tests for rigid transforms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.transforms import (
    RigidTransform,
    random_rotation,
    rotation_about_axis,
)


class TestRigidTransform:
    def test_identity_is_noop(self, rng):
        pts = rng.normal(size=(10, 3))
        out = RigidTransform.identity().apply(pts)
        np.testing.assert_allclose(out, pts)

    def test_apply_single_point(self):
        xf = RigidTransform(np.eye(3), np.array([1.0, 2.0, 3.0]))
        np.testing.assert_allclose(xf.apply(np.zeros(3)), [1.0, 2.0, 3.0])

    def test_translation_applied_after_rotation(self):
        rot = rotation_about_axis([0, 0, 1], np.pi / 2)
        xf = RigidTransform(rot, np.array([1.0, 0.0, 0.0]))
        out = xf.apply(np.array([[1.0, 0.0, 0.0]]))
        np.testing.assert_allclose(out, [[1.0, 1.0, 0.0]], atol=1e-12)

    def test_compose_matches_sequential_application(self, rng):
        a = RigidTransform(random_rotation(rng), rng.normal(size=3))
        b = RigidTransform(random_rotation(rng), rng.normal(size=3))
        pts = rng.normal(size=(6, 3))
        np.testing.assert_allclose(
            a.compose(b).apply(pts), a.apply(b.apply(pts)), atol=1e-10
        )

    def test_inverse_roundtrip(self, rng):
        xf = RigidTransform(random_rotation(rng), rng.normal(size=3))
        pts = rng.normal(size=(8, 3))
        np.testing.assert_allclose(xf.inverse().apply(xf.apply(pts)), pts, atol=1e-10)

    def test_is_proper_true_for_rotation(self, rng):
        assert RigidTransform(random_rotation(rng), np.zeros(3)).is_proper()

    def test_is_proper_false_for_reflection(self):
        refl = np.diag([1.0, 1.0, -1.0])
        assert not RigidTransform(refl, np.zeros(3)).is_proper()

    def test_bad_rotation_shape_rejected(self):
        with pytest.raises(ValueError):
            RigidTransform(np.eye(2), np.zeros(3))

    def test_bad_translation_shape_rejected(self):
        with pytest.raises(ValueError):
            RigidTransform(np.eye(3), np.zeros(2))

    def test_immutable(self):
        xf = RigidTransform.identity()
        with pytest.raises(AttributeError):
            xf.rotation = np.eye(3)


class TestRotationAboutAxis:
    def test_zero_angle_is_identity(self):
        np.testing.assert_allclose(
            rotation_about_axis([1, 1, 1], 0.0), np.eye(3), atol=1e-12
        )

    def test_quarter_turn_about_z(self):
        rot = rotation_about_axis([0, 0, 1], np.pi / 2)
        np.testing.assert_allclose(rot @ [1, 0, 0], [0, 1, 0], atol=1e-12)

    def test_axis_is_fixed(self, rng):
        axis = rng.normal(size=3)
        rot = rotation_about_axis(axis, 1.234)
        unit = axis / np.linalg.norm(axis)
        np.testing.assert_allclose(rot @ unit, unit, atol=1e-12)

    def test_full_turn_is_identity(self):
        rot = rotation_about_axis([1, 2, 3], 2 * np.pi)
        np.testing.assert_allclose(rot, np.eye(3), atol=1e-12)

    def test_zero_axis_rejected(self):
        with pytest.raises(ValueError):
            rotation_about_axis([0, 0, 0], 1.0)

    @given(st.floats(-np.pi, np.pi))
    @settings(max_examples=30, deadline=None)
    def test_always_proper_rotation(self, angle):
        rot = rotation_about_axis([1.0, -2.0, 0.5], angle)
        assert np.allclose(rot @ rot.T, np.eye(3), atol=1e-10)
        assert np.isclose(np.linalg.det(rot), 1.0, atol=1e-10)


class TestRandomRotation:
    def test_proper(self, rng):
        for _ in range(20):
            rot = random_rotation(rng)
            assert np.allclose(rot @ rot.T, np.eye(3), atol=1e-10)
            assert np.isclose(np.linalg.det(rot), 1.0)

    def test_deterministic_given_seed(self):
        a = random_rotation(np.random.default_rng(5))
        b = random_rotation(np.random.default_rng(5))
        np.testing.assert_array_equal(a, b)
