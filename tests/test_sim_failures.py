"""Failure propagation and error injection through the stack."""

import pytest

from repro.core.skeletons import FarmConfig, Job, SkeletonRuntime
from repro.scc.machine import SccMachine
from repro.scc.rcce import Rcce
from repro.sim.engine import Environment, SimulationError


class TestCombinatorFailures:
    def test_all_of_propagates_first_failure(self):
        env = Environment()

        def good():
            yield env.timeout(1.0)
            return "ok"

        def bad():
            yield env.timeout(0.5)
            raise RuntimeError("child died")

        caught = {}

        def parent():
            try:
                yield env.all_of([env.process(good()), env.process(bad())])
            except RuntimeError as exc:
                caught["msg"] = str(exc)

        env.process(parent())
        env.run()
        assert caught["msg"] == "child died"

    def test_any_of_failure_propagates(self):
        env = Environment()

        def bad():
            yield env.timeout(0.5)
            raise ValueError("boom")

        def slow():
            yield env.timeout(10.0)

        caught = {}

        def parent():
            try:
                yield env.any_of([env.process(bad()), env.process(slow())])
            except ValueError:
                caught["ok"] = True

        env.process(parent())
        env.run()
        assert caught.get("ok")


class TestFarmFailureInjection:
    def test_crashing_handler_surfaces_at_run(self):
        """A slave whose job function raises must abort the simulation
        loudly, not hang or silently drop the job."""
        m = SccMachine()
        rcce = Rcce(m)
        rt = SkeletonRuntime(
            m, rcce, 0, [1, 2],
            FarmConfig(master_job_cycles=1e3, master_result_cycles=1e3,
                       slave_boot_seconds=0.0),
        )

        def master(core):
            yield from rt.farm(core, [Job(k, k, 64) for k in range(4)])

        def flaky_handler(core, payload):
            yield from core.compute_cycles(1000)
            if payload == 2:
                raise RuntimeError("corrupt structure data")
            return payload, 64

        m.spawn(0, master)
        for s in rt.slave_ids:
            m.spawn(s, rt.slave_loop, flaky_handler)
        with pytest.raises((RuntimeError, SimulationError)):
            m.run()

    def test_missing_slave_program_deadlocks_detectably(self):
        """Forgetting to spawn a slave's loop stalls FARM in
        check_ready; the kernel reports the deadlock instead of
        spinning."""
        m = SccMachine()
        rcce = Rcce(m)
        rt = SkeletonRuntime(
            m, rcce, 0, [1, 2],
            FarmConfig(slave_boot_seconds=0.0),
        )

        def master(core):
            yield from rt.farm(core, [Job(0, 0, 64)])

        done = m.spawn(0, master)
        m.spawn(1, rt.slave_loop, lambda core, p: (yield core.env.timeout(0)) or (p, 64))
        # slave 2 never spawned
        with pytest.raises(SimulationError):
            m.env.run(done)


class TestEvaluatorErrors:
    def test_model_mode_unknown_method_counts(self):
        """A PSC method returning an unknown op class must fail fast."""
        from repro.cost.counters import CostCounter
        from repro.datasets import load_dataset
        from repro.psc.base import PSCMethod
        from repro.psc.evaluator import JobEvaluator

        class BadMethod(PSCMethod):
            name = "bad"
            score_key = "s"

            def compare(self, a, b, counter):
                return {"s": 1.0}

            def estimate_counts(self, la, lb, pair_key=None):
                return {"quantum_flops": 1e9}

        ds = load_dataset("ck34-mini")
        ev = JobEvaluator(ds, BadMethod(), "model")
        with pytest.raises(KeyError):
            ev.evaluate(0, 1)
