"""Pair cost model: fit quality, determinism, jitter."""

import numpy as np
import pytest

from repro.cost.counters import CostCounter
from repro.cost.model import (
    DEFAULT_PAIR_COST_MODEL,
    PairCostModel,
    estimate_op_counts,
    fit_pair_cost_model,
    pair_seconds,
)
from repro.cost.cpu import P54C_800
from repro.tmalign import tm_align


class TestDefaults:
    def test_counts_cover_all_classes(self):
        counts = estimate_op_counts(100, 150)
        from repro.cost.counters import OP_CLASSES

        assert set(counts) == set(OP_CLASSES)

    def test_counts_nonnegative(self):
        for la, lb in ((60, 60), (60, 450), (450, 450), (100, 250)):
            assert all(v >= 0 for v in estimate_op_counts(la, lb).values())

    def test_bigger_pairs_cost_more(self):
        small = P54C_800.cycles(estimate_op_counts(80, 80))
        big = P54C_800.cycles(estimate_op_counts(300, 300))
        assert big > small
        # the scaling work (excluding the flat per-pair overhead) grows
        # superlinearly with chain length
        small_work = {k: v for k, v in estimate_op_counts(80, 80).items() if k != "align_fixed"}
        big_work = {k: v for k, v in estimate_op_counts(300, 300).items() if k != "align_fixed"}
        assert P54C_800.cycles(big_work) > 4 * P54C_800.cycles(small_work)

    def test_sec_res_exact(self):
        assert estimate_op_counts(77, 123)["sec_res"] == 200

    def test_align_fixed_exactly_one(self):
        assert estimate_op_counts(100, 100)["align_fixed"] == 1.0


class TestJitter:
    def test_deterministic_per_key(self):
        a = estimate_op_counts(100, 150, "x|y")
        b = estimate_op_counts(100, 150, "x|y")
        assert a == b

    def test_different_keys_differ(self):
        a = estimate_op_counts(100, 150, "x|y")["dp_cell"]
        b = estimate_op_counts(100, 150, "x|z")["dp_cell"]
        assert a != b

    def test_jitter_bounded(self):
        base = estimate_op_counts(100, 150)["dp_cell"]
        for key in (f"k{i}" for i in range(50)):
            val = estimate_op_counts(100, 150, key)["dp_cell"]
            assert abs(val / base - 1.0) <= DEFAULT_PAIR_COST_MODEL.jitter + 1e-9

    def test_no_key_means_no_jitter(self):
        noiseless = estimate_op_counts(100, 150)
        model = PairCostModel(DEFAULT_PAIR_COST_MODEL.coeffs, jitter=0.0)
        assert model.counts(100, 150, "any|key") == pytest.approx(noiseless)


class TestFitQuality:
    def test_default_model_tracks_measured_counts(self, ck34):
        """The baked coefficients must predict real op counts within a
        reasonable envelope on fresh pairs."""
        rng = np.random.default_rng(99)
        rel_errs = []
        for _ in range(8):
            i, j = sorted(rng.choice(len(ck34), 2, replace=False))
            ctr = CostCounter()
            tm_align(ck34[int(i)], ck34[int(j)], counter=ctr)
            est = estimate_op_counts(len(ck34[int(i)]), len(ck34[int(j)]))
            for op in ("dp_cell", "score_pair"):
                rel_errs.append(abs(est[op] - ctr[op]) / ctr[op])
        # per-pair refinement-iteration counts genuinely vary (family
        # pairs converge early), so individual errors can be large; the
        # model only needs to be centred
        assert np.median(rel_errs) < 0.6

    def test_refit_roundtrip(self, ck34_mini):
        samples = []
        for i in range(len(ck34_mini)):
            for j in range(i + 1, min(i + 3, len(ck34_mini))):
                ctr = CostCounter()
                tm_align(ck34_mini[i], ck34_mini[j], counter=ctr)
                samples.append((len(ck34_mini[i]), len(ck34_mini[j]), ctr))
        model = fit_pair_cost_model(samples)
        # in-sample prediction should be decent for the dominant class
        errs = [
            abs(model.counts(la, lb)["dp_cell"] - ctr["dp_cell"]) / ctr["dp_cell"]
            for la, lb, ctr in samples
        ]
        assert np.median(errs) < 0.35

    def test_fit_needs_enough_samples(self):
        with pytest.raises(ValueError):
            fit_pair_cost_model([(10, 10, CostCounter())])


class TestValidation:
    def test_missing_class_rejected(self):
        with pytest.raises(ValueError):
            PairCostModel(coeffs={"dp_cell": (0, 0, 1)})

    def test_bad_jitter_rejected(self):
        with pytest.raises(ValueError):
            PairCostModel(DEFAULT_PAIR_COST_MODEL.coeffs, jitter=1.5)

    def test_pair_seconds_positive(self):
        assert pair_seconds(P54C_800, 150, 150) > 0
