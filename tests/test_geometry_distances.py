"""Distance-geometry helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.distances import (
    contact_map,
    cross_distances,
    pairwise_distances,
    radius_of_gyration,
    sequential_distances,
)


class TestPairwiseDistances:
    def test_matches_manual(self):
        pts = np.array([[0.0, 0, 0], [3.0, 4.0, 0], [0, 0, 1.0]])
        d = pairwise_distances(pts)
        assert np.isclose(d[0, 1], 5.0)
        assert np.isclose(d[0, 2], 1.0)

    def test_symmetric_zero_diagonal(self, rng):
        pts = rng.normal(size=(9, 3))
        d = pairwise_distances(pts)
        np.testing.assert_allclose(d, d.T)
        np.testing.assert_allclose(np.diag(d), 0.0)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            pairwise_distances(np.zeros((4, 2)))


class TestCrossDistances:
    def test_matches_pairwise_on_same_set(self, rng):
        pts = rng.normal(size=(7, 3))
        np.testing.assert_allclose(
            cross_distances(pts, pts), pairwise_distances(pts), atol=1e-8
        )

    def test_shape(self, rng):
        d = cross_distances(rng.normal(size=(4, 3)), rng.normal(size=(6, 3)))
        assert d.shape == (4, 6)

    def test_no_negative_under_cancellation(self):
        # identical large-coordinate points stress the expanded formula
        pts = np.full((3, 3), 1e6)
        d = cross_distances(pts, pts)
        assert (d >= 0).all()

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_agrees_with_direct_formula(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(5, 3)) * 10
        b = rng.normal(size=(4, 3)) * 10
        direct = np.linalg.norm(a[:, None, :] - b[None, :, :], axis=-1)
        np.testing.assert_allclose(cross_distances(a, b), direct, atol=1e-7)


class TestContactMap:
    def test_diagonal_excluded(self, rng):
        pts = rng.normal(size=(6, 3))
        cm = contact_map(pts, cutoff=100.0)
        assert not cm.diagonal().any()

    def test_cutoff_respected(self):
        pts = np.array([[0.0, 0, 0], [0, 0, 7.0], [0, 0, 9.0]])
        cm = contact_map(pts, cutoff=8.0)
        assert cm[0, 1] and not cm[0, 2] and cm[1, 2]


class TestRadiusOfGyration:
    def test_zero_for_coincident_points(self):
        assert radius_of_gyration(np.ones((5, 3))) == 0.0

    def test_translation_invariant(self, rng):
        pts = rng.normal(size=(11, 3))
        assert np.isclose(
            radius_of_gyration(pts), radius_of_gyration(pts + 100.0), atol=1e-9
        )

    def test_known_value(self):
        pts = np.array([[1.0, 0, 0], [-1.0, 0, 0]])
        assert np.isclose(radius_of_gyration(pts), 1.0)


class TestSequentialDistances:
    def test_consecutive(self):
        pts = np.array([[0.0, 0, 0], [1.0, 0, 0], [1.0, 1.0, 0]])
        np.testing.assert_allclose(sequential_distances(pts), [1.0, 1.0])

    def test_offset_two(self):
        pts = np.array([[0.0, 0, 0], [1.0, 0, 0], [2.0, 0, 0]])
        np.testing.assert_allclose(sequential_distances(pts, offset=2), [2.0])

    def test_offset_out_of_range(self):
        with pytest.raises(ValueError):
            sequential_distances(np.zeros((3, 3)), offset=3)
