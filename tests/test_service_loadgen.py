"""Open-loop load-generator tests: plan determinism, live runs, stats."""

import asyncio

import pytest

from repro.service import PSCService, ServiceConfig
from repro.service.loadgen import LoadgenConfig, generate_plan, run_load_async
from repro.service.metrics import percentile

NAMES = [f"chain_{i:02d}" for i in range(10)]


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 0.5) == 0.0

    def test_extremes_are_min_and_max(self):
        samples = [5.0, 1.0, 9.0, 3.0]
        assert percentile(samples, 0.0) == 1.0
        assert percentile(samples, 1.0) == 9.0

    def test_median_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 0.5) == 2.5

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)


class TestPlan:
    def test_same_seed_same_plan(self):
        config = LoadgenConfig(rate=50.0, duration=2.0, seed=7)
        assert generate_plan(NAMES, config) == generate_plan(NAMES, config)

    def test_different_seed_different_plan(self):
        a = generate_plan(NAMES, LoadgenConfig(rate=50.0, duration=2.0, seed=1))
        b = generate_plan(NAMES, LoadgenConfig(rate=50.0, duration=2.0, seed=2))
        assert a != b

    def test_offsets_increase_and_stay_inside_duration(self):
        plan = generate_plan(NAMES, LoadgenConfig(rate=80.0, duration=1.5))
        offsets = [offset for offset, _payload in plan]
        assert offsets == sorted(offsets)
        assert all(0.0 < offset < 1.5 for offset in offsets)

    def test_arrival_count_tracks_the_rate(self):
        plan = generate_plan(NAMES, LoadgenConfig(rate=100.0, duration=4.0))
        # Poisson(400): very loose 5-sigma-ish bounds
        assert 280 <= len(plan) <= 520

    def test_align_payloads_draw_distinct_pairs(self):
        plan = generate_plan(NAMES, LoadgenConfig(rate=50.0, duration=1.0))
        for _offset, payload in plan:
            assert payload["op"] == "align"
            assert payload["a"] != payload["b"]
            assert {payload["a"], payload["b"]} <= set(NAMES)

    def test_search_payloads(self):
        plan = generate_plan(
            NAMES, LoadgenConfig(rate=50.0, duration=1.0, op="search", top=3)
        )
        assert all(p["op"] == "search" and p["top"] == 3 for _t, p in plan)

    def test_too_few_names_raises(self):
        with pytest.raises(ValueError):
            generate_plan(["only"], LoadgenConfig())

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rate": 0.0},
            {"duration": 0.0},
            {"clients": 0},
            {"op": "bogus"},
        ],
    )
    def test_config_validation(self, kwargs):
        with pytest.raises(ValueError):
            LoadgenConfig(**kwargs)


class TestLiveRun:
    def test_summary_accounts_for_every_offered_request(self):
        config = ServiceConfig(dataset="ck34-mini", port=0, batch_window=0.001)
        names = [f"ck_globin_{i:02d}" for i in range(8)]

        async def main():
            async with PSCService(config) as service:
                load = LoadgenConfig(
                    host=service.host,
                    port=service.port,
                    rate=60.0,
                    duration=0.8,
                    clients=3,
                    method="sse_composition",
                    seed=42,
                )
                plan = generate_plan(names, load)
                summary = await run_load_async(load, plan)
                return plan, summary

        plan, summary = asyncio.run(main())
        assert summary["offered"] == len(plan)
        accounted = (
            summary["ok"]
            + summary["shed"]
            + summary["errors"]
            + summary["timeouts"]
        )
        assert accounted == summary["offered"]
        assert summary["ok"] > 0
        assert summary["throughput_rps"] > 0
        assert 0.0 <= summary["shed_rate"] <= 1.0
        assert 0.0 <= summary["cache_hit_ratio"] <= 1.0
        lat = summary["latency_ms"]
        assert 0.0 < lat["p50"] <= lat["p99"] <= lat["max"]

    def test_overload_is_counted_as_shed_not_error(self):
        # one job admitted at a time and a per-batch delay: the open-loop
        # burst must overrun the queue and be shed with typed replies
        config = ServiceConfig(
            dataset="ck34-mini",
            port=0,
            queue_limit=1,
            max_batch=1,
            batch_window=0.001,
            eval_delay=0.05,
        )
        names = [f"ck_globin_{i:02d}" for i in range(8)]

        async def main():
            async with PSCService(config) as service:
                load = LoadgenConfig(
                    host=service.host,
                    port=service.port,
                    rate=120.0,
                    duration=0.5,
                    clients=4,
                    method="sse_composition",
                    seed=7,
                )
                plan = generate_plan(names, load)
                return await run_load_async(load, plan)

        summary = asyncio.run(main())
        assert summary["shed"] > 0
        assert summary["errors"] == 0
        assert summary["shed_rate"] > 0
