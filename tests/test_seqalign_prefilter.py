"""Batched banded Smith-Waterman prefilter vs its scalar oracle."""

from contextlib import contextmanager

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.seqalign.prefilter as prefilter
from repro.seqalign.matrices import SS_ORDER
from repro.seqalign.prefilter import (
    BatchedSW,
    PrefilterConfig,
    SequencePrefilter,
    sw_score_reference,
)

AA = "ACDEFGHIKLMNPQRSTVWY"

aa_seq = st.text(alphabet=AA, min_size=1, max_size=40)
ss_seq = st.text(alphabet=SS_ORDER, min_size=1, max_size=40)


@contextmanager
def numpy_path():
    """Force the NumPy lockstep fallback regardless of the native .so."""
    saved = prefilter._NATIVE_SW
    prefilter._NATIVE_SW = None
    try:
        yield
    finally:
        prefilter._NATIVE_SW = saved


def both_paths(fn):
    """Run an assertion under the current kernel AND the NumPy fallback."""
    fn()
    with numpy_path():
        fn()


class TestBatchedVsScalar:
    @settings(max_examples=25, deadline=None)
    @given(query=aa_seq, corpus=st.lists(aa_seq, min_size=1, max_size=6))
    def test_matches_scalar_reference(self, query, corpus):
        def check():
            batch = BatchedSW(corpus)
            got = batch.scores(query)
            want = [sw_score_reference(query, c) for c in corpus]
            assert got.tolist() == want

        both_paths(check)

    def test_length_one_sequences(self):
        def check():
            batch = BatchedSW(["A", "W", "AW"])
            got = batch.scores("A")
            want = [sw_score_reference("A", c) for c in ("A", "W", "AW")]
            assert got.tolist() == want
            assert got[0] == 4.0  # BLOSUM62 A:A

        both_paths(check)

    def test_identical_sequences_score_self_alignment(self):
        seq = "MKVLAAGITGHHEW"
        def check():
            got = BatchedSW([seq]).scores(seq)
            assert got[0] == sw_score_reference(seq, seq)
            assert got[0] > 0

        both_paths(check)

    def test_disjoint_alphabet_floors_at_zero(self):
        # every A:W cell is negative, so local alignment floors at 0
        def check():
            got = BatchedSW(["WWWWWW", "W"]).scores("AAAA")
            assert got.tolist() == [0.0, 0.0]

        both_paths(check)

    def test_narrow_band_restricts_alignment(self):
        # with band 1 the DP cannot reach a far-off-diagonal match
        a, b = "AAAAAAAAAAWA", "WAAAAAAAAAAA"
        def check():
            got = BatchedSW([b], band_width=1).scores(a)
            assert got[0] == sw_score_reference(a, b, band_width=1)

        both_paths(check)

    def test_mixed_lengths_pad_safely(self):
        corpus = ["A", "MKVLAAGITGHHEW", "GG", "MKVL"]
        def check():
            got = BatchedSW(corpus).scores("MKVLAA")
            want = [sw_score_reference("MKVLAA", c) for c in corpus]
            assert got.tolist() == want

        both_paths(check)

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchedSW([])
        with pytest.raises(ValueError):
            BatchedSW(["AA"], gap=1.0)
        with pytest.raises(ValueError):
            BatchedSW(["AA"], band_width=0)
        with pytest.raises(ValueError):
            BatchedSW(["AA"]).scores("")


class TestFusedChannels:
    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_fused_equals_single_channel(self, data):
        n = data.draw(st.integers(1, 4))
        lens = [data.draw(st.integers(1, 30)) for _ in range(n)]
        seqs = [data.draw(st.text(AA, min_size=l, max_size=l)) for l in lens]
        sss = [
            data.draw(st.text(SS_ORDER, min_size=l, max_size=l)) for l in lens
        ]
        lq = data.draw(st.integers(1, 30))
        qseq = data.draw(st.text(AA, min_size=lq, max_size=lq))
        qss = data.draw(st.text(SS_ORDER, min_size=lq, max_size=lq))
        cfg = PrefilterConfig()
        pf = SequencePrefilter(
            [f"c{i}" for i in range(n)], seqs, sss, cfg
        )

        def check():
            aa, ss = pf.channel_scores(qseq, qss)
            aa_want = BatchedSW(
                seqs, cfg.aa_matrix, cfg.aa_gap, cfg.band_width
            ).scores(qseq)
            ss_want = BatchedSW(
                sss, cfg.ss_matrix, cfg.ss_gap, cfg.band_width
            ).scores(qss)
            assert aa.tolist() == aa_want.tolist()
            assert ss.tolist() == ss_want.tolist()

        both_paths(check)

    def test_fused_matches_scalar_reference(self, ck34_mini):
        chains = list(ck34_mini)[:4]
        pf = SequencePrefilter.from_chains(chains)
        cfg = pf.config
        q = chains[0]

        def check():
            aa, ss = pf.channel_scores(q.sequence, q.secondary)
            for k, c in enumerate(chains):
                assert aa[k] == sw_score_reference(
                    q.sequence, c.sequence, cfg.aa_gap, cfg.band_width,
                    cfg.aa_matrix,
                )
                assert ss[k] == sw_score_reference(
                    q.secondary, c.secondary, cfg.ss_gap, cfg.band_width,
                    cfg.ss_matrix,
                )

        both_paths(check)

    def test_native_and_numpy_agree(self, ck34_mini):
        if prefilter._NATIVE_SW is None:
            pytest.skip("native SW kernel unavailable")
        pf = SequencePrefilter.from_chains(list(ck34_mini))
        q = ck34_mini[3]
        native = pf.combined_scores(q.sequence, q.secondary)
        with numpy_path():
            fallback = pf.combined_scores(q.sequence, q.secondary)
        assert native.tolist() == fallback.tolist()

    def test_mismatched_query_channels_rejected(self, ck34_mini):
        pf = SequencePrefilter.from_chains(list(ck34_mini))
        with pytest.raises(ValueError):
            pf.channel_scores("AAA", "CC")


class TestPrefilterConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"keep": 0.0},
            {"keep": 1.5},
            {"min_keep": 0},
            {"band_width": 0},
            {"aa_gap": 2.0},
            {"ss_gap": 0.5},
            {"ss_weight": -1.0},
            {"length_weight": -0.1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            PrefilterConfig(**kwargs)

    def test_n_promoted(self):
        cfg = PrefilterConfig(keep=0.5, min_keep=3)
        assert cfg.n_promoted(0) == 0
        assert cfg.n_promoted(2) == 2  # floor capped by corpus size
        assert cfg.n_promoted(4) == 3  # min_keep floor
        assert cfg.n_promoted(33) == 17  # ceil(0.5 * 33)
        assert PrefilterConfig(keep=1.0).n_promoted(5) == 5


class TestPromotion:
    def test_promoted_count_and_order(self, ck34_mini):
        cfg = PrefilterConfig(keep=0.5, min_keep=2)
        pf = SequencePrefilter.from_chains(list(ck34_mini), cfg)
        q = ck34_mini[0]
        got = pf.promote_chain(q, exclude={0})
        assert len(got) == cfg.n_promoted(len(ck34_mini) - 1)
        assert got == sorted(got)  # ascending set semantics
        assert 0 not in got

    def test_deterministic_tie_break_by_name(self):
        # four identical candidates tie exactly; the name order decides
        seqs = ["MKVLAA"] * 4
        sss = ["HHHHCC"] * 4
        cfg = PrefilterConfig(keep=0.5, min_keep=1)
        pf = SequencePrefilter(["d", "b", "a", "c"], seqs, sss, cfg)
        got = pf.promote("MKVLAA", "HHHHCC")
        # n_promoted(4) = 2 -> names "a", "b" -> indices 2, 1 -> sorted
        assert got == [1, 2]

    def test_exclude_all_returns_empty(self, ck34_mini):
        pf = SequencePrefilter.from_chains(list(ck34_mini))
        assert pf.promote_chain(ck34_mini[0], set(range(len(ck34_mini)))) == []

    def test_self_query_promotes_self_first(self, ck34_mini):
        cfg = PrefilterConfig(keep=0.2, min_keep=1)
        pf = SequencePrefilter.from_chains(list(ck34_mini), cfg)
        q = ck34_mini[2]
        assert 2 in pf.promote_chain(q)  # no exclusion: self must win

    def test_validation(self, ck34_mini):
        with pytest.raises(ValueError):
            SequencePrefilter([], [], [])
        with pytest.raises(ValueError):
            SequencePrefilter(["a"], ["AAA"], ["CC"])  # channel mismatch
        with pytest.raises(ValueError):
            SequencePrefilter(["a", "b"], ["AAA"], ["CCC"])


class TestRecallRegression:
    """The promoted set must keep the exact kernel's top hits (ck34)."""

    def test_promoted_set_covers_exact_top5(self, ck34):
        from repro.psc.methods import TMAlignMethod
        from repro.psc.search import one_vs_all

        sub = ck34.subset(12, "ck34-recall")  # globins + start of tims
        pf = SequencePrefilter.from_chains(list(sub))
        for qi in (0, 9):  # one globin, one tim query
            q = sub[qi]
            exact = one_vs_all(q, sub, method=TMAlignMethod())
            promoted = {
                sub[k].name for k in pf.promote_chain(q, exclude={qi})
            }
            top5 = [h.chain_name for h in exact[:5]]
            assert all(name in promoted for name in top5)
