"""Micro-batcher: admission control, coalescing, batched dispatch."""

import asyncio
import threading

import pytest

from repro.psc import get_method
from repro.service import MicroBatcher, pair_key, resolve_method
from repro.service.protocol import ServiceError, ServiceOverloaded
from repro.service.registry import chain_content_hash


def key(tag: str):
    return pair_key(f"a-{tag}", f"b-{tag}", "test", "p0")


class TestOverload:
    def test_full_queue_sheds_while_inflight_completes(self):
        """queue_limit=1: job 1 dispatches, job 2 queues, job 3 is shed
        with a typed ServiceOverloaded — and 1+2 still complete."""
        release = threading.Event()
        started = threading.Event()

        def evaluate(jobs):
            started.set()
            assert release.wait(10), "test deadlock: release never set"
            return [f"body:{job.key[0]}" for job in jobs]

        async def scenario():
            b = MicroBatcher(
                queue_limit=1, max_batch=1, batch_window=0.0, evaluate=evaluate
            )
            b.start()
            t1 = asyncio.ensure_future(b.submit(key("1"), None, None, None))
            while not started.is_set():  # job 1 is now inside evaluate
                await asyncio.sleep(0.001)
            t2 = asyncio.ensure_future(b.submit(key("2"), None, None, None))
            while b.depth < 1:  # job 2 admitted to the bounded queue
                await asyncio.sleep(0.001)
            with pytest.raises(ServiceOverloaded, match="queue is full"):
                await b.submit(key("3"), None, None, None)
            assert b.metrics.counters["batcher_shed"] == 1
            release.set()
            assert await t1 == "body:a-1"
            assert await t2 == "body:a-2"
            await b.stop()

        asyncio.run(scenario())

    def test_shed_job_can_be_resubmitted_after_drain(self):
        def evaluate(jobs):
            return [f"body:{job.key[0]}" for job in jobs]

        async def scenario():
            b = MicroBatcher(
                queue_limit=2, max_batch=2, batch_window=0.0, evaluate=evaluate
            )
            # saturate the queue before starting the drain loop, so the
            # admission decision is fully deterministic
            loop_tasks = [
                asyncio.ensure_future(b.submit(key(str(i)), None, None, None))
                for i in range(2)
            ]
            await asyncio.sleep(0)  # let both submits enqueue
            assert b.depth == 2
            with pytest.raises(ServiceOverloaded):
                await b.submit(key("late"), None, None, None)
            b.start()
            await asyncio.gather(*loop_tasks)
            # capacity freed: the very same job is admitted now
            assert await b.submit(key("late"), None, None, None) == "body:a-late"
            await b.stop()

        asyncio.run(scenario())


class TestCoalescing:
    def test_identical_inflight_requests_share_one_evaluation(self):
        calls = []

        def evaluate(jobs):
            calls.append([j.key for j in jobs])
            return ["body"] * len(jobs)

        async def scenario():
            b = MicroBatcher(
                queue_limit=8, max_batch=8, batch_window=0.02, evaluate=evaluate
            )
            b.start()
            k = key("same")
            bodies = await asyncio.gather(
                *(b.submit(k, None, None, None) for _ in range(5))
            )
            assert bodies == ["body"] * 5
            assert sum(len(c) for c in calls) == 1  # one job evaluated
            assert b.metrics.counters["batcher_coalesced"] == 4
            await b.stop()

        asyncio.run(scenario())

    def test_coalesced_jobs_do_not_consume_queue_capacity(self):
        release = threading.Event()
        started = threading.Event()

        def evaluate(jobs):
            started.set()
            release.wait(10)
            return ["body"] * len(jobs)

        async def scenario():
            b = MicroBatcher(
                queue_limit=1, max_batch=1, batch_window=0.0, evaluate=evaluate
            )
            b.start()
            t1 = asyncio.ensure_future(b.submit(key("x"), None, None, None))
            while not started.is_set():
                await asyncio.sleep(0.001)
            # the same key coalesces onto the in-flight job instead of
            # being shed, even though the queue is at capacity 0/1 + busy
            t2 = asyncio.ensure_future(b.submit(key("x"), None, None, None))
            await asyncio.sleep(0.01)
            assert not t2.done()
            release.set()
            assert await t1 == "body" and await t2 == "body"
            await b.stop()

        asyncio.run(scenario())


class TestDispatch:
    def test_jobs_coalesce_into_one_batch(self):
        calls = []

        def evaluate(jobs):
            calls.append(len(jobs))
            return ["body"] * len(jobs)

        async def scenario():
            b = MicroBatcher(
                queue_limit=8, max_batch=8, batch_window=0.05, evaluate=evaluate
            )
            b.start()
            await asyncio.gather(
                *(b.submit(key(str(i)), None, None, None) for i in range(3))
            )
            assert calls == [3]  # window let the stragglers coalesce
            assert b.metrics.counters["batches_dispatched"] == 1
            assert b.metrics.counters["jobs_dispatched"] == 3
            await b.stop()

        asyncio.run(scenario())

    def test_max_batch_splits_large_queues(self):
        calls = []

        def evaluate(jobs):
            calls.append(len(jobs))
            return ["body"] * len(jobs)

        async def scenario():
            b = MicroBatcher(
                queue_limit=16, max_batch=2, batch_window=0.0, evaluate=evaluate
            )
            b.start()
            await asyncio.gather(
                *(b.submit(key(str(i)), None, None, None) for i in range(5))
            )
            assert sum(calls) == 5
            assert max(calls) <= 2
            await b.stop()

        asyncio.run(scenario())

    def test_max_batch_cost_cuts_batches_early(self, ck34_mini):
        """With a cost budget of ~1.5 pairs, a queue of 4 equal-cost jobs
        dispatches as 4 single-job batches — the cost cut, not the count
        cap, is doing the cutting."""
        from repro.parallel import predict_pair_seconds

        a, b_ = ck34_mini[0], ck34_mini[1]
        pair_cost = float(predict_pair_seconds([len(a)], [len(b_)])[0])
        calls = []

        def evaluate(jobs):
            calls.append(len(jobs))
            return ["body"] * len(jobs)

        async def scenario():
            b = MicroBatcher(
                queue_limit=16,
                max_batch=8,
                batch_window=0.0,
                max_batch_cost=1.5 * pair_cost,
                evaluate=evaluate,
            )
            # queue deterministically before the drain loop starts
            futs = [
                asyncio.ensure_future(b.submit(key(str(i)), a, b_, None))
                for i in range(4)
            ]
            await asyncio.sleep(0)  # let the submits enqueue
            assert b.depth == 4
            b.start()
            await asyncio.gather(*futs)
            assert calls == [1, 1, 1, 1]
            assert b.metrics.counters["batcher_cost_cut"] == 3
            await b.stop()

        asyncio.run(scenario())

    def test_zero_cost_budget_keeps_count_cutting(self):
        calls = []

        def evaluate(jobs):
            calls.append(len(jobs))
            return ["body"] * len(jobs)

        async def scenario():
            b = MicroBatcher(
                queue_limit=16, max_batch=8, batch_window=0.05,
                max_batch_cost=0.0, evaluate=evaluate,
            )
            b.start()
            await asyncio.gather(
                *(b.submit(key(str(i)), None, None, None) for i in range(4))
            )
            assert calls == [4]
            assert "batcher_cost_cut" not in b.metrics.counters
            await b.stop()

        asyncio.run(scenario())

    def test_evaluation_failure_maps_to_service_error(self):
        def evaluate(jobs):
            raise RuntimeError("kernel exploded")

        async def scenario():
            b = MicroBatcher(queue_limit=4, batch_window=0.0, evaluate=evaluate)
            b.start()
            with pytest.raises(ServiceError, match="kernel exploded"):
                await b.submit(key("boom"), None, None, None)
            assert b.metrics.counters["batches_failed"] == 1
            # the batcher survives a failed batch and keeps dispatching
            with pytest.raises(ServiceError):
                await b.submit(key("boom2"), None, None, None)
            await b.stop()

        asyncio.run(scenario())

    def test_default_evaluate_matches_direct_method_call(self, ck34_mini):
        """The real farm path: an ad-hoc batch over dataset chains gives
        exactly the scores a direct method.compare would."""
        method, params_hash = resolve_method("sse_composition", None)
        a, b_, c = ck34_mini[0], ck34_mini[1], ck34_mini[2]
        ha, hb, hc = (chain_content_hash(x) for x in (a, b_, c))

        async def scenario():
            batcher = MicroBatcher(queue_limit=8, max_batch=8, batch_window=0.02)
            batcher.start()
            bodies = await asyncio.gather(
                batcher.submit(
                    pair_key(ha, hb, "sse_composition", params_hash), a, b_, method
                ),
                batcher.submit(
                    pair_key(ha, hc, "sse_composition", params_hash), a, c, method
                ),
            )
            await batcher.stop()
            return bodies

        import json

        from repro.cost.counters import CostCounter

        bodies = asyncio.run(scenario())
        direct = get_method("sse_composition")
        for body, other in zip(bodies, (b_, c)):
            doc = json.loads(body)
            assert doc["scores"] == dict(direct.compare(a, other, CostCounter()))
            assert doc["pair"] == [ha, chain_content_hash(other)]

    def test_mixed_methods_batch_in_one_dispatch(self, ck34_mini):
        """One batch holding two parameterisations still produces correct
        per-job results (grouped farm calls under the hood)."""
        m_sse, h_sse = resolve_method("sse_composition", None)
        m_rmsd, h_rmsd = resolve_method("kabsch_rmsd", None)
        a, b_ = ck34_mini[0], ck34_mini[1]
        ha, hb = chain_content_hash(a), chain_content_hash(b_)

        async def scenario():
            batcher = MicroBatcher(queue_limit=8, max_batch=8, batch_window=0.02)
            batcher.start()
            bodies = await asyncio.gather(
                batcher.submit(pair_key(ha, hb, "sse_composition", h_sse), a, b_, m_sse),
                batcher.submit(pair_key(ha, hb, "kabsch_rmsd", h_rmsd), a, b_, m_rmsd),
            )
            await batcher.stop()
            return bodies, batcher.metrics.counters["batches_dispatched"]

        import json

        (body_sse, body_rmsd), n_batches = asyncio.run(scenario())
        assert n_batches == 1
        assert json.loads(body_sse)["method"] == "sse_composition"
        assert json.loads(body_rmsd)["method"] == "kabsch_rmsd"

    def test_submit_after_stop_is_rejected(self):
        async def scenario():
            b = MicroBatcher(evaluate=lambda jobs: ["x"] * len(jobs))
            b.start()
            await b.stop()
            with pytest.raises(ServiceError, match="shutting down"):
                await b.submit(key("late"), None, None, None)

        asyncio.run(scenario())
