"""Chain model behaviour."""

import numpy as np
import pytest

from repro.geometry.transforms import RigidTransform, random_rotation
from repro.structure.model import Chain


def _coords(n=10, seed=0):
    rng = np.random.default_rng(seed)
    return np.cumsum(rng.normal(0, 2, (n, 3)), axis=0)


class TestChainConstruction:
    def test_basic(self):
        c = Chain("x", _coords(5), "AAAAA")
        assert len(c) == 5
        assert c.sequence == "AAAAA"

    def test_default_sequence_polyalanine(self):
        c = Chain("x", _coords(4))
        assert c.sequence == "AAAA"

    def test_sequence_length_mismatch(self):
        with pytest.raises(ValueError):
            Chain("x", _coords(4), "AAA")

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            Chain("x", _coords(2))

    def test_non_finite_rejected(self):
        bad = _coords(5)
        bad[2, 1] = np.nan
        with pytest.raises(ValueError):
            Chain("x", bad)

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            Chain("x", np.zeros((5, 2)))

    def test_coords_readonly(self):
        c = Chain("x", _coords(5))
        with pytest.raises(ValueError):
            c.coords[0, 0] = 1.0


class TestChainOps:
    def test_transformed_moves_coords(self, rng):
        c = Chain("x", _coords(8))
        xf = RigidTransform(random_rotation(rng), rng.normal(size=3))
        moved = c.transformed(xf)
        np.testing.assert_allclose(moved.coords, xf.apply(c.coords))
        assert moved.sequence == c.sequence

    def test_secondary_invariant_under_transform(self, rng, small_fold_pair):
        parent, _ = small_fold_pair
        xf = RigidTransform(random_rotation(rng), rng.normal(size=3) * 30)
        assert parent.transformed(xf).secondary == parent.secondary

    def test_slice(self):
        c = Chain("x", _coords(10), "ABCDEFGHIK")
        sub = c.slice(2, 7)
        assert len(sub) == 5
        assert sub.sequence == "CDEFG"
        np.testing.assert_array_equal(sub.coords, c.coords[2:7])

    def test_slice_bad_range(self):
        c = Chain("x", _coords(5))
        with pytest.raises(ValueError):
            c.slice(3, 2)
        with pytest.raises(ValueError):
            c.slice(0, 99)

    def test_wire_bytes_grow_with_length(self):
        a = Chain("a", _coords(10))
        b = Chain("b", _coords(20))
        assert b.nbytes_wire > a.nbytes_wire
        assert a.nbytes_wire == 64 + 32 * 10

    def test_pdb_bytes_estimate(self):
        c = Chain("a", _coords(10))
        assert c.nbytes_pdb == 81 * 10 + 200

    def test_secondary_cached(self, small_fold_pair):
        parent, _ = small_fold_pair
        first = parent.secondary
        assert parent.secondary is first
