"""Golden pins for the optimised TM-align kernel.

The PR-2 hot-loop work (DP workspace reuse, scoring-buffer reuse, the
gufunc SVD path in Kabsch) is only allowed to remove overhead, never to
change a float operation — so four representative ck34 comparisons are
pinned here bit-for-bit against the pre-optimisation serial code.  The
expected values are ``repr()`` strings (repr round-trips doubles
exactly); op counts and the residue correspondence are pinned too, so a
change to the *search trajectory* (not just the final scores) fails.
"""

from __future__ import annotations

import pytest

from repro.tmalign import tm_align

# (name_a, name_b) -> pinned fields captured from the seed kernel.
# ai/aj are summarised as (len, sum, first, last): enough to catch any
# trajectory change without embedding 140-element index lists.
GOLDEN = {
    ("ck_globin_00", "ck_globin_01"): {
        "tm_norm_a": "0.9281806935058299",
        "tm_norm_b": "0.9726556580806811",
        "rmsd": "0.7499474535489062",
        "seq_identity": "0.6197183098591549",
        "n_aligned": 142,
        "ai": (142, 10579, 4, 145),
        "aj": (142, 10011, 0, 141),
        "op_counts": {
            "align_fixed": "1.0",
            "dp_cell": "232738.0",
            "io_byte": "0.0",
            "kabsch": "656.0",
            "kabsch_point": "52711.0",
            "score_pair": "268289.0",
            "sec_res": "291.0",
        },
    },
    ("ck_globin_00", "ck_plasto_02"): {
        "tm_norm_a": "0.27123424328628587",
        "tm_norm_b": "0.34886211905167747",
        "rmsd": "7.2269270014283675",
        "seq_identity": "0.0449438202247191",
        "n_aligned": 89,
        "ai": (89, 5929, 0, 148),
        "aj": (89, 4309, 1, 93),
        "op_counts": {
            "align_fixed": "1.0",
            "dp_cell": "322138.0",
            "io_byte": "0.0",
            "kabsch": "1172.0",
            "kabsch_point": "47273.0",
            "score_pair": "391748.0",
            "sec_res": "243.0",
        },
    },
    ("ck_globin_05", "ck_ferredoxin_00"): {
        "tm_norm_a": "0.38113050045252456",
        "tm_norm_b": "0.45441980151592615",
        "rmsd": "7.325010591141995",
        "seq_identity": "0.037037037037037035",
        "n_aligned": 108,
        "ai": (108, 8697, 2, 146),
        "aj": (108, 6034, 0, 111),
        "op_counts": {
            "align_fixed": "1.0",
            "dp_cell": "279888.0",
            "io_byte": "0.0",
            "kabsch": "1035.0",
            "kabsch_point": "53470.0",
            "score_pair": "346196.0",
            "sec_res": "259.0",
        },
    },
    ("ck_tim_04", "ck_ferredoxin_05"): {
        "tm_norm_a": "0.29455571204021125",
        "tm_norm_b": "0.45493357568367454",
        "rmsd": "6.263360000664827",
        "seq_identity": "0.029411764705882353",
        "n_aligned": 102,
        "ai": (102, 12639, 4, 211),
        "aj": (102, 5551, 0, 111),
        "op_counts": {
            "align_fixed": "1.0",
            "dp_cell": "427392.0",
            "io_byte": "0.0",
            "kabsch": "1314.0",
            "kabsch_point": "71651.0",
            "score_pair": "506937.0",
            "sec_res": "324.0",
        },
    },
}


def _index_summary(idx) -> tuple[int, int, int, int]:
    lst = idx.tolist()
    return (len(lst), sum(lst), lst[0], lst[-1])


@pytest.mark.parametrize("pair", sorted(GOLDEN), ids="|".join)
def test_kernel_bit_identical_to_seed(ck34, pair):
    name_a, name_b = pair
    want = GOLDEN[pair]
    result = tm_align(ck34.by_name(name_a), ck34.by_name(name_b))
    for field in ("tm_norm_a", "tm_norm_b", "rmsd", "seq_identity"):
        assert repr(getattr(result, field)) == want[field], field
    assert result.n_aligned == want["n_aligned"]
    assert _index_summary(result.alignment.ai) == want["ai"]
    assert _index_summary(result.alignment.aj) == want["aj"]
    got_counts = {k: repr(float(v)) for k, v in sorted(result.op_counts.items())}
    assert got_counts == want["op_counts"]
