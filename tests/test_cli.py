"""CLI entry point."""

import argparse
import json

import pytest

from repro.cli import _bench_output, build_parser, main


class TestParser:
    def test_known_experiments(self):
        parser = build_parser()
        for exp in ("table1", "table3", "exp1", "exp2", "table5", "ablations",
                    "exp-resilience", "all"):
            args = parser.parse_args([exp])
            assert args.command == exp

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table9"])

    def test_flags(self):
        args = build_parser().parse_args(["exp2", "--quick", "--dataset", "rs119"])
        assert args.quick and args.dataset == "rs119"

    def test_bad_mode_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["exp1", "--mode", "psychic"])

    def test_tool_commands_parse(self):
        parser = build_parser()
        args = parser.parse_args(["align", "a", "b", "--dataset", "ck34"])
        assert args.chain_a == "a" and args.chain_b == "b"
        args = parser.parse_args(["search", "q", "--method", "tmalign", "--top", "3"])
        assert args.top == 3
        args = parser.parse_args(["info", "--dataset", "rs119"])
        assert args.dataset == "rs119"

    def test_resilience_flags_parse(self):
        parser = build_parser()
        args = parser.parse_args(
            ["matrix", "--retries", "3", "--backoff", "0.2",
             "--chunk-timeout", "5", "--inject", "kill@0-3",
             "--run-id", "r1", "--runs-dir", "store"]
        )
        assert args.retries == 3 and args.backoff == 0.2
        assert args.chunk_timeout == 5.0 and args.inject == "kill@0-3"
        assert args.run_id == "r1" and args.runs_dir == "store"
        args = parser.parse_args(["matrix", "--resume", "r1"])
        assert args.resume == "r1"
        args = parser.parse_args(["search", "q", "--retries", "1"])
        assert args.retries == 1

    def test_trace_and_runs_commands_parse(self):
        parser = build_parser()
        args = parser.parse_args(
            ["trace", "--slaves", "7", "--kill", "2", "--seed", "5",
             "--chrome", "t.json", "--gantt"]
        )
        assert args.slaves == 7 and args.kill == 2 and args.seed == 5
        assert args.chrome == "t.json" and args.gantt
        args = parser.parse_args(["runs", "--runs-dir", "elsewhere"])
        assert args.runs_dir == "elsewhere"


class TestBenchOutputFlag:
    def args(self, **kw):
        return argparse.Namespace(
            output=kw.get("output", "bench.json"),
            no_output=kw.get("no_output", False),
        )

    def test_default_keeps_path(self):
        assert _bench_output(self.args()) == ("bench.json", "")

    def test_no_output_flag(self):
        path, note = _bench_output(self.args(no_output=True))
        assert path is None and note == ""

    def test_empty_output_still_works_but_warns(self):
        path, note = _bench_output(self.args(output=""))
        assert path is None
        assert "deprecated" in note and "--no-output" in note

    def test_both_commands_expose_no_output(self):
        parser = build_parser()
        assert parser.parse_args(["bench", "--no-output"]).no_output
        assert parser.parse_args(["bench-parallel", "--no-output"]).no_output
        # the legacy escape hatch keeps parsing
        args = parser.parse_args(
            ["bench-parallel", "--workers-grid", "1,2", "--output", ""]
        )
        assert args.workers_grid == "1,2" and args.output == ""


class TestMain:
    def test_table1_prints(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "6x4 mesh" in out

    def test_table3_prints(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "AMD" in out and "P54C" in out

    def test_exp2_quick_single_dataset(self, capsys):
        assert main(["exp2", "--quick", "--dataset", "ck34"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "Figure 6" in out

    def test_exp_resilience_quick(self, capsys):
        # full ck34: a staggered kill plan needs enough jobs per slave
        # for every planned death point to actually be reached
        assert main(["exp-resilience", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "failed slaves" in out
        assert "jobs reassigned" in out

    def test_info(self, capsys):
        assert main(["info", "--dataset", "ck34-mini"]) == 0
        assert "chains" in capsys.readouterr().out

    def test_search_with_cheap_method(self, capsys, tmp_path):
        assert main(
            ["search", "ck_globin_00", "--dataset", "ck34-mini",
             "--method", "sse_composition", "--top", "3",
             "--runs-dir", str(tmp_path / "runs")]
        ) == 0
        out = capsys.readouterr().out
        assert "rank" in out
        assert "[run search-" in out and "recorded in" in out

    def test_align_by_name(self, capsys, tmp_path):
        from repro.datasets import load_dataset
        from repro.structure import write_pdb_file

        ds = load_dataset("ck34-mini")
        path = tmp_path / "q.pdb"
        write_pdb_file(ds[0], path)
        assert main(["align", str(path), ds[1].name, "--dataset", "ck34-mini"]) == 0
        out = capsys.readouterr().out
        assert "TM-score=" in out
        assert "Rotation matrix" in out

    def test_trace_with_kill_and_chrome_export(self, capsys, tmp_path):
        chrome = tmp_path / "trace.json"
        assert main(
            ["trace", "--dataset", "ck34-mini", "--slaves", "5",
             "--kill", "1", "--chrome", str(chrome), "--gantt"]
        ) == 0
        out = capsys.readouterr().out
        assert "1 slave(s) died" in out
        assert "rck" in out and "#" in out  # the Gantt chart rendered
        doc = json.loads(chrome.read_text())
        assert doc["traceEvents"]
        assert any(e.get("name") == "comm" for e in doc["traceEvents"])


class TestMatrixCommand:
    def run(self, tmp_path, *extra):
        return main(
            ["matrix", "--dataset", "ck34-mini", "--method", "sse_composition",
             "--runs-dir", str(tmp_path / "runs"), *extra]
        )

    def test_matrix_export(self, capsys, tmp_path):
        out_file = tmp_path / "m.csv"
        assert self.run(tmp_path, "--output", str(out_file)) == 0
        assert out_file.exists()
        assert "28 pair scores" in capsys.readouterr().out

    def test_matrix_reports_throughput(self, capsys, tmp_path):
        out_file = tmp_path / "m.csv"
        assert self.run(tmp_path, "--output", str(out_file)) == 0
        out = capsys.readouterr().out
        assert "streamed" in out
        assert "pairs/s" in out
        assert "wall " in out

    def test_matrix_parallel_csv_byte_identical(self, capsys, tmp_path):
        serial = tmp_path / "serial.csv"
        farmed = tmp_path / "farmed.csv"
        assert self.run(tmp_path, "--output", str(serial)) == 0
        assert self.run(tmp_path, "--output", str(farmed),
                        "--workers", "2", "--chunk", "5") == 0
        capsys.readouterr()
        assert farmed.read_bytes() == serial.read_bytes()

    def test_matrix_absorbs_injected_fault_with_retries(self, capsys, tmp_path):
        serial = tmp_path / "serial.csv"
        chaos = tmp_path / "chaos.csv"
        assert self.run(tmp_path, "--output", str(serial)) == 0
        assert self.run(tmp_path, "--output", str(chaos),
                        "--workers", "2", "--chunk", "2",
                        "--retries", "2", "--inject", "raise@0-3") == 0
        out = capsys.readouterr().out
        assert "absorbed faults: 1 chunk retries" in out
        assert chaos.read_bytes() == serial.read_bytes()

    def test_matrix_interrupt_then_resume_byte_identical(self, capsys, tmp_path):
        serial = tmp_path / "serial.csv"
        resumed = tmp_path / "resumed.csv"
        assert self.run(tmp_path, "--output", str(serial)) == 0
        with pytest.raises(SystemExit) as err:
            self.run(tmp_path, "--output", str(resumed),
                     "--run-id", "broken", "--inject", "raise@2-5")
        assert "matrix run failed" in str(err.value)
        assert "--resume broken" in str(err.value)  # the hint names the run
        assert not resumed.exists()  # atomic finalize: no partial CSV
        assert self.run(tmp_path, "--output", str(resumed),
                        "--resume", "broken") == 0
        out = capsys.readouterr().out
        assert "resumed: 15 pairs taken from the journal, 13 computed now" in out
        assert resumed.read_bytes() == serial.read_bytes()

    def test_runs_command_lists_store(self, capsys, tmp_path):
        assert main(["runs", "--runs-dir", str(tmp_path / "runs")]) == 0
        assert "no runs under" in capsys.readouterr().out
        assert self.run(tmp_path, "--output", str(tmp_path / "m.csv"),
                        "--run-id", "my-run") == 0
        capsys.readouterr()
        assert main(["runs", "--runs-dir", str(tmp_path / "runs")]) == 0
        out = capsys.readouterr().out
        assert "my-run" in out
        assert "complete" in out
        assert "28/28" in out

    def test_farm_flags_parse(self):
        parser = build_parser()
        args = parser.parse_args(["matrix", "--workers", "4", "--chunk", "16"])
        assert args.workers == 4 and args.chunk == 16
        args = parser.parse_args(["search", "q", "--workers", "2"])
        assert args.workers == 2 and args.chunk == 0
        args = parser.parse_args(
            ["bench-parallel", "--workers-grid", "1,2", "--output", ""]
        )
        assert args.workers_grid == "1,2"
