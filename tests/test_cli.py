"""CLI entry point."""

import argparse
import json

import pytest

from repro.cli import _WARNED, _bench_output, build_parser, main


class TestParser:
    def test_known_experiments(self):
        parser = build_parser()
        for exp in ("table1", "table3", "exp1", "exp2", "table5", "ablations",
                    "exp-resilience", "all"):
            args = parser.parse_args([exp])
            assert args.command == exp

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table9"])

    def test_flags(self):
        args = build_parser().parse_args(["exp2", "--quick", "--dataset", "rs119"])
        assert args.quick and args.dataset == "rs119"

    def test_bad_mode_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["exp1", "--mode", "psychic"])

    def test_tool_commands_parse(self):
        parser = build_parser()
        args = parser.parse_args(["align", "a", "b", "--dataset", "ck34"])
        assert args.chain_a == "a" and args.chain_b == "b"
        args = parser.parse_args(["search", "q", "--method", "tmalign", "--top", "3"])
        assert args.top == 3
        args = parser.parse_args(["info", "--dataset", "rs119"])
        assert args.dataset == "rs119"

    def test_resilience_flags_parse(self):
        parser = build_parser()
        args = parser.parse_args(
            ["matrix", "--retries", "3", "--backoff", "0.2",
             "--chunk-timeout", "5", "--inject", "kill@0-3",
             "--run-id", "r1", "--runs-dir", "store"]
        )
        assert args.retries == 3 and args.backoff == 0.2
        assert args.chunk_timeout == 5.0 and args.inject == "kill@0-3"
        assert args.run_id == "r1" and args.runs_dir == "store"
        args = parser.parse_args(["matrix", "--resume", "r1"])
        assert args.resume == "r1"
        args = parser.parse_args(["search", "q", "--retries", "1"])
        assert args.retries == 1

    def test_trace_and_runs_commands_parse(self):
        parser = build_parser()
        args = parser.parse_args(
            ["trace", "--slaves", "7", "--kill", "2", "--seed", "5",
             "--chrome", "t.json", "--gantt"]
        )
        assert args.slaves == 7 and args.kill == 2 and args.seed == 5
        assert args.chrome == "t.json" and args.gantt
        args = parser.parse_args(["runs", "--runs-dir", "elsewhere"])
        assert args.runs_dir == "elsewhere"


class TestBenchOutputFlag:
    def args(self, **kw):
        return argparse.Namespace(
            output=kw.get("output", "bench.json"),
            no_output=kw.get("no_output", False),
        )

    def test_default_keeps_path(self):
        assert _bench_output(self.args()) == "bench.json"

    def test_no_output_flag(self):
        assert _bench_output(self.args(no_output=True)) is None

    def test_empty_output_routes_through_no_output(self, capsys):
        _WARNED.clear()
        ns = self.args(output="")
        assert _bench_output(ns) is None
        assert ns.no_output  # deprecated spelling folds onto --no-output
        err = capsys.readouterr().err
        assert "deprecated" in err and "--no-output" in err

    def test_deprecation_note_fires_once_per_invocation(self, capsys):
        _WARNED.clear()
        _bench_output(self.args(output=""))
        _bench_output(self.args(output=""))
        assert capsys.readouterr().err.count("deprecated") == 1

    def test_both_commands_expose_no_output(self):
        parser = build_parser()
        assert parser.parse_args(["bench", "--no-output"]).no_output
        assert parser.parse_args(["bench-parallel", "--no-output"]).no_output
        # the legacy escape hatch keeps parsing
        args = parser.parse_args(
            ["bench-parallel", "--workers-grid", "1,2", "--output", ""]
        )
        assert args.workers_grid == "1,2" and args.output == ""


class TestMain:
    def test_table1_prints(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "6x4 mesh" in out

    def test_table3_prints(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "AMD" in out and "P54C" in out

    def test_exp2_quick_single_dataset(self, capsys):
        assert main(["exp2", "--quick", "--dataset", "ck34"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "Figure 6" in out

    def test_exp_resilience_quick(self, capsys):
        # full ck34: a staggered kill plan needs enough jobs per slave
        # for every planned death point to actually be reached
        assert main(["exp-resilience", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "failed slaves" in out
        assert "jobs reassigned" in out

    def test_info(self, capsys):
        assert main(["info", "--dataset", "ck34-mini"]) == 0
        assert "chains" in capsys.readouterr().out

    def test_search_with_cheap_method(self, capsys, tmp_path):
        assert main(
            ["search", "ck_globin_00", "--dataset", "ck34-mini",
             "--method", "sse_composition", "--top", "3",
             "--runs-dir", str(tmp_path / "runs")]
        ) == 0
        out = capsys.readouterr().out
        assert "rank" in out
        assert "[run search-" in out and "recorded in" in out

    def test_align_by_name(self, capsys, tmp_path):
        from repro.datasets import load_dataset
        from repro.structure import write_pdb_file

        ds = load_dataset("ck34-mini")
        path = tmp_path / "q.pdb"
        write_pdb_file(ds[0], path)
        assert main(["align", str(path), ds[1].name, "--dataset", "ck34-mini"]) == 0
        out = capsys.readouterr().out
        assert "TM-score=" in out
        assert "Rotation matrix" in out

    def test_trace_with_kill_and_chrome_export(self, capsys, tmp_path):
        chrome = tmp_path / "trace.json"
        assert main(
            ["trace", "--dataset", "ck34-mini", "--slaves", "5",
             "--kill", "1", "--chrome", str(chrome), "--gantt"]
        ) == 0
        out = capsys.readouterr().out
        assert "1 slave(s) died" in out
        assert "rck" in out and "#" in out  # the Gantt chart rendered
        doc = json.loads(chrome.read_text())
        assert doc["traceEvents"]
        assert any(e.get("name") == "comm" for e in doc["traceEvents"])


class TestMatrixCommand:
    def run(self, tmp_path, *extra):
        return main(
            ["matrix", "--dataset", "ck34-mini", "--method", "sse_composition",
             "--runs-dir", str(tmp_path / "runs"), *extra]
        )

    def test_matrix_export(self, capsys, tmp_path):
        out_file = tmp_path / "m.csv"
        assert self.run(tmp_path, "--output", str(out_file)) == 0
        assert out_file.exists()
        assert "28 pair scores" in capsys.readouterr().out

    def test_matrix_reports_throughput(self, capsys, tmp_path):
        out_file = tmp_path / "m.csv"
        assert self.run(tmp_path, "--output", str(out_file)) == 0
        out = capsys.readouterr().out
        assert "streamed" in out
        assert "pairs/s" in out
        assert "wall " in out

    def test_matrix_parallel_csv_byte_identical(self, capsys, tmp_path):
        serial = tmp_path / "serial.csv"
        farmed = tmp_path / "farmed.csv"
        assert self.run(tmp_path, "--output", str(serial)) == 0
        assert self.run(tmp_path, "--output", str(farmed),
                        "--workers", "2", "--chunk", "5") == 0
        capsys.readouterr()
        assert farmed.read_bytes() == serial.read_bytes()

    def test_matrix_absorbs_injected_fault_with_retries(self, capsys, tmp_path):
        serial = tmp_path / "serial.csv"
        chaos = tmp_path / "chaos.csv"
        assert self.run(tmp_path, "--output", str(serial)) == 0
        assert self.run(tmp_path, "--output", str(chaos),
                        "--workers", "2", "--chunk", "2",
                        "--retries", "2", "--inject", "raise@0-3") == 0
        out = capsys.readouterr().out
        assert "absorbed faults: 1 chunk retries" in out
        assert chaos.read_bytes() == serial.read_bytes()

    def test_matrix_interrupt_then_resume_byte_identical(self, capsys, tmp_path):
        serial = tmp_path / "serial.csv"
        resumed = tmp_path / "resumed.csv"
        assert self.run(tmp_path, "--output", str(serial)) == 0
        with pytest.raises(SystemExit) as err:
            self.run(tmp_path, "--output", str(resumed),
                     "--run-id", "broken", "--inject", "raise@2-5")
        assert "matrix run failed" in str(err.value)
        assert "--resume broken" in str(err.value)  # the hint names the run
        assert not resumed.exists()  # atomic finalize: no partial CSV
        assert self.run(tmp_path, "--output", str(resumed),
                        "--resume", "broken") == 0
        out = capsys.readouterr().out
        assert "resumed: 15 pairs taken from the journal, 13 computed now" in out
        assert resumed.read_bytes() == serial.read_bytes()

    def test_runs_command_lists_store(self, capsys, tmp_path):
        assert main(["runs", "--runs-dir", str(tmp_path / "runs")]) == 0
        assert "no runs under" in capsys.readouterr().out
        assert self.run(tmp_path, "--output", str(tmp_path / "m.csv"),
                        "--run-id", "my-run") == 0
        capsys.readouterr()
        assert main(["runs", "--runs-dir", str(tmp_path / "runs")]) == 0
        out = capsys.readouterr().out
        assert "my-run" in out
        assert "complete" in out
        assert "28/28" in out

    def test_farm_flags_parse(self):
        parser = build_parser()
        args = parser.parse_args(["matrix", "--workers", "4", "--chunk", "16"])
        assert args.workers == 4 and args.chunk == 16
        args = parser.parse_args(["search", "q", "--workers", "2"])
        assert args.workers == 2 and args.chunk == 0
        args = parser.parse_args(
            ["bench-parallel", "--workers-grid", "1,2", "--output", ""]
        )
        assert args.workers_grid == "1,2"


class TestKernelBaselineCheck:
    """bench --check must fail with one clear line, never a traceback."""

    def test_missing_artifact_is_one_line_error(self, tmp_path):
        with pytest.raises(SystemExit) as err:
            main(["bench", "--kernel", "--check", "--quick", "--no-micro",
                  "--output", str(tmp_path / "absent.json")])
        msg = str(err.value)
        assert msg.startswith("bench --check:") and "\n" not in msg

    def test_unparsable_artifact_is_one_line_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("not json at all")
        with pytest.raises(SystemExit) as err:
            main(["bench", "--kernel", "--check", "--quick", "--no-micro",
                  "--output", str(bad)])
        msg = str(err.value)
        assert msg.startswith("bench --check:") and "\n" not in msg
        assert "pairs_per_second" in msg

    def test_null_rate_is_one_line_error_not_typeerror(self, tmp_path):
        bad = tmp_path / "null.json"
        bad.write_text('{"pairs_per_second": null}')
        with pytest.raises(SystemExit) as err:
            main(["bench", "--kernel", "--check", "--quick", "--no-micro",
                  "--output", str(bad)])
        assert str(err.value).startswith("bench --check:")

    def test_resolver_precedence(self, tmp_path):
        from repro.experiments.bench import (
            KERNEL_BASELINE_PAIRS_PER_SECOND,
            BaselineError,
            resolve_kernel_baseline,
        )

        art = tmp_path / "BENCH_kernel.json"
        art.write_text('{"pairs_per_second": 123.5}')
        # explicit argument beats the artifact
        assert resolve_kernel_baseline(str(art), 9.0) == (9.0, "argument")
        assert resolve_kernel_baseline(str(art)) == (123.5, "committed-artifact")
        # tolerant path falls back on the recorded constant
        value, source = resolve_kernel_baseline(str(tmp_path / "no.json"))
        assert value == KERNEL_BASELINE_PAIRS_PER_SECOND
        assert source == "fallback-constant"
        with pytest.raises(BaselineError):
            resolve_kernel_baseline(str(tmp_path / "no.json"), strict=True)
        with pytest.raises(BaselineError):
            resolve_kernel_baseline(None, strict=True)


class TestServiceCommandsParse:
    def test_serve_flags(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--queue-limit", "4", "--max-batch", "2",
             "--batch-window", "0.01", "--cache-capacity", "16",
             "--workers", "2", "--retries", "1", "--dataset", "ck34-mini"]
        )
        assert args.port == 0 and args.queue_limit == 4
        assert args.max_batch == 2 and args.batch_window == 0.01
        assert args.cache_capacity == 16 and args.workers == 2
        assert args.retries == 1 and args.fn.__name__ == "_cmd_serve"

    def test_query_ops(self):
        parser = build_parser()
        args = parser.parse_args(["query", "align", "a", "b", "--port", "1234"])
        assert args.op == "align" and args.args == ["a", "b"]
        assert args.port == 1234
        args = parser.parse_args(
            ["query", "search", "q", "--top", "3", "--method", "sse_composition"]
        )
        assert args.op == "search" and args.top == 3
        args = parser.parse_args(["query", "register", "name", "f.pdb", "--corpus"])
        assert args.corpus
        args = parser.parse_args(["query", "submit-matrix", "--dataset", "ck34-mini"])
        assert args.dataset == "ck34-mini"
        with pytest.raises(SystemExit):
            parser.parse_args(["query", "frobnicate"])

    def test_query_operand_count_enforced(self):
        from repro.cli import _cmd_query

        args = build_parser().parse_args(["query", "align", "only-one"])
        with pytest.raises(SystemExit) as err:
            _cmd_query(args)
        assert "usage: query align" in str(err.value)


class TestPrefilterFlags:
    """search/query/bench prefilter flags parse; bad values fail fast."""

    def test_search_prefilter_parses(self):
        parser = build_parser()
        args = parser.parse_args(
            ["search", "q", "--prefilter", "--prefilter-keep", "0.1"]
        )
        assert args.prefilter and args.prefilter_keep == 0.1
        args = parser.parse_args(["search", "q"])
        assert not args.prefilter and args.prefilter_keep is None

    def test_query_prefilter_parses(self):
        args = build_parser().parse_args(
            ["query", "search", "q", "--prefilter", "--prefilter-keep", "0.5"]
        )
        assert args.prefilter and args.prefilter_keep == 0.5

    def test_bench_prefilter_parses(self):
        args = build_parser().parse_args(
            ["bench", "--prefilter", "--queries", "3",
             "--min-recall", "0.9", "--min-speedup", "1.5"]
        )
        assert args.prefilter and args.queries == 3
        assert args.min_recall == 0.9 and args.min_speedup == 1.5

    @pytest.mark.parametrize(
        "argv",
        [
            ["search", "q", "--top", "0"],
            ["search", "q", "--top", "-3"],
            ["search", "q", "--top", "2.5"],
            ["search", "q", "--prefilter-keep", "0"],
            ["search", "q", "--prefilter-keep", "1.5"],
            ["search", "q", "--prefilter-keep", "nope"],
            ["query", "search", "q", "--top", "0"],
            ["query", "search", "q", "--prefilter-keep", "-0.1"],
            ["bench", "--prefilter", "--queries", "0"],
            ["bench", "--prefilter", "--min-recall", "2.0"],
        ],
    )
    def test_bad_values_rejected_at_parse(self, argv, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(argv)
        err = capsys.readouterr().err
        assert "must be" in err or "expected" in err

    def test_bench_kernel_and_prefilter_exclusive(self):
        with pytest.raises(SystemExit, match="exclusive"):
            main(["bench", "--kernel", "--prefilter", "--no-output"])


class TestMatstoreCommand:
    def test_subcommands_parse(self):
        parser = build_parser()
        args = parser.parse_args(
            ["matstore", "build", "--store", "ms", "--dataset", "ck34",
             "--limit", "6", "--workers", "2", "--retries", "1"]
        )
        assert args.action == "build" and args.limit == 6
        args = parser.parse_args(["matstore", "query", "a", "b"])
        assert args.action == "query" and args.chain_a == "a"
        args = parser.parse_args(["matstore", "export", "--output", "m.csv"])
        assert args.action == "export" and args.output == "m.csv"
        with pytest.raises(SystemExit):
            parser.parse_args(["matstore"])  # an action is required
        with pytest.raises(SystemExit):
            parser.parse_args(["matstore", "compact"])

    def test_build_extend_query_verify_export(self, capsys, tmp_path):
        store = str(tmp_path / "ms")
        assert main(
            ["matstore", "build", "--store", store,
             "--dataset", "ck34-mini", "--limit", "3"]
        ) == 0
        assert "3 chains, 3 pairs committed (3 computed now" in capsys.readouterr().out
        assert main(
            ["matstore", "extend", "--store", store,
             "--dataset", "ck34-mini", "--limit", "4"]
        ) == 0
        assert "4 chains, 6 pairs committed (3 computed now" in capsys.readouterr().out
        from repro.datasets import load_dataset

        ds = load_dataset("ck34-mini")
        assert main(
            ["matstore", "query", "--store", store, ds[0].name, ds[3].name]
        ) == 0
        out = capsys.readouterr().out
        assert "tm_norm_b" in out and "lddt" in out and "gdt_ts" in out
        assert main(["matstore", "verify", "--store", store]) == 0
        assert "6 pairs cross-checked" in capsys.readouterr().out
        csv_path = str(tmp_path / "ms.csv")
        assert main(
            ["matstore", "export", "--store", store, "--output", csv_path]
        ) == 0
        assert "exported 6 pair rows" in capsys.readouterr().out

    def test_query_of_unknown_chain_is_one_line_error(self, capsys, tmp_path):
        store = str(tmp_path / "ms")
        assert main(
            ["matstore", "build", "--store", store,
             "--dataset", "ck34-mini", "--limit", "3"]
        ) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit, match="not in the store"):
            main(["matstore", "query", "--store", store, "nope", "alsonope"])

    def test_missing_store_is_one_line_error(self, tmp_path):
        with pytest.raises(SystemExit, match="matstore error"):
            main(["matstore", "verify", "--store", str(tmp_path / "absent")])

    def test_corrupt_journal_is_one_line_error(self, capsys, tmp_path):
        store = tmp_path / "ms"
        assert main(
            ["matstore", "build", "--store", str(store),
             "--dataset", "ck34-mini", "--limit", "3"]
        ) == 0
        capsys.readouterr()
        journal = store / "journal.csv"
        lines = journal.read_text().splitlines(keepends=True)
        lines[0] = lines[0].replace(lines[0][5], "#", 1)
        journal.write_text("".join(lines))
        with pytest.raises(SystemExit, match="corrupt journal"):
            main(["matstore", "verify", "--store", str(store)])

    def test_bench_matstore_flag_is_exclusive(self):
        args = build_parser().parse_args(["bench", "--matstore", "--check"])
        assert args.matstore and args.check
        with pytest.raises(SystemExit, match="exclusive"):
            main(["bench", "--matstore", "--kernel"])

    def test_serve_and_query_flags_parse(self):
        parser = build_parser()
        args = parser.parse_args(["serve", "--matstore-dir", "ms"])
        assert args.matstore_dir == "ms"
        args = parser.parse_args(["query", "matstore-lookup", "a", "b"])
        assert args.op == "matstore-lookup" and args.args == ["a", "b"]
        args = parser.parse_args(["query", "status"])
        assert args.op == "status" and args.args == []
