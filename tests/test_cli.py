"""CLI entry point."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_known_experiments(self):
        parser = build_parser()
        for exp in ("table1", "table3", "exp1", "exp2", "table5", "ablations", "all"):
            args = parser.parse_args([exp])
            assert args.command == exp

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table9"])

    def test_flags(self):
        args = build_parser().parse_args(["exp2", "--quick", "--dataset", "rs119"])
        assert args.quick and args.dataset == "rs119"

    def test_bad_mode_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["exp1", "--mode", "psychic"])

    def test_tool_commands_parse(self):
        parser = build_parser()
        args = parser.parse_args(["align", "a", "b", "--dataset", "ck34"])
        assert args.chain_a == "a" and args.chain_b == "b"
        args = parser.parse_args(["search", "q", "--method", "tmalign", "--top", "3"])
        assert args.top == 3
        args = parser.parse_args(["info", "--dataset", "rs119"])
        assert args.dataset == "rs119"


class TestMain:
    def test_table1_prints(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "6x4 mesh" in out

    def test_table3_prints(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "AMD" in out and "P54C" in out

    def test_exp2_quick_single_dataset(self, capsys):
        assert main(["exp2", "--quick", "--dataset", "ck34"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "Figure 6" in out

    def test_info(self, capsys):
        assert main(["info", "--dataset", "ck34-mini"]) == 0
        assert "chains" in capsys.readouterr().out

    def test_search_with_cheap_method(self, capsys):
        assert main(
            ["search", "ck_globin_00", "--dataset", "ck34-mini",
             "--method", "sse_composition", "--top", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "rank" in out

    def test_align_by_name(self, capsys, tmp_path):
        from repro.datasets import load_dataset
        from repro.structure import write_pdb_file

        ds = load_dataset("ck34-mini")
        path = tmp_path / "q.pdb"
        write_pdb_file(ds[0], path)
        assert main(["align", str(path), ds[1].name, "--dataset", "ck34-mini"]) == 0
        out = capsys.readouterr().out
        assert "TM-score=" in out
        assert "Rotation matrix" in out


class TestMatrixCommand:
    def test_matrix_export(self, capsys, tmp_path):
        out_file = tmp_path / "m.csv"
        assert main(
            ["matrix", "--dataset", "ck34-mini", "--method", "sse_composition",
             "--output", str(out_file)]
        ) == 0
        assert out_file.exists()
        assert "28 pair scores" in capsys.readouterr().out

    def test_matrix_reports_throughput(self, capsys, tmp_path):
        out_file = tmp_path / "m.csv"
        assert main(
            ["matrix", "--dataset", "ck34-mini", "--method", "sse_composition",
             "--output", str(out_file)]
        ) == 0
        out = capsys.readouterr().out
        assert "streamed" in out
        assert "pairs/s" in out
        assert "wall " in out

    def test_matrix_parallel_csv_byte_identical(self, capsys, tmp_path):
        serial = tmp_path / "serial.csv"
        farmed = tmp_path / "farmed.csv"
        common = ["matrix", "--dataset", "ck34-mini", "--method",
                  "sse_composition"]
        assert main([*common, "--output", str(serial)]) == 0
        assert main([*common, "--output", str(farmed),
                     "--workers", "2", "--chunk", "5"]) == 0
        capsys.readouterr()
        assert farmed.read_bytes() == serial.read_bytes()

    def test_farm_flags_parse(self):
        parser = build_parser()
        args = parser.parse_args(["matrix", "--workers", "4", "--chunk", "16"])
        assert args.workers == 4 and args.chunk == 16
        args = parser.parse_args(["search", "q", "--workers", "2"])
        assert args.workers == 2 and args.chunk == 0
        args = parser.parse_args(
            ["bench-parallel", "--workers-grid", "1,2", "--output", ""]
        )
        assert args.workers_grid == "1,2"
