"""Durable mmap-able similarity-matrix store: layout, durability, flows.

The acceptance contract under test: lookups are byte-identical (at
float32) to direct kernel computation, extending by one structure costs
exactly ``n`` new pairs, a reopened mmap serves without recompute,
corruption is a one-line typed error, and concurrent readers are never
torn by a writer.
"""

import shutil
from pathlib import Path

import numpy as np
import pytest

from repro.cost.counters import CostCounter
from repro.datasets.registry import Dataset
from repro.matstore import (
    METRICS,
    MatStoreError,
    MatrixStore,
    build_store,
    ensure_coverage,
    export_csv,
    extend_store,
    pair_offset,
    store_method,
    triangle_size,
)
from repro.runs import JournalCorrupt, read_journal
from repro.service.registry import chain_content_hash


@pytest.fixture(scope="session")
def mini4(ck34_mini):
    return ck34_mini.subset(4, "mini4")


@pytest.fixture(scope="session")
def built_store(mini4, tmp_path_factory):
    """One committed 4-chain store shared by every read-only test."""
    root = tmp_path_factory.mktemp("matstore") / "store"
    return build_store(mini4, str(root))


@pytest.fixture
def store_copy(built_store, tmp_path):
    """A private copy of the built store for tests that mutate it."""
    root = tmp_path / "store"
    shutil.copytree(built_store.store.root, root)
    return MatrixStore.open(str(root))


class TestIndexing:
    def test_pair_offset_is_condensed_append_order(self):
        # adding chain j appends its j pairs contiguously at the tail
        seen = []
        for j in range(1, 5):
            for i in range(j):
                seen.append(pair_offset(i, j))
        assert seen == list(range(triangle_size(5)))

    def test_triangle_size(self):
        assert triangle_size(0) == 0
        assert triangle_size(34) == 561


class TestBuildAndLookup:
    def test_build_commits_all_pairs(self, built_store, mini4):
        store = built_store.store
        assert built_store.n_computed == triangle_size(len(mini4))
        assert store.n_chains == len(mini4)
        assert store.n_pairs == triangle_size(len(mini4))
        assert list(store.names) == [c.name for c in mini4]

    def test_lookup_byte_identical_to_kernel_at_float32(
        self, built_store, mini4
    ):
        store = built_store.store
        method, _ = store_method(store)
        a, b = mini4[0], mini4[2]
        hit = store.lookup(chain_content_hash(a), chain_content_hash(b))
        assert hit is not None and not hit.swapped
        direct = method.compare(a, b, CostCounter())
        assert set(hit.scores) == set(METRICS) == set(direct)
        for key in METRICS:
            assert hit.scores[key] == float(np.float32(direct[key]))

    def test_swapped_orientation_is_flagged(self, built_store, mini4):
        store = built_store.store
        ha = chain_content_hash(mini4[0])
        hb = chain_content_hash(mini4[1])
        assert store.lookup(ha, hb).swapped is False
        assert store.lookup(hb, ha).swapped is True
        assert store.lookup(ha, hb).scores == store.lookup(hb, ha).scores

    def test_unknown_and_self_lookups_miss(self, built_store, mini4):
        store = built_store.store
        ha = chain_content_hash(mini4[0])
        assert store.lookup(ha, "0" * 64) is None
        assert store.lookup(ha, ha) is None

    def test_reopen_serves_without_recompute(self, built_store, mini4):
        reopened = MatrixStore.open(built_store.store.root)
        ha = chain_content_hash(mini4[0])
        hb = chain_content_hash(mini4[3])
        first = built_store.store.lookup(ha, hb)
        assert reopened.lookup(ha, hb).scores == first.scores

    def test_rebuild_of_covered_dataset_is_noop(self, built_store, mini4):
        again = build_store(mini4, built_store.store.root)
        assert again.n_computed == 0
        assert "already covers" in " ".join(again.notes)

    def test_build_refuses_divergent_content(self, built_store, ck34):
        other = Dataset("other4", ck34.chains[10:14], "disjoint slice")
        with pytest.raises(MatStoreError, match="different"):
            build_store(other, built_store.store.root)

    def test_stats_shape(self, built_store, mini4):
        stats = built_store.store.stats()
        assert stats["n_chains"] == len(mini4)
        assert stats["pairs_stored"] == stats["n_pairs"]
        assert stats["holes"] == 0
        assert stats["block_bytes"] == len(METRICS) * 4 * stats["n_pairs"]

    def test_export_csv_round_trip(self, built_store, tmp_path):
        out = tmp_path / "matrix.csv"
        n = export_csv(built_store.store, str(out))
        lines = out.read_text().splitlines()
        assert n == built_store.store.n_pairs == len(lines) - 1
        assert lines[0] == "chain_a,chain_b," + ",".join(METRICS)


class TestExtend:
    def test_extend_costs_exactly_n_pairs(self, store_copy, ck34_mini):
        n = store_copy.n_chains
        result = extend_store(
            store_copy, ck34_mini.chains[:n], ck34_mini[n]
        )
        assert result.n_computed == n
        assert store_copy.n_chains == n + 1
        assert store_copy.n_pairs == triangle_size(n + 1)
        # the appended row is immediately servable, old rows untouched
        hit = store_copy.lookup(
            chain_content_hash(ck34_mini[0]),
            chain_content_hash(ck34_mini[n]),
        )
        assert hit is not None

    def test_extend_is_idempotent(self, store_copy, ck34_mini):
        n = store_copy.n_chains
        extend_store(store_copy, ck34_mini.chains[:n], ck34_mini[n])
        again = extend_store(
            store_copy, ck34_mini.chains[: n + 1], ck34_mini[n]
        )
        assert again.n_computed == 0
        assert "already stored" in " ".join(again.notes)

    def test_extend_refuses_wrong_corpus(self, store_copy, ck34):
        wrong = ck34.chains[10 : 10 + store_copy.n_chains]
        with pytest.raises(MatStoreError, match="does not match"):
            extend_store(store_copy, wrong, ck34[20])

    def test_ensure_coverage_prefix_extends(self, store_copy, ck34_mini):
        n0 = store_copy.n_chains
        result = ensure_coverage(store_copy.root, ck34_mini)
        assert result.store.n_chains == len(ck34_mini)
        # per-chain extends: n0 + n0+1 + ... + n-1 pairs, nothing more
        assert result.n_computed == sum(range(n0, len(ck34_mini)))

    def test_ensure_coverage_refuses_non_prefix(self, store_copy, ck34_mini):
        shuffled = Dataset(
            "shuffled", tuple(reversed(ck34_mini.chains)), "reversed"
        )
        with pytest.raises(MatStoreError, match="not a prefix"):
            ensure_coverage(store_copy.root, shuffled)


class TestDurability:
    def test_verify_clean_store(self, built_store):
        report = built_store.store.verify()
        assert report["pairs_checked"] == built_store.store.n_pairs
        assert report["dropped_journal_lines"] == 0

    def test_corrupt_journal_line_is_typed_error(self, store_copy):
        path = Path(store_copy.journal_path)
        lines = path.read_text().splitlines(keepends=True)
        lines[1] = lines[1].replace(lines[1][10], "x", 1)
        path.write_text("".join(lines))
        with pytest.raises(JournalCorrupt):
            read_journal(path)
        with pytest.raises(JournalCorrupt):
            store_copy.verify()

    def test_torn_tail_line_is_dropped_not_fatal(self, store_copy):
        path = Path(store_copy.journal_path)
        text = path.read_text()
        path.write_text(text + "0,9,torn-half-line")
        state = read_journal(path)
        assert state.dropped == 1
        # but a committed pair missing its journal row fails verify
        # loudly once the tail actually belonged to the matrix
        report = store_copy.verify()
        assert report["dropped_journal_lines"] == 1

    def test_corrupt_block_word_is_typed_error(self, store_copy):
        block = Path(store_copy.root) / "blocks" / f"{METRICS[0]}.f32"
        data = bytearray(block.read_bytes())
        data[:4] = np.float32(123.456).tobytes()
        block.write_bytes(bytes(data))
        with pytest.raises(MatStoreError, match=METRICS[0]):
            store_copy.verify()

    def test_concurrent_reader_never_sees_torn_state(
        self, store_copy, ck34_mini
    ):
        """A reader opened before an extend keeps serving its own
        committed snapshot; the appended row only becomes visible to
        readers opened after the header swap."""
        old_reader = MatrixStore.open(store_copy.root)
        n0, p0 = old_reader.n_chains, old_reader.n_pairs
        ha = chain_content_hash(ck34_mini[0])
        before = old_reader.lookup(ha, chain_content_hash(ck34_mini[1]))
        extend_store(
            store_copy, ck34_mini.chains[:n0], ck34_mini[n0]
        )
        # snapshot untouched: same extent, same scores, new chain unseen
        assert (old_reader.n_chains, old_reader.n_pairs) == (n0, p0)
        after = old_reader.lookup(ha, chain_content_hash(ck34_mini[1]))
        assert after.scores == before.scores
        assert old_reader.lookup(ha, chain_content_hash(ck34_mini[n0])) is None
        fresh = MatrixStore.open(store_copy.root)
        assert fresh.lookup(ha, chain_content_hash(ck34_mini[n0])) is not None


class TestJournalIdentity:
    """Journal rows are keyed by pair indices only; ``journal.ctx`` ties
    an uncommitted tail to the chain content it was computed for, so a
    resume can never graft scores of different structures onto the
    store."""

    @staticmethod
    def _crash_extend(store, new_chain, scores=0.123):
        """Leave the store as an extend of ``new_chain`` interrupted
        after journaling pair (0, n) would: one uncommitted row (with
        recognisable sentinel scores) plus the matching context."""
        from repro.matstore.build import _context_digest

        n = store.n_chains
        store.write_journal_context(
            _context_digest([*store.hashes, chain_content_hash(new_chain)])
        )
        with store.journal() as journal:
            journal.append(0, n, {m: scores for m in METRICS})
        return n

    def test_resume_of_same_chain_reuses_journaled_tail(
        self, store_copy, ck34_mini
    ):
        n = store_copy.n_chains
        x = ck34_mini[n]
        self._crash_extend(store_copy, x)
        result = extend_store(store_copy, ck34_mini.chains[:n], x)
        assert result.n_journaled == 1
        assert result.n_computed == n - 1
        hit = store_copy.lookup(
            chain_content_hash(ck34_mini[0]), chain_content_hash(x)
        )
        assert hit.scores[METRICS[0]] == float(np.float32(0.123))

    def test_tail_for_different_chain_is_discarded_not_reused(
        self, store_copy, ck34_mini
    ):
        n = store_copy.n_chains
        x, y = ck34_mini[n], ck34_mini[n + 1]
        self._crash_extend(store_copy, x)  # crashed extend of X...
        result = extend_store(store_copy, ck34_mini.chains[:n], y)  # ...then Y
        assert result.n_journaled == 0
        assert result.n_computed == n
        assert any("discarded" in note for note in result.notes)
        # Y's row holds Y's real scores, not X's sentinel
        method, _ = store_method(store_copy)
        direct = method.compare(ck34_mini[0], y, CostCounter())
        hit = store_copy.lookup(
            chain_content_hash(ck34_mini[0]), chain_content_hash(y)
        )
        for key in METRICS:
            assert hit.scores[key] == float(np.float32(direct[key]))
        # committed rows survived the journal rewrite byte-identically
        assert store_copy.verify()["pairs_checked"] == store_copy.n_pairs

    def test_uncommitted_tail_without_context_is_discarded(
        self, tmp_path, mini4
    ):
        """A leftover journal on an empty-header store (crashed build of
        unknown content) is recomputed, never trusted."""
        method, fingerprint = store_method()
        store = MatrixStore.create(
            str(tmp_path / "stale"), method.name, fingerprint
        )
        with store.journal() as journal:
            journal.append(0, 1, {m: 0.987 for m in METRICS})
        result = build_store(mini4, store.root)
        assert result.n_journaled == 0
        assert result.n_computed == triangle_size(len(mini4))
        assert any("discarded" in note for note in result.notes)
        direct = method.compare(mini4[0], mini4[1], CostCounter())
        hit = result.store.lookup(
            chain_content_hash(mini4[0]), chain_content_hash(mini4[1])
        )
        assert hit.scores[METRICS[0]] == float(np.float32(direct[METRICS[0]]))


class TestHoles:
    def test_nan_rows_are_misses_not_hits(self, tmp_path, ck34_mini):
        """NaN holes (prefilter-demoted pairs) journal and commit fine
        but never serve as lookups."""
        chains = ck34_mini.chains[:3]
        names = [c.name for c in chains]
        hashes = [chain_content_hash(c) for c in chains]
        store = MatrixStore.create(
            str(tmp_path / "holes"), "tmalign_full", "f" * 64
        )
        rows = {
            (0, 1): {m: 0.5 for m in METRICS},
            (0, 2): {m: float("nan") for m in METRICS},
            (1, 2): {m: 0.25 for m in METRICS},
        }
        with store.journal() as journal:
            for (i, j), scores in rows.items():
                journal.append(i, j, scores)
        tail = {
            m: np.array(
                [rows[(0, 1)][m], rows[(0, 2)][m], rows[(1, 2)][m]], "<f4"
            )
            for m in METRICS
        }
        store.commit_rows(names, hashes, tail)
        assert store.lookup(hashes[0], hashes[1]).scores[METRICS[0]] == 0.5
        assert store.lookup(hashes[0], hashes[2]) is None  # the hole
        assert store.stats()["holes"] == 1
        report = store.verify()
        assert report["holes"] == 1


class TestSearchIntegration:
    def test_all_vs_all_serves_from_store(self, built_store, mini4):
        from repro.psc.methods import TMAlignFullMethod, TMAlignMethod
        from repro.psc.search import all_vs_all, consult_store

        method = TMAlignFullMethod()
        served = consult_store(built_store.store, mini4, method)
        assert len(served) == triangle_size(len(mini4))
        table = all_vs_all(mini4, method=method, store=built_store.store.root)
        assert len(table) == triangle_size(len(mini4))
        direct = method.compare(mini4[0], mini4[1], CostCounter())
        got = table[(mini4[0].name, mini4[1].name)]
        for key in METRICS:
            assert got[key] == float(np.float32(direct[key]))
        # the plain tmalign method is served the projected key subset
        narrow = all_vs_all(
            mini4, method=TMAlignMethod(), store=built_store.store.root
        )
        assert set(narrow[(mini4[0].name, mini4[1].name)]) < set(METRICS)

    def test_consult_store_refuses_mismatched_method(self, built_store, mini4):
        from repro.psc import get_method
        from repro.psc.search import consult_store

        with pytest.raises(ValueError, match="cannot serve"):
            consult_store(
                built_store.store, mini4, get_method("sse_composition")
            )

    def test_populate_builds_then_serves(self, mini4, tmp_path):
        from repro.psc.methods import TMAlignFullMethod
        from repro.psc.search import all_vs_all

        root = str(tmp_path / "populated")
        table = all_vs_all(
            mini4, method=TMAlignFullMethod(), store=root, populate=True
        )
        assert len(table) == triangle_size(len(mini4))
        assert MatrixStore.open(root).n_pairs == triangle_size(len(mini4))

    def test_populate_forwards_prefilter_to_build(self, mini4, tmp_path):
        """The build step honours the caller's prefilter economy:
        demoted pairs become journaled NaN holes, never kernel runs."""
        from repro.psc.methods import TMAlignFullMethod
        from repro.psc.search import all_vs_all
        from repro.seqalign.prefilter import PrefilterConfig

        root = str(tmp_path / "populated-pf")
        table = all_vs_all(
            mini4,
            method=TMAlignFullMethod(),
            store=root,
            populate=True,
            prefilter=PrefilterConfig(keep=0.25, min_keep=1),
        )
        stats = MatrixStore.open(root).stats()
        assert stats["holes"] > 0
        assert stats["pairs_stored"] == len(table)
