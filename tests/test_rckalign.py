"""rckAlign application on the simulated SCC."""

import pytest

from repro.baselines.serial import SerialConfig, run_serial
from repro.core.rckalign import RckAlignConfig, build_jobs, run_rckalign
from repro.core.skeletons import FarmConfig
from repro.datasets import load_dataset
from repro.psc.evaluator import EvalMode, JobEvaluator


@pytest.fixture(scope="module")
def ck_mini_eval():
    ds = load_dataset("ck34-mini")
    return ds, JobEvaluator(ds)


class TestBasicRun:
    def test_all_pairs_processed(self, ck_mini_eval):
        ds, ev = ck_mini_eval
        rep = run_rckalign(RckAlignConfig(dataset=ds, n_slaves=4), evaluator=ev)
        n = len(ds)
        assert rep.n_jobs == n * (n - 1) // 2
        assert len(rep.results) == rep.n_jobs
        pairs = {(r.payload["i"], r.payload["j"]) for r in rep.results}
        assert len(pairs) == rep.n_jobs

    def test_report_fields(self, ck_mini_eval):
        ds, ev = ck_mini_eval
        rep = run_rckalign(RckAlignConfig(dataset=ds, n_slaves=3), evaluator=ev)
        assert rep.total_seconds > 0
        assert rep.load_seconds > 0
        assert rep.n_slaves == 3
        assert sum(rep.slave_jobs.values()) == rep.n_jobs
        assert 0 < rep.parallel_efficiency <= 1.0
        assert rep.noc_messages > rep.n_jobs
        assert "rckAlign" in rep.summary()

    def test_deterministic(self, ck_mini_eval):
        ds, ev = ck_mini_eval
        cfg = RckAlignConfig(dataset=ds, n_slaves=5)
        a = run_rckalign(cfg, evaluator=ev)
        b = run_rckalign(cfg, evaluator=ev)
        assert a.total_seconds == b.total_seconds
        assert a.sim_events == b.sim_events


class TestScaling:
    def test_speedup_monotone(self, ck_mini_eval):
        ds, ev = ck_mini_eval
        times = [
            run_rckalign(
                RckAlignConfig(dataset=ds, n_slaves=n), evaluator=ev
            ).total_seconds
            for n in (1, 2, 4, 8)
        ]
        assert times[0] > times[1] > times[2] > times[3]

    def test_near_linear_at_low_counts(self, ck_mini_eval):
        ds, ev = ck_mini_eval
        t1 = run_rckalign(RckAlignConfig(dataset=ds, n_slaves=1), evaluator=ev)
        t4 = run_rckalign(RckAlignConfig(dataset=ds, n_slaves=4), evaluator=ev)
        speedup = t1.total_seconds / t4.total_seconds
        assert 3.2 < speedup <= 4.05

    def test_one_slave_matches_serial_baseline(self, ck_mini_eval):
        """Paper: rckAlign with 1 slave ~ the preloading serial run."""
        ds, ev = ck_mini_eval
        serial = run_serial(SerialConfig(dataset=ds), evaluator=ev)
        rck = run_rckalign(RckAlignConfig(dataset=ds, n_slaves=1), evaluator=ev)
        assert rck.total_seconds == pytest.approx(serial.total_seconds, rel=0.05)


class TestConsistencyWithBaselines:
    def test_slave_compute_equals_serial_compute(self, ck_mini_eval):
        """Total busy compute across slaves equals the serial compute
        time — the identical evaluator guarantees comparable speedups."""
        ds, ev = ck_mini_eval
        serial = run_serial(SerialConfig(dataset=ds), evaluator=ev)
        rck = run_rckalign(RckAlignConfig(dataset=ds, n_slaves=4), evaluator=ev)
        assert sum(rep for rep in rck.slave_busy_seconds.values()) == pytest.approx(
            serial.compute_seconds, rel=1e-6
        )


class TestModes:
    def test_measured_mode_returns_scores(self):
        ds = load_dataset("ck34").subset(4, "ck34-tiny")
        ev = JobEvaluator(ds, mode=EvalMode.MEASURED)
        rep = run_rckalign(
            RckAlignConfig(dataset=ds, n_slaves=2, mode=EvalMode.MEASURED),
            evaluator=ev,
        )
        for r in rep.results:
            assert "tm_norm_a" in r.payload
            assert 0 <= r.payload["tm_norm_a"] <= 1

    def test_measured_cache_reused_across_sweep(self):
        ds = load_dataset("ck34").subset(4, "ck34-tiny2")
        ev = JobEvaluator(ds, mode=EvalMode.MEASURED)
        run_rckalign(
            RckAlignConfig(dataset=ds, n_slaves=2, mode=EvalMode.MEASURED),
            evaluator=ev,
        )
        import time

        t0 = time.time()
        run_rckalign(
            RckAlignConfig(dataset=ds, n_slaves=3, mode=EvalMode.MEASURED),
            evaluator=ev,
        )
        assert time.time() - t0 < 2.0  # cache hit: no realignment


class TestConfigValidation:
    def test_too_many_slaves_rejected(self):
        with pytest.raises(ValueError):
            run_rckalign(RckAlignConfig(dataset="ck34-mini", n_slaves=48))

    def test_zero_slaves_rejected(self):
        with pytest.raises(ValueError):
            run_rckalign(RckAlignConfig(dataset="ck34-mini", n_slaves=0))

    def test_foreign_evaluator_rejected(self, ck_mini_eval):
        _, ev = ck_mini_eval
        with pytest.raises(ValueError):
            run_rckalign(RckAlignConfig(dataset="rs119-mini", n_slaves=2), evaluator=ev)

    def test_ordered_pairs_doubles_jobs(self, ck_mini_eval):
        ds, _ = ck_mini_eval
        ev = JobEvaluator(ds)
        unordered = build_jobs(ds, ev)
        ordered = build_jobs(ds, ev, ordered=True)
        assert len(ordered) == 2 * len(unordered)


class TestBalancingIntegration:
    def test_balanced_not_slower(self, ck_mini_eval):
        ds, ev = ck_mini_eval
        base = run_rckalign(
            RckAlignConfig(dataset=ds, n_slaves=7, balancing="none"), evaluator=ev
        )
        lpt = run_rckalign(
            RckAlignConfig(dataset=ds, n_slaves=7, balancing="longest_first"),
            evaluator=ev,
        )
        assert lpt.total_seconds <= base.total_seconds * 1.05

    def test_unknown_strategy_rejected(self, ck_mini_eval):
        ds, ev = ck_mini_eval
        with pytest.raises(KeyError):
            run_rckalign(
                RckAlignConfig(dataset=ds, n_slaves=2, balancing="magic"),
                evaluator=ev,
            )
