"""Smoke tests: every example script must run end to end.

The slow measured-mode example (one_vs_all_search) is exercised through
its main() on a reduced problem via monkeypatching where needed.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def load_example(name):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_quickstart(self, capsys):
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "TM-align result" in out
        assert "Alignment" in out

    def test_skeleton_playground(self, capsys):
        load_example("skeleton_playground").main()
        out = capsys.readouterr().out
        assert "seq" in out and "farm" in out

    def test_allvsall_scc_speedup(self, capsys):
        load_example("allvsall_scc_speedup").main("ck34-mini")
        out = capsys.readouterr().out
        assert "speedup" in out

    def test_mcpsc_partitioning(self, capsys):
        load_example("mcpsc_partitioning").main()
        out = capsys.readouterr().out
        assert "partitioning" in out
        assert "makespan" in out

    def test_trace_gantt(self, capsys):
        load_example("trace_gantt").main()
        out = capsys.readouterr().out
        assert "rck00" in out and "#" in out

    def test_database_update(self, capsys):
        load_example("database_update").main()
        out = capsys.readouterr().out
        assert "seed build" in out
        assert "never recomputed" in out

    @pytest.mark.slow
    def test_one_vs_all_search(self, capsys):
        """Measured-mode TM-align over 33 pairs: the slowest example
        (~1-3 min); marked slow, run with `pytest -m slow`."""
        load_example("one_vs_all_search").main()
        out = capsys.readouterr().out
        assert "same family" in out
