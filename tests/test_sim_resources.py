"""Resources and stores."""

import pytest

from repro.sim.engine import Environment, SimulationError
from repro.sim.resources import PriorityResource, Resource, Store


class TestResource:
    def test_serializes_unit_capacity(self):
        env = Environment()
        res = Resource(env, capacity=1)
        log = []

        def worker(tag):
            req = res.request()
            yield req
            log.append((env.now, tag, "in"))
            yield env.timeout(1.0)
            res.release(req)

        for tag in "abc":
            env.process(worker(tag))
        env.run()
        assert [entry[0] for entry in log] == [0.0, 1.0, 2.0]

    def test_capacity_two_overlaps(self):
        env = Environment()
        res = Resource(env, capacity=2)
        starts = []

        def worker():
            req = res.request()
            yield req
            starts.append(env.now)
            yield env.timeout(1.0)
            res.release(req)

        for _ in range(4):
            env.process(worker())
        env.run()
        assert starts == [0.0, 0.0, 1.0, 1.0]

    def test_fifo_granting(self):
        env = Environment()
        res = Resource(env)
        order = []

        def worker(tag):
            req = res.request()
            yield req
            order.append(tag)
            yield env.timeout(0.1)
            res.release(req)

        for tag in "abcde":
            env.process(worker(tag))
        env.run()
        assert order == list("abcde")

    def test_release_without_hold_rejected(self):
        env = Environment()
        res = Resource(env)
        req = res.request()

        def bad():
            yield req
            res.release(req)
            res.release(req)

        env.process(bad())
        with pytest.raises(SimulationError):
            env.run()

    def test_stats(self):
        env = Environment()
        res = Resource(env)

        def worker():
            req = res.request()
            yield req
            yield env.timeout(1)
            res.release(req)

        for _ in range(3):
            env.process(worker())
        env.run()
        assert res.total_grants == 3
        assert res.peak_queue_len == 2

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            Resource(Environment(), capacity=0)


class TestPriorityResource:
    def test_priority_order(self):
        env = Environment()
        res = PriorityResource(env)
        order = []

        def holder():
            req = res.request(priority=0)
            yield req
            yield env.timeout(1.0)
            res.release(req)

        def worker(tag, prio):
            yield env.timeout(0.1)  # arrive while holder holds
            req = res.request(priority=prio)
            yield req
            order.append(tag)
            res.release(req)

        env.process(holder())
        env.process(worker("low", 5))
        env.process(worker("high", 1))
        env.run()
        assert order == ["high", "low"]


class TestStore:
    def test_put_then_get(self):
        env = Environment()
        store = Store(env)
        got = {}

        def consumer():
            got["v"] = yield store.get()

        store.put("item")
        env.process(consumer())
        env.run()
        assert got["v"] == "item"

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)
        got = {}

        def consumer():
            got["v"] = yield store.get()
            got["t"] = env.now

        def producer():
            yield env.timeout(3.0)
            store.put(99)

        env.process(consumer())
        env.process(producer())
        env.run()
        assert got == {"v": 99, "t": 3.0}

    def test_fifo_order(self):
        env = Environment()
        store = Store(env)
        for k in range(5):
            store.put(k)
        out = []

        def consumer():
            for _ in range(5):
                out.append((yield store.get()))

        env.process(consumer())
        env.run()
        assert out == [0, 1, 2, 3, 4]

    def test_try_get(self):
        env = Environment()
        store = Store(env)
        assert store.try_get() == (False, None)
        store.put("x")
        assert store.try_get() == (True, "x")
        assert store.try_get() == (False, None)

    def test_peek_and_len(self):
        env = Environment()
        store = Store(env)
        assert store.peek() is None
        store.put(1)
        store.put(2)
        assert store.peek() == 1
        assert len(store) == 2

    def test_multiple_getters_fifo(self):
        env = Environment()
        store = Store(env)
        got = []

        def consumer(tag):
            v = yield store.get()
            got.append((tag, v))

        env.process(consumer("first"))
        env.process(consumer("second"))

        def producer():
            yield env.timeout(1)
            store.put("a")
            store.put("b")

        env.process(producer())
        env.run()
        assert got == [("first", "a"), ("second", "b")]

    def test_stats(self):
        env = Environment()
        store = Store(env)
        store.put(1)
        store.put(2)
        assert store.total_puts == 2
        assert store.peak_depth == 2
