"""PSC quality metrics: ROC/AUC, precision@k, method benchmarking."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import load_dataset
from repro.psc.metrics import (
    evaluate_method_on_dataset,
    family_auc,
    precision_at_k,
    roc_auc,
)
from repro.psc.methods import SSECompositionMethod
from repro.psc.search import RankedHit, all_vs_all, one_vs_all


class TestRocAuc:
    def test_perfect_separation(self):
        assert roc_auc([0.9, 0.8, 0.2, 0.1], [True, True, False, False]) == 1.0

    def test_inverted(self):
        assert roc_auc([0.1, 0.2, 0.8, 0.9], [True, True, False, False]) == 0.0

    def test_random_is_half(self):
        rng = np.random.default_rng(0)
        scores = rng.uniform(size=2000)
        labels = rng.uniform(size=2000) < 0.5
        assert roc_auc(scores, labels) == pytest.approx(0.5, abs=0.05)

    def test_ties_get_half_credit(self):
        assert roc_auc([0.5, 0.5], [True, False]) == pytest.approx(0.5)

    def test_needs_both_classes(self):
        with pytest.raises(ValueError):
            roc_auc([1.0, 2.0], [True, True])

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_monotone_transform_invariant(self, seed):
        rng = np.random.default_rng(seed)
        scores = rng.normal(size=30)
        labels = rng.uniform(size=30) < 0.4
        if labels.all() or not labels.any():
            return
        base = roc_auc(scores, labels)
        assert roc_auc(np.exp(scores), labels) == pytest.approx(base)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            roc_auc([1.0], [True, False])


class TestFamilyMetrics:
    @pytest.fixture(scope="class")
    def table(self):
        ds = load_dataset("ck34")
        return ds, all_vs_all(ds, method=SSECompositionMethod())

    def test_family_auc_above_chance(self, table):
        ds, tab = table
        auc = family_auc(tab, ds, "similarity")
        assert auc > 0.6  # even the crude SS method beats chance

    def test_precision_at_k(self, table):
        ds, _ = table
        query = ds.by_name("ck_globin_00")
        hits = one_vs_all(query, ds, method=SSECompositionMethod())
        p7 = precision_at_k(hits, ds, "globin", 7)
        assert 0.0 <= p7 <= 1.0

    def test_precision_perfect_case(self):
        ds = load_dataset("ck34")
        hits = [RankedHit(f"ck_globin_0{k}", 1.0 - 0.01 * k, {}) for k in range(1, 5)]
        assert precision_at_k(hits, ds, "globin", 4) == 1.0

    def test_precision_k_validation(self):
        ds = load_dataset("ck34-mini")
        with pytest.raises(ValueError):
            precision_at_k([], ds, "globin", 0)


class TestMethodQualityOrdering:
    def test_tmalign_auc_beats_sse_on_mini(self):
        """TM-align must be the better fold detector — the reason it is
        worth parallelizing at all."""
        from repro.psc.methods import TMAlignMethod

        # use a subset with 2 full families for a fast but meaningful AUC
        ds = load_dataset("ck34").subset(12, "ck34-quality")
        tm = evaluate_method_on_dataset(TMAlignMethod(), ds)
        sse = evaluate_method_on_dataset(SSECompositionMethod(), ds)
        assert tm.auc > 0.95
        assert tm.auc >= sse.auc
