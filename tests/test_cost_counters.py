"""Op counters."""

import pytest

from repro.cost.counters import OP_CLASSES, CostCounter


class TestCostCounter:
    def test_starts_at_zero(self):
        ctr = CostCounter()
        assert all(ctr[c] == 0 for c in OP_CLASSES)

    def test_add_accumulates(self):
        ctr = CostCounter()
        ctr.add("dp_cell", 10)
        ctr.add("dp_cell", 5)
        assert ctr["dp_cell"] == 15

    def test_unknown_class_rejected(self):
        with pytest.raises(KeyError):
            CostCounter().add("quantum_flop", 1)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            CostCounter().add("dp_cell", -1)

    def test_merge(self):
        a = CostCounter({"dp_cell": 3})
        b = CostCounter({"dp_cell": 4, "kabsch": 1})
        a.merge(b)
        assert a["dp_cell"] == 7 and a["kabsch"] == 1

    def test_copy_is_independent(self):
        a = CostCounter({"kabsch": 2})
        b = a.copy()
        b.add("kabsch", 1)
        assert a["kabsch"] == 2 and b["kabsch"] == 3

    def test_total_with_subset(self):
        ctr = CostCounter({"dp_cell": 5, "kabsch": 2})
        assert ctr.total(["dp_cell"]) == 5
        assert ctr.total() == 7

    def test_equality(self):
        assert CostCounter({"kabsch": 1}) == CostCounter({"kabsch": 1})
        assert CostCounter({"kabsch": 1}) != CostCounter({"kabsch": 2})

    def test_init_validates(self):
        with pytest.raises(KeyError):
            CostCounter({"bogus": 1})

    def test_fractional_counts_allowed(self):
        ctr = CostCounter()
        ctr.add("align_fixed", 0.05)
        assert ctr["align_fixed"] == pytest.approx(0.05)
