"""Serial and distributed (MCPC/NFS) baselines."""

import pytest

from repro.baselines.distributed import DistributedConfig, run_distributed
from repro.baselines.serial import SerialConfig, run_serial
from repro.cost.cpu import AMD_ATHLON_2400, P54C_800
from repro.datasets import load_dataset
from repro.psc.evaluator import JobEvaluator


@pytest.fixture(scope="module")
def mini():
    ds = load_dataset("ck34-mini")
    return ds, JobEvaluator(ds)


class TestSerial:
    def test_job_count(self, mini):
        ds, ev = mini
        rep = run_serial(SerialConfig(dataset=ds), evaluator=ev)
        assert rep.n_jobs == len(ds) * (len(ds) - 1) // 2
        assert len(rep.per_pair_seconds) == rep.n_jobs

    def test_amd_beats_p54c(self, mini):
        ds, ev = mini
        slow = run_serial(SerialConfig(dataset=ds, cpu=P54C_800), evaluator=ev)
        fast = run_serial(SerialConfig(dataset=ds, cpu=AMD_ATHLON_2400), evaluator=ev)
        assert fast.total_seconds < slow.total_seconds

    def test_total_is_load_plus_compute(self, mini):
        ds, ev = mini
        rep = run_serial(SerialConfig(dataset=ds), evaluator=ev)
        assert rep.total_seconds == pytest.approx(
            rep.load_seconds + rep.compute_seconds
        )
        assert rep.compute_seconds == pytest.approx(sum(rep.per_pair_seconds))

    def test_table3_absolute_numbers(self):
        """Full datasets must reproduce Table III within 1%."""
        from repro.cost.calibration import TABLE3_SECONDS

        for ds_name in ("ck34",):
            ds = load_dataset(ds_name)
            ev = JobEvaluator(ds)
            for cpu, key in ((AMD_ATHLON_2400, "amd"), (P54C_800, "p54c")):
                rep = run_serial(SerialConfig(dataset=ds, cpu=cpu), evaluator=ev)
                want = TABLE3_SECONDS[key][ds_name]
                assert rep.total_seconds == pytest.approx(want, rel=0.01)

    def test_scores_present(self, mini):
        ds, ev = mini
        rep = run_serial(SerialConfig(dataset=ds), evaluator=ev)
        assert len(rep.scores) == rep.n_jobs


class TestDistributed:
    def test_completes_all_jobs(self, mini):
        ds, ev = mini
        rep = run_distributed(DistributedConfig(dataset=ds, n_cores=4), evaluator=ev)
        assert rep.n_jobs == len(ds) * (len(ds) - 1) // 2
        assert sum(rep.per_core_jobs.values()) == rep.n_jobs

    def test_slower_than_serial_on_same_core_count_one(self, mini):
        """At one core the per-job spawn+NFS overhead must show."""
        ds, ev = mini
        serial = run_serial(SerialConfig(dataset=ds), evaluator=ev)
        dist = run_distributed(DistributedConfig(dataset=ds, n_cores=1), evaluator=ev)
        assert dist.total_seconds > serial.total_seconds * 1.5

    def test_scales_with_cores(self, mini):
        ds, ev = mini
        t1 = run_distributed(DistributedConfig(dataset=ds, n_cores=1), evaluator=ev)
        t4 = run_distributed(DistributedConfig(dataset=ds, n_cores=4), evaluator=ev)
        assert 2.5 < t1.total_seconds / t4.total_seconds <= 4.2

    def test_nfs_utilization_reported(self, mini):
        ds, ev = mini
        rep = run_distributed(DistributedConfig(dataset=ds, n_cores=4), evaluator=ev)
        assert 0 < rep.nfs_utilization < 1

    def test_nfs_contention_hurts_at_scale(self, mini):
        """Starving the NFS bandwidth must slow the many-core run much
        more than the single-core run."""
        ds, ev = mini
        slow_nfs = dict(nfs_bandwidth_bytes_per_s=2e6)
        t1 = run_distributed(
            DistributedConfig(dataset=ds, n_cores=1, **slow_nfs), evaluator=ev
        )
        t8 = run_distributed(
            DistributedConfig(dataset=ds, n_cores=8, **slow_nfs), evaluator=ev
        )
        # with 8 cores the shared disk saturates: nowhere near 8x
        assert t1.total_seconds / t8.total_seconds < 6.0

    def test_zero_cores_rejected(self, mini):
        ds, ev = mini
        with pytest.raises(ValueError):
            run_distributed(DistributedConfig(dataset=ds, n_cores=0), evaluator=ev)

    def test_deterministic(self, mini):
        ds, ev = mini
        cfg = DistributedConfig(dataset=ds, n_cores=3)
        assert (
            run_distributed(cfg, evaluator=ev).total_seconds
            == run_distributed(cfg, evaluator=ev).total_seconds
        )


class TestPaperComparison:
    def test_rckalign_beats_distributed_everywhere(self, mini):
        """The paper's headline Exp-I claim at mini scale."""
        from repro.core.rckalign import RckAlignConfig, run_rckalign

        ds, ev = mini
        for n in (1, 4, 8):
            rck = run_rckalign(RckAlignConfig(dataset=ds, n_slaves=n), evaluator=ev)
            dist = run_distributed(
                DistributedConfig(dataset=ds, n_cores=n), evaluator=ev
            )
            assert rck.total_seconds < dist.total_seconds
