"""Traceback robustness of nw_align under ties and near-equal floats.

The traceback recovers predecessor states by *exact float equality* on
propagated DP values, which is correct only if every comparison re-uses
the same float expression the forward pass evaluated.  These tests feed
it the adversarial inputs where that contract is easiest to break:
matrices full of exact ties (many cells with identical values, so every
equality test matches several predecessors), values that are inexact in
binary (0.1, 1/3), and cells separated by a single ulp.  In every case
the traceback must terminate with a structurally valid alignment whose
recomputed score equals the DP optimum.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tmalign.dp import nw_align, nw_score_only


def alignment_score(ali, score, gap_open):
    """Score of a traced alignment under the DP's own gap model:
    matched cells plus one ``gap_open`` per interior gap run (an
    L-shaped jump is two runs); leading runs free, trailing runs
    charged (the traceback starts at the corner)."""
    ai = ali.ai.tolist()
    aj = ali.aj.tolist()
    la, lb = score.shape
    if not ai:  # empty alignment = one all-gap L-run
        return gap_open
    total = sum(score[i, j] for i, j in zip(ai, aj))
    runs = 0
    for k in range(len(ai) - 1):
        di = ai[k + 1] - ai[k]
        dj = aj[k + 1] - aj[k]
        if di > 1 and dj > 1:
            runs += 2
        elif di > 1 or dj > 1:
            runs += 1
    runs += int(ai[-1] < la - 1) + int(aj[-1] < lb - 1)
    return total + gap_open * runs


def check(score, gap_open):
    """The three invariants the traceback must uphold on ANY input."""
    score = np.asarray(score, dtype=np.float64)
    ali = nw_align(score, gap_open)
    la, lb = score.shape
    # structurally valid: strictly increasing, in bounds
    if len(ali) >= 2:
        assert (np.diff(ali.ai) > 0).all()
        assert (np.diff(ali.aj) > 0).all()
    if len(ali):
        assert 0 <= ali.ai.min() and ali.ai.max() < la
        assert 0 <= ali.aj.min() and ali.aj.max() < lb
    # the traced path achieves the DP optimum
    assert ali.dp_score == nw_score_only(score, gap_open)
    assert alignment_score(ali, score, gap_open) == pytest.approx(
        ali.dp_score, abs=1e-9
    )
    return ali


class TestExactTies:
    def test_all_equal_cells_exact_value(self):
        check(np.full((9, 9), 0.5), -0.6)

    def test_all_equal_cells_inexact_value(self):
        # 0.1 is inexact in binary: any traceback that *recomputes*
        # instead of re-adding the forward expression drifts here
        ali = check(np.full((8, 11), 0.1), -0.6)
        assert len(ali) == 8  # ties must not shorten the alignment

    def test_all_zeros_square_and_ragged(self):
        check(np.zeros((6, 6)), -0.6)
        check(np.zeros((3, 12)), -0.6)
        check(np.zeros((12, 3)), -0.6)

    def test_two_valued_checkerboard(self):
        score = np.zeros((10, 10))
        score[::2, ::2] = 0.1
        score[1::2, 1::2] = 0.1
        check(score, -0.1)  # gap penalty exactly equal to a cell value

    def test_gap_open_ties_with_match_gain(self):
        # match gain == gap cost: M-vs-gap states tie everywhere
        check(np.full((7, 7), 0.6), -0.6)

    def test_inexact_gap_open(self):
        check(np.full((6, 9), 1.0 / 3.0), -1.0 / 3.0)


class TestNearEqualFloats:
    def test_one_ulp_apart_cells(self):
        base = 0.7
        score = np.full((8, 8), base)
        score[3, 3] = np.nextafter(base, 1.0)  # one ulp larger
        score[5, 2] = np.nextafter(base, 0.0)  # one ulp smaller
        check(score, -0.6)

    def test_sums_that_collide_after_rounding(self):
        # a + b == c + d after rounding though (a, b) != (c, d):
        # equality-based predecessor recovery must still pick a
        # consistent path
        score = np.array(
            [
                [0.1, 0.3, 0.2],
                [0.2, 0.2, 0.1],
                [0.3, 0.1, 0.3],
            ]
        )
        check(score, -0.2)

    def test_tiny_magnitudes(self):
        check(np.full((5, 7), 1e-300), -1e-300)


class TestRandomTieHeavy:
    @given(
        st.integers(0, 2**31 - 1),
        st.integers(2, 12),
        st.integers(2, 12),
        st.sampled_from([-0.6, -0.1, -1.0 / 3.0]),
    )
    @settings(max_examples=60, deadline=None)
    def test_small_alphabet_matrices(self, seed, la, lb, gap_open):
        # cells drawn from {0, 0.1, 0.2}: collisions everywhere
        rng = np.random.default_rng(seed)
        score = rng.choice([0.0, 0.1, 0.2], size=(la, lb))
        check(score, gap_open)

    @given(st.integers(0, 2**31 - 1), st.integers(2, 10))
    @settings(max_examples=40, deadline=None)
    def test_duplicated_rows_and_columns(self, seed, n):
        rng = np.random.default_rng(seed)
        row = rng.choice([0.0, 0.25, 0.5], size=n)
        score = np.tile(row, (n, 1))  # every row identical
        check(score, -0.3)
        check(score.T.copy(), -0.3)
