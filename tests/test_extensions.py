"""Extensions: contact method, RCCE collectives, tracing, report,
streaming master, blocked pairs, frequency/memory ablations."""

import numpy as np
import pytest

from repro.cost.counters import CostCounter
from repro.datasets import load_dataset
from repro.datasets.pairs import all_vs_all_pairs, blocked_pairs
from repro.psc.contact import ContactProfileMethod
from repro.scc.machine import SccMachine
from repro.scc.rcce import Rcce
from repro.scc.trace import Tracer, render_gantt


class TestContactProfileMethod:
    def test_self_similarity_high(self, small_fold_pair):
        parent, _ = small_fold_pair
        m = ContactProfileMethod()
        r = m.compare(parent, parent, CostCounter())
        assert r["similarity"] > 0.9

    def test_family_beats_stranger(self, small_fold_pair, unrelated_fold):
        parent, child = small_fold_pair
        m = ContactProfileMethod()
        fam = m.compare(parent, child, CostCounter())["similarity"]
        cross = m.compare(parent, unrelated_fold, CostCounter())["similarity"]
        assert fam > cross

    def test_cost_between_tmalign_and_sse(self):
        from repro.cost.cpu import P54C_800
        from repro.psc.methods import get_method

        tm = P54C_800.cycles(dict(get_method("tmalign").estimate_counts(150, 150)))
        cp = P54C_800.cycles(dict(ContactProfileMethod().estimate_counts(150, 150)))
        sse = P54C_800.cycles(
            dict(get_method("sse_composition").estimate_counts(150, 150))
        )
        assert sse < cp < tm

    def test_registered(self):
        from repro.psc import METHOD_REGISTRY, get_method

        assert "contact_profile" in METHOD_REGISTRY
        assert isinstance(get_method("contact_profile"), ContactProfileMethod)

    def test_validation(self):
        with pytest.raises(ValueError):
            ContactProfileMethod(cutoff=-1)
        with pytest.raises(ValueError):
            ContactProfileMethod(smooth_window=4)


class TestRcceCollectives:
    def _run(self, programs):
        m = SccMachine()
        rcce = Rcce(m)
        for core_id, prog in programs(rcce):
            m.spawn(core_id, prog)
        m.run()
        return m

    def test_scatter(self):
        got = {}

        def programs(rcce):
            group = [0, 1, 2, 3]

            def prog(core):
                items = [10, 11, 12, 13] if core.id == 0 else None
                mine = yield from rcce.scatter(core, 0, group, items)
                got[core.id] = mine

            return [(c, prog) for c in group]

        self._run(programs)
        assert got == {0: 10, 1: 11, 2: 12, 3: 13}

    def test_scatter_needs_matching_items(self):
        def programs(rcce):
            def root(core):
                yield from rcce.scatter(core, 0, [0, 1], [1, 2, 3])

            def member(core):
                yield from rcce.scatter(core, 0, [0, 1])

            return [(0, root), (1, member)]

        with pytest.raises(ValueError):
            self._run(programs)

    def test_gather(self):
        got = {}

        def programs(rcce):
            group = [0, 1, 2]

            def prog(core):
                out = yield from rcce.gather(core, 0, group, core.id * 100)
                got[core.id] = out

            return [(c, prog) for c in group]

        self._run(programs)
        assert got[0] == [0, 100, 200]
        assert got[1] is None and got[2] is None

    def test_reduce_sum_and_custom_op(self):
        got = {}

        def programs(rcce):
            group = [0, 1, 2, 3]

            def prog(core):
                total = yield from rcce.reduce(core, 0, group, core.id + 1)
                got.setdefault("sum", total) if core.id == 0 else None
                biggest = yield from rcce.reduce(core, 0, group, core.id, op=max)
                if core.id == 0:
                    got["max"] = biggest

            return [(c, prog) for c in group]

        self._run(programs)
        assert got["sum"] == 10
        assert got["max"] == 3


class TestTracer:
    def test_records_compute_intervals(self):
        m = SccMachine()
        tracer = Tracer(m)

        def prog(core):
            yield from core.compute_cycles(800e6)  # 1 s
            yield core.env.timeout(1.0)  # idle second
            yield from core.compute_cycles(400e6)  # 0.5 s

        m.spawn(0, prog)
        m.run()
        ivs = tracer.core_intervals(0)
        assert len(ivs) == 2
        assert ivs[0].duration == pytest.approx(1.0)
        assert ivs[1].duration == pytest.approx(0.5)
        assert tracer.busy_fraction(0) == pytest.approx(1.5 / 2.5)

    def test_gantt_renders(self):
        m = SccMachine()
        tracer = Tracer(m)

        def prog(core):
            yield from core.compute_cycles(800e6)

        m.spawn(0, prog)
        m.spawn(3, prog)
        m.run()
        chart = render_gantt(tracer)
        assert "rck00" in chart and "rck03" in chart
        assert "#" in chart

    def test_empty_trace(self):
        m = SccMachine()
        tracer = Tracer(m)
        assert "no simulated time" in render_gantt(tracer)

    def test_comm_intervals_recorded_for_rcce_traffic(self):
        from repro.scc.rcce import Rcce

        m = SccMachine()
        tracer = Tracer(m)
        rcce = Rcce(m)

        def sender(core):
            yield from rcce.send(core, 1, payload="ping", nbytes=4096)

        def receiver(core):
            yield from rcce.recv(core, 0)

        m.spawn(0, sender)
        m.spawn(1, receiver)
        m.run()
        assert tracer.kind_intervals(0, "comm")
        assert tracer.kind_intervals(1, "comm")
        assert tracer.kind_intervals(0, "compute") == []

    def test_dram_reads_traced_as_comm(self):
        m = SccMachine()
        tracer = Tracer(m)

        def prog(core):
            yield from core.dram_read(1 << 20)

        m.spawn(0, prog)
        m.run()
        ivs = tracer.kind_intervals(0, "comm")
        assert len(ivs) == 1
        assert ivs[0].duration > 0

    def test_compute_only_program_has_no_comm_intervals(self):
        # the pre-existing contract: a pure-compute program records
        # exactly its compute bursts, nothing else
        m = SccMachine()
        tracer = Tracer(m)

        def prog(core):
            yield from core.compute_cycles(800e6)

        m.spawn(0, prog)
        m.run()
        assert len(tracer.intervals) == 1
        assert tracer.intervals[0].kind == "compute"

    def test_chrome_trace_export(self):
        import json

        from repro.scc.trace import chrome_trace

        m = SccMachine()
        tracer = Tracer(m)

        def prog(core):
            yield from core.compute_cycles(800e6)
            yield from core.dram_read(1 << 20)

        m.spawn(0, prog)
        m.spawn(3, prog)
        m.run()
        doc = json.loads(chrome_trace(tracer))
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert {e["tid"] for e in events} == {0, 3}
        assert {e["name"] for e in events} == {"compute", "comm"}
        assert {m_["args"]["name"] for m_ in meta} == {"rck00", "rck03"}
        compute = next(e for e in events if e["name"] == "compute")
        assert compute["dur"] == pytest.approx(1e6)  # 1 s in microseconds
        assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in events)


class TestReportFormatter:
    def test_report_layout(self, small_fold_pair):
        from repro.tmalign import tm_align
        from repro.tmalign.report import format_tmalign_report

        parent, child = small_fold_pair
        res = tm_align(parent, child)
        text = format_tmalign_report(res, parent, child)
        assert f"Name of Chain_1: {parent.name}" in text
        assert "TM-score=" in text
        assert "Rotation matrix" in text
        assert parent.sequence[0] in text

    def test_wrong_chains_rejected(self, small_fold_pair, unrelated_fold):
        from repro.tmalign import tm_align
        from repro.tmalign.report import format_tmalign_report

        parent, child = small_fold_pair
        res = tm_align(parent, child)
        with pytest.raises(ValueError):
            format_tmalign_report(res, parent, unrelated_fold)


class TestBlockedPairs:
    def test_same_pair_set_as_natural(self):
        for n, block in ((10, 3), (7, 7), (12, 1), (5, 2)):
            natural = set(all_vs_all_pairs(n))
            blocked = list(blocked_pairs(n, block))
            assert set(blocked) == natural
            assert len(blocked) == len(natural)  # no duplicates

    def test_locality(self):
        """Within the stream, the working set of any window of block²
        pairs touches at most ~2 blocks of structures."""
        block = 4
        pairs = list(blocked_pairs(16, block))
        window = pairs[: block * block]
        touched = {i for p in window for i in p}
        assert len(touched) <= 2 * block

    def test_bad_block_size(self):
        with pytest.raises(ValueError):
            list(blocked_pairs(5, 0))


class TestStreamingMaster:
    def test_fault_counts_and_correctness(self):
        from repro.core.rckalign import RckAlignConfig, run_rckalign
        from repro.psc.evaluator import JobEvaluator

        ds = load_dataset("ck34-mini")
        ev = JobEvaluator(ds)
        full = run_rckalign(RckAlignConfig(dataset=ds, n_slaves=4), evaluator=ev)
        stream = run_rckalign(
            RckAlignConfig(
                dataset=ds, n_slaves=4, memory_limit_chains=4, pair_order="blocked"
            ),
            evaluator=ev,
        )
        assert full.structure_faults == 0
        assert stream.structure_faults >= len(ds)
        assert len(stream.results) == len(full.results)

    def test_blocked_order_reduces_faults(self):
        from repro.core.rckalign import RckAlignConfig, run_rckalign
        from repro.psc.evaluator import JobEvaluator

        ds = load_dataset("ck34")
        ev = JobEvaluator(ds)
        nat = run_rckalign(
            RckAlignConfig(dataset=ds, n_slaves=4, memory_limit_chains=8),
            evaluator=ev,
        )
        blk = run_rckalign(
            RckAlignConfig(
                dataset=ds, n_slaves=4, memory_limit_chains=8, pair_order="blocked"
            ),
            evaluator=ev,
        )
        assert blk.structure_faults < nat.structure_faults / 1.5

    def test_limit_too_small_rejected(self):
        from repro.core.rckalign import RckAlignConfig, run_rckalign

        with pytest.raises(ValueError):
            run_rckalign(
                RckAlignConfig(dataset="ck34-mini", n_slaves=2, memory_limit_chains=1)
            )


class TestNewAblations:
    def test_frequency_scaling_reduces_efficiency(self):
        from repro.experiments.ablations import run_ablation_frequency

        res = run_ablation_frequency(dataset="ck34", n_slaves=47, multipliers=(1.0, 4.0))
        eff = [row[4] for row in res.rows]
        assert eff[1] < eff[0]  # faster cores -> lower efficiency

    def test_memory_ablation_rows(self):
        from repro.experiments.ablations import run_ablation_memory

        res = run_ablation_memory(dataset="ck34-mini", n_slaves=4, limits=(4,))
        assert len(res.rows) == 3  # preload + natural + blocked
        preload_faults = res.rows[0][3]
        assert preload_faults == 0
