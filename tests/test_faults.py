"""Fault plans (real farm + simulated SCC) and degraded-mode runs.

Injection *semantics* on the real pool live in test_parallel_farm.py
(TestRetryPath); this module covers the plan data model — validation,
the CLI parse grammar, seeded sampling — and the simulator side: a
killed slave is detected, its job reassigned, and the sweep still
completes with every result.
"""

from __future__ import annotations

import pytest

from repro.core.rckalign import RckAlignConfig, run_rckalign
from repro.faults import (
    FAULT_KINDS,
    SIM_FAULT_KINDS,
    FarmFaultPlan,
    SimFaultPlan,
    SlaveFault,
    WorkerFault,
)
from repro.psc.evaluator import EvalMode


class TestWorkerFaultPlan:
    def test_kind_validation(self):
        assert set(FAULT_KINDS) == {"raise", "kill", "stall"}
        with pytest.raises(ValueError, match="unknown fault kind"):
            WorkerFault("explode", (0, 1))
        with pytest.raises(ValueError, match="stall_seconds"):
            WorkerFault("stall", (0, 1))  # stall needs a duration
        with pytest.raises(ValueError, match="non-negative"):
            WorkerFault("raise", (0, 1), attempts=(-1,))

    def test_matching(self):
        fault = WorkerFault("raise", (0, 3), attempts=(0, 2))
        assert fault.matches(0, 3, 0)
        assert fault.matches(0, 3, 2)
        assert not fault.matches(0, 3, 1)
        assert not fault.matches(0, 4, 0)
        plan = FarmFaultPlan((fault,))
        assert plan.should_fire(0, 3, 2) is fault
        assert plan.should_fire(1, 2, 0) is None
        assert plan and not FarmFaultPlan()

    def test_parse_grammar(self):
        plan = FarmFaultPlan.parse("kill@0-3, raise@1-2#0|1, stall:1.5@2-4")
        kinds = [f.kind for f in plan.faults]
        assert kinds == ["kill", "raise", "stall"]
        assert plan.faults[0].pair == (0, 3)
        assert plan.faults[1].attempts == (0, 1)
        assert plan.faults[2].stall_seconds == 1.5

    @pytest.mark.parametrize(
        "bad", ["", "kill", "kill@x-y", "kill@0", "stall@1-2", "boom@0-1"]
    )
    def test_parse_rejects(self, bad):
        with pytest.raises(ValueError):
            FarmFaultPlan.parse(bad)

    def test_sample_is_seeded(self):
        pairs = [(i, j) for i in range(6) for j in range(i + 1, 6)]
        a = FarmFaultPlan.sample(7, pairs, n_faults=3)
        b = FarmFaultPlan.sample(7, pairs, n_faults=3)
        c = FarmFaultPlan.sample(8, pairs, n_faults=3)
        assert a == b
        assert a != c
        assert len({f.pair for f in a.faults}) == 3
        with pytest.raises(ValueError, match="cannot pick"):
            FarmFaultPlan.sample(0, pairs[:2], n_faults=3)


class TestSlaveFaultPlan:
    def test_kind_validation(self):
        assert set(SIM_FAULT_KINDS) == {"kill", "slow"}
        with pytest.raises(ValueError, match="unknown sim fault kind"):
            SlaveFault(1, kind="melt")
        with pytest.raises(ValueError, match="slow_factor"):
            SlaveFault(1, kind="slow", slow_factor=1.0)
        with pytest.raises(ValueError, match="after_jobs"):
            SlaveFault(1, after_jobs=-1)
        with pytest.raises(ValueError, match="detect_seconds"):
            SlaveFault(1, detect_seconds=-0.1)

    def test_one_fault_per_slave(self):
        with pytest.raises(ValueError, match="one fault per slave"):
            SimFaultPlan((SlaveFault(1), SlaveFault(1, kind="slow")))
        plan = SimFaultPlan((SlaveFault(1), SlaveFault(2, kind="slow")))
        assert plan.for_slave(1).kind == "kill"
        assert plan.for_slave(2).kind == "slow"
        assert plan.for_slave(3) is None
        assert plan.n_kills == 1

    def test_kill_n_seeded_and_staggered(self):
        ids = list(range(1, 12))
        a = SimFaultPlan.kill_n(3, ids, seed=1)
        assert a == SimFaultPlan.kill_n(3, ids, seed=1)
        assert a != SimFaultPlan.kill_n(3, ids, seed=2)
        assert a.n_kills == 3
        assert sorted(f.after_jobs for f in a.faults) == [1, 3, 5]
        with pytest.raises(ValueError, match="cannot kill"):
            SimFaultPlan.kill_n(4, ids[:3])
        assert not SimFaultPlan.kill_n(0, ids)

    def test_slow_n(self):
        plan = SimFaultPlan.slow_n(2, range(1, 6), seed=0, slow_factor=3.0)
        assert plan.n_kills == 0
        assert all(f.kind == "slow" and f.slow_factor == 3.0 for f in plan.faults)


class TestSimulatedFailures:
    def report(self, plan, n_slaves=5, dataset="ck34-mini"):
        return run_rckalign(
            RckAlignConfig(
                dataset=dataset,
                n_slaves=n_slaves,
                mode=EvalMode.MODEL,
                fault_plan=plan,
            )
        )

    def test_killed_slaves_detected_and_jobs_reassigned(self):
        plan = SimFaultPlan((SlaveFault(2), SlaveFault(4, after_jobs=3)))
        rep = self.report(plan)
        assert rep.failures_detected == 2
        assert rep.jobs_reassigned == 2
        assert sorted(rep.failed_slaves) == [2, 4]
        assert len(rep.results) == rep.n_jobs == 28  # nothing lost
        assert sorted((r.payload["i"], r.payload["j"]) for r in rep.results) == [
            (i, j) for i in range(8) for j in range(i + 1, 8)
        ]
        # dead slaves stop accumulating work
        assert rep.slave_jobs[2] == 1
        assert rep.slave_jobs[4] == 3

    def test_fault_free_run_unchanged_by_empty_plan(self):
        want = self.report(None)
        got = self.report(SimFaultPlan())
        assert got.total_seconds == want.total_seconds
        assert got.failures_detected == 0
        assert got.failed_slaves == ()

    def test_killed_run_is_slower_but_complete(self):
        clean = self.report(None)
        degraded = self.report(SimFaultPlan((SlaveFault(3),)))
        assert degraded.total_seconds > clean.total_seconds
        assert len(degraded.results) == clean.n_jobs

    def test_slow_slave_stretches_makespan(self):
        clean = self.report(None)
        slowed = self.report(
            SimFaultPlan((SlaveFault(3, kind="slow", slow_factor=8.0),))
        )
        assert slowed.failures_detected == 0
        assert len(slowed.results) == clean.n_jobs
        assert slowed.total_seconds > clean.total_seconds

    def test_fault_plan_must_target_slaves(self):
        with pytest.raises(ValueError, match="non-slave"):
            self.report(SimFaultPlan((SlaveFault(40),)), n_slaves=5)
        with pytest.raises(ValueError, match="every slave"):
            self.report(
                SimFaultPlan(tuple(SlaveFault(s) for s in (1, 2))), n_slaves=2
            )


class TestExperimentResilience:
    def test_rows_and_invariants(self):
        from repro.experiments import run_exp_resilience

        result = run_exp_resilience(
            dataset="ck34-mini", n_slaves=5, failed_counts=(0, 1, 2)
        )
        assert result.exp_id == "exp_resilience"
        assert [r[0] for r in result.rows] == [0, 1, 2]
        assert [r[1] for r in result.rows] == [5, 4, 3]
        times = result.column("time (s)")
        assert times[0] < times[1] < times[2]  # more deaths, longer sweep
        kept = result.column("throughput kept")
        assert kept[0] == pytest.approx(1.0)
        assert all(0 < v <= 1.0 for v in kept[1:])
        assert result.column("jobs reassigned") == [0, 1, 2]
        text = result.to_text()
        assert "Experiment R" in text and "failed slaves" in text
