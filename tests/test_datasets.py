"""Dataset builders and registry."""

import numpy as np
import pytest

from repro.datasets import (
    Dataset,
    all_vs_all_pairs,
    build_ck34,
    build_rs119,
    load_dataset,
    one_vs_all_pairs,
)
from repro.datasets.pairs import n_all_vs_all
from repro.structure.model import Chain


class TestRegistry:
    def test_known_names(self):
        for name in ("ck34", "rs119", "ck34-mini", "rs119-mini"):
            assert len(load_dataset(name)) > 0

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            load_dataset("nope")

    def test_memoized(self):
        assert load_dataset("ck34") is load_dataset("ck34")

    def test_case_insensitive(self):
        assert load_dataset("CK34") is load_dataset("ck34")


class TestCk34:
    def test_34_chains(self):
        assert len(load_dataset("ck34")) == 34

    def test_five_families(self):
        fams = load_dataset("ck34").families
        assert len(fams) == 5
        assert sum(len(m) for m in fams.values()) == 34

    def test_deterministic(self):
        a = build_ck34()
        b = build_ck34()
        for ca, cb in zip(a, b):
            np.testing.assert_array_equal(ca.coords, cb.coords)
            assert ca.sequence == cb.sequence

    def test_realistic_lengths(self):
        ds = load_dataset("ck34")
        assert all(60 <= len(c) <= 300 for c in ds)
        assert 120 < ds.mean_length < 180

    def test_family_composition_matches_spec(self):
        from repro.datasets.ck34 import CK34_FAMILIES

        fams = load_dataset("ck34").families
        for name, members, _, _ in CK34_FAMILIES:
            assert len(fams[name]) == members


class TestRs119:
    def test_119_chains(self):
        assert len(load_dataset("rs119")) == 119

    def test_longer_than_ck34(self):
        assert load_dataset("rs119").mean_length > load_dataset("ck34").mean_length

    def test_deterministic(self):
        a = build_rs119()
        b = build_rs119()
        np.testing.assert_array_equal(a[7].coords, b[7].coords)

    def test_unique_names(self):
        names = [c.name for c in load_dataset("rs119")]
        assert len(set(names)) == 119

    def test_work_ratio_brackets_paper(self):
        """The Table III calibration needs CK34/RS119 work and pair-count
        ratios to bracket the paper's time ratios (14.1x, 18.0x)."""
        ck = [len(c) for c in load_dataset("ck34")]
        rs = [len(c) for c in load_dataset("rs119")]

        def prodsum(ls):
            total = 0
            for i in range(len(ls)):
                for j in range(i + 1, len(ls)):
                    total += ls[i] * ls[j]
            return total

        work_ratio = prodsum(rs) / prodsum(ck)
        pair_ratio = (119 * 118 / 2) / (34 * 33 / 2)
        assert pair_ratio < 14.0 < 18.1 < work_ratio


class TestDatasetContainer:
    def test_by_name(self, ck34_mini):
        chain = ck34_mini[3]
        assert ck34_mini.by_name(chain.name) is chain

    def test_by_name_missing(self, ck34_mini):
        with pytest.raises(KeyError):
            ck34_mini.by_name("missing")

    def test_subset(self, ck34):
        sub = ck34.subset(5)
        assert len(sub) == 5
        assert sub[0] is ck34[0]

    def test_subset_bad_n(self, ck34_mini):
        with pytest.raises(ValueError):
            ck34_mini.subset(0)
        with pytest.raises(ValueError):
            ck34_mini.subset(10**6)

    def test_duplicate_names_rejected(self, tiny_chain):
        with pytest.raises(ValueError):
            Dataset("d", (tiny_chain, tiny_chain))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Dataset("d", ())


class TestPairEnumeration:
    def test_unordered_count(self):
        assert len(list(all_vs_all_pairs(34))) == 561
        assert len(list(all_vs_all_pairs(119))) == 7021

    def test_ordered_count(self):
        assert len(list(all_vs_all_pairs(5, ordered=True))) == 20

    def test_include_self(self):
        pairs = list(all_vs_all_pairs(3, include_self=True))
        assert (0, 0) in pairs and len(pairs) == 6

    def test_counts_formula_matches(self):
        for n in (1, 2, 5, 34):
            for ordered in (False, True):
                for inc in (False, True):
                    got = len(list(all_vs_all_pairs(n, ordered=ordered, include_self=inc)))
                    assert got == n_all_vs_all(n, ordered=ordered, include_self=inc)

    def test_unordered_i_lt_j(self):
        assert all(i < j for i, j in all_vs_all_pairs(10))

    def test_one_vs_all(self, ck34_mini):
        pairs = list(one_vs_all_pairs(2, ck34_mini))
        assert len(pairs) == len(ck34_mini) - 1
        assert all(i == 2 and j != 2 for i, j in pairs)

    def test_one_vs_all_bad_index(self, ck34_mini):
        with pytest.raises(IndexError):
            list(one_vs_all_pairs(99, ck34_mini))
