"""Synthetic fold generator."""

import numpy as np
import pytest

from repro.geometry.distances import radius_of_gyration, sequential_distances
from repro.structure.synthetic import (
    CA_STEP,
    FoldSpec,
    SSElement,
    build_helix,
    build_loop,
    build_strand,
    generate_family,
    generate_fold,
    mutate_sequence,
    perturb_chain,
    random_fold_spec,
)


class TestElements:
    def test_helix_rise(self):
        h = build_helix(10)
        assert np.allclose(np.diff(h[:, 2]), 1.5)

    def test_helix_ca_spacing_realistic(self):
        d = sequential_distances(build_helix(15))
        assert np.all((d > 3.3) & (d < 4.3))

    def test_strand_spacing(self):
        d = sequential_distances(build_strand(10))
        assert np.all((d > 3.2) & (d < 4.2))

    def test_loop_step_length(self, rng):
        d = sequential_distances(build_loop(20, rng))
        np.testing.assert_allclose(d, CA_STEP, atol=1e-9)


class TestFoldSpec:
    def test_length_sums(self):
        spec = FoldSpec.of(("H", 10), ("C", 3), ("E", 6))
        assert spec.length == 19

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            FoldSpec(())

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            SSElement("X", 5)

    def test_bad_length_rejected(self):
        with pytest.raises(ValueError):
            SSElement("H", 0)


class TestGenerateFold:
    def test_length_matches_spec(self, rng):
        spec = FoldSpec.of(("H", 12), ("C", 4), ("E", 8))
        chain = generate_fold(spec, rng)
        assert len(chain) == spec.length

    def test_centered_at_origin(self, rng):
        chain = generate_fold(FoldSpec.of(("H", 15), ("C", 5), ("H", 15)), rng)
        np.testing.assert_allclose(chain.coords.mean(axis=0), 0.0, atol=1e-9)

    def test_deterministic_for_seed(self):
        spec = FoldSpec.of(("H", 10), ("C", 4), ("E", 6))
        a = generate_fold(spec, np.random.default_rng(3))
        b = generate_fold(spec, np.random.default_rng(3))
        np.testing.assert_array_equal(a.coords, b.coords)
        assert a.sequence == b.sequence

    def test_compact_vs_extended(self):
        spec = FoldSpec.of(*[("H", 10), ("C", 3)] * 6)
        compact = generate_fold(spec, np.random.default_rng(1), compactness=0.9)
        loose = generate_fold(spec, np.random.default_rng(1), compactness=0.0)
        assert radius_of_gyration(compact.coords) < radius_of_gyration(loose.coords)

    def test_family_label(self, rng):
        chain = generate_fold(FoldSpec.of(("H", 12)), rng, family="globin")
        assert chain.family == "globin"


class TestPerturbChain:
    def test_length_changes_bounded(self, small_fold_pair, rng):
        parent, _ = small_fold_pair
        child = perturb_chain(parent, rng, "kid", max_indel=4)
        assert len(parent) - 8 <= len(child) <= len(parent)

    def test_preserves_family(self, small_fold_pair, rng):
        parent, _ = small_fold_pair
        assert perturb_chain(parent, rng, "kid").family == parent.family

    def test_zero_jitter_zero_hinge_is_truncation_only(self, small_fold_pair):
        parent, _ = small_fold_pair
        rng = np.random.default_rng(9)
        child = perturb_chain(
            parent, rng, "kid", jitter=0.0, hinge_angle_deg=0.0, max_indel=0,
            seq_identity=1.0,
        )
        np.testing.assert_allclose(child.coords, parent.coords)
        assert child.sequence == parent.sequence


class TestMutateSequence:
    def test_identity_one_preserves(self, rng):
        assert mutate_sequence("ACDEFG", 1.0, rng) == "ACDEFG"

    def test_identity_fraction_roughly_respected(self, rng):
        seq = "A" * 2000
        mutated = mutate_sequence(seq, 0.7, rng)
        conserved = sum(a == b for a, b in zip(seq, mutated)) / len(seq)
        # mutations can hit the same letter by chance, so conserved >= 0.7
        assert 0.68 < conserved < 0.80

    def test_bad_identity_rejected(self, rng):
        with pytest.raises(ValueError):
            mutate_sequence("AAA", 1.5, rng)


class TestGenerateFamily:
    def test_member_count_and_names(self, rng):
        spec = FoldSpec.of(("H", 10), ("C", 3), ("E", 5))
        fam = generate_family(spec, 4, rng, family="fam", name_prefix="f")
        assert len(fam) == 4
        assert [c.name for c in fam] == ["f_00", "f_01", "f_02", "f_03"]
        assert all(c.family == "fam" for c in fam)

    def test_zero_members_rejected(self, rng):
        with pytest.raises(ValueError):
            generate_family(FoldSpec.of(("H", 10)), 0, rng, family="x")


class TestRandomFoldSpec:
    def test_target_length_approximate(self, rng):
        for target in (50, 120, 300):
            spec = random_fold_spec(rng, target)
            assert target <= spec.length <= target + 25

    def test_helix_fraction_extremes(self, rng):
        all_h = random_fold_spec(rng, 200, helix_frac=1.0)
        kinds = {e.kind for e in all_h.elements}
        assert "E" not in kinds
        all_e = random_fold_spec(rng, 200, helix_frac=0.0)
        assert "H" not in {e.kind for e in all_e.elements}

    def test_too_short_rejected(self, rng):
        with pytest.raises(ValueError):
            random_fold_spec(rng, 5)
