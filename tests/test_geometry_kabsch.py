"""Kabsch superposition: exact recovery, optimality, properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.cost.counters import CostCounter
from repro.geometry.kabsch import kabsch, rmsd, rmsd_superposed, superpose
from repro.geometry.transforms import RigidTransform, random_rotation


def _cloud(rng, n=20):
    return rng.normal(size=(n, 3)) * 5.0


class TestKabschExactRecovery:
    def test_recovers_known_transform(self, rng):
        pts = _cloud(rng)
        true = RigidTransform(random_rotation(rng), rng.normal(size=3) * 10)
        moved = true.apply(pts)
        xf = kabsch(pts, moved)
        np.testing.assert_allclose(xf.rotation, true.rotation, atol=1e-8)
        np.testing.assert_allclose(xf.translation, true.translation, atol=1e-8)

    def test_zero_rmsd_after_recovery(self, rng):
        pts = _cloud(rng)
        true = RigidTransform(random_rotation(rng), rng.normal(size=3))
        assert rmsd_superposed(pts, true.apply(pts)) < 1e-9

    def test_identity_for_same_points(self, rng):
        pts = _cloud(rng)
        xf = kabsch(pts, pts)
        np.testing.assert_allclose(xf.rotation, np.eye(3), atol=1e-9)
        np.testing.assert_allclose(xf.translation, 0.0, atol=1e-9)

    def test_no_reflection_even_when_tempting(self, rng):
        pts = _cloud(rng)
        mirrored = pts * np.array([1.0, 1.0, -1.0])
        xf = kabsch(pts, mirrored)
        assert np.isclose(np.linalg.det(xf.rotation), 1.0, atol=1e-9)


class TestKabschOptimality:
    def test_beats_random_transforms(self, rng):
        pts = _cloud(rng)
        target = _cloud(rng)
        best = rmsd_superposed(pts, target)
        for _ in range(25):
            xf = RigidTransform(random_rotation(rng), rng.normal(size=3))
            assert rmsd(xf.apply(pts), target) >= best - 1e-9

    def test_weighted_fit_prioritizes_heavy_points(self, rng):
        pts = _cloud(rng, 10)
        target = pts.copy()
        target[0] += [5.0, 0, 0]  # outlier at index 0
        w = np.ones(10)
        w[0] = 1e-6
        xf = kabsch(pts, target, weights=w)
        moved = xf.apply(pts)
        # non-outlier points should fit nearly perfectly
        assert rmsd(moved[1:], target[1:]) < 1e-3

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_rotating_inputs_does_not_change_min_rmsd(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(8, 3))
        b = rng.normal(size=(8, 3))
        base = rmsd_superposed(a, b)
        xf = RigidTransform(random_rotation(rng), rng.normal(size=3))
        assert np.isclose(rmsd_superposed(xf.apply(a), b), base, atol=1e-8)
        assert np.isclose(rmsd_superposed(a, xf.apply(b)), base, atol=1e-8)


class TestKabschValidation:
    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            kabsch(rng.normal(size=(5, 3)), rng.normal(size=(6, 3)))

    def test_non_3d_rejected(self, rng):
        with pytest.raises(ValueError):
            kabsch(rng.normal(size=(5, 2)), rng.normal(size=(5, 2)))

    def test_negative_weights_rejected(self, rng):
        pts = _cloud(rng, 5)
        with pytest.raises(ValueError):
            kabsch(pts, pts, weights=np.array([1, 1, -1, 1, 1.0]))

    def test_all_zero_weights_rejected(self, rng):
        pts = _cloud(rng, 4)
        with pytest.raises(ValueError):
            kabsch(pts, pts, weights=np.zeros(4))

    def test_wrong_weight_length_rejected(self, rng):
        pts = _cloud(rng, 4)
        with pytest.raises(ValueError):
            kabsch(pts, pts, weights=np.ones(3))


class TestCounterCharging:
    def test_kabsch_charges_counter(self, rng):
        pts = _cloud(rng, 17)
        ctr = CostCounter()
        kabsch(pts, pts, counter=ctr)
        assert ctr["kabsch"] == 1
        assert ctr["kabsch_point"] == 17

    def test_superpose_returns_moved_and_transform(self, rng):
        a = _cloud(rng)
        b = _cloud(rng)
        moved, xf = superpose(a, b)
        np.testing.assert_allclose(moved, xf.apply(a))


class TestRmsd:
    def test_zero_for_identical(self, rng):
        pts = _cloud(rng)
        assert rmsd(pts, pts) == 0.0

    def test_known_value(self):
        a = np.zeros((2, 3))
        b = np.array([[1.0, 0, 0], [0, 1.0, 0]])
        assert np.isclose(rmsd(a, b), 1.0)

    def test_symmetry(self, rng):
        a, b = _cloud(rng), _cloud(rng)
        assert np.isclose(rmsd(a, b), rmsd(b, a))
