"""rckskel constructs: SEQ, PAR, COLLECT, FARM, grouped FARM."""

import pytest

from repro.core.skeletons import FarmConfig, Job, SkeletonRuntime, TERMINATE
from repro.scc.machine import SccMachine
from repro.scc.rcce import Rcce

FAST_FARM = FarmConfig(
    master_job_cycles=1000, master_result_cycles=1000, slave_boot_seconds=0.0
)


def make_runtime(n_slaves=4, farm=FAST_FARM):
    m = SccMachine()
    rcce = Rcce(m)
    slave_ids = list(range(1, 1 + n_slaves))
    rt = SkeletonRuntime(m, rcce, 0, slave_ids, farm)
    return m, rt


def echo_handler(core, payload):
    yield from core.compute_cycles(1000)
    return ("echo", payload), 64


def slow_handler_factory(cycles_by_payload):
    def handler(core, payload):
        yield from core.compute_cycles(cycles_by_payload(payload))
        return payload, 64

    return handler


def jobs(n, nbytes=256):
    return [Job(job_id=k, payload=k, nbytes=nbytes) for k in range(n)]


def run_farm(n_slaves=4, n_jobs=10, handler=echo_handler, farm=FAST_FARM, **kw):
    m, rt = make_runtime(n_slaves, farm)
    box = {}

    def master(core):
        box["results"] = yield from rt.farm(core, jobs(n_jobs), **kw)

    m.spawn(0, master)
    for s in rt.slave_ids:
        m.spawn(s, rt.slave_loop, handler)
    m.run()
    return m, rt, box["results"]


class TestFarm:
    def test_all_jobs_completed(self):
        _, _, results = run_farm(n_slaves=4, n_jobs=20)
        assert len(results) == 20
        assert sorted(r.job_id for r in results) == list(range(20))

    def test_results_carry_payloads(self):
        _, _, results = run_farm(n_jobs=5)
        for r in results:
            assert r.payload == ("echo", r.job_id)

    def test_more_slaves_is_faster(self):
        heavy = slow_handler_factory(lambda p: 80_000_000)  # 0.1 s each
        m1, _, _ = run_farm(n_slaves=1, n_jobs=12, handler=heavy)
        m4, _, _ = run_farm(n_slaves=4, n_jobs=12, handler=heavy)
        assert m4.now < m1.now / 2.5

    def test_work_spread_across_slaves(self):
        m, rt, _ = run_farm(n_slaves=4, n_jobs=40)
        per_slave = [m.core(s).stats.jobs_done for s in rt.slave_ids]
        assert min(per_slave) >= 5

    def test_fewer_jobs_than_slaves(self):
        m, rt, results = run_farm(n_slaves=6, n_jobs=2)
        assert len(results) == 2

    def test_slaves_terminated(self):
        """After FARM with terminate=True the run() drains: slave loops
        exited (otherwise env.run would deadlock-error on them)."""
        m, _, results = run_farm(n_jobs=3)
        assert len(results) == 3  # reaching here means clean shutdown

    def test_single_job(self):
        _, _, results = run_farm(n_slaves=3, n_jobs=1)
        assert len(results) == 1

    def test_collector_called_in_completion_order(self):
        m, rt = make_runtime(2)
        seen = []

        def master(core):
            yield from rt.farm(core, jobs(6), collector=lambda r: seen.append(r.job_id))

        m.spawn(0, master)
        for s in rt.slave_ids:
            m.spawn(s, rt.slave_loop, echo_handler)
        m.run()
        assert sorted(seen) == list(range(6))

    def test_boot_serialization_delays_start(self):
        slow_boot = FarmConfig(
            master_job_cycles=1000, master_result_cycles=1000, slave_boot_seconds=0.5
        )
        m, _, _ = run_farm(n_slaves=4, n_jobs=4, farm=slow_boot)
        assert m.now >= 4 * 0.5  # boots serialize on the loader


class TestSeqParCollect:
    def test_seq_runs_in_order(self):
        m, rt = make_runtime(3)
        done_order = []

        def master(core):
            results = yield from rt.seq(
                core, jobs(5), collector=lambda r: done_order.append(r.job_id)
            )
            yield from rt.shutdown(core)
            return results

        p = m.spawn(0, master)
        for s in rt.slave_ids:
            m.spawn(s, rt.slave_loop, echo_handler)
        m.run()
        assert done_order == list(range(5))

    def test_par_then_collect(self):
        m, rt = make_runtime(3)
        box = {}

        def master(core):
            yield from rt.check_ready(core)
            n = yield from rt.par(core, jobs(3))
            box["results"] = yield from rt.collect(core, n)
            yield from rt.shutdown(core)

        m.spawn(0, master)
        for s in rt.slave_ids:
            m.spawn(s, rt.slave_loop, echo_handler)
        m.run()
        assert len(box["results"]) == 3

    def test_par_overcommit_blocks_but_completes(self):
        """More jobs than UEs: PAR's rendezvous sends serialize per UE."""
        m, rt = make_runtime(2)
        box = {}

        def master(core):
            yield from rt.check_ready(core)
            n = yield from rt.par(core, jobs(6))
            box["results"] = yield from rt.collect(core, n)
            yield from rt.shutdown(core)

        m.spawn(0, master)
        for s in rt.slave_ids:
            m.spawn(s, rt.slave_loop, echo_handler)
        m.run()
        assert len(box["results"]) == 6


class TestFarmGrouped:
    def test_groups_respected(self):
        m, rt = make_runtime(4)
        box = {}
        groups = {
            "a": ([Job(k, ("a", k), 64) for k in range(6)], [1, 2]),
            "b": ([Job(k, ("b", k), 64) for k in range(4)], [3, 4]),
        }

        def handler(core, payload):
            yield from core.compute_cycles(1000)
            return payload, 64

        def master(core):
            box["results"] = yield from rt.farm_grouped(core, groups)

        m.spawn(0, master)
        for s in rt.slave_ids:
            m.spawn(s, rt.slave_loop, handler)
        m.run()
        assert len(box["results"]["a"]) == 6
        assert len(box["results"]["b"]) == 4
        # group a jobs only ran on slaves 1-2
        assert {r.slave_id for r in box["results"]["a"]} <= {1, 2}
        assert {r.slave_id for r in box["results"]["b"]} <= {3, 4}

    def test_overlapping_groups_rejected(self):
        m, rt = make_runtime(3)
        groups = {"a": ([Job(0, 0, 8)], [1, 2]), "b": ([Job(0, 0, 8)], [2, 3])}

        def master(core):
            yield from rt.farm_grouped(core, groups)

        m.spawn(0, master)
        for s in rt.slave_ids:
            m.spawn(s, rt.slave_loop, echo_handler)
        with pytest.raises(ValueError):
            m.run()


class TestValidation:
    def test_master_in_slaves_rejected(self):
        m = SccMachine()
        rcce = Rcce(m)
        with pytest.raises(ValueError):
            SkeletonRuntime(m, rcce, 0, [0, 1])

    def test_duplicate_slaves_rejected(self):
        m = SccMachine()
        rcce = Rcce(m)
        with pytest.raises(ValueError):
            SkeletonRuntime(m, rcce, 0, [1, 1])

    def test_no_slaves_rejected(self):
        m = SccMachine()
        rcce = Rcce(m)
        with pytest.raises(ValueError):
            SkeletonRuntime(m, rcce, 0, [])

    def test_job_validation(self):
        with pytest.raises(ValueError):
            Job(0, "x", nbytes=-1)

    def test_farm_config_validation(self):
        with pytest.raises(ValueError):
            FarmConfig(master_job_cycles=-1)
        with pytest.raises(ValueError):
            FarmConfig(slave_boot_seconds=-0.1)


class TestPolling:
    def test_poll_visits_instrumented(self):
        _, rt, _ = run_farm(n_slaves=4, n_jobs=10)
        assert rt.poll_visits >= 10  # at least one visit per result
        assert rt.results_collected == 10

    def test_round_robin_not_starving(self):
        """With equal jobs, round-robin polling must serve all slaves."""
        heavy = slow_handler_factory(lambda p: 10_000_000)
        m, rt, _ = run_farm(n_slaves=4, n_jobs=32, handler=heavy)
        per_slave = [m.core(s).stats.jobs_done for s in rt.slave_ids]
        assert max(per_slave) - min(per_slave) <= 4
