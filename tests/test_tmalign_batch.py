"""Batched-vs-serial equivalence for the vectorized TM-align kernel.

The batch paths (stacked Kabsch, lockstep superposition search, padded
gapless/fragment threading, compiled DP row sweep) all promise *bitwise*
agreement with their retained serial references.  These tests hold them
to it: repr-exact scores, byte-identical transforms and identical op
counts on seeded random chains, including the degenerate geometries
(collinear points, <3-pair selections, all-far seeds) where the
determinant correction and cutoff escalation branch.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cost.counters import CostCounter
from repro.geometry.kabsch import kabsch, kabsch_batch
from repro.tmalign.dp import _NATIVE_FORWARD, nw_align
from repro.tmalign.initial import (
    fragment_threading,
    fragment_threading_serial,
    gapless_threading,
    gapless_threading_serial,
)
from repro.tmalign.result import Alignment
from repro.tmalign.tmscore import (
    superposition_search,
    superposition_search_serial,
)


def _chain_coords(rng, n, mode):
    """Random-walk / helix / degenerate coordinate generators."""
    if mode == "walk":
        return np.cumsum(rng.normal(scale=2.0, size=(n, 3)), axis=0)
    if mode == "helix":
        t = np.linspace(0.0, n / 3.6, n)
        return np.stack(
            [2.3 * np.cos(1.7 * t), 2.3 * np.sin(1.7 * t), 1.5 * t], axis=1
        )
    if mode == "collinear":
        return np.linspace(0.0, 1.0, n)[:, None] * np.array([1.0, 2.0, 3.0])
    raise AssertionError(mode)


def _paired_sets(rng, n, mode):
    pa = _chain_coords(rng, n, "walk")
    if mode == "close":
        pb = pa + rng.normal(scale=0.4, size=(n, 3))
    elif mode == "half":
        pb = pa + rng.normal(scale=0.3, size=(n, 3))
        pb[n // 2 :] += 40.0
    elif mode == "far":
        pb = _chain_coords(rng, n, "walk") + 150.0
    else:  # reflected: forces the determinant correction
        pb = pa * np.array([1.0, 1.0, -1.0]) + rng.normal(scale=0.1, size=(n, 3))
    return pa, pb


class TestKabschBatch:
    @pytest.mark.parametrize("mode", ["close", "half", "far", "reflected"])
    def test_slices_bit_identical_to_serial(self, rng, mode):
        k, n = 7, 24
        mob = np.stack([_paired_sets(rng, n, mode)[0] for _ in range(k)])
        tgt = np.stack([_paired_sets(rng, n, mode)[1] for _ in range(k)])
        cb = CostCounter()
        rots, tras = kabsch_batch(mob, tgt, counter=cb)
        cs = CostCounter()
        for i in range(k):
            xf = kabsch(mob[i], tgt[i], counter=cs)
            assert rots[i].tobytes() == xf.rotation.tobytes()
            assert tras[i].tobytes() == xf.translation.tobytes()
        assert cb.counts == cs.counts

    def test_degenerate_collinear_slices(self, rng):
        # rank-deficient covariances take the diag(1,1,0) branch
        mob = np.stack([_chain_coords(rng, 10, "collinear") for _ in range(4)])
        tgt = np.stack(
            [_chain_coords(rng, 10, "collinear")[::-1] for _ in range(4)]
        )
        rots, tras = kabsch_batch(mob, tgt)
        for i in range(4):
            xf = kabsch(mob[i], tgt[i])
            assert rots[i].tobytes() == xf.rotation.tobytes()
            assert tras[i].tobytes() == xf.translation.tobytes()

    def test_large_stack_vectorized_det_path(self, rng):
        # k > 32 switches the determinant sign to the vectorized form
        k, n = 40, 9
        mob = rng.normal(size=(k, n, 3))
        tgt = rng.normal(size=(k, n, 3))
        rots, tras = kabsch_batch(mob, tgt)
        for i in range(k):
            xf = kabsch(mob[i], tgt[i])
            assert rots[i].tobytes() == xf.rotation.tobytes()

    def test_empty_stack(self):
        rots, tras = kabsch_batch(np.empty((0, 5, 3)), np.empty((0, 5, 3)))
        assert rots.shape == (0, 3, 3) and tras.shape == (0, 3)

    def test_single_slice(self, rng):
        mob, tgt = rng.normal(size=(1, 6, 3)), rng.normal(size=(1, 6, 3))
        rots, _ = kabsch_batch(mob, tgt)
        assert rots[0].tobytes() == kabsch(mob[0], tgt[0]).rotation.tobytes()

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            kabsch_batch(rng.normal(size=(2, 5, 2)), rng.normal(size=(2, 5, 2)))
        with pytest.raises(ValueError):
            kabsch_batch(rng.normal(size=(2, 5, 3)), rng.normal(size=(3, 5, 3)))
        with pytest.raises(ValueError):
            kabsch_batch(np.empty((2, 0, 3)), np.empty((2, 0, 3)))


class TestLockstepSearch:
    @pytest.mark.parametrize("mode", ["close", "half", "far", "reflected"])
    @pytest.mark.parametrize("fractions", [(1, 2), (1, 2, 4)])
    def test_matches_serial_exactly(self, rng, mode, fractions):
        for n in (3, 17, 64, 121):
            pa, pb = _paired_sets(rng, n, mode)
            lnorm = n + 11
            d0 = 3.7
            cl, cs = CostCounter(), CostCounter()
            tm_l, xf_l = superposition_search(
                pa, pb, d0, lnorm, seed_fractions=fractions, counter=cl
            )
            tm_s, xf_s = superposition_search_serial(
                pa, pb, d0, lnorm, seed_fractions=fractions, counter=cs
            )
            assert repr(tm_l) == repr(tm_s)
            assert xf_l.rotation.tobytes() == xf_s.rotation.tobytes()
            assert xf_l.translation.tobytes() == xf_s.translation.tobytes()
            assert cl.counts == cs.counts

    def test_all_far_seeds(self, rng):
        # nothing within 8 A: every seed is hopeless, both paths agree
        pa = _chain_coords(rng, 20, "walk")
        pb = _chain_coords(rng, 20, "walk") + 500.0
        cl, cs = CostCounter(), CostCounter()
        tm_l, _ = superposition_search(pa, pb, 2.0, 20, counter=cl)
        tm_s, _ = superposition_search_serial(pa, pb, 2.0, 20, counter=cs)
        assert repr(tm_l) == repr(tm_s)
        assert cl.counts == cs.counts


class TestThreadingBatch:
    @pytest.mark.parametrize("sizes", [(5, 5), (8, 31), (60, 44), (97, 120)])
    def test_gapless_matches_serial(self, rng, sizes):
        la, lb = sizes
        xa = _chain_coords(rng, la, "walk")
        ya = _chain_coords(rng, lb, "helix")
        cb, cs = CostCounter(), CostCounter()
        got = gapless_threading(xa, ya, 3.1, max(la, lb), counter=cb)
        want = gapless_threading_serial(xa, ya, 3.1, max(la, lb), counter=cs)
        assert len(got) == len(want)
        for g, w in zip(got, want):
            assert np.array_equal(g.ai, w.ai) and np.array_equal(g.aj, w.aj)
            assert repr(g.dp_score) == repr(w.dp_score)
        assert cb.counts == cs.counts

    def test_gapless_below_min_overlap(self, rng):
        xa = _chain_coords(rng, 3, "walk")
        ya = _chain_coords(rng, 3, "walk")
        got = gapless_threading(xa, ya, 2.0, 3)
        want = gapless_threading_serial(xa, ya, 2.0, 3)
        assert [g.key() for g in got] == [w.key() for w in want]

    @pytest.mark.parametrize("sizes", [(40, 55), (80, 33), (64, 64)])
    def test_fragment_matches_serial(self, rng, sizes):
        la, lb = sizes
        xa = _chain_coords(rng, la, "walk")
        ya = _chain_coords(rng, lb, "helix")
        cb, cs = CostCounter(), CostCounter()
        got = fragment_threading(xa, ya, 2.9, max(la, lb), counter=cb)
        want = fragment_threading_serial(xa, ya, 2.9, max(la, lb), counter=cs)
        assert (got is None) == (want is None)
        if got is not None:
            assert np.array_equal(got.ai, want.ai)
            assert np.array_equal(got.aj, want.aj)
            assert repr(got.dp_score) == repr(want.dp_score)
        assert cb.counts == cs.counts

    def test_fragment_none_for_tiny(self, rng):
        xa = _chain_coords(rng, 4, "walk")
        ya = _chain_coords(rng, 5, "walk")
        assert fragment_threading(xa, ya, 2.0, 5) is None


class TestNativeForward:
    @pytest.mark.skipif(
        _NATIVE_FORWARD is None, reason="no C compiler / native DP disabled"
    )
    def test_matrices_bit_identical_to_numpy(self, rng):
        import repro.tmalign.dp as dp

        for la, lb in ((1, 1), (1, 40), (40, 1), (23, 57), (80, 80)):
            score = rng.normal(size=(la, lb))
            m1, i1, y1 = (a.copy() for a in dp._forward(score, -0.6))
            native = dp._NATIVE_FORWARD
            dp._NATIVE_FORWARD = None
            try:
                m2, i2, y2 = dp._forward(score, -0.6)
            finally:
                dp._NATIVE_FORWARD = native
            assert m1.tobytes() == m2.tobytes()
            assert i1.tobytes() == i2.tobytes()
            assert y1.tobytes() == y2.tobytes()

    @pytest.mark.skipif(
        _NATIVE_FORWARD is None, reason="no C compiler / native DP disabled"
    )
    def test_alignments_identical_on_tie_heavy_scores(self, rng):
        import repro.tmalign.dp as dp

        for _ in range(10):
            la = int(rng.integers(2, 40))
            lb = int(rng.integers(2, 40))
            score = rng.integers(-2, 3, size=(la, lb)).astype(float)
            a1 = nw_align(score, -1.0)
            native = dp._NATIVE_FORWARD
            dp._NATIVE_FORWARD = None
            try:
                a2 = nw_align(score, -1.0)
            finally:
                dp._NATIVE_FORWARD = native
            assert np.array_equal(a1.ai, a2.ai)
            assert np.array_equal(a1.aj, a2.aj)
            assert repr(a1.dp_score) == repr(a2.dp_score)

    def test_fallback_env_toggle(self, monkeypatch):
        from repro.tmalign._dpnative import NATIVE_DP_ENV, load_forward_kernel

        monkeypatch.setenv(NATIVE_DP_ENV, "1")
        assert load_forward_kernel() is None


class TestTrustedAlignment:
    def test_from_trusted_equals_validated(self):
        ai = np.arange(2, 9, dtype=np.intp)
        aj = np.arange(5, 12, dtype=np.intp)
        fast = Alignment.from_trusted(ai, aj, dp_score=1.25)
        slow = Alignment(np.arange(2, 9), np.arange(5, 12), dp_score=1.25)
        assert fast == slow
        assert fast.key() == slow.key()
        assert fast.dp_score == slow.dp_score
        assert len(fast) == 7

    def test_from_trusted_freezes_arrays(self):
        ai = np.arange(3, dtype=np.intp)
        aj = np.arange(3, dtype=np.intp)
        ali = Alignment.from_trusted(ai, aj)
        with pytest.raises(ValueError):
            ali.ai[0] = 5


class TestSSCodesCache:
    def test_cached_and_propagated(self, tiny_chain):
        from repro.geometry.transforms import RigidTransform

        c1 = tiny_chain.ss_codes
        assert c1 is tiny_chain.ss_codes  # cached, not re-encoded
        assert c1.tobytes() == tiny_chain.secondary.encode("ascii")
        moved = tiny_chain.transformed(RigidTransform.identity())
        assert moved.ss_codes is c1  # survives transformed() copies
