"""Family medoid and consensus shape (Chew–Kedem closure)."""

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.structure.consensus import consensus_structure, find_medoid
from repro.tmalign import tm_align


@pytest.fixture(scope="module")
def family():
    """Five globins from CK34 (parent ck_globin_00 + four perturbations)."""
    ds = load_dataset("ck34")
    return [ds.by_name(f"ck_globin_0{k}") for k in range(5)]


class TestMedoid:
    def test_medoid_is_a_member(self, family):
        idx, means = find_medoid(family)
        assert 0 <= idx < len(family)
        assert means.shape == (len(family),)

    def test_means_are_tm_scores(self, family):
        _, means = find_medoid(family)
        assert np.all((means >= 0) & (means <= 1))
        assert means.mean() > 0.7  # it is a tight family

    def test_needs_two_chains(self, family):
        with pytest.raises(ValueError):
            find_medoid(family[:1])


class TestConsensus:
    @pytest.fixture(scope="class")
    def consensus(self, family):
        return consensus_structure(family, name="globin_consensus")

    def test_consensus_is_valid_chain(self, consensus, family):
        chain, info = consensus
        assert len(chain) >= 0.8 * min(len(c) for c in family)
        assert chain.family == "globin"
        assert info["n_residues"] == len(chain)

    def test_consensus_close_to_every_member(self, consensus, family):
        chain, _ = consensus
        for member in family:
            res = tm_align(chain, member)
            assert res.tm_max > 0.75

    def test_consensus_at_least_as_central_as_medoid(self, consensus, family):
        """The averaged shape should explain the family about as well as
        the best single member."""
        chain, info = consensus
        consensus_mean = np.mean(
            [tm_align(chain, m).tm_norm_b for m in family]
        )
        medoid_mean = info["mean_tm"][info["medoid_index"]]
        assert consensus_mean > medoid_mean - 0.05

    def test_support_vector_sane(self, consensus, family):
        _, info = consensus
        support = info["support"]
        assert np.all((support > 0) & (support <= 1))

    def test_bad_support_rejected(self, family):
        with pytest.raises(ValueError):
            consensus_structure(family, min_support=0.0)
