"""rckskel task trees (SEQ/PAR hierarchy of tasks and jobs)."""

import pytest

from repro.core.skeletons import FarmConfig, Job, SkeletonRuntime
from repro.core.tasks import TaskNode, count_jobs, execute_task, par_task, seq_task
from repro.scc.machine import SccMachine
from repro.scc.rcce import Rcce

FAST = FarmConfig(master_job_cycles=1000, master_result_cycles=1000, slave_boot_seconds=0.0)


def make_runtime(n_slaves=4):
    m = SccMachine()
    rcce = Rcce(m)
    rt = SkeletonRuntime(m, rcce, 0, list(range(1, 1 + n_slaves)), FAST)
    return m, rt


def handler(core, payload):
    yield from core.compute_cycles(8_000_000)  # 10 ms
    return payload, 64


def J(k):
    return Job(job_id=k, payload=k, nbytes=64)


def run_tree(tree, n_slaves=4):
    m, rt = make_runtime(n_slaves)
    box = {}

    def master(core):
        yield from rt.check_ready(core)
        box["results"] = yield from execute_task(rt, core, tree)
        yield from rt.shutdown(core)

    m.spawn(0, master)
    for s in rt.slave_ids:
        m.spawn(s, rt.slave_loop, handler)
    m.run()
    return m, box["results"]


class TestConstruction:
    def test_bad_kind(self):
        with pytest.raises(ValueError):
            TaskNode("parallel", (J(0),))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TaskNode("seq", ())

    def test_bad_child_type(self):
        with pytest.raises(TypeError):
            TaskNode("seq", ("job",))

    def test_count_jobs(self):
        tree = seq_task(J(0), par_task(J(1), J(2), seq_task(J(3))))
        assert count_jobs(tree) == 4


class TestExecution:
    def test_flat_par_completes_all(self):
        _, results = run_tree(par_task(*[J(k) for k in range(10)]))
        assert sorted(r.payload for r in results) == list(range(10))

    def test_flat_seq_ordered(self):
        _, results = run_tree(seq_task(*[J(k) for k in range(6)]))
        assert [r.payload for r in results] == list(range(6))

    def test_nested_tree(self):
        tree = seq_task(
            par_task(*[J(k) for k in range(4)]),
            par_task(*[J(k + 10) for k in range(4)]),
        )
        _, results = run_tree(tree)
        payloads = [r.payload for r in results]
        # first wave strictly precedes second wave
        assert set(payloads[:4]) == {0, 1, 2, 3}
        assert set(payloads[4:]) == {10, 11, 12, 13}

    def test_seq_slower_than_par(self):
        jobs = [J(k) for k in range(8)]
        m_seq, _ = run_tree(seq_task(*jobs))
        m_par, _ = run_tree(par_task(*jobs))
        assert m_par.now < m_seq.now / 2

    def test_ue_restriction(self):
        tree = par_task(*[J(k) for k in range(8)], ue_ids=(1, 2))
        m, results = run_tree(tree, n_slaves=4)
        assert {r.slave_id for r in results} <= {1, 2}

    def test_single_job_leaf(self):
        _, results = run_tree(seq_task(J(42)))
        assert [r.payload for r in results] == [42]

    def test_mixed_jobs_and_subtasks_in_par(self):
        tree = par_task(J(0), J(1), seq_task(J(2), J(3)))
        _, results = run_tree(tree)
        assert sorted(r.payload for r in results) == [0, 1, 2, 3]
