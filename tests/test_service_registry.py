"""Structure registry: content hashing, resolution, corpus membership."""

import pytest

from repro.service import StructureRegistry, chain_content_hash
from repro.service.protocol import BadRequest, NotFound
from repro.structure.model import Chain


class TestContentHash:
    def test_name_does_not_affect_the_hash(self, tiny_chain):
        renamed = Chain("other-name", tiny_chain.coords, tiny_chain.sequence)
        assert chain_content_hash(tiny_chain) == chain_content_hash(renamed)

    def test_coordinates_do(self, tiny_chain):
        moved = Chain(
            tiny_chain.name, tiny_chain.coords + 0.001, tiny_chain.sequence
        )
        assert chain_content_hash(tiny_chain) != chain_content_hash(moved)

    def test_sequence_does(self, tiny_chain):
        seq = "M" + tiny_chain.sequence[1:]
        mutated = Chain(tiny_chain.name, tiny_chain.coords, seq)
        assert chain_content_hash(tiny_chain) != chain_content_hash(mutated)


class TestRegistry:
    def test_register_is_idempotent(self, tiny_chain):
        reg = StructureRegistry()
        h1 = reg.register(tiny_chain)
        h2 = reg.register(tiny_chain)
        assert h1 == h2 and len(reg) == 1

    def test_same_content_different_names_collapse(self, tiny_chain):
        reg = StructureRegistry()
        h1 = reg.register(tiny_chain)
        alias = Chain("alias", tiny_chain.coords, tiny_chain.sequence)
        h2 = reg.register(alias)
        assert h1 == h2 and len(reg) == 1
        assert reg.resolve("tiny")[0] == reg.resolve("alias")[0]

    def test_name_conflict_with_different_content_rejected(self, tiny_chain):
        reg = StructureRegistry()
        reg.register(tiny_chain)
        impostor = Chain(
            tiny_chain.name, tiny_chain.coords + 1.0, tiny_chain.sequence
        )
        with pytest.raises(BadRequest, match="already registered"):
            reg.register(impostor)

    def test_resolve_by_name_hash_and_prefix(self, tiny_chain):
        reg = StructureRegistry()
        h = reg.register(tiny_chain)
        assert reg.resolve("tiny")[0] == h
        assert reg.resolve(h)[0] == h
        assert reg.resolve(h[:12])[0] == h

    def test_short_prefix_and_unknown_ref_fail(self, tiny_chain):
        reg = StructureRegistry()
        h = reg.register(tiny_chain)
        with pytest.raises(NotFound):
            reg.resolve(h[:4])  # below MIN_HASH_PREFIX
        with pytest.raises(NotFound):
            reg.resolve("nonexistent-chain")
        with pytest.raises(BadRequest):
            reg.resolve("")

    def test_corpus_membership_and_order(self, ck34_mini):
        reg = StructureRegistry()
        assert reg.load_dataset(ck34_mini) == len(ck34_mini)
        assert reg.dataset_name == ck34_mini.name
        corpus = reg.corpus()
        assert [reg.name_of(h) for h, _c in corpus] == [
            c.name for c in ck34_mini
        ]

    def test_non_corpus_registration_stays_out_of_search(
        self, ck34_mini, tiny_chain
    ):
        reg = StructureRegistry()
        reg.load_dataset(ck34_mini)
        h = reg.register(tiny_chain, corpus=False)
        assert h in reg
        assert h not in {ch for ch, _c in reg.corpus()}
        assert reg.stats()["corpus"] == len(ck34_mini)
        assert reg.stats()["chains"] == len(ck34_mini) + 1

    def test_register_pdb_roundtrip(self, ck34_mini, tmp_path):
        from repro.structure import write_pdb_file

        path = tmp_path / "up.pdb"
        write_pdb_file(ck34_mini[0], path)
        reg = StructureRegistry()
        h = reg.register_pdb(path.read_text(), "uploaded")
        got_h, got = reg.resolve("uploaded")
        assert got_h == h and len(got) == len(ck34_mini[0])

    def test_register_pdb_garbage_is_bad_request(self):
        reg = StructureRegistry()
        with pytest.raises(BadRequest, match="cannot parse"):
            reg.register_pdb("this is not a pdb file", "junk")
        with pytest.raises(BadRequest):
            reg.register_pdb("ATOM ...", "")
