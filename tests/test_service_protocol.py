"""Wire protocol: canonical framing, typed errors, method resolution."""

import json

import pytest

from repro.service.protocol import (
    ERROR_TYPES,
    BadRequest,
    NotFound,
    ServiceError,
    ServiceOverloaded,
    canonical_json,
    decode_line,
    encode_line,
    error_response,
    ok_response,
    resolve_method,
)


class TestFraming:
    def test_canonical_json_is_order_independent(self):
        assert canonical_json({"b": 1, "a": [2, {"z": 3, "y": 4}]}) == (
            canonical_json({"a": [2, {"y": 4, "z": 3}], "b": 1})
        )

    def test_canonical_json_is_compact(self):
        assert canonical_json({"a": 1, "b": [1, 2]}) == '{"a":1,"b":[1,2]}'

    def test_encode_decode_roundtrip(self):
        payload = {"id": 7, "op": "align", "a": "x", "b": "y"}
        line = encode_line(payload)
        assert line.endswith(b"\n") and line.count(b"\n") == 1
        assert decode_line(line) == payload

    def test_nan_is_rejected_at_serialization(self):
        with pytest.raises(ValueError):
            canonical_json({"score": float("nan")})

    def test_decode_rejects_garbage(self):
        with pytest.raises(BadRequest, match="not valid JSON"):
            decode_line(b"{nope\n")
        with pytest.raises(BadRequest, match="JSON object"):
            decode_line(b"[1, 2, 3]\n")
        with pytest.raises(BadRequest):
            decode_line(b"\xff\xfe\n")


class TestResponses:
    def test_ok_response_echoes_id_and_flags_cache(self):
        resp = ok_response(42, {"x": 1}, cached=True)
        assert resp == {"id": 42, "ok": True, "result": {"x": 1}, "cached": True}
        assert "cached" not in ok_response(1, {})

    def test_error_response_carries_typed_code(self):
        resp = error_response(3, ServiceOverloaded("queue full"))
        assert resp["ok"] is False and resp["id"] == 3
        assert resp["error"] == {"code": "overloaded", "message": "queue full"}

    def test_untyped_exception_maps_to_internal(self):
        resp = error_response(None, RuntimeError("boom"))
        assert resp["error"]["code"] == "internal"
        assert "boom" in resp["error"]["message"]

    def test_every_wire_code_maps_back_to_its_class(self):
        assert ERROR_TYPES["overloaded"] is ServiceOverloaded
        assert ERROR_TYPES["bad-request"] is BadRequest
        assert ERROR_TYPES["not-found"] is NotFound
        assert ERROR_TYPES["internal"] is ServiceError
        for code, cls in ERROR_TYPES.items():
            assert cls.code == code
            assert cls("x").to_wire() == {"code": code, "message": "x"}

    def test_responses_serialize_canonically(self):
        resp = ok_response(1, {"b": 2, "a": 1})
        assert encode_line(resp) == encode_line(json.loads(encode_line(resp)))


class TestResolveMethod:
    def test_tmalign_default(self):
        method, params_hash = resolve_method("tmalign", None)
        assert method.name == "tmalign"
        assert len(params_hash) == 64

    def test_unknown_method_is_bad_request(self):
        with pytest.raises(BadRequest):
            resolve_method("frobnicate", None)

    def test_bad_tmalign_override_is_bad_request(self):
        with pytest.raises(BadRequest, match="bad tmalign params"):
            resolve_method("tmalign", {"no_such_knob": 1})
        with pytest.raises(BadRequest):
            resolve_method("tmalign", {"gap_open": 2.0})  # must be <= 0

    def test_other_methods_hash_their_overrides(self):
        _m1, h1 = resolve_method("sse_composition", None)
        _m2, h2 = resolve_method("kabsch_rmsd", None)
        assert h1 != h2


class TestFieldParsers:
    def test_positive_int_accepts_defaults_and_values(self):
        from repro.service.protocol import parse_positive_int

        assert parse_positive_int({}, "top", 10) == 10
        assert parse_positive_int({"top": 3}, "top", 10) == 3

    @pytest.mark.parametrize("bad", [0, -5, 1.5, "3", True, None, [1]])
    def test_positive_int_rejects(self, bad):
        from repro.service.protocol import parse_positive_int

        with pytest.raises(BadRequest, match="top"):
            parse_positive_int({"top": bad}, "top", 10)

    def test_fraction_accepts_defaults_and_values(self):
        from repro.service.protocol import parse_fraction

        assert parse_fraction({}, "keep", 0.48) == 0.48
        assert parse_fraction({"keep": 1}, "keep", 0.48) == 1.0
        assert parse_fraction({"keep": 0.25}, "keep", 0.48) == 0.25

    @pytest.mark.parametrize("bad", [0, 0.0, -0.1, 1.0001, "0.5", True, [0.5]])
    def test_fraction_rejects(self, bad):
        from repro.service.protocol import parse_fraction

        with pytest.raises(BadRequest, match="keep"):
            parse_fraction({"keep": bad}, "keep", 0.48)
