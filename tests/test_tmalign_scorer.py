"""TM-score with a fixed alignment (the TM-score program)."""

import numpy as np
import pytest

from repro.geometry.transforms import RigidTransform, random_rotation
from repro.tmalign.result import Alignment
from repro.tmalign.scorer import tm_score_fixed_alignment


class TestIdentityCorrespondence:
    def test_self_scores_one(self, small_fold_pair):
        parent, _ = small_fold_pair
        assert tm_score_fixed_alignment(parent, parent) == pytest.approx(1.0, abs=1e-6)

    def test_rotated_copy_scores_one(self, small_fold_pair, rng):
        parent, _ = small_fold_pair
        xf = RigidTransform(random_rotation(rng), rng.normal(size=3) * 15)
        moved = parent.transformed(xf)
        assert tm_score_fixed_alignment(parent, moved) == pytest.approx(1.0, abs=1e-5)

    def test_unequal_lengths_need_alignment(self, small_fold_pair):
        parent, child = small_fold_pair
        if len(parent) == len(child):
            pytest.skip("perturbation kept lengths equal")
        with pytest.raises(ValueError):
            tm_score_fixed_alignment(parent, child)


class TestNormalisation:
    def test_normalize_by_choices(self, small_fold_pair):
        parent, child = small_fold_pair
        n = min(len(parent), len(child))
        idx = np.arange(n, dtype=np.intp)
        ali = Alignment(idx, idx)
        by_a = tm_score_fixed_alignment(parent, child, ali, normalize_by="a")
        by_b = tm_score_fixed_alignment(parent, child, ali, normalize_by="b")
        by_min = tm_score_fixed_alignment(parent, child, ali, normalize_by="min")
        assert by_min == pytest.approx(max(by_a, by_b), abs=0.02)

    def test_bad_normalize_by(self, small_fold_pair):
        parent, _ = small_fold_pair
        with pytest.raises(ValueError):
            tm_score_fixed_alignment(parent, parent, normalize_by="zzz")

    def test_fixed_score_not_above_tmalign_optimum(self, small_fold_pair):
        """TM-align optimises the alignment, so its score with the same
        normalisation dominates any fixed correspondence."""
        from repro.tmalign import tm_align

        parent, child = small_fold_pair
        n = min(len(parent), len(child))
        idx = np.arange(n, dtype=np.intp)
        fixed = tm_score_fixed_alignment(
            parent, child, Alignment(idx, idx), normalize_by="b"
        )
        full = tm_align(parent, child).tm_norm_b
        assert full >= fixed - 0.03
