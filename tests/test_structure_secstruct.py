"""Secondary-structure assignment (TM-align make_sec port)."""

import numpy as np
import pytest

from repro.cost.counters import CostCounter
from repro.geometry.transforms import RigidTransform, random_rotation
from repro.structure.secstruct import (
    SS_COIL,
    SS_HELIX,
    SS_STRAND,
    assign_secondary,
)
from repro.structure.synthetic import build_helix, build_strand, build_loop


class TestIdealElements:
    def test_ideal_helix_interior_is_helix(self):
        ss = assign_secondary(build_helix(20))
        assert set(ss[2:-2]) == {SS_HELIX}

    def test_ideal_strand_interior_is_strand(self):
        ss = assign_secondary(build_strand(15))
        assert set(ss[2:-2]) == {SS_STRAND}

    def test_termini_are_coil(self):
        ss = assign_secondary(build_helix(12))
        assert ss[:2] == SS_COIL * 2 and ss[-2:] == SS_COIL * 2

    def test_loop_mostly_not_helix_or_strand(self):
        rng = np.random.default_rng(11)
        counts = []
        for _ in range(5):
            ss = assign_secondary(build_loop(30, rng) * 1.0)
            counts.append(sum(c in "HE" for c in ss) / len(ss))
        assert np.mean(counts) < 0.35


class TestInvariances:
    def test_rigid_motion_invariant(self, rng):
        coords = build_helix(18)
        xf = RigidTransform(random_rotation(rng), rng.normal(size=3) * 50)
        assert assign_secondary(coords) == assign_secondary(xf.apply(coords))

    def test_output_length_matches_input(self):
        for n in (3, 4, 5, 10, 33):
            coords = build_helix(n)
            assert len(assign_secondary(coords)) == n

    def test_short_chain_all_coil(self):
        assert assign_secondary(build_helix(4)) == SS_COIL * 4


class TestPerturbationTolerance:
    def test_small_jitter_keeps_helix(self, rng):
        coords = build_helix(20) + rng.normal(0, 0.3, (20, 3))
        ss = assign_secondary(coords)
        frac = ss.count(SS_HELIX) / len(ss)
        assert frac > 0.5

    def test_large_noise_destroys_structure(self, rng):
        coords = build_helix(20) + rng.normal(0, 5.0, (20, 3))
        ss = assign_secondary(coords)
        assert ss.count(SS_HELIX) / len(ss) < 0.3


class TestApi:
    def test_counter_charged_per_residue(self):
        ctr = CostCounter()
        assign_secondary(build_helix(25), counter=ctr)
        assert ctr["sec_res"] == 25

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            assign_secondary(np.zeros((5, 2)))
