"""Sharded-service tests: rendezvous hashing, scatter-gather, failover.

The unit layer pins the rendezvous (HRW) ownership function — stable
under shard add/remove, deterministic across processes.  The end-to-end
layer boots real :class:`PSCService` shards plus a
:class:`ShardCoordinator` in one event loop and asserts the acceptance
criterion of the subsystem: a coordinator ``search`` over N shards is
byte-identical to the same search against a single-node service, and a
down shard degrades the answer, never hangs it.
"""

import asyncio
import contextlib
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.service import PSCService, ServiceClient, ServiceConfig
from repro.service.client import backoff_delays
from repro.service.protocol import (
    BadRequest,
    ServiceUnavailable,
    canonical_json,
)
from repro.service.shard import (
    AsyncShardConnection,
    CoordinatorConfig,
    ShardCoordinator,
    parse_shard_spec,
    partition_keys,
    rendezvous_owner,
    rendezvous_rank,
)

SHARD_IDS = [f"10.0.0.{i}:7743" for i in range(1, 5)]
KEYS = [f"chainhash{i:04d}" for i in range(400)]


class TestRendezvousHashing:
    def test_owner_is_first_of_rank(self):
        for key in KEYS[:50]:
            assert rendezvous_owner(key, SHARD_IDS) == rendezvous_rank(
                key, SHARD_IDS
            )[0]

    def test_rank_is_a_permutation_of_the_shards(self):
        for key in KEYS[:50]:
            assert sorted(rendezvous_rank(key, SHARD_IDS)) == sorted(SHARD_IDS)

    def test_owner_ignores_shard_list_order(self):
        shuffled = list(reversed(SHARD_IDS))
        for key in KEYS:
            assert rendezvous_owner(key, SHARD_IDS) == rendezvous_owner(
                key, shuffled
            )

    def test_empty_shard_list_raises(self):
        with pytest.raises(ValueError):
            rendezvous_owner("k", [])

    def test_remove_shard_moves_only_its_keys(self):
        before = {key: rendezvous_owner(key, SHARD_IDS) for key in KEYS}
        survivors = SHARD_IDS[:-1]
        after = {key: rendezvous_owner(key, survivors) for key in KEYS}
        for key in KEYS:
            if before[key] in survivors:
                # the defining HRW property: keys owned by surviving
                # shards do not move when another shard leaves
                assert after[key] == before[key]
            else:
                assert after[key] in survivors

    def test_add_shard_moves_about_one_in_n_keys(self):
        before = {key: rendezvous_owner(key, SHARD_IDS[:-1]) for key in KEYS}
        after = {key: rendezvous_owner(key, SHARD_IDS) for key in KEYS}
        moved = [key for key in KEYS if before[key] != after[key]]
        # every moved key lands on the new shard, nowhere else
        assert all(after[key] == SHARD_IDS[-1] for key in moved)
        # expected share 1/4; generous bounds on 400 keys
        assert 0.10 <= len(moved) / len(KEYS) <= 0.45

    def test_partition_covers_all_keys_disjointly(self):
        parts = partition_keys(KEYS, SHARD_IDS)
        seen = [key for shard in SHARD_IDS for key in parts[shard]]
        assert sorted(seen) == sorted(KEYS)
        for shard, owned in parts.items():
            assert all(rendezvous_owner(k, SHARD_IDS) == shard for k in owned)

    def test_deterministic_across_processes(self):
        script = (
            "import sys; sys.path.insert(0, 'src')\n"
            "from repro.service.shard import rendezvous_owner\n"
            f"ids = {SHARD_IDS!r}\n"
            f"for key in {KEYS[:40]!r}:\n"
            "    print(rendezvous_owner(key, ids))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            cwd="/root/repo",
            capture_output=True,
            text=True,
            check=True,
        ).stdout.split()
        assert out == [rendezvous_owner(key, SHARD_IDS) for key in KEYS[:40]]


class TestShardSpec:
    def test_host_port_passthrough(self):
        assert parse_shard_spec("10.1.2.3:9000") == "10.1.2.3:9000"

    def test_bare_port_gets_loopback(self):
        assert parse_shard_spec("9000") == "127.0.0.1:9000"
        assert parse_shard_spec(":9000") == "127.0.0.1:9000"

    @pytest.mark.parametrize("bad", ["", "host:", "host:abc", "x", "h:70000"])
    def test_bad_specs_raise(self, bad):
        with pytest.raises(ValueError):
            parse_shard_spec(bad)

    def test_coordinator_requires_shards(self):
        with pytest.raises(ValueError):
            ShardCoordinator(CoordinatorConfig(shards=()))


def _shard_config(dataset="ck34-mini"):
    return ServiceConfig(dataset=dataset, port=0, batch_window=0.001)


def with_cluster(client_fn, n_shards=2, dataset="ck34-mini", **coord_kwargs):
    """Boot ``n_shards`` services + a coordinator; run ``client_fn`` in
    the loop with ``(coordinator, shard_services)``."""

    async def main():
        async with contextlib.AsyncExitStack() as stack:
            shards = [
                await stack.enter_async_context(
                    PSCService(_shard_config(dataset))
                )
                for _ in range(n_shards)
            ]
            specs = tuple(f"{s.host}:{s.port}" for s in shards)
            coordinator = await stack.enter_async_context(
                ShardCoordinator(
                    CoordinatorConfig(shards=specs, port=0, **coord_kwargs)
                )
            )
            return await client_fn(coordinator, shards)

    return asyncio.run(main())


async def _request(server, payload):
    conn = AsyncShardConnection(server.host, server.port)
    try:
        return await conn.request(payload)
    finally:
        await conn.aclose()


class TestScatterGather:
    def test_search_byte_identical_to_single_node_on_ck34(self):
        """The acceptance criterion, on the full CK34 corpus."""
        from repro.datasets import load_dataset

        names = [c.name for c in load_dataset("ck34").chains]
        queries = names[:3]

        async def scenario_named(coordinator, _shards):
            results = []
            async with PSCService(_shard_config("ck34")) as solo:
                for query in queries:
                    req = {
                        "op": "search",
                        "query": query,
                        "top": 7,
                        "method": "sse_composition",
                    }
                    sharded = await _request(coordinator, dict(req))
                    single = await _request(solo, dict(req))
                    results.append((sharded["result"], single["result"]))
            return results

        results = with_cluster(scenario_named, n_shards=3, dataset="ck34")
        for sharded, single in results:
            assert canonical_json(sharded) == canonical_json(single)

    def test_align_passthrough_and_cache_flag(self):
        async def scenario(coordinator, _shards):
            req = {
                "op": "align",
                "a": "ck_globin_00",
                "b": "ck_globin_01",
                "method": "sse_composition",
            }
            first = await _request(coordinator, dict(req))
            second = await _request(coordinator, dict(req))
            return first, second

        first, second = with_cluster(scenario)
        assert first["ok"] and second["ok"]
        assert first["cached"] is False and second["cached"] is True
        assert canonical_json(first["result"]) == canonical_json(
            second["result"]
        )

    def test_search_fanout_metrics_and_status(self):
        async def scenario(coordinator, _shards):
            await _request(
                coordinator,
                {
                    "op": "search",
                    "query": "ck_globin_00",
                    "top": 3,
                    "method": "sse_composition",
                },
            )
            metrics = await _request(coordinator, {"op": "metrics"})
            status = await _request(coordinator, {"op": "status"})
            healthz = await _request(coordinator, {"op": "healthz"})
            return metrics["result"], status["result"], healthz["result"]

        metrics, status, healthz = with_cluster(scenario, n_shards=2)
        assert metrics["fanout"]["searches"] == 1
        assert 1 <= metrics["fanout"]["mean_width"] <= 2
        assert set(metrics["shards"]) == set(status["topology"])
        assert status["status"] == "ok"
        assert status["coordinator"] is True
        assert status["shards_reachable"] == 2
        assert status["drift"] is False
        for info in status["shards"].values():
            assert info["reachable"] is True
            assert info["corpus"] == 8
            assert info["registry_generation"] == 8
            assert info["corpus_fingerprint"]
        assert healthz["status"] == "ok"
        assert healthz["shards_healthy"] == 2

    def test_register_replicates_to_every_shard(self, ck34_mini, tmp_path):
        from repro.structure import write_pdb_file

        path = tmp_path / "up.pdb"
        write_pdb_file(ck34_mini[0], path)
        pdb_text = path.read_text()

        async def scenario(coordinator, shards):
            reg = await _request(
                coordinator,
                {
                    "op": "register",
                    "name": "uploaded",
                    "pdb": pdb_text,
                    "corpus": True,
                },
            )
            views = [
                (await _request(s, {"op": "corpus"}))["result"] for s in shards
            ]
            return reg["result"], views

        info, views = with_cluster(scenario, n_shards=3)
        assert info["replicated"] == 3
        assert info["shards"] == 3
        assert "partial" not in info
        for view in views:
            assert "uploaded" in [entry["name"] for entry in view["chains"]]
        # write-all keeps the fingerprints converged (no drift)
        assert len({view["fingerprint"] for view in views}) == 1


class TestFailover:
    def test_search_survives_a_down_shard(self):
        async def scenario(coordinator, shards):
            req = {
                "op": "search",
                "query": "ck_globin_00",
                "top": 5,
                "method": "sse_composition",
            }
            healthy = await _request(coordinator, dict(req))
            await shards[1].aclose()  # hard-stop one shard mid-run
            degraded = await _request(coordinator, dict(req))
            status = await _request(coordinator, {"op": "status"})
            return healthy["result"], degraded["result"], status["result"]

        healthy, degraded, status = with_cluster(
            scenario, n_shards=2, connect_retries=0
        )
        # replication means the survivor can serve the dead shard's
        # slice: the merged answer stays complete, not partial (only the
        # from_cache count may differ — the survivor's slice is warm)
        assert "partial" not in degraded
        strip = lambda r: {k: v for k, v in r.items() if k != "from_cache"}
        assert canonical_json(strip(degraded)) == canonical_json(strip(healthy))
        assert status["status"] == "degraded"
        assert status["shards_reachable"] == 1

    def test_register_reports_typed_partial_on_down_shard(
        self, ck34_mini, tmp_path
    ):
        from repro.structure import write_pdb_file

        path = tmp_path / "up.pdb"
        write_pdb_file(ck34_mini[1], path)
        pdb_text = path.read_text()

        async def scenario(coordinator, shards):
            await shards[0].aclose()
            reg = await _request(
                coordinator,
                {
                    "op": "register",
                    "name": "survivor_only",
                    "pdb": pdb_text,
                    "corpus": True,
                },
            )
            return reg["result"]

        info = with_cluster(scenario, n_shards=2, connect_retries=0)
        assert info["replicated"] == 1
        assert info["shards"] == 2
        assert len(info["partial"]["failed_shards"]) == 1

    def test_all_shards_down_is_unavailable_not_a_hang(self):
        async def scenario(coordinator, shards):
            for shard in shards:
                await shard.aclose()
            with pytest.raises(ServiceUnavailable):
                await _request(
                    coordinator,
                    {
                        "op": "align",
                        "a": "ck_globin_00",
                        "b": "ck_globin_01",
                        "method": "sse_composition",
                    },
                )
            return True

        assert with_cluster(scenario, n_shards=2, connect_retries=0)

    def test_run_id_status_is_rejected_at_the_coordinator(self):
        async def scenario(coordinator, _shards):
            with pytest.raises(BadRequest):
                await _request(
                    coordinator, {"op": "status", "run_id": "some-run"}
                )
            return True

        assert with_cluster(scenario, n_shards=2)


class TestClientReconnect:
    def test_backoff_schedule_is_exponential(self):
        assert list(backoff_delays(4, 0.05)) == [0.05, 0.1, 0.2, 0.4]
        assert list(backoff_delays(0, 0.05)) == []

    def test_connect_to_dead_port_raises_unavailable(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            free_port = probe.getsockname()[1]
        t0 = time.monotonic()
        with pytest.raises(ServiceUnavailable):
            ServiceClient(
                port=free_port, connect_retries=2, connect_backoff=0.01
            )
        assert time.monotonic() - t0 < 5.0  # bounded, not a hang

    def test_connect_retries_ride_out_a_late_server(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]

        accepted = threading.Event()

        def late_listener():
            time.sleep(0.25)
            with socket.socket() as listener:
                listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
                listener.bind(("127.0.0.1", port))
                listener.listen(1)
                conn, _addr = listener.accept()
                accepted.set()
                conn.close()

        thread = threading.Thread(target=late_listener, daemon=True)
        thread.start()
        client = ServiceClient(
            port=port, connect_retries=8, connect_backoff=0.05
        )
        client.close()
        thread.join(timeout=5)
        assert accepted.is_set()
