"""Full TM-align integration behaviour."""

import numpy as np
import pytest

from repro.cost.counters import CostCounter
from repro.geometry.transforms import RigidTransform, random_rotation
from repro.structure.model import Chain
from repro.tmalign import TMAlignParams, tm_align


class TestSelfAlignment:
    def test_self_is_perfect(self, small_fold_pair):
        parent, _ = small_fold_pair
        res = tm_align(parent, parent)
        assert res.tm_norm_a == pytest.approx(1.0, abs=1e-6)
        assert res.tm_norm_b == pytest.approx(1.0, abs=1e-6)
        assert res.rmsd < 1e-6
        assert res.n_aligned == len(parent)
        assert res.seq_identity == 1.0

    def test_rigid_motion_invariance(self, small_fold_pair, rng):
        parent, _ = small_fold_pair
        xf = RigidTransform(random_rotation(rng), rng.normal(size=3) * 25)
        res = tm_align(parent, parent.transformed(xf))
        assert res.tm_norm_a == pytest.approx(1.0, abs=1e-5)
        assert res.rmsd < 0.01

    def test_recovered_transform_superposes(self, small_fold_pair, rng):
        parent, _ = small_fold_pair
        xf = RigidTransform(random_rotation(rng), rng.normal(size=3) * 25)
        moved = parent.transformed(xf)
        res = tm_align(parent, moved)
        diff = res.transform.apply(parent.coords) - moved.coords
        assert np.sqrt((diff * diff).mean()) < 0.05


class TestDiscrimination:
    def test_family_pair_scores_high(self, small_fold_pair):
        parent, child = small_fold_pair
        res = tm_align(parent, child)
        assert res.tm_max > 0.6

    def test_unrelated_scores_lower_than_family(self, small_fold_pair, unrelated_fold):
        parent, child = small_fold_pair
        fam = tm_align(parent, child)
        cross = tm_align(parent, unrelated_fold)
        assert fam.tm_max > cross.tm_max

    def test_ck34_within_vs_between_families(self, ck34):
        fams = ck34.families
        globins = fams["globin"][:3]
        plastos = fams["plasto"][:2]
        within = tm_align(globins[0], globins[1]).tm_max
        between = tm_align(globins[0], plastos[0]).tm_max
        assert within > 0.55
        assert between < within


class TestResultContract:
    def test_scores_in_unit_interval(self, small_fold_pair, unrelated_fold):
        parent, child = small_fold_pair
        for a, b in ((parent, child), (parent, unrelated_fold)):
            res = tm_align(a, b)
            assert 0.0 <= res.tm_norm_a <= 1.0
            assert 0.0 <= res.tm_norm_b <= 1.0

    def test_norm_a_le_norm_b_when_a_longer(self, small_fold_pair):
        """The TM-score normalised by the longer chain cannot exceed the
        one normalised by the shorter chain."""
        parent, child = small_fold_pair
        res = tm_align(parent, child)
        longer_norm = res.tm_norm_a if res.len_a >= res.len_b else res.tm_norm_b
        shorter_norm = res.tm_norm_b if res.len_a >= res.len_b else res.tm_norm_a
        # allow tiny slack: the two scores come from separate searches
        assert longer_norm <= shorter_norm + 0.02

    def test_alignment_indices_valid(self, small_fold_pair):
        parent, child = small_fold_pair
        res = tm_align(parent, child)
        assert res.alignment.ai.max() < len(parent)
        assert res.alignment.aj.max() < len(child)
        assert res.n_aligned == len(res.alignment)

    def test_quasi_symmetry(self, small_fold_pair):
        """tm_align(a,b) and tm_align(b,a) must agree on the scores
        (cross-normalised) within search tolerance."""
        parent, child = small_fold_pair
        ab = tm_align(parent, child)
        ba = tm_align(child, parent)
        assert ab.tm_norm_a == pytest.approx(ba.tm_norm_b, abs=0.05)
        assert ab.tm_norm_b == pytest.approx(ba.tm_norm_a, abs=0.05)

    def test_summary_contains_names(self, small_fold_pair):
        parent, child = small_fold_pair
        s = tm_align(parent, child).summary()
        assert parent.name in s and child.name in s

    def test_deterministic(self, small_fold_pair):
        parent, child = small_fold_pair
        r1 = tm_align(parent, child)
        r2 = tm_align(parent, child)
        assert r1.tm_norm_a == r2.tm_norm_a
        assert r1.alignment == r2.alignment


class TestOpCounting:
    def test_op_counts_populated(self, small_fold_pair):
        parent, child = small_fold_pair
        res = tm_align(parent, child)
        assert res.op_counts["align_fixed"] == 1
        assert res.op_counts["dp_cell"] > len(parent) * len(child)
        assert res.op_counts["kabsch"] > 10
        assert res.op_counts["sec_res"] == len(parent) + len(child)

    def test_external_counter_merged(self, small_fold_pair):
        parent, child = small_fold_pair
        ctr = CostCounter()
        res = tm_align(parent, child, counter=ctr)
        assert ctr.as_dict() == res.op_counts

    def test_longer_chains_cost_more(self, ck34):
        small = min(ck34, key=len)
        big = max(ck34, key=len)
        cheap = tm_align(small, small).op_counts["dp_cell"]
        costly = tm_align(big, big).op_counts["dp_cell"]
        assert costly > cheap


class TestParams:
    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            TMAlignParams(gap_open=0.5)
        with pytest.raises(ValueError):
            TMAlignParams(max_refine_iters=0)
        with pytest.raises(ValueError):
            TMAlignParams(ss_mix=2.0)
        with pytest.raises(ValueError):
            TMAlignParams(n_seed_fractions=())

    def test_fragment_init_can_be_disabled(self, small_fold_pair):
        parent, child = small_fold_pair
        params = TMAlignParams(use_fragment_init=False)
        res = tm_align(parent, child, params=params)
        assert res.tm_max > 0.5  # still works, maybe slightly worse

    def test_fewer_iters_never_beats_more(self, small_fold_pair, unrelated_fold):
        parent, _ = small_fold_pair
        few = tm_align(
            parent, unrelated_fold, params=TMAlignParams(max_refine_iters=1)
        )
        many = tm_align(
            parent, unrelated_fold, params=TMAlignParams(max_refine_iters=20)
        )
        assert many.tm_max >= few.tm_max - 1e-9


class TestInitToggles:
    def test_single_init_variants_work(self, small_fold_pair):
        parent, child = small_fold_pair
        for kwargs in (
            dict(use_ss_init=False, use_combined_init=False, use_fragment_init=False),
            dict(use_threading_init=False, use_combined_init=False, use_fragment_init=False),
            dict(use_threading_init=False, use_ss_init=False, use_fragment_init=False),
        ):
            res = tm_align(parent, child, params=TMAlignParams(**kwargs))
            assert res.tm_max > 0.4  # any single init still lands the fold

    def test_all_disabled_rejected(self, small_fold_pair):
        parent, child = small_fold_pair
        params = TMAlignParams(
            use_threading_init=False,
            use_ss_init=False,
            use_combined_init=False,
            use_fragment_init=False,
        )
        with pytest.raises(ValueError):
            tm_align(parent, child, params=params)

    def test_full_set_at_least_as_good(self, small_fold_pair, unrelated_fold):
        parent, _ = small_fold_pair
        full = tm_align(parent, unrelated_fold)
        only_thread = tm_align(
            parent,
            unrelated_fold,
            params=TMAlignParams(
                use_ss_init=False, use_combined_init=False, use_fragment_init=False
            ),
        )
        assert full.tm_max >= only_thread.tm_max - 1e-9
