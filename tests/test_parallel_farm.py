"""The process-pool farm: bit-identical results in any configuration.

The farm's whole contract is that parallelism is *invisible* in the
numbers: the same score table, the same merged cost counters, the same
CSV bytes as the serial loop, for any worker count and chunk size.  The
measured-mode goldens below were captured from the pre-farm serial code
path, so they also pin the optimised TM-align kernel to the seed's
bit-exact output.
"""

from __future__ import annotations

import os

import pytest

from repro.cost.counters import CostCounter
from repro.parallel import (
    DEFAULT_CHUNK,
    FarmStats,
    ParallelConfig,
    WorkerCrash,
    auto_chunk,
    iter_pair_results,
    parallel_all_vs_all,
    parallel_one_vs_all,
)
from repro.parallel.worker import QUERY_INDEX, dataset_spec
from repro.psc import all_vs_all, get_method, one_vs_all
from repro.psc.evaluator import EvalMode, JobEvaluator
from repro.psc.methods import SSECompositionMethod

# Measured-mode TM-align scores for ck34-mini pairs, captured as repr()
# from the serial pre-farm code path (the PR-2 seed).  repr round-trips
# doubles exactly, so equality here means bit-identical floats.
GOLDEN_MINI = {
    "ck_globin_00|ck_globin_01": {
        "n_aligned": "142.0",
        "rmsd": "0.7499474535489062",
        "seq_identity": "0.6197183098591549",
        "tm_norm_a": "0.9281806935058299",
        "tm_norm_b": "0.9726556580806811",
    },
    "ck_globin_00|ck_globin_06": {
        "n_aligned": "144.0",
        "rmsd": "0.8177780938484748",
        "seq_identity": "0.5486111111111112",
        "tm_norm_a": "0.9367403515375622",
        "tm_norm_b": "0.968213007489395",
    },
    "ck_globin_01|ck_globin_05": {
        "n_aligned": "142.0",
        "rmsd": "1.048441118881122",
        "seq_identity": "0.3732394366197183",
        "tm_norm_a": "0.9485783927397259",
        "tm_norm_b": "0.9179409688497665",
    },
    "ck_globin_02|ck_globin_05": {
        "n_aligned": "140.0",
        "rmsd": "1.123331429030768",
        "seq_identity": "0.4",
        "tm_norm_a": "0.9409182560096342",
        "tm_norm_b": "0.8986666497200446",
    },
    "ck_globin_03|ck_globin_06": {
        "n_aligned": "142.0",
        "rmsd": "1.1556817455108057",
        "seq_identity": "0.29577464788732394",
        "tm_norm_a": "0.9144192703161471",
        "tm_norm_b": "0.9263441094396094",
    },
    "ck_globin_06|ck_globin_07": {
        "n_aligned": "144.0",
        "rmsd": "1.2309751359816556",
        "seq_identity": "0.2916666666666667",
        "tm_norm_a": "0.932748657479765",
        "tm_norm_b": "0.9091816790922987",
    },
}


class ExplodingMethod(SSECompositionMethod):
    """Raises on one specific pair — exercises worker-failure surfacing.

    Defined at module top level so the pool can pickle it by reference.
    """

    name = "exploding"

    def __init__(self, poison_b: str) -> None:
        self.poison_b = poison_b

    def compare(self, chain_a, chain_b, counter):
        if chain_b.name == self.poison_b:
            raise RuntimeError(f"boom on {chain_a.name}|{chain_b.name}")
        return super().compare(chain_a, chain_b, counter)


class SuicidalMethod(SSECompositionMethod):
    """Kills its own worker process — exercises dead-pool detection."""

    name = "suicidal"

    def compare(self, chain_a, chain_b, counter):
        os._exit(17)


class TestDeterminism:
    """Scores bit-identical across worker counts and chunk sizes."""

    @pytest.fixture(scope="class")
    def serial_table(self, ck34_mini):
        counter = CostCounter()
        table = all_vs_all(ck34_mini, get_method("tmalign"), counter=counter)
        return table, counter

    def test_serial_matches_pre_farm_golden(self, serial_table):
        table, _ = serial_table
        for pair_key, want in GOLDEN_MINI.items():
            a, b = pair_key.split("|")
            got = table[(a, b)]
            for field, want_repr in want.items():
                assert repr(got[field]) == want_repr, (pair_key, field)

    @pytest.mark.parametrize("workers,chunk", [(1, 1), (2, 7), (8, 64)])
    def test_tmalign_bit_identical_across_farm_configs(
        self, ck34_mini, serial_table, workers, chunk
    ):
        want_table, want_counter = serial_table
        counter = CostCounter()
        table = all_vs_all(
            ck34_mini, get_method("tmalign"), counter=counter,
            workers=workers, chunk=chunk,
        )
        assert table == want_table  # dict equality on floats = bit equality
        assert counter.as_dict() == want_counter.as_dict()

    @pytest.mark.parametrize("workers", [1, 2, 8])
    @pytest.mark.parametrize("chunk", [1, 7, 64])
    def test_full_workers_chunk_cross(self, ck34_mini, workers, chunk):
        # cheap method so the full 3x3 (workers, chunk) cross stays fast
        method = get_method("sse_composition")
        want = all_vs_all(ck34_mini, method)
        counter = CostCounter()
        got = all_vs_all(
            ck34_mini, method, counter=counter, workers=workers, chunk=chunk
        )
        assert got == want
        assert counter["sec_res"] > 0

    def test_one_vs_all_parity(self, ck34_mini):
        method = get_method("sse_composition")
        query = ck34_mini[2]
        want_ctr, got_ctr = CostCounter(), CostCounter()
        want = one_vs_all(query, ck34_mini, method, counter=want_ctr)
        got = one_vs_all(
            query, ck34_mini, method, counter=got_ctr, workers=2, chunk=3
        )
        assert got == want
        assert got_ctr.as_dict() == want_ctr.as_dict()
        assert all(h.chain_name != query.name for h in got)

    def test_query_pairs_use_sentinel(self, ck34_mini):
        rows = parallel_one_vs_all(
            ck34_mini[0], ck34_mini, get_method("sse_composition"),
            config=ParallelConfig(workers=0),
        )
        assert len(rows) == len(ck34_mini) - 1
        assert QUERY_INDEX == -1


class TestFailureSurfacing:
    def test_worker_exception_raises_workercrash(self, ck34_mini):
        method = ExplodingMethod(poison_b=ck34_mini[3].name)
        with pytest.raises(WorkerCrash) as err:
            parallel_all_vs_all(
                ck34_mini, method, config=ParallelConfig(workers=2, chunk=2)
            )
        assert err.value.pair == (0, 3)
        assert "boom on" in err.value.remote_traceback
        assert "RuntimeError" in err.value.remote_traceback

    def test_serial_path_raises_the_original_error(self, ck34_mini):
        method = ExplodingMethod(poison_b=ck34_mini[3].name)
        with pytest.raises(RuntimeError, match="boom on"):
            parallel_all_vs_all(ck34_mini, method, config=ParallelConfig(workers=1))

    def test_dead_worker_process_detected(self, ck34_mini):
        with pytest.raises(WorkerCrash, match="died abruptly"):
            parallel_all_vs_all(
                ck34_mini, SuicidalMethod(),
                config=ParallelConfig(workers=2, chunk=4),
            )


class TestScheduling:
    def test_auto_chunk_serial_takes_everything(self):
        assert auto_chunk(100, 1) == 100
        assert auto_chunk(0, 1) == 1

    def test_auto_chunk_targets_four_chunks_per_worker(self):
        assert auto_chunk(64, 4) == 4  # 64 / (4*4)
        assert auto_chunk(7021, 8) == 32  # capped
        assert auto_chunk(3, 8) == 1  # floored, never exceeds n_jobs

    def test_auto_chunk_bounds(self):
        for n_jobs in (1, 5, 33, 561, 7021):
            for workers in (2, 3, 8, 16):
                c = auto_chunk(n_jobs, workers)
                assert 1 <= c <= min(32, n_jobs)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ParallelConfig(workers=-1)
        with pytest.raises(ValueError):
            ParallelConfig(chunk=-1)
        with pytest.raises(ValueError):
            ParallelConfig(start_method="quantum")
        assert ParallelConfig().resolved_start_method() in ("fork", "spawn")

    def test_stats_filled(self, ck34_mini):
        stats = FarmStats()
        list(
            iter_pair_results(
                ck34_mini,
                [(0, 1), (0, 2), (1, 2)],
                get_method("sse_composition"),
                config=ParallelConfig(workers=2, chunk=2),
                stats=stats,
            )
        )
        assert stats.n_jobs == 3
        assert stats.n_chunks == 2
        assert stats.chunk_size == 2
        assert stats.wall_seconds > 0
        assert stats.pairs_per_second > 0

    def test_default_chunk_positive(self):
        assert DEFAULT_CHUNK >= 1

    def test_dataset_spec_prefers_registry_name(self, ck34_mini):
        kind, payload = dataset_spec(ck34_mini)
        assert (kind, payload) == ("registry", "ck34-mini")

    def test_dataset_spec_falls_back_to_pickle(self, ck34_mini):
        subset = ck34_mini.subset(3, name="adhoc")
        kind, payload = dataset_spec(subset)
        assert kind == "pickle"
        assert payload is subset


class TestEvaluatorPrewarm:
    def test_prewarm_matches_serial_evaluate(self, ck34_mini):
        serial = JobEvaluator(ck34_mini, mode=EvalMode.MEASURED)
        warmed = JobEvaluator(ck34_mini, mode=EvalMode.MEASURED)
        pairs = [(0, 1), (0, 2), (1, 3), (2, 3)]
        assert warmed.prewarm(pairs, workers=2, chunk=1) == len(pairs)
        assert warmed.cache_len() == len(pairs)
        for i, j in pairs:
            s_scores, s_ctr = serial.evaluate(i, j)
            w_scores, w_ctr = warmed.evaluate(i, j)
            assert w_scores == s_scores
            assert w_ctr.as_dict() == s_ctr.as_dict()

    def test_prewarm_is_idempotent(self, ck34_mini):
        ev = JobEvaluator(ck34_mini, mode=EvalMode.MODEL)
        n = len(ck34_mini) * (len(ck34_mini) - 1) // 2
        assert ev.prewarm(workers=2) == n
        assert ev.prewarm(workers=2) == 0
