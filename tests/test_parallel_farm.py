"""The process-pool farm: bit-identical results in any configuration.

The farm's whole contract is that parallelism is *invisible* in the
numbers: the same score table, the same merged cost counters, the same
CSV bytes as the serial loop, for any worker count and chunk size.  The
measured-mode goldens below were captured from the pre-farm serial code
path, so they also pin the optimised TM-align kernel to the seed's
bit-exact output.
"""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro.cost.counters import CostCounter
from repro.faults import FarmFaultPlan, InjectedFault, WorkerFault
from repro.parallel import (
    DEFAULT_CHUNK,
    SERIAL_RETRY_CHUNK_CAP,
    FarmStats,
    ParallelConfig,
    RetryPolicy,
    WorkerCrash,
    auto_chunk,
    effective_workers,
    iter_pair_results,
    parallel_all_vs_all,
    parallel_one_vs_all,
    reset_worker_clamp_warnings,
)
from repro.parallel import shmplane
from repro.parallel.worker import QUERY_INDEX, dataset_spec
from repro.psc import all_vs_all, get_method, one_vs_all
from repro.psc.evaluator import EvalMode, JobEvaluator
from repro.psc.methods import SSECompositionMethod

#: both POSIX start methods where available (macOS/Windows lack fork)
START_METHODS = [
    m for m in ("fork", "spawn") if m in multiprocessing.get_all_start_methods()
]

# Measured-mode TM-align scores for ck34-mini pairs, captured as repr()
# from the serial pre-farm code path (the PR-2 seed).  repr round-trips
# doubles exactly, so equality here means bit-identical floats.
GOLDEN_MINI = {
    "ck_globin_00|ck_globin_01": {
        "n_aligned": "142.0",
        "rmsd": "0.7499474535489062",
        "seq_identity": "0.6197183098591549",
        "tm_norm_a": "0.9281806935058299",
        "tm_norm_b": "0.9726556580806811",
    },
    "ck_globin_00|ck_globin_06": {
        "n_aligned": "144.0",
        "rmsd": "0.8177780938484748",
        "seq_identity": "0.5486111111111112",
        "tm_norm_a": "0.9367403515375622",
        "tm_norm_b": "0.968213007489395",
    },
    "ck_globin_01|ck_globin_05": {
        "n_aligned": "142.0",
        "rmsd": "1.048441118881122",
        "seq_identity": "0.3732394366197183",
        "tm_norm_a": "0.9485783927397259",
        "tm_norm_b": "0.9179409688497665",
    },
    "ck_globin_02|ck_globin_05": {
        "n_aligned": "140.0",
        "rmsd": "1.123331429030768",
        "seq_identity": "0.4",
        "tm_norm_a": "0.9409182560096342",
        "tm_norm_b": "0.8986666497200446",
    },
    "ck_globin_03|ck_globin_06": {
        "n_aligned": "142.0",
        "rmsd": "1.1556817455108057",
        "seq_identity": "0.29577464788732394",
        "tm_norm_a": "0.9144192703161471",
        "tm_norm_b": "0.9263441094396094",
    },
    "ck_globin_06|ck_globin_07": {
        "n_aligned": "144.0",
        "rmsd": "1.2309751359816556",
        "seq_identity": "0.2916666666666667",
        "tm_norm_a": "0.932748657479765",
        "tm_norm_b": "0.9091816790922987",
    },
}


class ExplodingMethod(SSECompositionMethod):
    """Raises on one specific pair — exercises worker-failure surfacing.

    Defined at module top level so the pool can pickle it by reference.
    """

    name = "exploding"

    def __init__(self, poison_b: str) -> None:
        self.poison_b = poison_b

    def compare(self, chain_a, chain_b, counter):
        if chain_b.name == self.poison_b:
            raise RuntimeError(f"boom on {chain_a.name}|{chain_b.name}")
        return super().compare(chain_a, chain_b, counter)


class PairPoisonMethod(SSECompositionMethod):
    """Raises on exactly one (a, b) name pair — unlike ExplodingMethod,
    only a single chunk can ever fail, so retry-exhaustion tests are
    deterministic regardless of result arrival order."""

    name = "pair_poison"

    def __init__(self, poison_a: str, poison_b: str) -> None:
        self.poison_a = poison_a
        self.poison_b = poison_b

    def compare(self, chain_a, chain_b, counter):
        if (chain_a.name, chain_b.name) == (self.poison_a, self.poison_b):
            raise RuntimeError(f"boom on {chain_a.name}|{chain_b.name}")
        return super().compare(chain_a, chain_b, counter)


class SuicidalMethod(SSECompositionMethod):
    """Kills its own worker process — exercises dead-pool detection."""

    name = "suicidal"

    def compare(self, chain_a, chain_b, counter):
        os._exit(17)


class TestDeterminism:
    """Scores bit-identical across worker counts and chunk sizes."""

    @pytest.fixture(scope="class")
    def serial_table(self, ck34_mini):
        counter = CostCounter()
        table = all_vs_all(ck34_mini, get_method("tmalign"), counter=counter)
        return table, counter

    def test_serial_matches_pre_farm_golden(self, serial_table):
        table, _ = serial_table
        for pair_key, want in GOLDEN_MINI.items():
            a, b = pair_key.split("|")
            got = table[(a, b)]
            for field, want_repr in want.items():
                assert repr(got[field]) == want_repr, (pair_key, field)

    @pytest.mark.parametrize("workers,chunk", [(1, 1), (2, 7), (8, 64)])
    def test_tmalign_bit_identical_across_farm_configs(
        self, ck34_mini, serial_table, workers, chunk
    ):
        want_table, want_counter = serial_table
        counter = CostCounter()
        table = all_vs_all(
            ck34_mini, get_method("tmalign"), counter=counter,
            workers=workers, chunk=chunk,
        )
        assert table == want_table  # dict equality on floats = bit equality
        assert counter.as_dict() == want_counter.as_dict()

    @pytest.mark.parametrize("start_method", START_METHODS)
    @pytest.mark.parametrize("shm", [True, False])
    def test_tmalign_bit_identical_across_start_methods(
        self, ck34_mini, serial_table, start_method, shm
    ):
        """fork and spawn, plane on and off: same table, bit for bit.

        Under spawn nothing is inherited, so this is the proof that the
        shared-memory plane (and the pickling fallback) each deliver the
        exact dataset the serial loop scored."""
        want_table, want_counter = serial_table
        counter = CostCounter()
        stats = FarmStats()
        table = parallel_all_vs_all(
            ck34_mini, get_method("tmalign"), counter=counter,
            config=ParallelConfig(
                workers=2, chunk=7, start_method=start_method, shm=shm
            ),
            stats=stats,
        )
        assert table == want_table
        assert counter.as_dict() == want_counter.as_dict()
        if shm:
            # /dev/shm exists on every platform we run CI on; if the
            # plane silently failed to build we want to know
            assert stats.shm_plane
            assert stats.bytes_to_workers < 4096  # names, not megabytes
        else:
            assert not stats.shm_plane
        assert stats.pool_startup_s >= 0.0

    @pytest.mark.parametrize("workers", [1, 2, 8])
    @pytest.mark.parametrize("chunk", [1, 7, 64])
    def test_full_workers_chunk_cross(self, ck34_mini, workers, chunk):
        # cheap method so the full 3x3 (workers, chunk) cross stays fast
        method = get_method("sse_composition")
        want = all_vs_all(ck34_mini, method)
        counter = CostCounter()
        got = all_vs_all(
            ck34_mini, method, counter=counter, workers=workers, chunk=chunk
        )
        assert got == want
        assert counter["sec_res"] > 0

    def test_one_vs_all_parity(self, ck34_mini):
        method = get_method("sse_composition")
        query = ck34_mini[2]
        want_ctr, got_ctr = CostCounter(), CostCounter()
        want = one_vs_all(query, ck34_mini, method, counter=want_ctr)
        got = one_vs_all(
            query, ck34_mini, method, counter=got_ctr, workers=2, chunk=3
        )
        assert got == want
        assert got_ctr.as_dict() == want_ctr.as_dict()
        assert all(h.chain_name != query.name for h in got)

    def test_query_pairs_use_sentinel(self, ck34_mini):
        rows = parallel_one_vs_all(
            ck34_mini[0], ck34_mini, get_method("sse_composition"),
            config=ParallelConfig(workers=0),
        )
        assert len(rows) == len(ck34_mini) - 1
        assert QUERY_INDEX == -1


class TestFailureSurfacing:
    def test_worker_exception_raises_workercrash(self, ck34_mini):
        method = ExplodingMethod(poison_b=ck34_mini[3].name)
        with pytest.raises(WorkerCrash) as err:
            parallel_all_vs_all(
                ck34_mini, method, config=ParallelConfig(workers=2, chunk=2)
            )
        assert err.value.pair == (0, 3)
        assert "boom on" in err.value.remote_traceback
        assert "RuntimeError" in err.value.remote_traceback

    def test_serial_path_raises_the_original_error(self, ck34_mini):
        method = ExplodingMethod(poison_b=ck34_mini[3].name)
        with pytest.raises(RuntimeError, match="boom on"):
            parallel_all_vs_all(ck34_mini, method, config=ParallelConfig(workers=1))

    def test_dead_worker_process_detected(self, ck34_mini):
        with pytest.raises(WorkerCrash, match="died abruptly"):
            parallel_all_vs_all(
                ck34_mini, SuicidalMethod(),
                config=ParallelConfig(workers=2, chunk=4),
            )


class TestScheduling:
    def test_auto_chunk_serial_takes_everything(self):
        assert auto_chunk(100, 1) == 100
        assert auto_chunk(0, 1) == 1

    def test_auto_chunk_targets_four_chunks_per_worker(self):
        assert auto_chunk(64, 4) == 4  # 64 / (4*4)
        assert auto_chunk(7021, 8) == 32  # capped
        assert auto_chunk(3, 8) == 1  # floored, never exceeds n_jobs

    def test_auto_chunk_bounds(self):
        for n_jobs in (1, 5, 33, 561, 7021):
            for workers in (2, 3, 8, 16):
                c = auto_chunk(n_jobs, workers)
                assert 1 <= c <= min(32, n_jobs)

    def test_auto_chunk_more_workers_than_jobs(self):
        # chunk must stay 1 so every worker can get at least one pair
        assert auto_chunk(1, 16) == 1
        assert auto_chunk(2, 8) == 1
        assert auto_chunk(3, 4) == 1
        assert auto_chunk(7, 8) == 1

    def test_auto_chunk_cap_and_target_boundaries(self):
        assert auto_chunk(16, 4) == 1  # exactly 4 chunks/worker at size 1
        assert auto_chunk(17, 4) == 2  # first size that rounds up
        assert auto_chunk(512, 4) == 32  # lands exactly on the cap
        assert auto_chunk(513, 4) == 32  # stays capped past it
        assert auto_chunk(0, 4) == 1  # empty job list still legal

    def test_auto_chunk_zero_workers_is_serial(self):
        assert auto_chunk(5, 0) == 5
        assert auto_chunk(0, 0) == 1

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ParallelConfig(workers=-1)
        with pytest.raises(ValueError):
            ParallelConfig(chunk=-1)
        with pytest.raises(ValueError):
            ParallelConfig(start_method="quantum")
        assert ParallelConfig().resolved_start_method() in ("fork", "spawn")

    def test_stats_filled(self, ck34_mini):
        stats = FarmStats()
        list(
            iter_pair_results(
                ck34_mini,
                [(0, 1), (0, 2), (1, 2)],
                get_method("sse_composition"),
                config=ParallelConfig(workers=2, chunk=2),
                stats=stats,
            )
        )
        assert stats.n_jobs == 3
        assert stats.n_chunks == 2
        assert stats.chunk_size == 2
        assert stats.wall_seconds > 0
        assert stats.pairs_per_second > 0

    def test_default_chunk_positive(self):
        assert DEFAULT_CHUNK >= 1

    def test_dataset_spec_prefers_registry_name(self, ck34_mini):
        kind, payload = dataset_spec(ck34_mini)
        assert (kind, payload) == ("registry", "ck34-mini")

    def test_dataset_spec_falls_back_to_pickle(self, ck34_mini):
        subset = ck34_mini.subset(3, name="adhoc")
        kind, payload = dataset_spec(subset)
        assert kind == "pickle"
        assert payload is subset


class TestCostAwareScheduling:
    """PR-6: chunks packed by predicted cost, workers clamped against the
    machine, realized chunk sizes recorded truthfully."""

    def test_effective_workers_clamps_with_warning(self):
        reset_worker_clamp_warnings()
        cap = max(2, os.cpu_count() or 1)
        with pytest.warns(RuntimeWarning, match="exceeds usable CPUs") as rec:
            assert effective_workers(cap + 61) == cap
        clamped = [w for w in rec if "exceeds usable CPUs" in str(w.message)]
        assert len(clamped) == 1
        msg = str(clamped[0].message)
        # the warning must state the clamped value and the detected count
        assert f"workers={cap + 61}" in msg
        assert f"clamping to {cap}" in msg
        assert f"os.cpu_count()={os.cpu_count()}" in msg
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            # same clamp again: fires exactly once per run, so silent now
            assert effective_workers(cap + 61) == cap
            # at or below the cap: no warning, no change
            assert effective_workers(2) == 2
            assert effective_workers(cap) == cap
        reset_worker_clamp_warnings()

    def test_clamp_warning_distinct_per_request(self):
        reset_worker_clamp_warnings()
        cap = max(2, os.cpu_count() or 1)
        with pytest.warns(RuntimeWarning):
            effective_workers(cap + 10)
        with pytest.warns(RuntimeWarning):  # different request: warns again
            effective_workers(cap + 11)
        reset_worker_clamp_warnings()

    def test_auto_chunk_serial_retry_floor(self):
        # armed retry bounds the serial chunk: a fault can only ever
        # force a bounded re-dispatch, not replay the whole job list
        assert auto_chunk(7021, 1, retry_armed=True) == SERIAL_RETRY_CHUNK_CAP
        assert auto_chunk(7021, 0, retry_armed=True) == SERIAL_RETRY_CHUNK_CAP
        assert auto_chunk(5, 1, retry_armed=True) == 5
        # without retry the historical contract stands
        assert auto_chunk(7021, 1) == 7021

    def test_cost_packed_stats_record_realized_chunks(self, ck34_mini):
        stats = FarmStats()
        results = list(
            iter_pair_results(
                ck34_mini,
                [(i, j) for i in range(8) for j in range(i + 1, 8)],
                get_method("sse_composition"),
                config=ParallelConfig(workers=2, chunk=0, adaptive=False),
                stats=stats,
            )
        )
        assert stats.cost_packed
        assert stats.requested_workers == 2
        assert len(results) == stats.n_jobs == 28
        assert len(stats.chunk_sizes) == stats.n_chunks
        assert sum(stats.chunk_sizes) == stats.n_jobs
        assert stats.chunk_size_min <= stats.chunk_size_mean <= stats.chunk_size_max
        assert len(stats.chunk_walls) == stats.n_chunks
        assert all(w >= 0 for w in stats.chunk_walls)

    def test_explicit_chunk_disables_cost_packing(self, ck34_mini):
        stats = FarmStats()
        list(
            iter_pair_results(
                ck34_mini,
                [(0, 1), (0, 2), (1, 2)],
                get_method("sse_composition"),
                config=ParallelConfig(workers=2, chunk=2),
                stats=stats,
            )
        )
        assert not stats.cost_packed
        # recorded in completion order, so compare as a multiset
        assert sorted(stats.chunk_sizes) == [1, 2]

    def test_cost_packed_bit_identical_with_adaptive(self, ck34_mini):
        """chunk=0 + adaptive on: the full new scheduler against the
        serial loop — same table, same merged counters, bit for bit."""
        method = get_method("tmalign")
        want_ctr, got_ctr = CostCounter(), CostCounter()
        want = all_vs_all(ck34_mini, method, counter=want_ctr)
        stats = FarmStats()
        got = parallel_all_vs_all(
            ck34_mini, method, counter=got_ctr,
            config=ParallelConfig(workers=2, chunk=0, adaptive=True),
            stats=stats,
        )
        assert got == want
        assert got_ctr.as_dict() == want_ctr.as_dict()
        assert stats.cost_packed

    def test_serial_stats_record_chunks(self, ck34_mini):
        stats = FarmStats()
        list(
            iter_pair_results(
                ck34_mini,
                [(0, 1), (0, 2), (1, 2)],
                get_method("sse_composition"),
                config=ParallelConfig(workers=0),
                stats=stats,
            )
        )
        assert stats.workers == 0
        assert stats.chunk_sizes == [3]  # serial: one chunk, realized

    def test_tail_imbalance_and_cost_error_computable(self, ck34_mini):
        stats = FarmStats()
        list(
            iter_pair_results(
                ck34_mini,
                [(i, j) for i in range(8) for j in range(i + 1, 8)],
                get_method("tmalign"),
                config=ParallelConfig(workers=2, chunk=0, adaptive=False),
                stats=stats,
            )
        )
        imb = stats.tail_imbalance()
        assert imb is not None and imb > 0
        err = stats.predicted_cost_error()
        assert err is None or err >= 0


class TestRetryPath:
    """Retry/backoff absorbs injected failures; exhaustion still points
    at the failing pair."""

    RETRY = RetryPolicy(max_retries=2, backoff_seconds=0.01)

    def test_injected_raise_absorbed_bit_identical(self, ck34_mini):
        method = get_method("sse_composition")
        want = all_vs_all(ck34_mini, method)
        stats = FarmStats()
        got = parallel_all_vs_all(
            ck34_mini, method,
            config=ParallelConfig(workers=2, chunk=2, retry=self.RETRY),
            stats=stats,
            faults=FarmFaultPlan.single("raise", (0, 3)),
        )
        assert got == want
        assert stats.retries == 1
        assert stats.pool_restarts == 0

    def test_injected_kill_pool_restart_bit_identical(self, ck34_mini):
        method = get_method("sse_composition")
        want = all_vs_all(ck34_mini, method)
        stats = FarmStats()
        got = parallel_all_vs_all(
            ck34_mini, method,
            config=ParallelConfig(workers=2, chunk=2, retry=self.RETRY),
            stats=stats,
            faults=FarmFaultPlan.single("kill", (1, 2)),
        )
        assert got == want
        assert stats.pool_restarts >= 1

    @pytest.mark.parametrize("start_method", START_METHODS)
    def test_plane_rebuild_after_kill_bit_identical(
        self, ck34_mini, start_method
    ):
        """The acceptance case: a SIGKILLed worker forces a pool rebuild,
        the replacement pool re-attaches the *same* plane (no re-pickle,
        no re-serialize), and the table still matches serial exactly."""
        method = get_method("sse_composition")
        want = all_vs_all(ck34_mini, method)
        stats = FarmStats()
        got = parallel_all_vs_all(
            ck34_mini, method,
            config=ParallelConfig(
                workers=2, chunk=2, retry=self.RETRY,
                start_method=start_method, shm=True,
            ),
            stats=stats,
            faults=FarmFaultPlan.single("kill", (1, 2)),
        )
        assert got == want
        assert stats.pool_restarts >= 1
        assert stats.shm_plane
        assert stats.rebuild_s >= 0.0
        # the plane outlived the kill: still cached, attachable, live
        plane = shmplane.plane_for(ck34_mini)
        try:
            assert plane is not None and plane.live
            view = plane.attach()
            assert len(view) == len(ck34_mini)
            view.detach()
        finally:
            shmplane.release(plane)

    def test_stalled_chunk_redispatched(self, ck34_mini):
        method = get_method("sse_composition")
        want = all_vs_all(ck34_mini, method)
        retry = RetryPolicy(
            max_retries=2, backoff_seconds=0.01, chunk_timeout_seconds=0.4
        )
        stats = FarmStats()
        got = parallel_all_vs_all(
            ck34_mini, method,
            config=ParallelConfig(workers=2, chunk=4, retry=retry),
            stats=stats,
            faults=FarmFaultPlan.single("stall", (0, 1), stall_seconds=2.0),
        )
        assert got == want
        assert stats.chunk_timeouts >= 1

    def test_workercrash_carries_pair_through_retry_path(self, ck34_mini):
        # the method fails on *every* attempt, so retries exhaust — the
        # surfaced WorkerCrash must still name the poisoned pair
        method = PairPoisonMethod(ck34_mini[0].name, ck34_mini[3].name)
        stats = FarmStats()
        with pytest.raises(WorkerCrash) as err:
            parallel_all_vs_all(
                ck34_mini, method,
                config=ParallelConfig(workers=2, chunk=2, retry=self.RETRY),
                stats=stats,
            )
        assert err.value.pair == (0, 3)
        assert "boom on" in err.value.remote_traceback
        assert stats.retries == self.RETRY.max_retries

    def test_fault_without_retry_names_pair(self, ck34_mini):
        with pytest.raises(WorkerCrash) as err:
            parallel_all_vs_all(
                ck34_mini, get_method("sse_composition"),
                config=ParallelConfig(workers=2, chunk=2),
                faults=FarmFaultPlan.single(
                    "raise", (2, 5), attempts=(0, 1, 2, 3)
                ),
            )
        assert err.value.pair == (2, 5)
        assert "InjectedFault" in err.value.remote_traceback

    def test_serial_path_retries_in_process(self, ck34_mini):
        method = get_method("sse_composition")
        want = all_vs_all(ck34_mini, method)
        stats = FarmStats()
        got = parallel_all_vs_all(
            ck34_mini, method,
            config=ParallelConfig(workers=0, retry=self.RETRY),
            stats=stats,
            faults=FarmFaultPlan.single("raise", (0, 3)),
        )
        assert got == want
        assert stats.retries == 1

    def test_serial_path_without_retry_raises_injected(self, ck34_mini):
        with pytest.raises(InjectedFault):
            parallel_all_vs_all(
                ck34_mini, get_method("sse_composition"),
                config=ParallelConfig(workers=0),
                faults=FarmFaultPlan.single("raise", (0, 3)),
            )

    def test_one_vs_all_retry_parity(self, ck34_mini):
        method = get_method("sse_composition")
        query = ck34_mini[2]
        want = parallel_one_vs_all(
            query, ck34_mini, method, config=ParallelConfig(workers=0)
        )
        got = parallel_one_vs_all(
            query, ck34_mini, method,
            config=ParallelConfig(workers=2, chunk=3, retry=self.RETRY),
            faults=FarmFaultPlan.single("raise", (QUERY_INDEX, 4)),
        )
        assert got == want


class TestEvaluatorPrewarm:
    def test_prewarm_matches_serial_evaluate(self, ck34_mini):
        serial = JobEvaluator(ck34_mini, mode=EvalMode.MEASURED)
        warmed = JobEvaluator(ck34_mini, mode=EvalMode.MEASURED)
        pairs = [(0, 1), (0, 2), (1, 3), (2, 3)]
        assert warmed.prewarm(pairs, workers=2, chunk=1) == len(pairs)
        assert warmed.cache_len() == len(pairs)
        for i, j in pairs:
            s_scores, s_ctr = serial.evaluate(i, j)
            w_scores, w_ctr = warmed.evaluate(i, j)
            assert w_scores == s_scores
            assert w_ctr.as_dict() == s_ctr.as_dict()

    def test_prewarm_is_idempotent(self, ck34_mini):
        ev = JobEvaluator(ck34_mini, mode=EvalMode.MODEL)
        n = len(ck34_mini) * (len(ck34_mini) - 1) // 2
        assert ev.prewarm(workers=2) == n
        assert ev.prewarm(workers=2) == 0
