"""Property tests for pair enumeration: blocked order covers exactly
the all-vs-all pair set.

The memory-constrained master streams pairs in block-tile order
(:func:`blocked_pairs`); the farm and the simulators enumerate them
row-major (:func:`all_vs_all_pairs`).  Both must cover exactly the same
unordered pairs — once each — for every ragged (n, block_size) combo,
including block sizes larger than the dataset and blocks that divide n
unevenly.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.pairs import all_vs_all_pairs, blocked_pairs, n_all_vs_all


@given(st.integers(1, 60), st.integers(1, 70))
@settings(max_examples=120, deadline=None)
def test_blocked_pairs_same_set_as_row_major(n, block_size):
    blocked = list(blocked_pairs(n, block_size))
    flat = list(all_vs_all_pairs(n))
    assert len(blocked) == len(flat)  # no duplicates given set equality below
    assert set(blocked) == set(flat)


@given(st.integers(1, 60), st.integers(1, 70))
@settings(max_examples=60, deadline=None)
def test_blocked_pairs_are_unordered_i_lt_j(n, block_size):
    assert all(i < j for i, j in blocked_pairs(n, block_size))


@given(
    st.integers(1, 60),
    st.booleans(),
    st.booleans(),
)
@settings(max_examples=80, deadline=None)
def test_n_all_vs_all_matches_enumeration(n, ordered, include_self):
    pairs = list(all_vs_all_pairs(n, ordered=ordered, include_self=include_self))
    assert len(pairs) == n_all_vs_all(n, ordered=ordered, include_self=include_self)
    assert len(set(pairs)) == len(pairs)


@given(st.integers(1, 40))
@settings(max_examples=40, deadline=None)
def test_block_size_one_and_huge_blocks_degenerate_cleanly(n):
    flat = set(all_vs_all_pairs(n))
    assert set(blocked_pairs(n, 1)) == flat
    assert list(blocked_pairs(n, n + 13)) == list(all_vs_all_pairs(n))


def test_invalid_block_size_rejected():
    import pytest

    with pytest.raises(ValueError):
        list(blocked_pairs(5, 0))
