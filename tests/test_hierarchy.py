"""Hierarchical masters extension."""

import pytest

from repro.core.hierarchy import HierarchicalFarmConfig, run_hierarchical_rckalign
from repro.core.rckalign import RckAlignConfig, run_rckalign
from repro.core.skeletons import FarmConfig
from repro.datasets import load_dataset
from repro.psc.evaluator import JobEvaluator

FAST = FarmConfig(master_job_cycles=1e6, master_result_cycles=1e6, slave_boot_seconds=0.0)


@pytest.fixture(scope="module")
def mini():
    ds = load_dataset("ck34-mini")
    return ds, JobEvaluator(ds)


class TestHierarchicalRun:
    def test_all_jobs_complete(self, mini):
        ds, ev = mini
        rep = run_hierarchical_rckalign(
            HierarchicalFarmConfig(
                base=RckAlignConfig(dataset=ds, n_slaves=8, farm=FAST),
                n_submasters=2,
            ),
            evaluator=ev,
        )
        n = len(ds)
        assert rep.n_jobs == n * (n - 1) // 2
        assert len(rep.results) == rep.n_jobs

    def test_pairs_unique(self, mini):
        ds, ev = mini
        rep = run_hierarchical_rckalign(
            HierarchicalFarmConfig(
                base=RckAlignConfig(dataset=ds, n_slaves=9, farm=FAST),
                n_submasters=3,
            ),
            evaluator=ev,
        )
        pairs = {(r.payload["i"], r.payload["j"]) for r in rep.results}
        assert len(pairs) == rep.n_jobs

    def test_comparable_to_flat_at_small_scale(self, mini):
        """With a cheap master, hierarchy wastes cores on sub-masters;
        it must still be within ~2x of flat."""
        ds, ev = mini
        flat = run_rckalign(
            RckAlignConfig(dataset=ds, n_slaves=8, farm=FAST), evaluator=ev
        )
        hier = run_hierarchical_rckalign(
            HierarchicalFarmConfig(
                base=RckAlignConfig(dataset=ds, n_slaves=8, farm=FAST),
                n_submasters=2,
            ),
            evaluator=ev,
        )
        assert hier.total_seconds < 2 * flat.total_seconds

    def test_helps_when_master_is_bottleneck(self):
        """With an expensive master and many slaves, two sub-masters must
        beat the single master (the paper's §V argument)."""
        ds = load_dataset("ck34")
        ev = JobEvaluator(ds)
        costly = FarmConfig(
            master_job_cycles=96e6, master_result_cycles=96e6, slave_boot_seconds=0.0
        )
        flat = run_rckalign(
            RckAlignConfig(dataset=ds, n_slaves=40, farm=costly), evaluator=ev
        )
        hier = run_hierarchical_rckalign(
            HierarchicalFarmConfig(
                base=RckAlignConfig(dataset=ds, n_slaves=40, farm=costly),
                n_submasters=4,
            ),
            evaluator=ev,
        )
        assert hier.total_seconds < flat.total_seconds

    def test_validation(self, mini):
        ds, ev = mini
        with pytest.raises(ValueError):
            HierarchicalFarmConfig(
                base=RckAlignConfig(dataset=ds, n_slaves=8), n_submasters=0
            )
        with pytest.raises(ValueError):
            run_hierarchical_rckalign(
                HierarchicalFarmConfig(
                    base=RckAlignConfig(dataset=ds, n_slaves=3, farm=FAST),
                    n_submasters=2,
                ),
                evaluator=ev,
            )
