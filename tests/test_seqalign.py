"""Sequence alignment: affine Gotoh DP vs brute force, BLOSUM62, modes."""

from itertools import combinations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.seqalign.align import (
    AffineParams,
    affine_align,
    align_sequences,
)
from repro.seqalign.matrices import AA_ORDER, BLOSUM62, substitution_score_matrix


def brute_force_affine(score, go, ge, mode):
    """Enumerate all monotone match sets; a gap run of length L costs
    go + (L-1)*ge.  End handling per mode:

    * global     — both end runs charged;
    * semiglobal — classic overlap: a free prefix/suffix in ONE
      sequence per end (the other, if also skipped, pays its run);
    * local      — both ends free on both sequences (Smith–Waterman).
    """
    la, lb = score.shape

    def run_cost(length):
        return 0.0 if length == 0 else go + (length - 1) * ge

    def gap_cost_between(p, q):
        di, dj = q[0] - p[0] - 1, q[1] - p[1] - 1
        return run_cost(di) + run_cost(dj)

    cells = [(i, j) for i in range(la) for j in range(lb)]
    if mode == "global":
        best = run_cost(la) + run_cost(lb)  # empty: L-shaped all-gap path
    else:
        best = 0.0
    for size in range(1, min(la, lb) + 1):
        for combo in combinations(cells, size):
            if not all(
                combo[k][0] < combo[k + 1][0] and combo[k][1] < combo[k + 1][1]
                for k in range(size - 1)
            ):
                continue
            total = sum(score[c] for c in combo)
            for k in range(size - 1):
                total += gap_cost_between(combo[k], combo[k + 1])
            ci0, cj0 = combo[0]
            ci1, cj1 = combo[-1]
            if mode == "global":
                total += run_cost(ci0) + run_cost(cj0)
                total += run_cost(la - 1 - ci1) + run_cost(lb - 1 - cj1)
            elif mode == "semiglobal":
                if ci0 > 0 and cj0 > 0:
                    total += max(run_cost(ci0), run_cost(cj0))
                ti, tj = la - 1 - ci1, lb - 1 - cj1
                if ti > 0 and tj > 0:
                    total += max(run_cost(ti), run_cost(tj))
            # local: nothing charged at the ends
            best = max(best, total)
    return best


class TestAffineVsBruteForce:
    @given(st.integers(0, 2**31 - 1), st.integers(2, 4), st.integers(2, 4),
           st.sampled_from(["global", "semiglobal", "local"]))
    @settings(max_examples=60, deadline=None)
    def test_score_matches_oracle(self, seed, la, lb, mode):
        rng = np.random.default_rng(seed)
        score = np.round(rng.uniform(-4, 4, (la, lb)), 2)
        got, _ = affine_align(score, gap_open=-2.0, gap_extend=-0.5, mode=mode)
        want = brute_force_affine(score, -2.0, -0.5, mode)
        assert got == pytest.approx(want, abs=1e-9)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_alignment_consistent_with_score(self, seed):
        """Re-scoring the returned alignment reproduces the DP score
        (global mode, where all costs are explicit)."""
        rng = np.random.default_rng(seed)
        la, lb = int(rng.integers(2, 7)), int(rng.integers(2, 7))
        score = np.round(rng.uniform(-4, 4, (la, lb)), 2)
        go, ge = -2.0, -0.5
        best, ali = affine_align(score, go, ge, "global")

        def run_cost(length):
            return 0.0 if length == 0 else go + (length - 1) * ge

        total = 0.0
        prev = (-1, -1)
        for i, j in zip(ali.ai.tolist(), ali.aj.tolist()):
            total += score[i, j]
            total += run_cost(i - prev[0] - 1) + run_cost(j - prev[1] - 1)
            prev = (i, j)
        if len(ali):
            total += run_cost(la - 1 - prev[0]) + run_cost(lb - 1 - prev[1])
        else:
            total = run_cost(la) + run_cost(lb)
        assert total == pytest.approx(best, abs=1e-9)


class TestModes:
    def test_local_finds_embedded_motif(self):
        a = "WWWW" + "ACDEFGHIKL" + "WWWW"
        b = "PPPP" + "ACDEFGHIKL" + "PPPP"
        res = align_sequences(a, b, mode="local")
        assert res.identity == pytest.approx(1.0)
        assert res.n_aligned >= 10

    def test_global_aligns_everything(self):
        res = align_sequences("ACDEFGHIKL", "ACDEFGHIKL", mode="global")
        assert res.n_aligned == 10
        assert res.identity == 1.0

    def test_semiglobal_free_overhang(self):
        short = "ACDEFGHIKL"
        long_ = "MMMMM" + short + "MMMMM"
        res = align_sequences(short, long_, mode="semiglobal")
        assert res.identity == pytest.approx(1.0)
        assert res.n_aligned == len(short)

    def test_gap_run_cheaper_than_two_gaps(self):
        """Affine gaps: long runs cost open once, so a 2-step shift beats the same shift priced as two opens."""
        score = np.full((4, 6), 0.0)
        for k in range(4):
            score[k, k] = 5.0  # diagonal then 2-gap shift
            if k >= 2:
                score[k, k + 2] = 5.0
        best_affine, _ = affine_align(score, -3.0, -0.5, "global")
        best_linear, _ = affine_align(score, -3.0, -3.0, "global")
        assert best_affine > best_linear

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            affine_align(np.ones((2, 2)), mode="diagonal")

    def test_params_validation(self):
        with pytest.raises(ValueError):
            AffineParams(gap_open=1.0)
        with pytest.raises(ValueError):
            AffineParams(gap_open=-1.0, gap_extend=-2.0)


class TestBlosum:
    def test_symmetric(self):
        for a in AA_ORDER:
            for b in AA_ORDER:
                assert BLOSUM62[(a, b)] == BLOSUM62[(b, a)]

    def test_diagonal_positive(self):
        assert all(BLOSUM62[(a, a)] > 0 for a in AA_ORDER)

    def test_known_values(self):
        assert BLOSUM62[("W", "W")] == 11
        assert BLOSUM62[("A", "A")] == 4
        assert BLOSUM62[("W", "P")] == -4

    def test_score_matrix_lookup(self):
        mat = substitution_score_matrix("AW", "WA")
        assert mat[0, 1] == 4  # A vs A
        assert mat[1, 0] == 11  # W vs W
        assert mat[0, 0] == -3  # A vs W

    def test_unknown_matrix_rejected(self):
        with pytest.raises(KeyError):
            substitution_score_matrix("AA", "AA", "pam1000")

    def test_empty_sequence_rejected(self):
        with pytest.raises(ValueError):
            substitution_score_matrix("", "AA")


class TestSequenceIdentityMethod:
    def test_identical_chains_score_one(self, small_fold_pair):
        from repro.cost.counters import CostCounter
        from repro.seqalign.method import SequenceIdentityMethod

        parent, _ = small_fold_pair
        r = SequenceIdentityMethod().compare(parent, parent, CostCounter())
        assert r["similarity"] == pytest.approx(1.0)

    def test_family_beats_stranger(self, small_fold_pair, unrelated_fold):
        """Family members share ~60% sequence identity by construction."""
        from repro.cost.counters import CostCounter
        from repro.seqalign.method import SequenceIdentityMethod

        parent, child = small_fold_pair
        m = SequenceIdentityMethod()
        fam = m.compare(parent, child, CostCounter())["similarity"]
        cross = m.compare(parent, unrelated_fold, CostCounter())["similarity"]
        assert fam > cross

    def test_counts_charged(self, small_fold_pair):
        from repro.cost.counters import CostCounter
        from repro.seqalign.method import SequenceIdentityMethod

        parent, child = small_fold_pair
        ctr = CostCounter()
        SequenceIdentityMethod().compare(parent, child, ctr)
        assert ctr["dp_cell"] == len(parent) * len(child)
