"""Multi-criteria PSC framework (paper §V extension)."""

import pytest

from repro.core.framework import McPscConfig, partition_slaves, run_mcpsc
from repro.core.skeletons import FarmConfig

FAST = FarmConfig(master_job_cycles=1e5, master_result_cycles=1e5, slave_boot_seconds=0.0)


class TestPartitionSlaves:
    def test_even_split(self):
        parts = partition_slaves(list(range(1, 10)), {"a": 1, "b": 1, "c": 1}, "even")
        assert [len(parts[m]) for m in ("a", "b", "c")] == [3, 3, 3]

    def test_even_remainder(self):
        parts = partition_slaves(list(range(1, 9)), {"a": 1, "b": 1, "c": 1}, "even")
        assert sum(len(p) for p in parts.values()) == 8
        assert all(len(p) >= 2 for p in parts.values())

    def test_work_proportional(self):
        parts = partition_slaves(
            list(range(1, 13)), {"heavy": 90.0, "light": 10.0}, "work"
        )
        assert len(parts["heavy"]) >= 9
        assert len(parts["light"]) >= 1

    def test_every_method_gets_a_slave(self):
        parts = partition_slaves(
            list(range(1, 5)), {"a": 1000.0, "b": 0.001, "c": 0.001}, "work"
        )
        assert all(len(p) >= 1 for p in parts.values())
        assert sum(len(p) for p in parts.values()) == 4

    def test_disjoint_cover(self):
        slaves = list(range(1, 11))
        parts = partition_slaves(slaves, {"a": 3.0, "b": 2.0}, "work")
        allocated = [s for p in parts.values() for s in p]
        assert sorted(allocated) == slaves

    def test_too_few_slaves_rejected(self):
        with pytest.raises(ValueError):
            partition_slaves([1], {"a": 1, "b": 1}, "even")

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            partition_slaves([1, 2], {"a": 1}, "mystery")


class TestRunMcPsc:
    @pytest.fixture(scope="class")
    def report(self):
        return run_mcpsc(
            McPscConfig(dataset="ck34-mini", n_slaves=6, farm=FAST, partitioning="work")
        )

    def test_every_method_completes_all_pairs(self, report):
        from repro.datasets import load_dataset

        n = len(load_dataset("ck34-mini"))
        want = n * (n - 1) // 2
        assert all(v == want for v in report.per_method_jobs.values())
        for method, results in report.per_method_results.items():
            assert len(results) == want

    def test_results_tagged_with_method(self, report):
        for method, results in report.per_method_results.items():
            assert all(r.payload["method"] == method for r in results)

    def test_partitions_cover_pool(self, report):
        assert sum(report.partitions.values()) == 6

    def test_tmalign_gets_most_cores_under_work_partitioning(self, report):
        assert report.partitions["tmalign"] == max(report.partitions.values())

    def test_summary_mentions_partitions(self, report):
        assert "tmalign" in report.summary()

    def test_work_beats_even_for_skewed_methods(self):
        even = run_mcpsc(
            McPscConfig(dataset="ck34-mini", n_slaves=6, farm=FAST, partitioning="even")
        )
        work = run_mcpsc(
            McPscConfig(dataset="ck34-mini", n_slaves=6, farm=FAST, partitioning="work")
        )
        assert work.total_seconds < even.total_seconds


class TestFiveMethods:
    def test_all_registered_methods_in_one_chip(self):
        """All five PSC criteria (incl. contact profile and sequence
        identity) farmed concurrently under one master."""
        from repro.psc.methods import METHOD_REGISTRY

        report = run_mcpsc(
            McPscConfig(
                dataset="ck34-mini",
                methods=tuple(sorted(METHOD_REGISTRY)),
                n_slaves=10,
                farm=FAST,
                partitioning="work",
            )
        )
        assert set(report.partitions) == set(METHOD_REGISTRY)
        want = 8 * 7 // 2
        assert all(len(r) == want for r in report.per_method_results.values())
        # tmalign still dominates the work split
        assert report.partitions["tmalign"] == max(report.partitions.values())
