"""End-to-end TCP tests of the PSC query service.

Each test boots a real :class:`PSCService` on a free port inside
``asyncio.run`` and drives it with the blocking :class:`ServiceClient`
from worker threads (``asyncio.to_thread``), exactly how an external
process would talk to it.
"""

import asyncio
import json
import socket
import threading

import pytest

from repro.service import PSCService, ServiceClient, ServiceConfig
from repro.service.protocol import (
    BadRequest,
    NotFound,
    ServiceOverloaded,
    canonical_json,
)

#: fast service config for tests: tiny corpus, cheap default method lives
#: on the wire anyway (each test names its method explicitly)
CONFIG = ServiceConfig(dataset="ck34-mini", port=0, batch_window=0.001)


def with_service(client_fn, config=CONFIG, evaluate=None):
    """Boot a service, run ``client_fn(port)`` in a thread, return
    ``(service, client_result)`` after a clean close."""

    async def main():
        async with PSCService(config, evaluate=evaluate) as service:
            result = await asyncio.to_thread(client_fn, service.port)
            return service, result

    return asyncio.run(main())


class TestAlignAndCache:
    def test_repeat_align_is_cached_and_byte_identical(self):
        def client(port):
            with ServiceClient(port=port) as c:
                r1 = c.align(
                    "ck_globin_00", "ck_globin_01", method="sse_composition"
                )
                r2 = c.align(
                    "ck_globin_00", "ck_globin_01", method="sse_composition"
                )
                metrics = c.metrics()
                return r1, r2, metrics

        service, (r1, r2, metrics) = with_service(client)
        assert r1["cached"] is False and r2["cached"] is True
        # the acceptance criterion: the cached JSON body is byte-identical
        assert canonical_json(r1["result"]) == canonical_json(r2["result"])
        assert metrics["cache"]["hits"] == 1
        assert metrics["cache"]["misses"] == 1
        assert metrics["counters"]["requests_align"] == 2
        assert metrics["latency"]["op_align"]["count"] == 2

    def test_tmalign_params_change_misses_the_cache(self):
        def client(port):
            with ServiceClient(port=port) as c:
                r1 = c.align("ck_globin_00", "ck_globin_01")
                r2 = c.align(
                    "ck_globin_00",
                    "ck_globin_01",
                    params={"max_refine_iters": 2},
                )
                r3 = c.align("ck_globin_00", "ck_globin_01")
                return r1, r2, r3

        _svc, (r1, r2, r3) = with_service(client)
        assert r1["cached"] is False
        assert r2["cached"] is False  # different params: a different entry
        assert r3["cached"] is True  # default params still cached
        assert r1["result"]["params_hash"] != r2["result"]["params_hash"]
        assert canonical_json(r1["result"]) == canonical_json(r3["result"])

    def test_hash_and_prefix_references_hit_the_same_entry(self):
        def client(port):
            with ServiceClient(port=port) as c:
                r1 = c.align(
                    "ck_globin_00", "ck_globin_01", method="sse_composition"
                )
                full_hash = r1["result"]["pair"][0]
                r2 = c.align(
                    full_hash[:16], "ck_globin_01", method="sse_composition"
                )
                return r1, r2

        _svc, (r1, r2) = with_service(client)
        assert r2["cached"] is True  # same content, different spelling

    def test_unknown_chain_is_not_found(self):
        def client(port):
            with ServiceClient(port=port) as c:
                with pytest.raises(NotFound):
                    c.align("no_such_chain", "ck_globin_00")
                return True

        assert with_service(client)[1]


class TestSearch:
    def test_search_ranks_the_corpus(self):
        def client(port):
            with ServiceClient(port=port) as c:
                result = c.search(
                    "ck_globin_00", top=3, method="sse_composition"
                )
                again = c.search(
                    "ck_globin_00", top=3, method="sse_composition"
                )
                return result, again

        _svc, (result, again) = with_service(client)
        assert result["corpus"] == 7  # 8 chains minus the query itself
        assert len(result["hits"]) == 3
        scores = [h["score"] for h in result["hits"]]
        assert scores == sorted(scores, reverse=True)
        assert result["from_cache"] == 0
        assert again["from_cache"] == 7  # second pass fully cache-served
        assert result["hits"] == again["hits"]

    def test_search_agrees_with_serial_one_vs_all(self, ck34_mini):
        from repro.psc import get_method, one_vs_all

        def client(port):
            with ServiceClient(port=port) as c:
                return c.search(
                    "ck_globin_00", top=7, method="sse_composition"
                )

        _svc, result = with_service(client)
        expected = one_vs_all(
            ck34_mini.by_name("ck_globin_00"),
            ck34_mini,
            method=get_method("sse_composition"),
        )
        expected = [h for h in expected if h.chain_name != "ck_globin_00"]
        assert [h["chain"] for h in result["hits"]] == [
            h.chain_name for h in expected
        ]


class TestRegisterAndRuns:
    def test_register_then_align_uploaded_chain(self, ck34_mini, tmp_path):
        from repro.structure import write_pdb_file

        path = tmp_path / "up.pdb"
        write_pdb_file(ck34_mini[0], path)
        text = path.read_text()

        def client(port):
            with ServiceClient(port=port) as c:
                info = c.register_pdb("uploaded", text)
                r = c.align("uploaded", "ck_globin_01", method="sse_composition")
                return info, r

        _svc, (info, r) = with_service(client)
        assert info["residues"] == len(ck34_mini[0])
        assert r["result"]["pair"][0] == info["hash"]

    def test_submit_matrix_runs_to_completion(self, tmp_path):
        runs_dir = str(tmp_path / "runs")

        def client(port):
            with ServiceClient(port=port) as c:
                info = c.submit_matrix(
                    dataset="ck34-mini",
                    method="sse_composition",
                    runs_dir=runs_dir,
                )
                import time

                for _ in range(200):  # poll to completion (fast method)
                    status = c.status(info["run_id"], runs_dir=runs_dir)
                    if status["status"] in ("complete", "failed"):
                        break
                    time.sleep(0.05)
                return info, status, c.metrics()

        _svc, (info, status, metrics) = with_service(client)
        assert info["n_pairs"] == 28
        assert status["status"] == "complete"
        assert status["done"] == 28 and status["n_pairs"] == 28
        assert metrics["matrix_runs"][info["run_id"]] == "done"
        # the durable artefact exists where submit-matrix said it would
        with open(info["output"], encoding="ascii") as fh:
            assert fh.readline().startswith("chain_a,chain_b")

    def test_status_of_unknown_run_is_not_found(self, tmp_path):
        def client(port):
            with ServiceClient(port=port) as c:
                with pytest.raises(NotFound):
                    c.status("no-such-run", runs_dir=str(tmp_path / "empty"))
                return True

        assert with_service(client)[1]


class TestOverloadEndToEnd:
    def test_saturated_queue_sheds_typed_errors_without_stalling(self):
        """N concurrent clients vs a capacity-1 queue: the surplus gets
        ServiceOverloaded, everything admitted completes, and the server
        keeps answering (healthz) throughout."""
        release = threading.Event()
        started = threading.Event()

        def evaluate(jobs):
            started.set()
            assert release.wait(30), "test deadlock: release never set"
            return [
                canonical_json(
                    {
                        "pair": [j.key[0], j.key[1]],
                        "method": j.method_name,
                        "params_hash": j.params_hash,
                        "scores": {"similarity": 1.0},
                        "score": 1.0,
                    }
                )
                for j in jobs
            ]

        config = ServiceConfig(
            dataset="ck34-mini",
            port=0,
            queue_limit=1,
            max_batch=1,
            batch_window=0.0,
        )
        pairs = [("ck_globin_00", f"ck_globin_0{i}") for i in range(1, 6)]

        def client(port):
            outcomes = []
            lock = threading.Lock()

            def one(a, b):
                with ServiceClient(port=port) as c:
                    try:
                        r = c.align(a, b, method="sse_composition")
                        with lock:
                            outcomes.append(("ok", r["result"]["pair"]))
                    except ServiceOverloaded as exc:
                        with lock:
                            outcomes.append(("shed", str(exc)))

            first = threading.Thread(target=one, args=pairs[0])
            first.start()
            assert started.wait(10)  # pair 0 occupies the evaluator
            rest = [threading.Thread(target=one, args=p) for p in pairs[1:]]
            for t in rest:
                t.start()
            # the event loop is still live while the queue is saturated
            import time

            deadline = 200
            with ServiceClient(port=port) as c:
                while deadline:
                    if c.metrics()["counters"].get("batcher_shed", 0) >= 3:
                        break
                    deadline -= 1
                    time.sleep(0.02)
                assert deadline, "expected >= 3 shed jobs"
                assert c.healthz()["status"] == "ok"
            release.set()
            for t in [first, *rest]:
                t.join(timeout=30)
            return outcomes

        _svc, outcomes = with_service(client, config=config, evaluate=evaluate)
        served = [o for o in outcomes if o[0] == "ok"]
        shed = [o for o in outcomes if o[0] == "shed"]
        assert len(served) == 2  # the in-flight job + the one queued slot
        assert len(shed) == 3
        for _tag, message in shed:
            assert "queue is full" in message

    def test_search_reports_shedding_as_overloaded(self):
        """A search that cannot admit all its pair jobs fails typed, not
        half-silently."""
        config = ServiceConfig(
            dataset="ck34-mini",
            port=0,
            queue_limit=2,
            max_batch=1,
            batch_window=0.0,
            eval_delay=0.05,
        )

        def client(port):
            with ServiceClient(port=port) as c:
                try:
                    c.search("ck_globin_00", method="sse_composition")
                    return None
                except ServiceOverloaded as exc:
                    return str(exc)

        _svc, message = with_service(client, config=config)
        assert message is not None and "search shed" in message
        assert "retry later" in message


class TestProtocolEdges:
    def test_unknown_op_and_garbage_line(self):
        def client(port):
            with socket.create_connection(("127.0.0.1", port), timeout=10) as s:
                f = s.makefile("rwb")
                f.write(b'{"id": 1, "op": "frobnicate"}\n')
                f.flush()
                bad_op = json.loads(f.readline())
                f.write(b"this is not json\n")
                f.flush()
                garbage = json.loads(f.readline())
                return bad_op, garbage

        _svc, (bad_op, garbage) = with_service(client)
        assert bad_op["ok"] is False
        assert bad_op["error"]["code"] == "bad-request"
        assert "frobnicate" in bad_op["error"]["message"]
        assert garbage["ok"] is False
        assert garbage["error"]["code"] == "bad-request"

    def test_missing_field_is_bad_request(self):
        def client(port):
            with ServiceClient(port=port) as c:
                with pytest.raises(BadRequest, match="non-empty string"):
                    c.request("align", a="ck_globin_00")  # no "b"
                return True

        assert with_service(client)[1]

    def test_healthz_shape(self):
        def client(port):
            with ServiceClient(port=port) as c:
                return c.healthz()

        _svc, h = with_service(client)
        assert h["status"] == "ok"
        assert h["dataset"] == "ck34-mini"
        assert h["corpus"] == 8 and h["chains"] == 8
        assert h["uptime_seconds"] >= 0


class TestShutdown:
    def test_shutdown_op_stops_the_server(self):
        async def main():
            async with PSCService(CONFIG) as service:
                waiter = asyncio.ensure_future(service.serve_until_stopped())

                def client(port):
                    with ServiceClient(port=port) as c:
                        assert c.shutdown() == {"stopping": True}

                await asyncio.to_thread(client, service.port)
                await asyncio.wait_for(waiter, timeout=5)
                return True

        assert asyncio.run(main())


class TestPrefilteredSearch:
    #: the mini corpus (7 eligible) never demotes under min_keep=10, so
    #: the prefilter paths are driven on the full ck34 corpus
    CK34_CONFIG = ServiceConfig(dataset="ck34", port=0, batch_window=0.001)

    def test_prefilter_response_shape_and_subset(self):
        def client(port):
            with ServiceClient(port=port) as c:
                exact = c.search(
                    "ck_globin_00", top=33, method="sse_composition"
                )
                pre = c.search(
                    "ck_globin_00", top=33, method="sse_composition",
                    prefilter=True, prefilter_keep=0.1,
                )
                metrics = c.metrics()
                return exact, pre, metrics

        _service, (exact, pre, metrics) = with_service(
            client, config=self.CK34_CONFIG
        )
        # default responses carry no prefilter fields at all
        assert "prefilter" not in exact
        assert exact["corpus"] == 33
        # opt-in responses record the demotion arithmetic
        assert pre["corpus"] == 33
        assert pre["prefilter"]["keep"] == 0.1
        assert pre["prefilter"]["promoted"] == 10  # min_keep floor
        assert pre["prefilter"]["demoted"] == 23
        assert len(pre["hits"]) == 10
        # the prefiltered ranking is the exact ranking minus demotions
        kept = {h["chain"] for h in pre["hits"]}
        exact_kept = [h["chain"] for h in exact["hits"] if h["chain"] in kept]
        assert [h["chain"] for h in pre["hits"]] == exact_kept
        assert metrics["counters"]["prefilter_searches"] == 1
        assert metrics["counters"]["prefilter_demoted"] == 23

    def test_prefilter_built_once_per_corpus_and_keep(self):
        def client(port):
            with ServiceClient(port=port) as c:
                c.search("ck_globin_00", method="sse_composition",
                         prefilter=True, prefilter_keep=0.1)
                c.search("ck_globin_01", method="sse_composition",
                         prefilter=True, prefilter_keep=0.1)
                c.search("ck_globin_02", method="sse_composition",
                         prefilter=True, prefilter_keep=0.2)
                return c.metrics()

        _service, metrics = with_service(client, config=self.CK34_CONFIG)
        # same corpus + keep reuses the encoded prefilter; a new keep
        # builds a second one
        assert metrics["counters"]["prefilter_builds"] == 2
        assert metrics["counters"]["prefilter_searches"] == 3

    def test_bad_top_and_keep_are_typed_errors(self):
        def client(port):
            with ServiceClient(port=port) as c:
                with pytest.raises(BadRequest, match="top"):
                    c.search("ck_globin_00", top=0, method="sse_composition")
                with pytest.raises(BadRequest, match="prefilter_keep"):
                    c.search("ck_globin_00", method="sse_composition",
                             prefilter=True, prefilter_keep=1.5)
                # the connection survives both rejections
                return c.healthz()

        _service, health = with_service(client)
        assert health["status"] == "ok"


class TestMatstore:
    """The durable matrix store wired through the service: cache-before-
    compute on align, lookup/build ops, stats in status and metrics."""

    @pytest.fixture(scope="class")
    def store_root(self, ck34_mini, tmp_path_factory):
        from repro.matstore import build_store

        root = str(tmp_path_factory.mktemp("svc_matstore") / "store")
        build_store(ck34_mini, root)
        return root

    def _config(self, root):
        return ServiceConfig(
            dataset="ck34-mini", port=0, batch_window=0.001, matstore_dir=root
        )

    def test_align_is_served_from_the_store(self, store_root):
        def client(port):
            with ServiceClient(port=port) as c:
                r1 = c.align(
                    "ck_globin_00", "ck_globin_01", method="tmalign_full"
                )
                r2 = c.align(
                    "ck_globin_00", "ck_globin_01", method="tmalign_full"
                )
                return r1, r2, c.metrics()

        _svc, (r1, r2, metrics) = with_service(
            client, config=self._config(store_root)
        )
        # the very first align is a store hit — no kernel batch ran
        assert r1["cached"] is True and r2["cached"] is True
        assert canonical_json(r1["result"]) == canonical_json(r2["result"])
        assert metrics["counters"]["matstore_hits"] >= 1
        assert metrics["counters"].get("batches_dispatched", 0) == 0
        assert metrics["matstore"]["attached"] is True
        assert metrics["matstore"]["pairs_stored"] == 28

    def test_store_hits_are_byte_identical_across_restarts(self, store_root):
        def client(port):
            with ServiceClient(port=port) as c:
                return c.align(
                    "ck_globin_02", "ck_globin_05", method="tmalign_full"
                )

        _s1, first = with_service(client, config=self._config(store_root))
        _s2, second = with_service(client, config=self._config(store_root))
        assert canonical_json(first["result"]) == canonical_json(
            second["result"]
        )

    def test_matstore_lookup_op(self, store_root):
        def client(port):
            with ServiceClient(port=port) as c:
                hit = c.matstore_lookup("ck_globin_00", "ck_globin_03")
                with pytest.raises(NotFound):
                    c.matstore_lookup("ck_globin_00", "ck_globin_00")
                return hit, c.status()

        _svc, (hit, status) = with_service(
            client, config=self._config(store_root)
        )
        assert hit["method"] == "tmalign_full"
        assert set(hit["scores"]) == {
            "gdt_ts", "lddt", "n_aligned", "rmsd", "seq_identity",
            "tm_norm_a", "tm_norm_b",
        }
        assert status["matstore"]["attached"] is True
        assert status["matstore"]["lookup_hits"] == 1

    def test_lookup_without_store_is_bad_request(self):
        def client(port):
            with ServiceClient(port=port) as c:
                with pytest.raises(BadRequest, match="store"):
                    c.matstore_lookup("ck_globin_00", "ck_globin_01")
                return c.status()

        _svc, status = with_service(client)
        assert status["matstore"]["attached"] is False

    def test_matstore_build_op_builds_in_background(self, tmp_path):
        import time

        root = str(tmp_path / "built_by_op")
        config = ServiceConfig(
            dataset="ck34-mini", port=0, batch_window=0.001, matstore_dir=root
        )

        def client(port):
            with ServiceClient(port=port) as c:
                started = c.matstore_build()
                for _ in range(200):
                    status = c.status()
                    ms = status["matstore"]
                    if ms.get("attached") and not ms.get("building"):
                        break
                    time.sleep(0.05)
                hit = c.matstore_lookup("ck_globin_00", "ck_globin_01")
                return started, c.status(), hit

        _svc, (started, status, hit) = with_service(client, config=config)
        assert started["building"] is True
        assert started["n_pairs"] == 28
        assert status["matstore"]["pairs_stored"] == 28
        assert status["matstore"].get("error") is None
        assert hit["scores"]["tm_norm_b"] > 0

    def test_register_extends_the_store_by_one_row(
        self, store_root, ck34, tmp_path
    ):
        import shutil
        import time

        from repro.structure.pdbio import chain_to_pdb

        root = str(tmp_path / "extending")
        shutil.copytree(store_root, root)

        def client(port):
            with ServiceClient(port=port) as c:
                info = c.register_pdb(
                    "newcomer", chain_to_pdb(ck34[20]), corpus=True
                )
                for _ in range(200):
                    ms = c.status()["matstore"]
                    if ms.get("n_chains") == 9 and not ms.get("building"):
                        break
                    time.sleep(0.05)
                hit = c.matstore_lookup("ck_globin_00", "newcomer")
                return info, c.metrics(), hit

        _svc, (info, metrics, hit) = with_service(
            client, config=self._config(root)
        )
        assert info["matstore"] == "extending"
        assert metrics["matstore"]["n_chains"] == 9
        assert metrics["matstore"]["pairs_stored"] == 36
        assert metrics["counters"]["matstore_extends"] == 1
        assert hit["scores"]["rmsd"] > 0
