"""Wormhole (pipelined) transfer fidelity."""

import pytest

from repro.core.rckalign import RckAlignConfig, run_rckalign
from repro.datasets import load_dataset
from repro.noc.fabric import NocConfig, NocFabric
from repro.psc.evaluator import JobEvaluator
from repro.scc.config import SccConfig
from repro.sim.engine import Environment


def run_transfer(fidelity, src, dst, nbytes):
    env = Environment()
    fabric = NocFabric(env, NocConfig(fidelity=fidelity))
    env.run(env.process(fabric.transfer(src, dst, nbytes)))
    return env.now, fabric


class TestLatency:
    def test_wormhole_formula(self):
        t, fabric = run_transfer("wormhole", 0, 5, 64_000)
        cfg = fabric.config
        want = 5 * cfg.hop_latency_s + 64_000 / cfg.link_bandwidth_bytes_per_s
        assert t == pytest.approx(want)

    def test_wormhole_faster_for_big_messages(self):
        t_sf, _ = run_transfer("store_forward", 0, 5, 1_000_000)
        t_wh, _ = run_transfer("wormhole", 0, 5, 1_000_000)
        assert t_wh < t_sf / 3

    def test_single_hop_equal(self):
        t_sf, _ = run_transfer("store_forward", 0, 1, 10_000)
        t_wh, _ = run_transfer("wormhole", 0, 1, 10_000)
        assert t_wh == pytest.approx(t_sf)

    def test_local_transfer_unaffected(self):
        t, fabric = run_transfer("wormhole", 3, 3, 999)
        assert t == pytest.approx(fabric.config.local_latency_s)

    def test_unknown_fidelity_rejected(self):
        with pytest.raises(ValueError):
            NocConfig(fidelity="quantum")


class TestContention:
    def test_shared_link_serializes(self):
        env = Environment()
        fabric = NocFabric(env, NocConfig(fidelity="wormhole"))
        ends = []

        def send():
            yield from fabric.transfer(0, 1, 1_000_000)
            ends.append(env.now)

        env.process(send())
        env.process(send())
        env.run()
        assert ends[1] == pytest.approx(2 * ends[0], rel=1e-6)

    def test_no_deadlock_with_crossing_traffic(self):
        """Many concurrent messages on crossing XY paths must drain."""
        env = Environment()
        fabric = NocFabric(env, NocConfig(fidelity="wormhole"))
        done = []

        def send(src, dst):
            yield from fabric.transfer(src, dst, 50_000)
            done.append((src, dst))

        pairs = [(0, 23), (23, 0), (5, 18), (18, 5), (2, 21), (21, 2), (11, 12)]
        for s, d in pairs:
            env.process(send(s, d))
        env.run()
        assert len(done) == len(pairs)

    def test_wormhole_holds_path(self):
        """While a long message streams 0->2, a message crossing the
        first link must wait for the whole stream (head-of-line)."""
        env = Environment()
        fabric = NocFabric(env, NocConfig(fidelity="wormhole"))
        times = {}

        def long_msg():
            yield from fabric.transfer(0, 2, 10_000_000)
            times["long"] = env.now

        def short_msg():
            yield env.timeout(1e-9)  # start just after
            yield from fabric.transfer(0, 1, 64)
            times["short"] = env.now

        env.process(long_msg())
        env.process(short_msg())
        env.run()
        assert times["short"] > times["long"] * 0.99


class TestEndToEnd:
    def test_rckalign_runs_under_wormhole(self):
        ds = load_dataset("ck34-mini")
        ev = JobEvaluator(ds)
        scc = SccConfig(noc=NocConfig(fidelity="wormhole"))
        rep = run_rckalign(
            RckAlignConfig(dataset=ds, n_slaves=4, scc=scc), evaluator=ev
        )
        assert len(rep.results) == rep.n_jobs

    def test_fidelity_barely_changes_makespan(self):
        """Compute dominates communication in this workload, so the
        fidelity choice must not move the headline numbers."""
        ds = load_dataset("ck34-mini")
        ev = JobEvaluator(ds)
        base = run_rckalign(RckAlignConfig(dataset=ds, n_slaves=6), evaluator=ev)
        worm = run_rckalign(
            RckAlignConfig(
                dataset=ds, n_slaves=6, scc=SccConfig(noc=NocConfig(fidelity="wormhole"))
            ),
            evaluator=ev,
        )
        assert worm.total_seconds == pytest.approx(base.total_seconds, rel=0.02)
