"""Property-based invariants of the farm scheduler and simulation.

These hold for ANY job mix, so hypothesis drives random workloads:
* work conservation — every job runs exactly once, on exactly one slave;
* makespan lower bounds — never beats total-work/n or the longest job;
* greedy upper bound — never worse than the classic 2x-optimal LPT-type
  bound plus the modelled overheads;
* determinism — identical inputs give identical schedules.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.skeletons import FarmConfig, Job, SkeletonRuntime
from repro.scc.machine import SccMachine
from repro.scc.rcce import Rcce

FAST = FarmConfig(master_job_cycles=1e4, master_result_cycles=1e4, slave_boot_seconds=0.0)
FREQ = 800e6


def run_workload(durations_ms, n_slaves):
    m = SccMachine()
    rcce = Rcce(m)
    rt = SkeletonRuntime(m, rcce, 0, list(range(1, 1 + n_slaves)), FAST)
    jobs = [
        Job(job_id=k, payload=float(ms), nbytes=64)
        for k, ms in enumerate(durations_ms)
    ]
    box = {}

    def master(core):
        box["results"] = yield from rt.farm(core, jobs)

    def handler(core, payload):
        yield from core.compute_cycles(payload * 1e-3 * FREQ)
        return payload, 64

    m.spawn(0, master)
    for s in rt.slave_ids:
        m.spawn(s, rt.slave_loop, handler)
    m.run()
    return m, rt, box["results"]


durations = st.lists(
    st.floats(min_value=0.1, max_value=50.0, allow_nan=False),
    min_size=1,
    max_size=30,
)
slave_counts = st.integers(min_value=1, max_value=8)


class TestFarmInvariants:
    @given(durations, slave_counts)
    @settings(max_examples=25, deadline=None)
    def test_work_conservation(self, ms, n):
        _, _, results = run_workload(ms, n)
        assert sorted(r.job_id for r in results) == list(range(len(ms)))
        # every job ran on exactly one slave
        assert len({(r.job_id,) for r in results}) == len(ms)

    @given(durations, slave_counts)
    @settings(max_examples=25, deadline=None)
    def test_makespan_lower_bounds(self, ms, n):
        m, _, _ = run_workload(ms, n)
        total_s = sum(ms) * 1e-3
        longest_s = max(ms) * 1e-3
        assert m.now >= total_s / n - 1e-12
        assert m.now >= longest_s - 1e-12

    @given(durations, slave_counts)
    @settings(max_examples=25, deadline=None)
    def test_greedy_upper_bound(self, ms, n):
        """Greedy list scheduling is within (total/n + max) plus the
        modelled per-job overheads (master service + comm)."""
        m, _, _ = run_workload(ms, n)
        total_s = sum(ms) * 1e-3
        longest_s = max(ms) * 1e-3
        overhead_per_job = 2e-3  # generous bound for master+comm per job
        bound = total_s / n + longest_s + len(ms) * overhead_per_job + 0.01
        assert m.now <= bound

    @given(durations, slave_counts)
    @settings(max_examples=10, deadline=None)
    def test_determinism(self, ms, n):
        m1, _, r1 = run_workload(ms, n)
        m2, _, r2 = run_workload(ms, n)
        assert m1.now == m2.now
        assert [(r.job_id, r.slave_id) for r in r1] == [
            (r.job_id, r.slave_id) for r in r2
        ]

    @given(durations)
    @settings(max_examples=10, deadline=None)
    def test_more_slaves_never_slower(self, ms):
        m2, _, _ = run_workload(ms, 2)
        m6, _, _ = run_workload(ms, 6)
        assert m6.now <= m2.now * 1.01  # tiny slack for extra poll costs


class TestCostPackedFarmProperties:
    """PR-6 invariants of the *real* process-pool farm under cost-packed
    scheduling: ordered bit-identical results for any job mix, and
    predicted chunk costs that track measured walls on real chains."""

    @given(
        subset=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=7),
                st.integers(min_value=0, max_value=7),
            ).filter(lambda p: p[0] != p[1]),
            min_size=1,
            max_size=25,
        ),
        workers=st.integers(min_value=2, max_value=3),
    )
    @settings(max_examples=5, deadline=None)
    def test_cost_packed_results_bit_identical_and_ordered(
        self, subset, workers
    ):
        """Any pair list (duplicates and both orientations allowed), any
        worker count: cost-packed farming returns exactly the serial
        stream — same values, same order."""
        from repro.datasets import load_dataset
        from repro.parallel import ParallelConfig, iter_pair_results
        from repro.psc import get_method

        ds = load_dataset("ck34-mini")
        method = get_method("sse_composition")
        serial = list(
            iter_pair_results(
                ds, subset, method, config=ParallelConfig(workers=0)
            )
        )
        farmed = list(
            iter_pair_results(
                ds, subset, method,
                config=ParallelConfig(workers=workers, chunk=0),
            )
        )
        assert farmed == serial  # equality on floats = bit identity

    def test_predicted_chunk_costs_track_measured_walls(self, ck34):
        """On real ck34 chains under the measured TM-align workload, the
        cost model's chunk predictions land within a tolerance band of
        the worker-side walls (after the single scale fit — scheduling
        only needs relative accuracy)."""
        from repro.parallel import FarmStats, ParallelConfig, iter_pair_results
        from repro.psc import get_method

        ds = ck34.subset(12, name="ck34-head12")
        pairs = [(i, j) for i in range(12) for j in range(i + 1, 12)]
        stats = FarmStats()
        list(
            iter_pair_results(
                ds, pairs, get_method("tmalign"),
                config=ParallelConfig(workers=2, chunk=0, adaptive=False),
                stats=stats,
            )
        )
        assert stats.cost_packed
        err = stats.predicted_cost_error()
        assert err is not None
        # mean |relative error| after scale fit: generous band — per-pair
        # jitter and scheduling noise are real, 10x mispricing is not
        assert err < 0.6, f"predicted chunk costs off by {err:.2f} mean rel err"
