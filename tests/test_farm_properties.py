"""Property-based invariants of the farm scheduler and simulation.

These hold for ANY job mix, so hypothesis drives random workloads:
* work conservation — every job runs exactly once, on exactly one slave;
* makespan lower bounds — never beats total-work/n or the longest job;
* greedy upper bound — never worse than the classic 2x-optimal LPT-type
  bound plus the modelled overheads;
* determinism — identical inputs give identical schedules.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.skeletons import FarmConfig, Job, SkeletonRuntime
from repro.scc.machine import SccMachine
from repro.scc.rcce import Rcce

FAST = FarmConfig(master_job_cycles=1e4, master_result_cycles=1e4, slave_boot_seconds=0.0)
FREQ = 800e6


def run_workload(durations_ms, n_slaves):
    m = SccMachine()
    rcce = Rcce(m)
    rt = SkeletonRuntime(m, rcce, 0, list(range(1, 1 + n_slaves)), FAST)
    jobs = [
        Job(job_id=k, payload=float(ms), nbytes=64)
        for k, ms in enumerate(durations_ms)
    ]
    box = {}

    def master(core):
        box["results"] = yield from rt.farm(core, jobs)

    def handler(core, payload):
        yield from core.compute_cycles(payload * 1e-3 * FREQ)
        return payload, 64

    m.spawn(0, master)
    for s in rt.slave_ids:
        m.spawn(s, rt.slave_loop, handler)
    m.run()
    return m, rt, box["results"]


durations = st.lists(
    st.floats(min_value=0.1, max_value=50.0, allow_nan=False),
    min_size=1,
    max_size=30,
)
slave_counts = st.integers(min_value=1, max_value=8)


class TestFarmInvariants:
    @given(durations, slave_counts)
    @settings(max_examples=25, deadline=None)
    def test_work_conservation(self, ms, n):
        _, _, results = run_workload(ms, n)
        assert sorted(r.job_id for r in results) == list(range(len(ms)))
        # every job ran on exactly one slave
        assert len({(r.job_id,) for r in results}) == len(ms)

    @given(durations, slave_counts)
    @settings(max_examples=25, deadline=None)
    def test_makespan_lower_bounds(self, ms, n):
        m, _, _ = run_workload(ms, n)
        total_s = sum(ms) * 1e-3
        longest_s = max(ms) * 1e-3
        assert m.now >= total_s / n - 1e-12
        assert m.now >= longest_s - 1e-12

    @given(durations, slave_counts)
    @settings(max_examples=25, deadline=None)
    def test_greedy_upper_bound(self, ms, n):
        """Greedy list scheduling is within (total/n + max) plus the
        modelled per-job overheads (master service + comm)."""
        m, _, _ = run_workload(ms, n)
        total_s = sum(ms) * 1e-3
        longest_s = max(ms) * 1e-3
        overhead_per_job = 2e-3  # generous bound for master+comm per job
        bound = total_s / n + longest_s + len(ms) * overhead_per_job + 0.01
        assert m.now <= bound

    @given(durations, slave_counts)
    @settings(max_examples=10, deadline=None)
    def test_determinism(self, ms, n):
        m1, _, r1 = run_workload(ms, n)
        m2, _, r2 = run_workload(ms, n)
        assert m1.now == m2.now
        assert [(r.job_id, r.slave_id) for r in r1] == [
            (r.job_id, r.slave_id) for r in r2
        ]

    @given(durations)
    @settings(max_examples=10, deadline=None)
    def test_more_slaves_never_slower(self, ms):
        m2, _, _ = run_workload(ms, 2)
        m6, _, _ = run_workload(ms, 6)
        assert m6.now <= m2.now * 1.01  # tiny slack for extra poll costs
