"""Fold clustering and user-directory datasets."""

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.datasets.custom import load_dataset_from_dir
from repro.psc.cluster import (
    adjusted_rand_index,
    cluster_agreement,
    cluster_families,
)
from repro.structure.pdbio import write_pdb_file


class TestAdjustedRand:
    def test_identical_clusterings(self):
        assert adjusted_rand_index([0, 0, 1, 1], [5, 5, 9, 9]) == pytest.approx(1.0)

    def test_independent_clusterings_near_zero(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 4, 400)
        b = rng.integers(0, 4, 400)
        assert abs(adjusted_rand_index(a, b)) < 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            adjusted_rand_index([1], [1])
        with pytest.raises(ValueError):
            adjusted_rand_index([1, 2], [1, 2, 3])


class TestClusterFamilies:
    @pytest.fixture(scope="class")
    def tm_table(self):
        """Measured TM-align all-vs-all over two full CK34 families."""
        from repro.psc.methods import TMAlignMethod
        from repro.psc.search import all_vs_all

        ds = load_dataset("ck34").subset(12, "ck34-cluster")  # globins+tims
        return ds, all_vs_all(ds, method=TMAlignMethod())

    def test_recovers_families(self, tm_table):
        ds, table = tm_table
        clusters = cluster_families(table, "tm_norm_b", dataset=ds, threshold=0.5)
        ari = cluster_agreement(clusters, ds)
        assert ari > 0.9  # TM-score clustering nails the two families

    def test_loose_threshold_merges(self, tm_table):
        ds, table = tm_table
        tight = cluster_families(table, "tm_norm_b", dataset=ds, threshold=0.8)
        loose = cluster_families(table, "tm_norm_b", dataset=ds, threshold=0.05)
        assert len(set(loose.values())) <= len(set(tight.values()))

    def test_every_chain_labelled(self, tm_table):
        ds, table = tm_table
        clusters = cluster_families(table, "tm_norm_b", dataset=ds)
        assert set(clusters) == {c.name for c in ds}

    def test_bad_threshold(self, tm_table):
        ds, table = tm_table
        with pytest.raises(ValueError):
            cluster_families(table, "tm_norm_b", dataset=ds, threshold=1.5)


class TestLoadFromDir:
    def test_roundtrip_directory(self, tmp_path, ck34_mini):
        for chain in ck34_mini:
            write_pdb_file(chain, tmp_path / f"{chain.name}.pdb")
        ds = load_dataset_from_dir(tmp_path)
        assert len(ds) == len(ck34_mini)
        assert ds.name == tmp_path.name
        original = {c.name: c for c in ck34_mini}
        for chain in ds:
            np.testing.assert_allclose(
                chain.coords, original[chain.name].coords, atol=1e-3
            )

    def test_short_files_skipped(self, tmp_path, ck34_mini, tiny_chain):
        write_pdb_file(ck34_mini[0], tmp_path / "good.pdb")
        write_pdb_file(tiny_chain, tmp_path / "short.pdb")
        ds = load_dataset_from_dir(tmp_path, min_residues=50)
        assert len(ds) == 1
        assert "skipped short" in ds.description

    def test_missing_dir(self):
        with pytest.raises(NotADirectoryError):
            load_dataset_from_dir("/nonexistent/dir")

    def test_empty_dir(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_dataset_from_dir(tmp_path)

    def test_all_short_rejected(self, tmp_path, tiny_chain):
        write_pdb_file(tiny_chain, tmp_path / "t.pdb")
        with pytest.raises(ValueError):
            load_dataset_from_dir(tmp_path, min_residues=50)
