#!/usr/bin/env python
"""Visualize core utilization of a farmed run as a text Gantt chart.

Builds a small master–slaves farm directly from the library pieces
(machine, RCCE, skeleton runtime), attaches an execution tracer, and
renders per-core busy bars — master bottleneck and tail imbalance are
visible at a glance.

Run:  python examples/trace_gantt.py
"""

from repro import Rcce, SccMachine, load_dataset
from repro.core.skeletons import FarmConfig, Job, SkeletonRuntime
from repro.psc.evaluator import JobEvaluator
from repro.scc.trace import Tracer, render_gantt

N_SLAVES = 6


def main() -> None:
    dataset = load_dataset("ck34-mini")
    evaluator = JobEvaluator(dataset)

    machine = SccMachine()
    tracer = Tracer(machine)  # attach BEFORE spawning programs
    rcce = Rcce(machine)
    runtime = SkeletonRuntime(
        machine,
        rcce,
        master_id=0,
        slave_ids=list(range(1, 1 + N_SLAVES)),
        config=FarmConfig(slave_boot_seconds=0.05),
    )

    jobs = [
        Job(job_id=k, payload=(i, j), nbytes=evaluator.job_nbytes(i, j))
        for k, (i, j) in enumerate(
            (i, j) for i in range(len(dataset)) for j in range(i + 1, len(dataset))
        )
    ]

    def master(core):
        yield from runtime.farm(core, jobs)

    def slave_handler(core, payload):
        i, j = payload
        _, counts = evaluator.evaluate(i, j)
        yield from core.compute_counts(counts)
        return {"i": i, "j": j}, evaluator.result_nbytes()

    machine.spawn(0, master)
    for s in runtime.slave_ids:
        machine.spawn(s, runtime.slave_loop, slave_handler)
    machine.run()

    print(
        f"{len(jobs)} pairwise jobs over {N_SLAVES} slaves, "
        f"makespan {machine.now:.1f} simulated seconds\n"
    )
    print(render_gantt(tracer, core_ids=range(0, N_SLAVES + 1)))
    print(
        "\nrck00 is the master (short bursts of job bookkeeping); the "
        "slaves stay busy until the job queue drains — the idle tails on "
        "the right are the load imbalance the paper discusses."
    )


if __name__ == "__main__":
    main()
