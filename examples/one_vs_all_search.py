#!/usr/bin/env python
"""One-vs-all PSC: the paper's motivating task.

"A newly discovered protein structure is typically compared with all
known structures in order to ascertain its functional behavior ... the
objective of the task is to retrieve a ranked list of proteins, where
structurally similar proteins are ranked higher."

Runs a TM-align one-vs-all search of a globin query against the CK34
dataset, prints the ranked list (family members should lead), then shows
how long the same task would take serially on the paper's two CPUs vs
farmed over the simulated SCC.

Run:  python examples/one_vs_all_search.py
"""

from repro import load_dataset, one_vs_all
from repro.cost.cpu import AMD_ATHLON_2400, P54C_800
from repro.cost.model import pair_seconds
from repro.psc.methods import TMAlignMethod


def main() -> None:
    dataset = load_dataset("ck34")
    query = dataset.by_name("ck_globin_02")
    print(f"query: {query.name} ({len(query)} residues, family {query.family})")
    print(f"database: {dataset.name} with {len(dataset)} structures\n")

    hits = one_vs_all(query, dataset, method=TMAlignMethod())

    print(f"{'rank':>4}  {'chain':<16} {'TM-score':>8}  {'RMSD':>6}  family hit?")
    for rank, hit in enumerate(hits[:12], start=1):
        fam = "<-- same family" if hit.chain_name.startswith("ck_globin") else ""
        print(
            f"{rank:>4}  {hit.chain_name:<16} {hit.score:>8.4f}  "
            f"{hit.details['rmsd']:>6.2f}  {fam}"
        )

    same_family_top = sum(
        1 for h in hits[:7] if h.chain_name.startswith("ck_globin")
    )
    print(f"\n{same_family_top}/7 top hits are fellow globins.")

    # How long would this take on 2013 hardware?
    others = [c for c in dataset if c.name != query.name]
    for cpu in (AMD_ATHLON_2400, P54C_800):
        total = sum(
            pair_seconds(cpu, len(query), len(c), f"{query.name}|{c.name}")
            for c in others
        )
        print(f"serial on {cpu.name}: ~{total:.0f} s")
    p54c_total = sum(
        pair_seconds(P54C_800, len(query), len(c), f"{query.name}|{c.name}")
        for c in others
    )
    print(
        f"farmed over 33 SCC slaves (one per database entry): "
        f"~{p54c_total / 33:.1f} s + distribution overhead"
    )


if __name__ == "__main__":
    main()
