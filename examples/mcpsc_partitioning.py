#!/usr/bin/env python
"""Multi-criteria PSC with partitioned cores (paper §V extension).

Runs three PSC methods (TM-align, gapless Kabsch-RMSD, SS composition)
over the same dataset on one simulated SCC, with the slave pool
partitioned between methods — comparing naive equal partitioning against
work-proportional partitioning, the open question the paper raises.

Run:  python examples/mcpsc_partitioning.py
"""

from repro import McPscConfig, run_mcpsc


def main() -> None:
    for strategy in ("even", "work"):
        report = run_mcpsc(
            McPscConfig(
                dataset="ck34-mini",
                methods=("tmalign", "kabsch_rmsd", "sse_composition"),
                n_slaves=12,
                partitioning=strategy,
            )
        )
        print(f"partitioning = {strategy!r}")
        for method, n_cores in report.partitions.items():
            n_results = len(report.per_method_results[method])
            print(f"  {method:<16} {n_cores:>2} cores, {n_results} comparisons")
        print(f"  makespan: {report.total_seconds:.1f} s\n")

    print(
        "Work-proportional partitioning finishes much sooner: TM-align "
        "dominates the total work, so giving every method the same core "
        "count leaves most of the chip idle while TM-align's partition "
        "grinds on — the paper's 'algorithm complexities may vary' point."
    )


if __name__ == "__main__":
    main()
