#!/usr/bin/env python
"""All-vs-all PSC on the simulated SCC: a mini Experiment II.

Sweeps the slave-core count for an all-vs-all TM-align task over CK34 on
the simulated 48-core SCC, printing time, speedup and efficiency — the
same series as the paper's Table IV / Figure 6, on a quick grid.

Run:  python examples/allvsall_scc_speedup.py [dataset]
"""

import sys

from repro import RckAlignConfig, SerialConfig, run_rckalign, run_serial
from repro.datasets import load_dataset
from repro.psc.evaluator import JobEvaluator


def main(dataset_name: str = "ck34") -> None:
    dataset = load_dataset(dataset_name)
    evaluator = JobEvaluator(dataset)  # model mode: analytic pair costs

    serial = run_serial(SerialConfig(dataset=dataset), evaluator=evaluator)
    print(
        f"dataset {dataset.name}: {serial.n_jobs} pairwise comparisons; "
        f"serial on one SCC core (P54C 800 MHz): {serial.total_seconds:.0f} s\n"
    )

    print(f"{'slaves':>6}  {'time (s)':>9}  {'speedup':>8}  {'efficiency':>10}  {'NoC MB':>7}")
    for n_slaves in (1, 3, 7, 15, 23, 31, 39, 47):
        report = run_rckalign(
            RckAlignConfig(dataset=dataset, n_slaves=n_slaves), evaluator=evaluator
        )
        speedup = serial.total_seconds / report.total_seconds
        print(
            f"{n_slaves:>6}  {report.total_seconds:>9.1f}  {speedup:>8.2f}  "
            f"{report.parallel_efficiency:>10.2f}  {report.noc_bytes / 1e6:>7.2f}"
        )

    print(
        "\nNearly linear speedup with slave count — the paper's headline "
        "observation (Figure 6)."
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "ck34")
