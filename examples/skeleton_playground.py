#!/usr/bin/env python
"""rckskel constructs on a toy workload (no proteins involved).

Shows the library's four constructs — SEQ, PAR, COLLECT and FARM — the
way the paper's Figure 3 template uses them, on a simulated SCC: the
master runs on core 0, five slaves each expose a "square a number"
service, and we watch simulated wall-clock differences between the
sequencing strategies.

Run:  python examples/skeleton_playground.py
"""

from repro import SccMachine, Rcce
from repro.core.skeletons import FarmConfig, Job, SkeletonRuntime

N_SLAVES = 5
N_JOBS = 20
WORK_CYCLES = 40_000_000  # 50 ms per job at 800 MHz


def build():
    machine = SccMachine()
    rcce = Rcce(machine)
    runtime = SkeletonRuntime(
        machine,
        rcce,
        master_id=0,
        slave_ids=list(range(1, 1 + N_SLAVES)),
        config=FarmConfig(
            master_job_cycles=100_000,
            master_result_cycles=100_000,
            slave_boot_seconds=0.0,
        ),
    )
    return machine, runtime


def square_handler(core, payload):
    """The slave-side job function (cf. client_receive_job in the paper)."""
    yield from core.compute_cycles(WORK_CYCLES)
    return payload * payload, 64


def jobs():
    return [Job(job_id=k, payload=k, nbytes=128) for k in range(N_JOBS)]


def demo(construct: str) -> float:
    machine, runtime = build()
    box = {}

    def master(core):
        if construct == "seq":
            results = yield from runtime.seq(core, jobs())
            yield from runtime.shutdown(core)
        elif construct == "par+collect":
            yield from runtime.check_ready(core)
            n = yield from runtime.par(core, jobs())
            results = yield from runtime.collect(core, n)
            yield from runtime.shutdown(core)
        else:  # farm
            results = yield from runtime.farm(core, jobs())
        box["results"] = results

    machine.spawn(0, master)
    for s in runtime.slave_ids:
        machine.spawn(s, runtime.slave_loop, square_handler)
    machine.run()

    values = sorted(r.payload for r in box["results"])
    assert values == sorted(k * k for k in range(N_JOBS)), "wrong results!"
    return machine.now


def main() -> None:
    print(f"{N_JOBS} jobs of 50 ms each on {N_SLAVES} slaves\n")
    for construct in ("seq", "par+collect", "farm"):
        elapsed = demo(construct)
        print(f"{construct:>12}: {elapsed * 1000:8.1f} ms simulated")
    print(
        "\nSEQ runs one job at a time (~20 x 50 ms); PAR/COLLECT and FARM "
        "keep all five slaves busy (~4 x 50 ms + overheads).  FARM also "
        "handles readiness checks and termination — it is what rckAlign "
        "uses (paper Fig. 3)."
    )


if __name__ == "__main__":
    main()
