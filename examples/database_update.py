#!/usr/bin/env python
"""Incremental database update on the simulated SCC.

Structural databases grow constantly (the paper's first motivation), but
an update does not need full all-vs-all: only the new structures must be
compared against everything before them.  This example sizes that
workload on the simulated SCC for increasing batch sizes and compares it
with the full recomputation.

Run:  python examples/database_update.py
"""

from repro import RckAlignConfig, load_dataset, run_rckalign
from repro.core.scenarios import run_database_update_scc
from repro.psc.evaluator import JobEvaluator
from repro.scc.power import estimate_rckalign_energy


def main() -> None:
    dataset = load_dataset("ck34")
    evaluator = JobEvaluator(dataset)

    full = run_rckalign(RckAlignConfig(dataset=dataset, n_slaves=47), evaluator=evaluator)
    full_energy = estimate_rckalign_energy(full)
    print(
        f"full all-vs-all: {full.n_jobs} jobs, {full.total_seconds:.0f} s, "
        f"{full_energy.total_joules / 1e3:.1f} kJ\n"
    )

    print(f"{'new chains':>10}  {'jobs':>5}  {'time (s)':>8}  {'energy (kJ)':>11}  {'vs full':>8}")
    for n_new in (1, 2, 4, 8):
        rep = run_database_update_scc(dataset, n_new=n_new, n_slaves=47, evaluator=evaluator)
        energy = estimate_rckalign_energy(rep)
        print(
            f"{n_new:>10}  {rep.n_jobs:>5}  {rep.total_seconds:>8.1f}  "
            f"{energy.total_joules / 1e3:>11.2f}  "
            f"{rep.total_seconds / full.total_seconds:>7.1%}"
        )

    print(
        "\nKeeping the database fresh costs a small fraction of the full "
        "recomputation — the chip absorbs daily additions in seconds."
    )


if __name__ == "__main__":
    main()
