#!/usr/bin/env python
"""Incremental database update through the durable matrix store.

Structural databases grow constantly (the paper's first motivation), but
an update does not need full all-vs-all: only the new structure must be
compared against everything before it.  This example makes that concrete
with :mod:`repro.matstore` — build the all-vs-all matrix once for a
corpus of ``n`` chains, then register new structures one at a time and
watch each extend journal and commit **exactly n new pairs** (one row),
never recomputing the stored triangle.  Afterwards every pair, old or
new, is an O(1) mmap lookup.

Run:  python examples/database_update.py
"""

import shutil
import tempfile
import time

from repro import load_dataset
from repro.cost.counters import CostCounter
from repro.matstore import MatrixStore, build_store, extend_store, store_method


def main(dataset_name: str = "ck34-mini", hold_out: int = 2, root: str = "") -> None:
    dataset = load_dataset(dataset_name)
    if not 1 <= hold_out < len(dataset):
        raise ValueError(f"hold_out must be in [1, {len(dataset) - 1})")
    tmp = ""
    if not root:
        tmp = root = tempfile.mkdtemp(prefix="matstore_example_")
    try:
        n_seed = len(dataset) - hold_out
        corpus = dataset.subset(n_seed, f"{dataset.name}-seed")

        built = build_store(corpus, root)
        print(
            f"seed build: {n_seed} chains -> {built.n_pairs} pairs "
            f"({built.n_computed} computed) in {built.wall_seconds:.1f} s\n"
        )

        print(f"{'new chain':<16} {'stored':>6}  {'new pairs':>9}  {'time (s)':>8}")
        store = built.store
        for idx in range(n_seed, len(dataset)):
            n_before = store.n_chains
            result = extend_store(store, dataset.chains[:idx], dataset[idx])
            # the incremental-update contract: one new structure costs
            # exactly one row — n pairs against the chains before it
            assert result.n_computed == n_before, (
                f"extend computed {result.n_computed} pairs, "
                f"expected exactly {n_before}"
            )
            print(
                f"{dataset[idx].name:<16} {store.n_chains:>6}  "
                f"{result.n_computed:>9}  {result.wall_seconds:>8.2f}"
            )

        # every pair — seed or appended — is now a constant-time lookup
        reopened = MatrixStore.open(root)
        hashes = reopened.hashes
        t0 = time.perf_counter()
        hit = reopened.lookup(hashes[0], hashes[-1])
        lookup_s = time.perf_counter() - t0
        method, _ = store_method(reopened)
        t0 = time.perf_counter()
        direct = method.compare(dataset[0], dataset[len(dataset) - 1], CostCounter())
        compute_s = time.perf_counter() - t0
        print(
            f"\nlookup {dataset[0].name} vs {dataset[-1].name}: "
            f"tm_norm_b = {hit.scores['tm_norm_b']:.4f} in {lookup_s * 1e6:.0f} us "
            f"(direct kernel: {direct['tm_norm_b']:.4f} in {compute_s:.2f} s, "
            f"{compute_s / max(lookup_s, 1e-9):,.0f}x slower)"
        )
        print(
            "\nKeeping the database fresh costs one row per new structure — "
            "the stored triangle is never recomputed."
        )
    finally:
        if tmp:
            shutil.rmtree(tmp, ignore_errors=True)


if __name__ == "__main__":
    main()
