#!/usr/bin/env python
"""Quickstart: align two protein structures with TM-align.

Generates a small synthetic fold family, aligns two members, prints the
TM-align report (scores, RMSD, alignment strings), writes them out as
PDB files, and re-reads one to show the I/O round trip.

Run:  python examples/quickstart.py
"""

import os
import tempfile

import numpy as np

from repro import tm_align
from repro.structure import (
    FoldSpec,
    generate_family,
    read_pdb_file,
    write_pdb_file,
)


def main() -> None:
    # 1. build a two-member fold family (a parent fold and a perturbed
    #    homolog with indels and mutations)
    rng = np.random.default_rng(2013)
    spec = FoldSpec.of(
        ("H", 14), ("C", 4), ("E", 7), ("C", 3),
        ("H", 12), ("C", 4), ("E", 6), ("C", 3), ("H", 10),
    )
    parent, homolog = generate_family(spec, 2, rng, family="demo")

    print(f"parent : {parent.name}, {len(parent)} residues")
    print(f"homolog: {homolog.name}, {len(homolog)} residues")
    print(f"parent secondary structure: {parent.secondary}")

    # 2. align them
    result = tm_align(parent, homolog)
    print("\n=== TM-align result ===")
    print(result.summary())
    print(f"TM-score (normalised by {parent.name}):  {result.tm_norm_a:.4f}")
    print(f"TM-score (normalised by {homolog.name}): {result.tm_norm_b:.4f}")
    print(f"RMSD of aligned region: {result.rmsd:.2f} A over {result.n_aligned} residues")

    # 3. the alignment itself
    top, mark, bottom = result.alignment.strings(parent.sequence, homolog.sequence)
    width = 60
    print("\nAlignment (':' identical residues, '.' aligned):")
    for k in range(0, len(top), width):
        print("  " + top[k : k + width])
        print("  " + mark[k : k + width])
        print("  " + bottom[k : k + width])
        print()

    # 4. PDB round trip
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, f"{parent.name}.pdb")
        write_pdb_file(parent, path)
        again = read_pdb_file(path)
        print(f"wrote and re-read {path}: {len(again)} residues, "
              f"sequence identical: {again.sequence == parent.sequence}")

    # 5. what the simulator would charge for this comparison
    ops = {k: int(v) for k, v in result.op_counts.items() if v}
    print(f"\noperation counts (cost-model input): {ops}")


if __name__ == "__main__":
    main()
