"""Generate EXPERIMENTS.md with full-grid paper-vs-measured results."""
import io, time
from repro.experiments.exp1 import run_exp1, PAPER_TABLE2
from repro.experiments.exp2 import run_exp2, PAPER_TABLE4
from repro.experiments.table3 import run_table3
from repro.experiments.table5 import run_table5, PAPER_TABLE5
from repro.experiments.ablations import (
    run_ablation_balancing, run_ablation_hierarchy, run_ablation_mcpsc,
    run_ablation_frequency, run_ablation_memory, run_ablation_energy,
    run_ablation_inits)

out = io.StringIO()
w = out.write
t_start = time.time()

w("""# EXPERIMENTS — paper vs. measured

All numbers regenerated with `python -m repro.cli all` (model mode, full
24-point slave grid) on the bundled synthetic datasets.  "Paper" columns
are transcribed from the original tables.  Simulated seconds are
deterministic; regenerating this file reproduces it exactly.

**How to read the comparison.**  Table III is matched by construction
(the CPU cycle scales are calibrated against it).  Everything else —
the scaling curves of Tables II/IV, Figures 5/6, and Table V's headline
speedups — is *emergent* from the discrete-event simulation and shows
how closely the modelled mechanisms (master service cost, slave boot
ramp, NoC transfer costs, per-job NFS/spawn overheads, load imbalance)
reproduce the measured hardware behaviour.

""")

# Table I
w("## Table I — SCC features\n\n")
w("Configuration, not measurement: the simulated chip is a 6x4 router mesh,\n")
w("2 P54C cores/tile (48 cores), 16 KB MPB per tile, 4 iMCs — matching the\n")
w("paper's Table I (asserted in tests/test_scc_machine.py).\n\n")

# Table III
w("## Table III — serial baselines\n\n")
r3 = run_table3()
w("| processor | CK34 (s) | paper | RS119 (s) | paper |\n|---|---|---|---|---|\n")
for row in r3.rows:
    w(f"| {row[0]} | {row[1]:.0f} | {row[2]:.0f} | {row[3]:.0f} | {row[4]:.0f} |\n")
w("\nMatched by construction (two-parameter per-CPU calibration; see\n`repro.cost.calibration`).  Residual error < 0.1%.\n\n")

# Exp 1 / Table II + Fig 5
w("## Table II + Figure 5 — Experiment I (CK34): rckAlign vs distributed TM-align\n\n")
r1 = run_exp1(dataset="ck34")
w("| slaves | rckAlign (s) | paper | TM-align dist. (s) | paper |\n|---|---|---|---|---|\n")
for row in r1.rows:
    w(f"| {row[0]} | {row[1]:.0f} | {row[2]:.0f} | {row[3]:.0f} | {row[4]:.0f} |\n")
rck47, dist47 = r1.rows[-1][1], r1.rows[-1][3]
w(f"""
Shape reproduction: rckAlign wins at **every** core count; at 47 slaves
the advantage factor is {dist47/rck47:.2f}x (paper: 120/56 = 2.14x), and at 1
slave {r1.rows[0][3]/r1.rows[0][1]:.2f}x (paper: 5212/2027 = 2.57x).  The paper's
measured distributed column is noisy and super-linear between 3 and 9
cores (e.g. 854 s at 5 cores < 5212/5); our model scales ~linearly
there, so mid-curve distributed times sit 10-25% above the paper's.
The two causes the paper identifies — NFS disk contention and per-job
process-environment cost — are both modelled and visible: throttling
NFS bandwidth collapses the distributed scaling (tests/test_baselines).

""")
w("```\n" + r1.notes + "\n```\n\n")

# Exp 2 / Table IV + Fig 6
w("## Table IV + Figure 6 — Experiment II: rckAlign speedup vs slave count\n\n")
r2 = run_exp2(datasets=("ck34", "rs119"))
w("| slaves | CK34 speedup | paper | CK34 (s) | RS119 speedup | paper | RS119 (s) |\n|---|---|---|---|---|---|---|\n")
for row in r2.rows:
    w(f"| {row[0]} | {row[1]:.2f} | {row[2]:.2f} | {row[3]:.0f} | {row[4]:.2f} | {row[5]:.2f} | {row[6]:.0f} |\n")
errs_ck = [abs(row[1]-row[2])/row[2] for row in r2.rows]
errs_rs = [abs(row[4]-row[5])/row[5] for row in r2.rows]
w(f"""
Near-linear speedup emerges from the simulation, and the paper's key
second-order observation — *"the larger the dataset the higher the
speedup"* — reproduces: at 47 slaves RS119 reaches {r2.rows[-1][4]:.1f}x vs CK34's
{r2.rows[-1][1]:.1f}x (paper: 44.78x vs 36.17x).  Median |speedup error| vs the
paper across the full grid: CK34 {100*sorted(errs_ck)[len(errs_ck)//2]:.1f}%, RS119 {100*sorted(errs_rs)[len(errs_rs)//2]:.1f}%; max
CK34 {100*max(errs_ck):.1f}%, RS119 {100*max(errs_rs):.1f}%.  The sub-linearity at high core
counts comes from the same mechanisms the paper discusses: the single
master's per-job service cost (its §V bottleneck warning) plus the
serialized per-slave application launch.

""")
w("```\n" + r2.notes + "\n```\n\n")

# Table V
w("## Table V — summary comparison\n\n")
r5 = run_table5()
w("| dataset | AMD (s) | P54C (s) | rckAlign 47 (s) | speedup vs AMD | paper | speedup vs P54C | paper |\n|---|---|---|---|---|---|---|---|\n")
for row in r5.rows:
    w(f"| {row[0]} | {row[1]:.0f} | {row[2]:.0f} | {row[3]:.0f} | {row[4]:.1f} | {row[6]:.1f} | {row[5]:.1f} | {row[7]:.1f} |\n")
w("""
The headline claims hold: ~11x over the 2.4 GHz AMD and ~44x over a
single P54C on RS119 (paper: 11.4x / 44.7x), with the speedup larger on
the larger dataset.

""")

# Ablations
w("## Ablations (beyond the paper's tables)\n\n")
a1 = run_ablation_balancing(dataset="ck34", n_slaves=47)
w("### A1 — load balancing (the paper used none)\n\n")
w("| strategy | time (s) | efficiency | vs best |\n|---|---|---|---|\n")
for row in a1.rows:
    w(f"| {row[0]} | {row[1]:.1f} | {row[2]:.2f} | {row[3]:.3f} |\n")
w("\nOrdering helps only marginally at CK34 scale: the greedy farm already\nabsorbs most imbalance; the paper's 'no load balancing' choice costs ~3%.\n\n")
a2 = run_ablation_hierarchy(dataset="ck34", n_workers=47)
w("### A2 — hierarchical masters (paper SV suggestion)\n\n")
w("| configuration | compute slaves | time (s) | speedup vs flat |\n|---|---|---|---|\n")
for row in a2.rows:
    w(f"| {row[0]} | {row[1]} | {row[2]:.1f} | {row[3]:.2f} |\n")
w("\nWith the calibrated master cost, 2 sub-masters recover ~5-10% at 47\nworkers; gains grow when the master service cost rises (tests/test_hierarchy).\n\n")
a3 = run_ablation_mcpsc(dataset="ck34-mini", n_slaves=12)
w("### A3 — MC-PSC core partitioning (paper SV future work)\n\n")
w("| partitioning | cores per method | time (s) | vs best |\n|---|---|---|---|\n")
for row in a3.rows:
    w(f"| {row[0]} | {row[1]} | {row[2]:.1f} | {row[3]:.2f} |\n")
w("\nWork-proportional partitioning is ~2x faster than equal shares when\nmethod complexities differ by orders of magnitude.\n\n")
a4 = run_ablation_frequency(dataset="ck34", n_slaves=47)
w("### A4 — core-frequency scaling (paper SV: faster cores)\n\n")
w("| clock | serial (s) | rckAlign (s) | speedup | efficiency |\n|---|---|---|---|---|\n")
for row in a4.rows:
    w(f"| {row[0]} | {row[1]:.0f} | {row[2]:.1f} | {row[3]:.1f} | {row[4]:.2f} |\n")
w("\nFixed startup and communication costs eat the gains of faster cores —\nthe paper's warning that 'the single master strategy would become the\nbottleneck, if slave processes were running on faster cores'.\n\n")
a5 = run_ablation_memory(dataset="ck34", n_slaves=16)
w("### A5 — memory-constrained streaming master (paper SVI future work)\n\n")
w("| resident structures | pair order | time (s) | faults |\n|---|---|---|---|\n")
for row in a5.rows:
    w(f"| {row[0]} | {row[1]} | {row[2]:.1f} | {row[3]} |\n")
w("\nBlocked pair tiling keeps refetches near the streaming lower bound;\non-chip refetch bandwidth makes even tight limits nearly free.\n\n")
a6 = run_ablation_energy(dataset="ck34")
w("### A6 — energy vs slave count (SCC power envelope 25-125 W)\n\n")
w("| slaves | time (s) | energy (kJ) | avg W | EDP (kJ*s) |\n|---|---|---|---|---|\n")
for row in a6.rows:
    w(f"| {row[0]} | {row[1]:.0f} | {row[2]:.2f} | {row[3]:.1f} | {row[4]:.0f} |\n")
w("\nMore slaves reduce both makespan and total energy (the uncore and idle\ncores dominate), and the full chip beats the 65 W desktop CPU on energy\nfor the same task.\n\n")
a7 = run_ablation_inits(dataset="ck34", n_pairs=12)
w("### A7 — TM-align initial-alignment ablation (measured pairs)\n\n")
w("| variant | mean TM | dTM vs full | relative cost |\n|---|---|---|---|\n")
for row in a7.rows:
    w(f"| {row[0]} | {row[1]:.4f} | {row[2]:+.4f} | {row[3]:.2f} |\n")
w("\nEach initial-alignment kind protects a different class of hard pairs;\nthe full set is never worse and costs ~10% more than threading alone.\n\n")

w(f"---\nRegenerated in {time.time()-t_start:.0f} s wall clock.  Commands:\n\n")
w("""```
python -m repro.cli table1
python -m repro.cli table3
python -m repro.cli exp1  --dataset ck34
python -m repro.cli exp2  --dataset both
python -m repro.cli table5
python -m repro.cli ablations
REPRO_FULL_GRID=1 pytest benchmarks/ --benchmark-only -s
```
""")

open("EXPERIMENTS.md", "w").write(out.getvalue())
print("EXPERIMENTS.md written,", len(out.getvalue()), "chars")
