"""Developer tool: refit the pair cost model and recalibrate CPU scales.

Run after changing the aligner or the datasets; paste the printed
constants into repro/cost/model.py (DEFAULT_PAIR_COST_MODEL) and
repro/cost/cpu.py (P54C_800 / AMD_ATHLON_2400 scales).
"""
import numpy as np
from repro.cost import CostCounter
from repro.cost.model import fit_pair_cost_model, PairCostModel
from repro.cost.calibration import (
    dataset_group_work, calibrate_two_class, TABLE3_SECONDS)
from repro.datasets import load_dataset
from repro.tmalign import tm_align

rng = np.random.default_rng(7)
samples = []
for ds_name in ("ck34", "rs119"):
    ds = load_dataset(ds_name)
    n = len(ds)
    pairs = set()
    while len(pairs) < 30:
        i, j = rng.integers(0, n, 2)
        if i < j:
            pairs.add((int(i), int(j)))
    for i, j in sorted(pairs):
        ctr = CostCounter()
        tm_align(ds[i], ds[j], counter=ctr)
        samples.append((len(ds[i]), len(ds[j]), ctr))
    print(f"measured {len(pairs)} pairs from {ds_name}")

model = fit_pair_cost_model(samples, jitter=0.12)
print("\nDEFAULT_PAIR_COST_MODEL coeffs:")
for op, c in model.coeffs.items():
    print(f'        "{op}": ({c[0]:.6g}, {c[1]:.6g}, {c[2]:.6g}),')

# fit quality
errs = []
for la, lb, ctr in samples:
    est = model.counts(la, lb)
    for op in ("dp_cell", "score_pair", "kabsch_point"):
        if ctr[op] > 0:
            errs.append(abs(est[op] - ctr[op]) / ctr[op])
print(f"median rel err on big classes: {np.median(errs):.3f}, p90 {np.quantile(errs, 0.9):.3f}")

noj = PairCostModel(coeffs=model.coeffs, jitter=0.0)
works = {}
for ds_name in ("ck34", "rs119"):
    ds = load_dataset(ds_name)
    works[ds_name] = dataset_group_work([len(c) for c in ds], [c.name for c in ds], noj)
    print(ds_name, "work (dp, irr):", works[ds_name], " ratio dp/irr: %.3f" % (works[ds_name][0]/works[ds_name][1]))

for key, freq in (("p54c", 800e6), ("amd", 2.4e9)):
    res = calibrate_two_class(works, TABLE3_SECONDS[key], freq, key)
    print(f"{key}: work_scale={res.work_scale:.4g} overhead_scale={res.overhead_scale:.4g} "
          f"pred={ {k: round(v,1) for k,v in res.predicted_seconds.items()} }")
