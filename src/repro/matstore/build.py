"""Populate and incrementally extend a :class:`MatrixStore`.

``build_store`` computes every unordered pair of a dataset through the
existing farm (cost-packed chunks, adaptive sizing, retries) — or only
the prefilter-promoted union, leaving NaN holes — journaling each pair
as it drains, then commits the float32 blocks and header in one step.
``extend_store`` is the incremental database update: one new chain costs
exactly ``n`` new pairs appended at the block tails, never a rebuild.

Both are resumable: rows already journaled (by a crashed or interrupted
run) are never recomputed, the same contract ``matrix --resume`` gives —
*provided* the journal's recorded content context (``journal.ctx``)
matches the chains being computed.  A tail journaled for different
chains at the same indices is discarded and recomputed, never reused.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.registry import Dataset
from repro.psc.methods import TMAlignFullMethod
from repro.psc.search import Prefilter, resolve_prefilter
from repro.service.registry import chain_content_hash
from repro.structure.model import Chain
from repro.tmalign.params import TMAlignParams, params_fingerprint

from repro.matstore.store import (
    METRICS,
    MatStoreError,
    MatrixStore,
    condensed_pairs,
)

__all__ = [
    "BuildResult",
    "build_store",
    "ensure_coverage",
    "extend_store",
    "export_csv",
    "store_method",
]

_NAN_ROW = {k: float("nan") for k in METRICS}


def _context_digest(hashes: Sequence[str]) -> str:
    """Identity of the working chain set journal rows are computed for.

    Journal rows are keyed by pair *indices* only, so this digest (over
    the ordered content hashes of the full working dataset) is what ties
    an uncommitted journal tail to the chains it was actually scored
    against — an interrupted extend of chain X must never donate its
    rows to a later extend of chain Y at the same index.
    """
    import hashlib

    h = hashlib.sha256()
    for chain_hash in hashes:
        h.update(chain_hash.encode("ascii"))
        h.update(b"\n")
    return h.hexdigest()


@dataclass
class BuildResult:
    """Outcome of one build/extend: how much work was actually done."""

    store: MatrixStore
    n_pairs: int  # pairs this invocation was responsible for
    n_computed: int  # pairs actually run through the kernel now
    n_journaled: int  # pairs taken from a prior (interrupted) journal
    n_holes: int  # pairs demoted by the prefilter (NaN slots)
    wall_seconds: float = 0.0
    notes: List[str] = field(default_factory=list)


def store_method(
    store: Optional[MatrixStore] = None,
    params: Optional[TMAlignParams] = None,
) -> Tuple[TMAlignFullMethod, str]:
    """The one method a matrix store is scored with, plus its fingerprint.

    The store schema carries exactly the ``tmalign_full`` score keys, so
    the method is fixed; ``params`` customises the TM-align knobs, and an
    existing store refuses parameters that do not match its recorded
    fingerprint (mixing parameterisations in one matrix would poison
    every later lookup).
    """
    method = TMAlignFullMethod(params=params)
    fingerprint = params_fingerprint(method.params)
    if store is not None:
        if store.method != method.name:
            raise MatStoreError(
                f"store was built with method {store.method!r}, "
                f"cannot continue with {method.name!r}"
            )
        if store.params_hash != fingerprint:
            raise MatStoreError(
                f"store was built with params {store.params_hash[:12]}..., "
                f"the supplied params fingerprint {fingerprint[:12]}... differs"
            )
    return method, fingerprint


def _content_hashes(chains: Sequence[Chain]) -> List[str]:
    hashes = [chain_content_hash(c) for c in chains]
    if len(set(hashes)) != len(hashes):
        raise MatStoreError("dataset contains chains with identical content")
    return hashes


def _keep_sets(dataset: Dataset, prefilter: Prefilter) -> Optional[List[set]]:
    """Per-query promotion sets, same union semantics as ``all_vs_all``."""
    pf = resolve_prefilter(prefilter, dataset)
    if pf is None:
        return None
    return [set(pf.promote_chain(dataset[i], exclude={i})) for i in range(len(dataset))]


def _pair_kept(i: int, j: int, keep: Optional[List[set]]) -> bool:
    return keep is None or j in keep[i] or i in keep[j]


def _compute_rows(
    dataset: Dataset,
    store: MatrixStore,
    pairs: Sequence[Tuple[int, int]],
    keep: Optional[List[set]],
    method: TMAlignFullMethod,
    config,
    digest: str,
    notes: List[str],
) -> Tuple[Dict[Tuple[int, int], Dict[str, float]], int, int, int]:
    """Journal-first evaluation of ``pairs``: rows already journaled *for
    the same chain content* are reused, demoted pairs are journaled as
    NaN holes, the rest go through the farm.  Returns ``(rows,
    n_computed, n_journaled, n_holes)``.

    ``digest`` is the :func:`_context_digest` of the working dataset.  An
    uncommitted journal tail recorded under a different digest (an
    interrupted build/extend of *other* chains at these indices) is
    discarded and recomputed rather than grafted onto this content.
    """
    from repro.parallel import iter_pair_results

    state = store.load_journal()
    n_committed = store.n_chains
    if any(j >= n_committed for _i, j in state.rows):
        recorded = store.read_journal_context()
        if recorded != digest:
            dropped = store.discard_uncommitted_journal(state)
            state = store.load_journal()
            notes.append(
                f"discarded {dropped} uncommitted journal rows recorded "
                "for different chain content"
            )
    store.write_journal_context(digest)
    rows: Dict[Tuple[int, int], Dict[str, float]] = {}
    todo: List[Tuple[int, int]] = []
    n_holes = 0
    n_journaled = 0
    with store.journal() as journal:
        for i, j in pairs:
            if (i, j) in state.rows:
                rows[(i, j)] = state.scores((i, j))
                n_journaled += 1
                if rows[(i, j)][METRICS[0]] != rows[(i, j)][METRICS[0]]:
                    n_holes += 1
                continue
            if not _pair_kept(i, j, keep):
                journal.append(i, j, _NAN_ROW)
                rows[(i, j)] = dict(_NAN_ROW)
                n_holes += 1
                continue
            todo.append((i, j))
        for i, j, scores, _counts in iter_pair_results(
            dataset, todo, method, config=config
        ):
            journal.append(i, j, scores)
            rows[(i, j)] = dict(scores)
    return rows, len(todo), n_journaled, n_holes


def _tail_blocks(
    rows: Dict[Tuple[int, int], Dict[str, float]],
    pairs: Sequence[Tuple[int, int]],
) -> Dict[str, np.ndarray]:
    """Condensed-order float32 tail arrays for one commit."""
    tail = {m: np.empty(len(pairs), dtype="<f4") for m in METRICS}
    for k, (i, j) in enumerate(pairs):
        scores = rows[(i, j)]
        for m in METRICS:
            tail[m][k] = np.float32(scores[m])
    return tail


def build_store(
    dataset: Dataset,
    root: str,
    params: Optional[TMAlignParams] = None,
    config=None,
    prefilter: Prefilter = None,
) -> BuildResult:
    """Build (or resume building) the all-vs-all store for ``dataset``.

    A store whose header already covers the dataset is a no-op; a store
    left with an empty header but a partial journal (a crashed build)
    resumes, recomputing zero journaled pairs.  A store built from
    *different* content refuses — extend it instead.
    """
    t0 = time.perf_counter()
    hashes = _content_hashes(dataset.chains)
    names = [c.name for c in dataset.chains]
    try:
        store = MatrixStore.open(root)
    except MatStoreError:
        method, fingerprint = store_method(params=params)
        store = MatrixStore.create(
            root, method.name, fingerprint, dataset=dataset.name
        )
    method, _ = store_method(store, params=params)
    if store.n_chains:
        if store.hashes == hashes:
            return BuildResult(
                store,
                n_pairs=store.n_pairs,
                n_computed=0,
                n_journaled=store.n_pairs,
                n_holes=int(store.stats()["holes"]),
                wall_seconds=time.perf_counter() - t0,
                notes=["store already covers this dataset"],
            )
        raise MatStoreError(
            f"store at {root} holds {store.n_chains} chains of different "
            "content; extend it chain by chain or build into a fresh root"
        )
    pairs = list(condensed_pairs(len(dataset)))
    keep = _keep_sets(dataset, prefilter)
    notes: List[str] = []
    rows, n_computed, n_journaled, n_holes = _compute_rows(
        dataset, store, pairs, keep, method, config,
        _context_digest(hashes), notes,
    )
    store.commit_rows(names, hashes, _tail_blocks(rows, pairs))
    return BuildResult(
        store,
        n_pairs=len(pairs),
        n_computed=n_computed,
        n_journaled=n_journaled,
        n_holes=n_holes,
        wall_seconds=time.perf_counter() - t0,
        notes=notes,
    )


def extend_store(
    store: MatrixStore,
    corpus: Sequence[Chain],
    new_chain: Chain,
    params: Optional[TMAlignParams] = None,
    config=None,
    prefilter: Prefilter = None,
) -> BuildResult:
    """Register one new chain: compute, journal and append exactly ``n``
    new pairs (``n`` = chains already stored), never touching the rest.

    ``corpus`` must be the already-stored chains — validated content
    hash by content hash, in store order, so an extend can never graft a
    row computed against the wrong structures.  A chain whose content is
    already stored is a no-op.  Interrupted extends resume from the
    journal.
    """
    t0 = time.perf_counter()
    method, _ = store_method(store, params=params)
    have = _content_hashes(corpus)
    if have != store.hashes:
        raise MatStoreError(
            f"supplied corpus ({len(corpus)} chains) does not match the "
            f"stored chains ({store.n_chains}) content-hash for content-hash"
        )
    new_hash = chain_content_hash(new_chain)
    if new_hash in store:
        return BuildResult(
            store,
            n_pairs=0,
            n_computed=0,
            n_journaled=0,
            n_holes=0,
            wall_seconds=time.perf_counter() - t0,
            notes=[f"chain content {new_hash[:12]}... already stored"],
        )
    n = store.n_chains
    extended = Dataset(
        store.dataset or "matstore-extend",
        (*corpus, new_chain),
        "matrix-store extend working set",
    )
    pairs = [(i, n) for i in range(n)]
    keep = _keep_sets(extended, prefilter)
    notes: List[str] = []
    rows, n_computed, n_journaled, n_holes = _compute_rows(
        extended, store, pairs, keep, method, config,
        _context_digest([*have, new_hash]), notes,
    )
    store.commit_rows([new_chain.name], [new_hash], _tail_blocks(rows, pairs))
    return BuildResult(
        store,
        n_pairs=len(pairs),
        n_computed=n_computed,
        n_journaled=n_journaled,
        n_holes=n_holes,
        wall_seconds=time.perf_counter() - t0,
        notes=notes,
    )


def ensure_coverage(
    root: str,
    dataset: Dataset,
    params: Optional[TMAlignParams] = None,
    config=None,
    prefilter: Prefilter = None,
) -> BuildResult:
    """Make the store at ``root`` cover every pair of ``dataset``.

    Missing store → full build; store holding a *prefix* of the dataset
    (the incremental-update scenario: same corpus, new chains appended)
    → one :func:`extend_store` per new chain, ``n`` pairs each; store
    already covering the dataset → no-op.  Any other divergence refuses
    rather than silently mixing content.
    """
    t0 = time.perf_counter()
    hashes = _content_hashes(dataset.chains)
    try:
        store = MatrixStore.open(root)
    except MatStoreError:
        store = None
    if store is None or store.n_chains == 0 or store.hashes == hashes:
        return build_store(dataset, root, params=params, config=config,
                           prefilter=prefilter)
    k = store.n_chains
    if k > len(dataset) or store.hashes != hashes[:k]:
        raise MatStoreError(
            f"store at {root} ({k} chains) is not a prefix of dataset "
            f"{dataset.name!r} ({len(dataset)} chains); build a fresh root"
        )
    total = BuildResult(store, n_pairs=0, n_computed=0, n_journaled=0, n_holes=0)
    for idx in range(k, len(dataset)):
        r = extend_store(
            store, dataset.chains[:idx], dataset[idx],
            params=params, config=config, prefilter=prefilter,
        )
        total.n_pairs += r.n_pairs
        total.n_computed += r.n_computed
        total.n_journaled += r.n_journaled
        total.n_holes += r.n_holes
        total.notes.extend(r.notes)
    total.wall_seconds = time.perf_counter() - t0
    return total


def export_csv(store: MatrixStore, path: str) -> int:
    """Write the committed matrix as CSV, atomically; returns row count.

    Values come from the journal — the exact ``format(value, "")``
    strings a direct ``matrix`` run would stream — so an export is
    byte-comparable with kernel output, not a float32 round-trip.
    """
    import csv
    import os

    state = store.load_journal()
    names = store.names
    tmp = f"{path}.tmp.{os.getpid()}"
    n = 0
    try:
        with open(tmp, "w", newline="", encoding="ascii") as fh:
            writer = csv.writer(fh)
            writer.writerow(["chain_a", "chain_b", *METRICS])
            for i, j in condensed_pairs(store.n_chains):
                row = state.rows.get((i, j))
                if row is None:
                    raise MatStoreError(
                        f"pair ({i}, {j}) committed but not journaled; "
                        "run `matstore verify`"
                    )
                writer.writerow([names[i], names[j], *row])
                n += 1
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):  # pragma: no cover - error cleanup
            os.unlink(tmp)
    return n
