"""Durable all-vs-all similarity-matrix store (ROADMAP item 2).

The paper's end product is the all-to-all comparison matrix; this
package makes it a *persistent artifact* instead of a per-request
computation: build once through the farm, mmap forever, extend by one
row when a new structure registers.  Every pair carries the four
headline metrics (TM-score both normalisations, RMSD, GDT_TS, LDDT)
plus alignment length and sequence identity, keyed by registry content
hashes so lookups hit across names, uploads and restarts.

See :mod:`repro.matstore.store` for the on-disk layout and durability
protocol, :mod:`repro.matstore.build` for the build/extend flows.
"""

from repro.matstore.store import (
    METRICS,
    SERVABLE_KEYS,
    MatStoreError,
    MatrixStore,
    StoreHit,
    pair_offset,
    triangle_size,
)
from repro.matstore.build import (
    BuildResult,
    build_store,
    ensure_coverage,
    export_csv,
    extend_store,
    store_method,
)

__all__ = [
    "METRICS",
    "SERVABLE_KEYS",
    "MatStoreError",
    "MatrixStore",
    "StoreHit",
    "BuildResult",
    "build_store",
    "ensure_coverage",
    "export_csv",
    "extend_store",
    "pair_offset",
    "store_method",
    "triangle_size",
]
