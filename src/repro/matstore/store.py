"""Durable mmap-able all-vs-all similarity-matrix store.

Layout under the store root::

    <root>/header.json         # identity + committed extent (atomic rewrite)
    <root>/journal.csv         # CRC-checksummed per-pair rows (runs idiom)
    <root>/journal.ctx         # content digest the journal tail belongs to
    <root>/blocks/<metric>.f32 # little-endian float32, one value per pair

Pairs live in the *condensed* triangular order ``offset(i, j) = j*(j-1)/2
+ i`` for ``i < j``: registering chain ``n`` appends exactly ``n`` values
at the tail of every block, so an incremental database update never
rewrites (or recomputes) the existing matrix.

Durability follows :mod:`repro.runs`: every computed pair is journaled
(flushed + fsynced, CRC per row) *before* the blocks are touched, block
tails are fsynced before the header is atomically replaced, and a reader
that opened the previous header never indexes past its own committed
extent — so writers can extend the store underneath live readers.  A
crash between journal and header leaves a store that simply re-commits
the journaled tail on the next build/extend; the journal is the source
of truth, the blocks a derived mmap view.

Values are stored as ``float32`` (the proteinshake matrix convention);
the journal keeps the full ``format(value, "")`` float64 strings, so a
verifier can check every mmap word against the exact journaled score.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.runs.manifest import atomic_write_text
from repro.runs.store import (
    JournalCorrupt,
    JournalState,
    RunJournal,
    read_journal,
    rewrite_journal,
)

__all__ = [
    "METRICS",
    "MatStoreError",
    "MatrixStore",
    "StoreHit",
    "pair_offset",
    "triangle_size",
]

#: store schema version, bumped on incompatible layout changes
STORE_VERSION = 1

#: per-pair metrics carried by every block set — exactly the (sorted)
#: score keys of ``tmalign_full``, so journal rows and compare() outputs
#: line up without remapping
METRICS = (
    "gdt_ts",
    "lddt",
    "n_aligned",
    "rmsd",
    "seq_identity",
    "tm_norm_a",
    "tm_norm_b",
)

#: methods a store hit can serve, mapped to the score keys they return.
#: ``tmalign`` is the strict subset ``tmalign_full`` computes with the
#: same kernel and parameters, so the one stored matrix answers both.
SERVABLE_KEYS = {
    "tmalign_full": METRICS,
    "tmalign": ("n_aligned", "rmsd", "seq_identity", "tm_norm_a", "tm_norm_b"),
}

_HEADER_NAME = "header.json"
_JOURNAL_NAME = "journal.csv"
_CONTEXT_NAME = "journal.ctx"
_BLOCKS_DIR = "blocks"


class MatStoreError(RuntimeError):
    """A matrix store is missing, malformed, or incompatible."""


def pair_offset(i: int, j: int) -> int:
    """Condensed offset of unordered pair ``(i, j)`` with ``i < j``."""
    if not 0 <= i < j:
        raise ValueError(f"need 0 <= i < j, got ({i}, {j})")
    return j * (j - 1) // 2 + i


def triangle_size(n_chains: int) -> int:
    """Number of unordered pairs over ``n_chains`` chains."""
    return n_chains * (n_chains - 1) // 2


def condensed_pairs(n_chains: int) -> Iterator[Tuple[int, int]]:
    """All unordered pairs in block (offset) order: ``j`` outer, ``i`` inner."""
    for j in range(n_chains):
        for i in range(j):
            yield i, j


class StoreHit:
    """One successful pair lookup.

    ``scores`` is in the store's *canonical* orientation — chain A is the
    one registered first (smaller store index); ``swapped`` is True when
    the caller asked for the reverse orientation.  TM-align is
    direction-dependent, so direction-sensitive callers (the service
    ``align`` op) only serve un-swapped hits.
    """

    __slots__ = ("scores", "swapped", "offset")

    def __init__(self, scores: Dict[str, float], swapped: bool, offset: int) -> None:
        self.scores = scores
        self.swapped = swapped
        self.offset = offset


class MatrixStore:
    """One on-disk all-vs-all matrix, mmap-served.

    Read paths (:meth:`lookup`, :meth:`values`) go through per-metric
    ``np.memmap`` views sized by the committed header extent; the write
    path (:meth:`commit_rows`) is only ever driven by
    :mod:`repro.matstore.build`.
    """

    def __init__(self, root: str, header: Dict[str, object]) -> None:
        self.root = os.fspath(root)
        self._header = header
        self._index: Dict[str, int] = {
            h: k for k, h in enumerate(self.hashes)
        }
        self._maps: Dict[str, np.memmap] = {}

    # -- creation / opening ------------------------------------------------
    @classmethod
    def create(
        cls,
        root: str | os.PathLike,
        method: str,
        params_hash: str,
        dataset: str = "",
    ) -> "MatrixStore":
        """Initialise an empty store (0 chains) under ``root``."""
        root = os.fspath(root)
        if os.path.exists(os.path.join(root, _HEADER_NAME)):
            raise MatStoreError(f"store already exists at {root}")
        os.makedirs(os.path.join(root, _BLOCKS_DIR), exist_ok=True)
        import time

        header = {
            "version": STORE_VERSION,
            "metrics": list(METRICS),
            "method": method,
            "params_hash": params_hash,
            "dataset": dataset,
            "names": [],
            "hashes": [],
            "n_chains": 0,
            "n_pairs": 0,
            "created_at": time.time(),
        }
        store = cls(root, header)
        store._write_header()
        return store

    @classmethod
    def open(cls, root: str | os.PathLike) -> "MatrixStore":
        """Open an existing store; raises :class:`MatStoreError` if absent
        or structurally inconsistent."""
        root = os.fspath(root)
        path = os.path.join(root, _HEADER_NAME)
        if not os.path.exists(path):
            raise MatStoreError(f"no matrix store at {root} (missing {_HEADER_NAME})")
        with open(path, encoding="ascii") as fh:
            try:
                header = json.load(fh)
            except json.JSONDecodeError as exc:
                raise MatStoreError(f"store header {path} is not JSON: {exc}") from None
        version = header.get("version")
        if version != STORE_VERSION:
            raise MatStoreError(
                f"store version {version} not supported (expected {STORE_VERSION})"
            )
        if tuple(header.get("metrics", ())) != METRICS:
            raise MatStoreError(
                f"store at {root} carries metrics {header.get('metrics')}, "
                f"this build expects {list(METRICS)}"
            )
        store = cls(root, header)
        n = header.get("n_chains")
        if n != len(store.names) or n != len(store.hashes):
            raise MatStoreError(f"store header at {root} is inconsistent: n_chains")
        if header.get("n_pairs") != triangle_size(n):
            raise MatStoreError(f"store header at {root} is inconsistent: n_pairs")
        for metric in METRICS:
            want = store.n_pairs * 4
            have = store._block_size(metric)
            if have < want:
                raise MatStoreError(
                    f"block {metric}.f32 holds {have} bytes, header commits "
                    f"{want} — store at {root} is damaged"
                )
        return store

    # -- identity ----------------------------------------------------------
    @property
    def method(self) -> str:
        return str(self._header["method"])

    @property
    def params_hash(self) -> str:
        return str(self._header["params_hash"])

    @property
    def dataset(self) -> str:
        return str(self._header.get("dataset", ""))

    @property
    def names(self) -> List[str]:
        return list(self._header["names"])

    @property
    def hashes(self) -> List[str]:
        return list(self._header["hashes"])

    @property
    def n_chains(self) -> int:
        return int(self._header["n_chains"])

    @property
    def n_pairs(self) -> int:
        return int(self._header["n_pairs"])

    @property
    def journal_path(self) -> str:
        return os.path.join(self.root, _JOURNAL_NAME)

    def block_path(self, metric: str) -> str:
        return os.path.join(self.root, _BLOCKS_DIR, f"{metric}.f32")

    def _block_size(self, metric: str) -> int:
        try:
            return os.path.getsize(self.block_path(metric))
        except OSError:
            return 0

    def index_of(self, chain_hash: str) -> Optional[int]:
        """Store index of a content hash, or None if unregistered."""
        return self._index.get(chain_hash)

    def __contains__(self, chain_hash: str) -> bool:
        return chain_hash in self._index

    # -- mmap read path ----------------------------------------------------
    def _map(self, metric: str) -> np.memmap:
        m = self._maps.get(metric)
        if m is None:
            if metric not in METRICS:
                raise MatStoreError(f"unknown metric {metric!r}")
            m = np.memmap(
                self.block_path(metric),
                dtype="<f4",
                mode="r",
                shape=(self.n_pairs,),
            )
            self._maps[metric] = m
        return m

    def values(self, metric: str) -> np.ndarray:
        """The committed condensed block of one metric (read-only mmap)."""
        if self.n_pairs == 0:
            return np.empty(0, dtype="<f4")
        return self._map(metric)

    def lookup(self, hash_a: str, hash_b: str) -> Optional[StoreHit]:
        """Scores for an unordered pair of content hashes.

        Returns ``None`` (a miss) when either hash is unregistered, the
        hashes are equal, or the slot holds a NaN hole (a pair a
        prefiltered build skipped).  ``hit.swapped`` says the request
        named the chains in the reverse of the stored orientation.
        """
        ka = self._index.get(hash_a)
        kb = self._index.get(hash_b)
        if ka is None or kb is None or ka == kb:
            return None
        swapped = ka > kb
        i, j = (kb, ka) if swapped else (ka, kb)
        off = pair_offset(i, j)
        scores: Dict[str, float] = {}
        for metric in METRICS:
            v = float(self._map(metric)[off])
            if v != v:  # NaN hole: pair was never computed
                return None
            scores[metric] = v
        return StoreHit(scores, swapped, off)

    def close(self) -> None:
        """Drop mmap views (the OS unmaps when the arrays are collected)."""
        self._maps.clear()

    # -- write path (used by repro.matstore.build) -------------------------
    def journal(self) -> RunJournal:
        """Open the append-only journal (CRC rows, keys fixed to METRICS)."""
        return RunJournal(self.journal_path, keys=METRICS)

    def load_journal(self) -> JournalState:
        """All intact journal rows; raises :class:`JournalCorrupt` on
        mid-file damage (shared semantics with :mod:`repro.runs`)."""
        state = read_journal(self.journal_path)
        if state.keys is not None and state.keys != METRICS:
            raise MatStoreError(
                f"store journal carries keys {list(state.keys)}, "
                f"expected {list(METRICS)}"
            )
        return state

    @property
    def journal_context_path(self) -> str:
        return os.path.join(self.root, _CONTEXT_NAME)

    def read_journal_context(self) -> Optional[str]:
        """Content digest the uncommitted journal tail was computed for,
        or None when no writer ever recorded one."""
        try:
            with open(self.journal_context_path, encoding="ascii") as fh:
                return fh.read().strip() or None
        except OSError:
            return None

    def write_journal_context(self, digest: str) -> None:
        """Record (atomically, before any row is appended) which chain
        content the journal rows about to be written belong to.

        Journal rows are keyed only by pair indices; this sidecar is what
        lets a resume prove the uncommitted tail was computed for the
        *same* chains rather than silently grafting scores of different
        structures onto the store (see :meth:`discard_uncommitted_journal`).
        """
        atomic_write_text(self.journal_context_path, digest + "\n")

    def discard_uncommitted_journal(self, state: JournalState) -> int:
        """Drop journal rows past the committed extent, keeping committed
        rows byte-identical; returns the number of rows discarded.

        Called when the recorded journal context does not match the
        content a resume is computing — the tail belongs to a different
        (interrupted) build/extend and must be recomputed, never reused.
        """
        n = self.n_chains
        keep = {p: v for p, v in state.rows.items() if p[1] < n}
        dropped = len(state.rows) - len(keep)
        if dropped:
            rewrite_journal(self.journal_path, METRICS, keep)
        return dropped

    def commit_rows(
        self,
        new_names: Sequence[str],
        new_hashes: Sequence[str],
        tail: Dict[str, np.ndarray],
    ) -> None:
        """Append ``tail`` values at every block tail and publish a header
        covering the new chains — the one commit primitive.

        ``tail[metric]`` must hold the condensed-order values of every
        pair involving a new chain (``triangle_size(n_old + k) -
        n_pairs_old`` of them).  Blocks are truncated back to the
        committed extent first, so a tail a crashed commit half-wrote is
        discarded rather than shifted; the header replace is atomic and
        last, so readers only ever index fully fsynced bytes.
        """
        if len(new_names) != len(new_hashes):
            raise MatStoreError("new_names and new_hashes must align")
        n_old = self.n_chains
        n_new = n_old + len(new_names)
        want = triangle_size(n_new) - self.n_pairs
        dup = set(new_hashes) & set(self._index)
        if dup:
            raise MatStoreError(f"hashes already stored: {sorted(dup)[:3]}")
        if len(set(new_hashes)) != len(new_hashes):
            raise MatStoreError("duplicate hashes in one commit")
        for metric in METRICS:
            values = tail.get(metric)
            if values is None or len(values) != want:
                raise MatStoreError(
                    f"commit needs {want} {metric} values, got "
                    f"{'none' if values is None else len(values)}"
                )
        committed = self.n_pairs * 4
        for metric in METRICS:
            values = np.asarray(tail[metric], dtype="<f4")
            path = self.block_path(metric)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            if not os.path.exists(path):
                with open(path, "wb"):
                    pass
            with open(path, "r+b") as fh:
                fh.truncate(committed)  # discard a crashed commit's tail
                fh.seek(committed)
                fh.write(values.tobytes())
                fh.flush()
                os.fsync(fh.fileno())
        self._header = dict(self._header)
        self._header["names"] = [*self.names, *new_names]
        self._header["hashes"] = [*self.hashes, *new_hashes]
        self._header["n_chains"] = n_new
        self._header["n_pairs"] = triangle_size(n_new)
        self._write_header()
        for k, h in enumerate(self._header["hashes"]):
            self._index[h] = k
        self._maps.clear()  # committed extent grew; remap lazily

    def _write_header(self) -> None:
        atomic_write_text(
            os.path.join(self.root, _HEADER_NAME),
            json.dumps(self._header, indent=1, sort_keys=True) + "\n",
        )

    # -- introspection -----------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Size and coverage summary (service ``status``/``metrics``)."""
        block_bytes = sum(self._block_size(m) for m in METRICS)
        journal_bytes = 0
        try:
            journal_bytes = os.path.getsize(self.journal_path)
        except OSError:
            pass
        holes = 0
        if self.n_pairs:
            holes = int(np.isnan(np.asarray(self.values(METRICS[0]))).sum())
        return {
            "n_chains": self.n_chains,
            "n_pairs": self.n_pairs,
            "pairs_stored": self.n_pairs - holes,
            "holes": holes,
            "block_bytes": block_bytes,
            "journal_bytes": journal_bytes,
            "method": self.method,
            "dataset": self.dataset,
        }

    def verify(self) -> Dict[str, int]:
        """Cross-check journal, blocks and header; returns check counts.

        Raises :class:`JournalCorrupt` on mid-file journal damage (same
        one-line typed error the runs CLI surfaces) and
        :class:`MatStoreError` on any block/header mismatch.
        """
        state = self.load_journal()
        checked = 0
        holes = 0
        for i, j in condensed_pairs(self.n_chains):
            off = pair_offset(i, j)
            row = state.rows.get((i, j))
            if row is None:
                raise MatStoreError(
                    f"pair ({i}, {j}) is committed in the header but has no "
                    "journal row"
                )
            scores = dict(zip(state.keys, (float(v) for v in row)))
            for metric in METRICS:
                stored = self._map(metric)[off]
                want = np.float32(scores[metric])
                same = stored == want or (stored != stored and want != want)
                if not same:
                    raise MatStoreError(
                        f"block {metric}.f32 offset {off} holds {stored!r}, "
                        f"journal says {want!r} — store is damaged"
                    )
            if scores[METRICS[0]] != scores[METRICS[0]]:
                holes += 1
            checked += 1
        extra = len(state.rows) - checked
        return {
            "pairs_checked": checked,
            "holes": holes,
            "uncommitted_journal_rows": extra,
            "dropped_journal_lines": state.dropped,
        }
