"""Network-on-Chip model: 2-D mesh, XY routing, contention-aware links.

Message-level simulation of the SCC's 6x4 router mesh (DESIGN.md §5.1):
each directed link between adjacent routers is a FIFO resource with a
bandwidth and a per-hop router latency; a message traverses its XY path
hop by hop (virtual cut-through with per-hop serialization), so
congestion at any link — in practice the master tile's injection link —
queues messages realistically.  Memory controllers at the mesh edges
model off-chip DRAM reads with their own bandwidth/latency.
"""

from repro.noc.mesh import Mesh, TileCoord
from repro.noc.fabric import NocFabric, NocConfig, MemoryController

__all__ = [
    "Mesh",
    "TileCoord",
    "NocFabric",
    "NocConfig",
    "MemoryController",
]
