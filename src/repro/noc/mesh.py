"""Mesh topology and XY dimension-ordered routing."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import networkx as nx

__all__ = ["TileCoord", "Mesh"]


@dataclass(frozen=True, order=True)
class TileCoord:
    """Router/tile coordinate on the mesh: x is the column, y the row."""

    x: int
    y: int

    def __repr__(self) -> str:
        return f"({self.x},{self.y})"


class Mesh:
    """A ``width x height`` 2-D mesh of routers.

    Provides tile-id <-> coordinate mapping and deterministic XY
    (dimension-ordered: x first, then y) routing, the algorithm the SCC
    mesh uses; XY routing is deadlock-free on a mesh.
    """

    def __init__(self, width: int, height: int) -> None:
        if width < 1 or height < 1:
            raise ValueError("mesh dimensions must be >= 1")
        self.width = width
        self.height = height
        # Tile coordinates and XY routes are pure functions of the
        # (immutable) geometry, so both are cached: coord() sits on the
        # per-poll-visit hot path and xy_route() on every transfer.
        self._coords = tuple(
            TileCoord(t % width, t // width) for t in range(width * height)
        )
        self._route_cache: dict[tuple[TileCoord, TileCoord], tuple[tuple[TileCoord, TileCoord], ...]] = {}

    @property
    def n_tiles(self) -> int:
        return self.width * self.height

    def coord(self, tile_id: int) -> TileCoord:
        if not 0 <= tile_id < self.n_tiles:
            raise ValueError(f"tile id {tile_id} out of range [0, {self.n_tiles})")
        return self._coords[tile_id]

    def tile_id(self, coord: TileCoord) -> int:
        if not (0 <= coord.x < self.width and 0 <= coord.y < self.height):
            raise ValueError(f"coordinate {coord} outside {self.width}x{self.height}")
        return coord.y * self.width + coord.x

    def neighbors(self, coord: TileCoord) -> Iterator[TileCoord]:
        if coord.x > 0:
            yield TileCoord(coord.x - 1, coord.y)
        if coord.x < self.width - 1:
            yield TileCoord(coord.x + 1, coord.y)
        if coord.y > 0:
            yield TileCoord(coord.x, coord.y - 1)
        if coord.y < self.height - 1:
            yield TileCoord(coord.x, coord.y + 1)

    def xy_route(self, src: TileCoord, dst: TileCoord) -> tuple[tuple[TileCoord, TileCoord], ...]:
        """Directed hops from ``src`` to ``dst``: x-dimension first, then y."""
        cached = self._route_cache.get((src, dst))
        if cached is not None:
            return cached
        for c in (src, dst):
            if not (0 <= c.x < self.width and 0 <= c.y < self.height):
                raise ValueError(f"coordinate {c} outside mesh")
        hops: list[tuple[TileCoord, TileCoord]] = []
        cur = src
        step_x = 1 if dst.x > src.x else -1
        while cur.x != dst.x:
            nxt = TileCoord(cur.x + step_x, cur.y)
            hops.append((cur, nxt))
            cur = nxt
        step_y = 1 if dst.y > src.y else -1
        while cur.y != dst.y:
            nxt = TileCoord(cur.x, cur.y + step_y)
            hops.append((cur, nxt))
            cur = nxt
        route = tuple(hops)
        self._route_cache[(src, dst)] = route
        return route

    def hop_count(self, src: TileCoord, dst: TileCoord) -> int:
        """Manhattan distance (number of router-to-router hops)."""
        return abs(src.x - dst.x) + abs(src.y - dst.y)

    def to_networkx(self) -> "nx.Graph":
        """The mesh as a networkx grid graph (analysis/visualisation)."""
        g = nx.Graph()
        for t in range(self.n_tiles):
            c = self.coord(t)
            g.add_node(t, x=c.x, y=c.y)
        for t in range(self.n_tiles):
            c = self.coord(t)
            for nb in self.neighbors(c):
                g.add_edge(t, self.tile_id(nb))
        return g
