"""Contention-aware message transport over the mesh.

Transfers are simulated at message granularity: a message of B bytes
crossing hop h acquires that directed link, holds it for
``router_latency + B / link_bandwidth`` and releases it (per-hop
store-and-forward/virtual-cut-through approximation — see DESIGN.md
§5.1).  Only one message occupies a directed link at a time, so queueing
at a hot link (e.g. the master's injection port) emerges naturally, while
acquiring one link at a time keeps the model trivially deadlock-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.noc.mesh import Mesh, TileCoord
from repro.sim.engine import Environment
from repro.sim.resources import Resource

__all__ = ["NocConfig", "NocFabric", "MemoryController"]


@dataclass(frozen=True)
class NocConfig:
    """Timing/topology parameters of the on-chip network.

    Defaults approximate the SCC: 6x4 router mesh clocked at 1.6 GHz,
    16-byte links, 4-cycle router traversal; 4 DDR3 memory controllers
    at the mesh's edge columns.
    """

    width: int = 6
    height: int = 4
    mesh_freq_hz: float = 1.6e9
    link_bytes_per_cycle: float = 16.0
    router_latency_cycles: float = 4.0
    local_latency_s: float = 50e-9  # tile-internal (MPB) access, no mesh hop
    dram_bandwidth_bytes_per_s: float = 5.3e9
    dram_latency_s: float = 100e-9
    # memory controllers attach at these router coordinates (SCC: two on
    # each of the west/east edges)
    mc_coords: tuple[tuple[int, int], ...] = ((0, 0), (0, 3), (5, 0), (5, 3))
    # transfer fidelity:
    #   'store_forward' — each hop pays router latency + full message
    #       serialization before the next hop starts (conservative, the
    #       default used for the paper reproduction);
    #   'wormhole'      — the message pipelines through the path: the
    #       head pays per-hop router latency, the body streams once, and
    #       every link on the path is held for the overlapping interval
    #       (faithful to the SCC's virtual-cut-through mesh for large
    #       messages).
    fidelity: str = "store_forward"

    def __post_init__(self) -> None:
        if self.mesh_freq_hz <= 0 or self.link_bytes_per_cycle <= 0:
            raise ValueError("mesh frequency and link width must be positive")
        if self.router_latency_cycles < 0:
            raise ValueError("router latency cannot be negative")
        if self.fidelity not in ("store_forward", "wormhole"):
            raise ValueError(f"unknown fidelity {self.fidelity!r}")

    @property
    def link_bandwidth_bytes_per_s(self) -> float:
        return self.link_bytes_per_cycle * self.mesh_freq_hz

    @property
    def hop_latency_s(self) -> float:
        return self.router_latency_cycles / self.mesh_freq_hz


class MemoryController:
    """One off-chip DRAM port: bandwidth-limited FIFO resource."""

    def __init__(self, env: Environment, config: NocConfig, coord: TileCoord) -> None:
        self.env = env
        self.config = config
        self.coord = coord
        self._port = Resource(env, capacity=1)
        self.bytes_served = 0

    def read(self, nbytes: int) -> Generator:
        """Coroutine: serve a read of ``nbytes`` (latency + serialization)."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        hold = self._port.try_acquire()
        if hold is None:
            hold = self._port.request()
            yield hold
        try:
            service = (
                self.config.dram_latency_s
                + nbytes / self.config.dram_bandwidth_bytes_per_s
            )
            yield self.env.timeout(service)
            self.bytes_served += nbytes
        finally:
            self._port.release(hold)


class NocFabric:
    """The simulated interconnect: mesh + directed links + controllers."""

    def __init__(self, env: Environment, config: NocConfig | None = None) -> None:
        self.env = env
        self.config = config or NocConfig()
        self.mesh = Mesh(self.config.width, self.config.height)
        # one Resource per directed link between adjacent routers
        self._links: dict[tuple[TileCoord, TileCoord], Resource] = {}
        for t in range(self.mesh.n_tiles):
            c = self.mesh.coord(t)
            for nb in self.mesh.neighbors(c):
                self._links[(c, nb)] = Resource(env, capacity=1)
        self.memory_controllers = [
            MemoryController(env, self.config, TileCoord(x, y))
            for (x, y) in self.config.mc_coords
        ]
        # per-(src, dst) cache of the link objects along the XY route
        self._routes: dict[tuple[int, int], list[Resource]] = {}
        # instrumentation
        self.messages_sent = 0
        self.bytes_sent = 0

    def link(self, src: TileCoord, dst: TileCoord) -> Resource:
        try:
            return self._links[(src, dst)]
        except KeyError:
            raise ValueError(f"no directed link {src}->{dst}") from None

    def link_utilization(self) -> dict[tuple[TileCoord, TileCoord], int]:
        """Total grant count per directed link (hot-spot analysis)."""
        return {k: v.total_grants for k, v in self._links.items()}

    def transfer(self, src_tile: int, dst_tile: int, nbytes: int) -> Generator:
        """Coroutine: move ``nbytes`` from ``src_tile`` to ``dst_tile``.

        Completes when the last byte arrives.  Same-tile transfers only
        pay the local (MPB) latency.  The contention model depends on
        ``config.fidelity`` (see :class:`NocConfig`).
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        self.messages_sent += 1
        self.bytes_sent += nbytes
        if src_tile == dst_tile:
            self.mesh.coord(src_tile)  # bounds check
            yield self.env.timeout(self.config.local_latency_s)
            return
        path = self._route(src_tile, dst_tile)
        if self.config.fidelity == "wormhole":
            yield from self._transfer_wormhole(path, nbytes)
        else:
            yield from self._transfer_store_forward(path, nbytes)

    def _route(self, src_tile: int, dst_tile: int):
        """Hop list for a (src, dst) tile pair, cached per pair."""
        cached = self._routes.get((src_tile, dst_tile))
        if cached is None:
            cached = [
                self._links[hop]
                for hop in self.mesh.xy_route(
                    self.mesh.coord(src_tile), self.mesh.coord(dst_tile)
                )
            ]
            self._routes[(src_tile, dst_tile)] = cached
        return cached

    def _transfer_store_forward(self, path, nbytes: int) -> Generator:
        """Per-hop: acquire link, pay router latency + full message
        serialization, release, advance.

        An immediately-granted (uncontended) link request is already
        processed, so the yield back into the kernel is skipped — the
        hold window [t, t + hop time] is identical either way.
        """
        hop_time = (
            self.config.hop_latency_s
            + nbytes / self.config.link_bandwidth_bytes_per_s
        )
        timeout = self.env.timeout
        for link in path:
            hold = link.try_acquire()
            if hold is None:
                hold = link.request()
                yield hold
            try:
                yield timeout(hop_time)
            finally:
                link.release(hold)

    def _transfer_wormhole(self, path, nbytes: int) -> Generator:
        """Pipelined: the head acquires links hop by hop (router latency
        each); once the path is held, the body streams exactly once; all
        links release together when the tail passes.

        Deadlock-free despite holding multiple links: XY routing orders
        every path's link acquisitions by dimension then coordinate, so
        no circular wait can form.
        """
        held = []
        try:
            for link in path:
                hold = link.try_acquire()
                if hold is None:
                    hold = link.request()
                    yield hold
                held.append((link, hold))
                yield self.env.timeout(self.config.hop_latency_s)
            yield self.env.timeout(nbytes / self.config.link_bandwidth_bytes_per_s)
        finally:
            for link, req in held:
                link.release(req)

    def dram_read(self, tile: int, nbytes: int) -> Generator:
        """Coroutine: read ``nbytes`` from the nearest memory controller,
        including the mesh transfer of the data back to ``tile``."""
        coord = self.mesh.coord(tile)
        mc = min(
            self.memory_controllers,
            key=lambda m: (self.mesh.hop_count(m.coord, coord), m.coord),
        )
        yield from mc.read(nbytes)
        yield from self.transfer(self.mesh.tile_id(mc.coord), tile, nbytes)
