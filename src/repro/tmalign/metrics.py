"""Additional structural similarity scores: GDT-TS, GDT-HA, MaxSub, LDDT.

These are the other standard model-quality measures of the era; they
reuse the TM-score superposition machinery and share its matched-pair
conventions, rounding out the toolbox a PSC practitioner expects.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.geometry.distances import lddt_score
from repro.geometry.kabsch import kabsch
from repro.structure.model import Chain
from repro.tmalign.params import TMAlignParams
from repro.tmalign.result import Alignment
from repro.tmalign.tmscore import superposition_search

__all__ = ["gdt_score", "gdt_ts", "gdt_ha", "lddt", "maxsub_score"]

_GDT_TS_CUTOFFS = (1.0, 2.0, 4.0, 8.0)
_GDT_HA_CUTOFFS = (0.5, 1.0, 2.0, 4.0)


def _matched_coords(
    chain_a: Chain, chain_b: Chain, alignment: Optional[Alignment]
) -> tuple[np.ndarray, np.ndarray, int]:
    if alignment is None:
        if len(chain_a) != len(chain_b):
            raise ValueError("identity correspondence needs equal lengths")
        pa, pb = chain_a.coords, chain_b.coords
    else:
        pa = chain_a.coords[alignment.ai]
        pb = chain_b.coords[alignment.aj]
    return pa, pb, len(chain_b)


def _best_fraction_under(pa: np.ndarray, pb: np.ndarray, cutoff: float, lnorm: int) -> float:
    """Max fraction of pairs within ``cutoff`` over superpositions seeded
    the GDT way (fit on the close subset iteratively)."""
    xf = kabsch(pa, pb)
    best = 0.0
    for _ in range(8):
        d = np.sqrt(((xf.apply(pa) - pb) ** 2).sum(axis=1))
        close = d < cutoff
        frac = close.sum() / lnorm
        best = max(best, float(frac))
        if close.sum() < 3:
            break
        new_xf = kabsch(pa[close], pb[close])
        if np.allclose(new_xf.rotation, xf.rotation, atol=1e-12) and np.allclose(
            new_xf.translation, xf.translation, atol=1e-12
        ):
            break
        xf = new_xf
    return min(1.0, best)


def gdt_score(
    chain_a: Chain,
    chain_b: Chain,
    cutoffs: Sequence[float],
    alignment: Optional[Alignment] = None,
) -> float:
    """Average best-fraction-under-cutoff over the given cutoffs,
    normalised by the length of chain B (the reference), in [0, 1]."""
    if not cutoffs or any(c <= 0 for c in cutoffs):
        raise ValueError("cutoffs must be positive")
    pa, pb, lnorm = _matched_coords(chain_a, chain_b, alignment)
    if pa.shape[0] < 3:
        raise ValueError("need at least 3 matched pairs")
    fracs = [_best_fraction_under(pa, pb, c, lnorm) for c in cutoffs]
    return float(np.mean(fracs))


def gdt_ts(chain_a: Chain, chain_b: Chain, alignment: Optional[Alignment] = None) -> float:
    """GDT total score (cutoffs 1, 2, 4, 8 Å)."""
    return gdt_score(chain_a, chain_b, _GDT_TS_CUTOFFS, alignment)


def gdt_ha(chain_a: Chain, chain_b: Chain, alignment: Optional[Alignment] = None) -> float:
    """GDT high-accuracy score (cutoffs 0.5, 1, 2, 4 Å)."""
    return gdt_score(chain_a, chain_b, _GDT_HA_CUTOFFS, alignment)


def lddt(
    chain_a: Chain,
    chain_b: Chain,
    alignment: Optional[Alignment] = None,
    inclusion_radius: float = 15.0,
    tolerances: tuple[float, ...] = (0.5, 1.0, 2.0, 4.0),
) -> float:
    """Local distance difference test with chain B as the reference.

    Superposition-free, so it is invariant under rigid transforms of
    either chain; only matched positions contribute, following the
    shared ``_matched_coords`` convention.
    """
    pa, pb, _ = _matched_coords(chain_a, chain_b, alignment)
    if pa.shape[0] < 2:
        raise ValueError("need at least 2 matched pairs")
    return lddt_score(pa, pb, inclusion_radius, tolerances)


def maxsub_score(
    chain_a: Chain,
    chain_b: Chain,
    alignment: Optional[Alignment] = None,
    d_cut: float = 3.5,
    params: Optional[TMAlignParams] = None,
) -> float:
    """MaxSub: size of the largest superposable subset under ``d_cut``,
    scored with the standard 1/(1+(d/d_cut)²) sum, normalised by the
    reference length."""
    pa, pb, lnorm = _matched_coords(chain_a, chain_b, alignment)
    if pa.shape[0] < 3:
        raise ValueError("need at least 3 matched pairs")
    tm, xf = superposition_search(pa, pb, d_cut, lnorm, params=params)
    d = np.sqrt(((xf.apply(pa) - pb) ** 2).sum(axis=1))
    close = d < d_cut
    if close.sum() < 3:
        return float(tm)
    score = (1.0 / (1.0 + (d[close] / d_cut) ** 2)).sum() / lnorm
    return float(min(1.0, max(score, 0.0)))
