"""Alignment and result containers for TM-align."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.geometry.transforms import RigidTransform

__all__ = ["Alignment", "TMAlignResult"]


@dataclass(frozen=True)
class Alignment:
    """A set of matched residue index pairs (both strictly increasing)."""

    ai: np.ndarray  # indices into chain A
    aj: np.ndarray  # indices into chain B
    dp_score: float = 0.0

    def __post_init__(self) -> None:
        ai = np.asarray(self.ai, dtype=np.intp)
        aj = np.asarray(self.aj, dtype=np.intp)
        if ai.shape != aj.shape or ai.ndim != 1:
            raise ValueError("ai/aj must be 1-D arrays of equal length")
        if ai.size >= 2:
            if not (np.diff(ai) > 0).all() or not (np.diff(aj) > 0).all():
                raise ValueError("alignment indices must be strictly increasing")
        object.__setattr__(self, "ai", ai)
        object.__setattr__(self, "aj", aj)
        ai.setflags(write=False)
        aj.setflags(write=False)

    @classmethod
    def from_trusted(cls, ai: np.ndarray, aj: np.ndarray, dp_score: float = 0.0):
        """Construct without validation from known-good index arrays.

        For internal callers whose indices are strictly increasing by
        construction (DP tracebacks, arange windows); skips the
        ``__post_init__`` checks, which are measurable at ~10^3
        constructions per pairwise comparison.  Arrays must be 1-D intp
        of equal length and are frozen in place.
        """
        self = object.__new__(cls)
        object.__setattr__(self, "ai", ai)
        object.__setattr__(self, "aj", aj)
        object.__setattr__(self, "dp_score", dp_score)
        ai.setflags(write=False)
        aj.setflags(write=False)
        return self

    def __len__(self) -> int:
        return int(self.ai.size)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Alignment)
            and self.ai.shape == other.ai.shape
            and bool((self.ai == other.ai).all())
            and bool((self.aj == other.aj).all())
        )

    def key(self) -> tuple:
        """Hashable identity of the matching (ignores dp_score)."""
        return (tuple(self.ai.tolist()), tuple(self.aj.tolist()))

    def strings(self, seq_a: str, seq_b: str) -> tuple[str, str, str]:
        """Gapped alignment strings plus a marker line (``:`` identical)."""
        out_a: list[str] = []
        out_b: list[str] = []
        mark: list[str] = []
        pa = pb = 0
        for i, j in zip(self.ai.tolist(), self.aj.tolist()):
            while pa < i:
                out_a.append(seq_a[pa])
                out_b.append("-")
                mark.append(" ")
                pa += 1
            while pb < j:
                out_a.append("-")
                out_b.append(seq_b[pb])
                mark.append(" ")
                pb += 1
            out_a.append(seq_a[i])
            out_b.append(seq_b[j])
            mark.append(":" if seq_a[i] == seq_b[j] else ".")
            pa, pb = i + 1, j + 1
        while pa < len(seq_a):
            out_a.append(seq_a[pa])
            out_b.append("-")
            mark.append(" ")
            pa += 1
        while pb < len(seq_b):
            out_a.append("-")
            out_b.append(seq_b[pb])
            mark.append(" ")
            pb += 1
        return "".join(out_a), "".join(mark), "".join(out_b)


@dataclass(frozen=True)
class TMAlignResult:
    """Outcome of one pairwise TM-align comparison.

    ``tm_norm_a``/``tm_norm_b`` are the TM-scores normalised by the
    lengths of chains A and B respectively (both in [0, 1]; > ~0.5
    indicates the same fold).
    """

    name_a: str
    name_b: str
    len_a: int
    len_b: int
    tm_norm_a: float
    tm_norm_b: float
    rmsd: float
    n_aligned: int
    seq_identity: float
    alignment: Alignment
    transform: RigidTransform
    op_counts: Dict[str, float] = field(default_factory=dict)

    @property
    def tm_max(self) -> float:
        return max(self.tm_norm_a, self.tm_norm_b)

    @property
    def tm_min(self) -> float:
        return min(self.tm_norm_a, self.tm_norm_b)

    def summary(self) -> str:
        return (
            f"{self.name_a} (L={self.len_a}) vs {self.name_b} (L={self.len_b}): "
            f"TM={self.tm_norm_a:.4f}/{self.tm_norm_b:.4f} "
            f"RMSD={self.rmsd:.2f} aligned={self.n_aligned} "
            f"seq_id={self.seq_identity:.2f}"
        )
