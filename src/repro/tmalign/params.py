"""TM-align parameters and the d0 normalisation scale."""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

__all__ = [
    "TMAlignParams",
    "params_fingerprint",
    "d0_from_length",
    "d0_search_bounds",
    "d8_cutoff",
]


def d0_from_length(length: int) -> float:
    """TM-score normalisation scale d0(L) = 1.24 (L-15)^(1/3) - 1.8.

    Clamped below at 0.5 Å (the published convention for short chains).
    """
    if length < 1:
        raise ValueError("length must be positive")
    if length <= 21:
        return 0.5
    return max(0.5, 1.24 * (length - 15.0) ** (1.0 / 3.0) - 1.8)


def d0_search_bounds(d0: float) -> tuple[float, float]:
    """Search-scale bounds used during superposition refinement.

    TM-align clips the search d0 into [4.5, 8.0] so short chains still
    find enough close pairs to seed Kabsch.
    """
    return (max(4.5, d0), min(8.0, max(4.5, d0)))


def d8_cutoff(avg_length: float) -> float:
    """Distance beyond which pairs are excluded from the final TM-score."""
    return 1.5 * avg_length ** 0.3 + 3.5


@dataclass(frozen=True)
class TMAlignParams:
    """Tunable knobs of the aligner (defaults follow the original)."""

    gap_open: float = -0.6  # DP gap penalty (no extension penalty)
    ss_gap_open: float = -1.0  # gap penalty for the SS-only DP
    max_refine_iters: int = 20  # alignment<->superposition outer loop
    refine_patience: int = 3  # stop after this many non-improving rounds
    max_score_iters: int = 20  # pair-reselection loop inside the search
    n_seed_fractions: tuple[int, ...] = (1, 2, 4)  # fragment = L/frac
    min_seed_len: int = 4
    threading_stride: int = 1  # gapless threading shift stride
    use_threading_init: bool = True  # gapless structure matching
    use_ss_init: bool = True  # secondary-structure DP
    use_combined_init: bool = True  # 0.5*SS + 0.5*distance DP
    use_fragment_init: bool = True
    fragment_fraction: int = 2  # fragment threading uses L/2 windows
    ss_mix: float = 0.5  # weight of SS term in the combined init
    convergence_tol: float = 1e-7

    def __post_init__(self) -> None:
        if self.gap_open > 0 or self.ss_gap_open > 0:
            raise ValueError("gap penalties must be <= 0")
        if self.max_refine_iters < 1 or self.max_score_iters < 1:
            raise ValueError("iteration caps must be >= 1")
        if not self.n_seed_fractions:
            raise ValueError("need at least one seed fraction")
        if any(f < 1 for f in self.n_seed_fractions):
            raise ValueError("seed fractions must be >= 1")
        if not 0.0 <= self.ss_mix <= 1.0:
            raise ValueError("ss_mix must be in [0, 1]")

    def to_dict(self) -> dict:
        """Every knob as a plain JSON-serialisable mapping."""
        return asdict(self)


def params_fingerprint(params: TMAlignParams) -> str:
    """sha256 over the canonical JSON of the *fully resolved* parameters.

    Two parameter sets that spell the same effective knobs (defaults
    included) share one fingerprint; changing any knob changes it.  The
    query service keys its result cache on this, so tweaked TM-align
    parameters can never be served a stale cached score.
    """
    import hashlib
    import json

    payload = json.dumps(
        params.to_dict(), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("ascii")).hexdigest()


def np_float(x) -> float:  # pragma: no cover - tiny helper
    return float(np.asarray(x))
