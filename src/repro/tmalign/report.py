"""TM-align-style text report (mimics the original program's output)."""

from __future__ import annotations

from repro.structure.model import Chain
from repro.tmalign.result import TMAlignResult

__all__ = ["format_tmalign_report"]

_BANNER = (
    " *****************************************************************\n"
    " * TM-align (repro): protein structure alignment by TM-score     *\n"
    " * Reproduction of Zhang & Skolnick (2005) / Sharma et al. 2013  *\n"
    " *****************************************************************\n"
)


def format_tmalign_report(
    result: TMAlignResult, chain_a: Chain, chain_b: Chain, line_width: int = 60
) -> str:
    """Render a pairwise result in the layout of the original program.

    ``chain_a``/``chain_b`` must be the chains the result came from
    (their sequences are needed for the alignment block).
    """
    if chain_a.name != result.name_a or chain_b.name != result.name_b:
        raise ValueError(
            "chains do not match the result "
            f"({chain_a.name!r}/{chain_b.name!r} vs "
            f"{result.name_a!r}/{result.name_b!r})"
        )
    out = [_BANNER]
    out.append(f"Name of Chain_1: {result.name_a}")
    out.append(f"Name of Chain_2: {result.name_b}")
    out.append(f"Length of Chain_1: {result.len_a} residues")
    out.append(f"Length of Chain_2: {result.len_b} residues")
    out.append("")
    out.append(
        f"Aligned length= {result.n_aligned}, RMSD= {result.rmsd:6.2f}, "
        f"Seq_ID=n_identical/n_aligned= {result.seq_identity:.3f}"
    )
    out.append(
        f"TM-score= {result.tm_norm_a:.5f} (if normalized by length of Chain_1)"
    )
    out.append(
        f"TM-score= {result.tm_norm_b:.5f} (if normalized by length of Chain_2)"
    )
    out.append("")
    rot = result.transform.rotation
    tra = result.transform.translation
    out.append("Rotation matrix to rotate Chain_1 to Chain_2:")
    out.append(f"{'i':>2} {'t[i]':>12} {'u[i][0]':>10} {'u[i][1]':>10} {'u[i][2]':>10}")
    for i in range(3):
        out.append(
            f"{i:>2} {tra[i]:>12.6f} {rot[i, 0]:>10.6f} "
            f"{rot[i, 1]:>10.6f} {rot[i, 2]:>10.6f}"
        )
    out.append("")
    out.append('(":" denotes identical residues, "." aligned residues)')
    top, mark, bottom = result.alignment.strings(chain_a.sequence, chain_b.sequence)
    for k in range(0, len(top), line_width):
        out.append(top[k : k + line_width])
        out.append(mark[k : k + line_width])
        out.append(bottom[k : k + line_width])
        out.append("")
    return "\n".join(out)
