"""Initial alignment generators (TM-align step 2).

Three kinds, as described in the paper's §II: dynamic-programming
secondary-structure alignment, gapless structure matching (threading),
and a DP over a score matrix combining the previous two.  A fragment
threading variant (half-length windows) is included as in the original's
additional inits.

The threading generators are batch-vectorized: instead of one Kabsch +
TM-score per shift, all correspondences of equal length are stacked and
solved with one :func:`~repro.geometry.kabsch.kabsch_batch` call and one
batched scoring pass.  Equal-length stacking (never padding) keeps every
slice bit-identical to the reference serial loops
(``gapless_threading_serial`` / ``fragment_threading_serial``), which
are retained as the property-test ground truth.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.geometry.distances import cross_distances
from repro.geometry.kabsch import (
    _kabsch_batch_core,
    kabsch,
    rotations_from_covariances,
)
from repro.tmalign.dp import nw_align
from repro.tmalign.params import TMAlignParams
from repro.tmalign.result import Alignment
from repro.tmalign.tmscore import (
    _moved_tm_score,
    _moved_tm_scores_batch,
    tm_score_from_distances,
)

__all__ = [
    "gapless_threading",
    "gapless_threading_serial",
    "ss_alignment",
    "combined_alignment",
    "fragment_threading",
    "fragment_threading_serial",
]

# Cap on the element count of one stacked (g, m, 3) threading batch; larger
# groups are processed in row chunks so very long chains cannot balloon the
# working set.  Chunking never changes per-slice results.
_BATCH_ELEMS = 1 << 21


def _ss_codes(ss: str) -> np.ndarray:
    return np.frombuffer(ss.encode("ascii"), dtype=np.uint8)


def _gapless_alignment(shift: int, la: int, lb: int) -> tuple[np.ndarray, np.ndarray]:
    """Index pairs for correspondence j = i - shift, clipped to bounds."""
    i0 = max(0, shift)
    i1 = min(la, lb + shift)
    ai = np.arange(i0, i1, dtype=np.intp)
    return ai, ai - shift


def _batched_gl_scores(
    sa: np.ndarray,
    sb: np.ndarray,
    d0: float,
    lnorm: int,
    counter=None,
) -> np.ndarray:
    """One Kabsch + TM-score per slice of the ``(g, m, 3)`` stacks.

    Equivalent, slice for slice, to ``kabsch`` + ``_moved_tm_score`` on
    ``(sa[i], sb[i])`` — the "GL score" of each candidate correspondence.
    """
    g, m = sa.shape[0], sa.shape[1]
    rots, tras = _kabsch_batch_core(sa, sb, counter=counter)
    work = np.empty((g, m, 3))
    dist = np.empty((g, m))
    sbuf = np.empty((g, m))
    return _moved_tm_scores_batch(
        sa, sb, rots, tras, d0, lnorm, work, dist, sbuf, counter=counter
    )


def _gl_scores_padded(
    xa: np.ndarray,
    ya: np.ndarray,
    groups: list,
    span: np.ndarray,
    d0: float,
    lnorm: int,
    counter=None,
) -> list:
    """GL scores for ragged gapless window groups via one padded pipeline.

    ``groups`` is a list of ``(m, shifts)`` entries, all windows of one
    entry sharing overlap length ``m``; the stack is padded to the
    chunk-wide maximum length.  Padding rows are masked to exact zeros
    before the covariance GEMM, so they only ever extend its K dimension
    (zero rows contribute exact zero terms to the sequential K
    accumulation) and the M dimension of the scoring GEMM (extra output
    rows that are never reduced over); every ragged reduction — window
    means and score sums, whose pairwise summation trees depend on the
    element count — runs per equal-length group.  Each window's floats
    are therefore identical to the serial per-shift path, at a fraction
    of the per-shift NumPy call count.

    Returns ``[(tm, shift), ...]`` in group order.
    """
    g_rows = sum(len(shifts) for _, shifts in groups)
    mmax = max(m for m, _ in groups)
    n_pts = sum(m * len(shifts) for m, shifts in groups)
    if counter is not None:
        counter.add("kabsch", g_rows)
        counter.add("kabsch_point", n_pts)
        counter.add("score_pair", n_pts)
    bounds = []
    all_shifts: list[int] = []
    all_lens: list[float] = []
    lo = 0
    for m, shifts in groups:
        hi = lo + len(shifts)
        all_shifts.extend(shifts)
        all_lens.extend([float(m)] * len(shifts))
        bounds.append((lo, hi, m, shifts))
        lo = hi
    # one global gather for every window: index rows are exact inside each
    # window and clipped into range over the padding (those rows are either
    # masked to zero before the covariance GEMM or sliced away after the
    # scoring GEMM, so their values never reach a result)
    arr = np.asarray(all_shifts, dtype=np.intp)
    rows_a = np.maximum(0, arr)[:, None] + span[:mmax]
    rows_b = rows_a - arr[:, None]
    np.minimum(rows_a, xa.shape[0] - 1, out=rows_a)
    np.clip(rows_b, 0, ya.shape[0] - 1, out=rows_b)
    bufa = np.empty((g_rows, mmax, 3))
    bufb = np.empty((g_rows, mmax, 3))
    np.take(xa, rows_a, axis=0, out=bufa)
    np.take(ya, rows_b, axis=0, out=bufb)
    # window means must reduce over exactly m rows (the pairwise summation
    # tree depends on the element count), so they go per equal-length group
    mu_m = np.empty((g_rows, 3))
    mu_t = np.empty((g_rows, 3))
    for lo, hi, m, _ in bounds:
        np.add.reduce(bufa[lo:hi, :m], axis=1, out=mu_m[lo:hi])
        np.add.reduce(bufb[lo:hi, :m], axis=1, out=mu_t[lo:hi])
    lens = np.asarray(all_lens)[:, None]
    mu_m /= lens
    mu_t /= lens
    mask = (span[:mmax] < lens)[:, :, None]
    pm = np.where(mask, bufa - mu_m[:, None, :], 0.0)
    pt = np.where(mask, bufb - mu_t[:, None, :], 0.0)
    cov = np.matmul(pm.transpose(0, 2, 1), pt)
    rots = rotations_from_covariances(cov)
    tras = mu_t - np.matmul(rots, mu_m[:, :, None])[:, :, 0]
    work = pm  # same shape; pm is dead after the covariance GEMM
    np.matmul(bufa, rots.transpose(0, 2, 1), out=work)
    work += tras[:, None, :]
    np.subtract(work, bufb, out=work)
    np.multiply(work, work, out=work)
    dist = np.add.reduce(work, axis=2)
    np.sqrt(dist, out=dist)
    # score chain in place over dist: 1 / (1 + (d/d0)^2)
    np.divide(dist, d0, out=dist)
    np.multiply(dist, dist, out=dist)
    np.add(dist, 1.0, out=dist)
    np.divide(1.0, dist, out=dist)
    out = []
    for lo, hi, m, shifts in bounds:
        tms = np.add.reduce(dist[lo:hi, :m], axis=1)
        tms /= lnorm
        out.extend(zip(map(float, tms), shifts))
    return out


def _chunked(total: int, m: int):
    """Yield ``(lo, hi)`` row ranges bounding each batch's element count."""
    step = max(1, _BATCH_ELEMS // max(1, m * 3))
    for lo in range(0, total, step):
        yield lo, min(total, lo + step)


def gapless_threading(
    xa: np.ndarray,
    ya: np.ndarray,
    d0: float,
    lnorm: int,
    params: Optional[TMAlignParams] = None,
    n_best: int = 2,
    min_overlap: int = 5,
    counter=None,
) -> list[Alignment]:
    """Slide chain A against chain B without gaps; keep the best shifts.

    Each shift is scored by one Kabsch superposition of the corresponded
    residues followed by a TM-score evaluation (the "GL score" of the
    original, without its extra refinement iterations).  All shifts are
    solved together as one zero-padded stack per chunk (see
    :func:`_gl_scores_padded`); the final ranking is order-independent,
    so shifts may be processed grouped by overlap length.
    """
    params = params or TMAlignParams()
    la, lb = xa.shape[0], ya.shape[0]
    min_overlap = min(min_overlap, la, lb)
    stride = max(1, params.threading_stride)
    by_m: dict[int, list[int]] = {}
    for shift in range(-(lb - min_overlap), la - min_overlap + 1, stride):
        m = min(la, lb + shift) - max(0, shift)
        if m < min_overlap:
            continue
        by_m.setdefault(m, []).append(shift)
    if not by_m:
        return []
    mmax = max(by_m)
    # pack the equal-length groups into chunks bounding the padded element
    # count, splitting oversized groups; chunking never changes any floats
    row_cap = max(1, _BATCH_ELEMS // (mmax * 3))
    chunks: list[list[tuple[int, list[int]]]] = [[]]
    rows_used = 0
    for m, shifts in by_m.items():
        lo = 0
        while lo < len(shifts):
            if rows_used >= row_cap:
                chunks.append([])
                rows_used = 0
            take = min(len(shifts) - lo, row_cap - rows_used)
            chunks[-1].append((m, shifts[lo : lo + take]))
            rows_used += take
            lo += take
    span = np.arange(mmax, dtype=np.intp)
    scored: list[tuple[float, int]] = []
    for groups in chunks:
        if groups:
            scored.extend(
                _gl_scores_padded(xa, ya, groups, span, d0, lnorm, counter=counter)
            )
    scored.sort(key=lambda t: (-t[0], t[1]))
    out = []
    for tm, shift in scored[:n_best]:
        ai, aj = _gapless_alignment(shift, la, lb)
        out.append(Alignment.from_trusted(ai, aj, dp_score=tm))
    return out


def gapless_threading_serial(
    xa: np.ndarray,
    ya: np.ndarray,
    d0: float,
    lnorm: int,
    params: Optional[TMAlignParams] = None,
    n_best: int = 2,
    min_overlap: int = 5,
    counter=None,
) -> list[Alignment]:
    """Reference one-shift-at-a-time threading (pre-batch implementation)."""
    params = params or TMAlignParams()
    la, lb = xa.shape[0], ya.shape[0]
    min_overlap = min(min_overlap, la, lb)
    scored: list[tuple[float, int]] = []
    stride = max(1, params.threading_stride)
    # the correspondence of a shift is contiguous in both chains, so the
    # coordinate subsets are plain views (no fancy-index copies); scoring
    # scratch is shared across shifts
    nmax = min(la, lb)
    work = np.empty((nmax, 3))
    dist = np.empty(nmax)
    sbuf = np.empty(nmax)
    for shift in range(-(lb - min_overlap), la - min_overlap + 1, stride):
        i0 = max(0, shift)
        i1 = min(la, lb + shift)
        m = i1 - i0
        if m < min_overlap:
            continue
        sa = xa[i0:i1]
        sb = ya[i0 - shift : i1 - shift]
        xf = kabsch(sa, sb, counter=counter)
        tm = _moved_tm_score(
            sa, sb, xf, d0, lnorm, work[:m], dist[:m], sbuf[:m], counter=counter
        )
        scored.append((tm, shift))
    scored.sort(key=lambda t: (-t[0], t[1]))
    out = []
    for tm, shift in scored[:n_best]:
        ai, aj = _gapless_alignment(shift, la, lb)
        out.append(Alignment(ai, aj, dp_score=tm))
    return out


def ss_alignment(
    ss_a: str,
    ss_b: str,
    params: Optional[TMAlignParams] = None,
    counter=None,
    codes_a: Optional[np.ndarray] = None,
    codes_b: Optional[np.ndarray] = None,
) -> Alignment:
    """DP alignment of secondary-structure strings (match=1, mismatch=0).

    ``codes_a``/``codes_b`` accept pre-encoded SS byte codes (e.g. the
    per-chain cache :attr:`repro.structure.model.Chain.ss_codes`) to skip
    re-encoding the strings on every pair of an all-vs-all run.
    """
    params = params or TMAlignParams()
    ca = codes_a if codes_a is not None else _ss_codes(ss_a)
    cb = codes_b if codes_b is not None else _ss_codes(ss_b)
    score = (ca[:, None] == cb[None, :]).astype(np.float64)
    return nw_align(score, params.ss_gap_open, counter=counter)


def combined_alignment(
    xa: np.ndarray,
    ya: np.ndarray,
    transform,
    ss_a: str,
    ss_b: str,
    d0: float,
    params: Optional[TMAlignParams] = None,
    counter=None,
    codes_a: Optional[np.ndarray] = None,
    codes_b: Optional[np.ndarray] = None,
) -> Alignment:
    """DP over ``ss_mix * SS-match + (1-ss_mix) * TM distance score``.

    The distance term uses the best superposition found so far
    (``transform`` maps chain A onto chain B).  ``codes_a``/``codes_b``
    take pre-encoded SS codes as in :func:`ss_alignment`.
    """
    params = params or TMAlignParams()
    d = cross_distances(transform.apply(xa), ya)
    if counter is not None:
        counter.add("score_pair", d.size)
    # in-place chains: same float expressions as
    #   mix * ss + (1 - mix) * (1 / (1 + (d/d0)^2))
    # without the intermediate allocations
    np.divide(d, d0, out=d)
    np.multiply(d, d, out=d)
    np.add(d, 1.0, out=d)
    np.divide(1.0, d, out=d)
    np.multiply(d, 1.0 - params.ss_mix, out=d)
    ca = codes_a if codes_a is not None else _ss_codes(ss_a)
    cb = codes_b if codes_b is not None else _ss_codes(ss_b)
    score = (ca[:, None] == cb[None, :]).astype(np.float64)
    np.multiply(score, params.ss_mix, out=score)
    np.add(score, d, out=score)
    return nw_align(score, params.gap_open, counter=counter)


def _fragment_geometry(
    la: int, lb: int, params: TMAlignParams
) -> Optional[tuple[bool, int, int, int, int]]:
    """Common window geometry: ``(swap, ls, ll, flen, step)`` or None."""
    swap = la > lb
    ls, ll = (lb, la) if swap else (la, lb)
    flen = max(ls // params.fragment_fraction, params.min_seed_len)
    if flen < params.min_seed_len or flen >= ls:
        return None
    return swap, ls, ll, flen, max(1, flen // 2)


def fragment_threading(
    xa: np.ndarray,
    ya: np.ndarray,
    d0: float,
    lnorm: int,
    params: Optional[TMAlignParams] = None,
    counter=None,
) -> Optional[Alignment]:
    """Gapless threading of an L/k window of the shorter chain.

    Catches alignments where only a sub-domain matches; returns None when
    the chains are too short to cut a meaningful fragment.  Every
    (fragment, segment) placement has the same window length, so the
    whole search runs as stacked Kabsch + lockstep scoring batches.
    """
    params = params or TMAlignParams()
    la, lb = xa.shape[0], ya.shape[0]
    geom = _fragment_geometry(la, lb, params)
    if geom is None:
        return None
    swap, ls, ll, flen, step = geom
    short, long_ = (ya, xa) if swap else (xa, ya)
    stride = max(1, params.threading_stride)
    fstarts = np.arange(0, ls - flen + 1, step, dtype=np.intp)
    shifts = np.arange(0, ll - flen + 1, stride, dtype=np.intp)
    nf, ns = fstarts.shape[0], shifts.shape[0]
    span = np.arange(flen, dtype=np.intp)
    frags = short[fstarts[:, None] + span]  # (nf, flen, 3)
    segs = long_[shifts[:, None] + span]  # (ns, flen, 3)
    # combos enumerate fragment-major (fstart outer, shift inner), matching
    # the serial loop so first-strict-max tie-breaking is preserved; the
    # scoring scratch is sized once for the largest chunk
    total = nf * ns
    idx = np.arange(total, dtype=np.intp)
    step = max(1, _BATCH_ELEMS // max(1, flen * 3))
    rows = min(total, step)
    work = np.empty((rows, flen, 3))
    dist = np.empty((rows, flen))
    sbuf = np.empty((rows, flen))
    best_tm = -np.inf
    best_flat = -1
    for lo in range(0, total, step):
        hi = min(total, lo + step)
        sel = idx[lo:hi]
        fr = frags[sel // ns]
        sg = segs[sel % ns]
        g = hi - lo
        rots, tras = _kabsch_batch_core(fr, sg, counter=counter)
        tms = _moved_tm_scores_batch(
            fr, sg, rots, tras, d0, lnorm,
            work[:g], dist[:g], sbuf[:g], counter=counter,
        )
        j = int(np.argmax(tms))
        if tms[j] > best_tm:
            best_tm = float(tms[j])
            best_flat = lo + j
    if best_flat < 0:
        return None
    fstart = int(fstarts[best_flat // ns])
    shift = int(shifts[best_flat % ns])
    idx_short = np.arange(fstart, fstart + flen, dtype=np.intp)
    idx_long = np.arange(shift, shift + flen, dtype=np.intp)
    if swap:
        return Alignment.from_trusted(idx_long, idx_short, dp_score=best_tm)
    return Alignment.from_trusted(idx_short, idx_long, dp_score=best_tm)


def fragment_threading_serial(
    xa: np.ndarray,
    ya: np.ndarray,
    d0: float,
    lnorm: int,
    params: Optional[TMAlignParams] = None,
    counter=None,
) -> Optional[Alignment]:
    """Reference one-placement-at-a-time fragment threading."""
    params = params or TMAlignParams()
    la, lb = xa.shape[0], ya.shape[0]
    geom = _fragment_geometry(la, lb, params)
    if geom is None:
        return None
    swap, ls, ll, flen, step = geom
    short, long_ = (ya, xa) if swap else (xa, ya)
    best: tuple[float, int, int] | None = None
    work = np.empty((flen, 3))
    dist = np.empty(flen)
    sbuf = np.empty(flen)
    for fstart in range(0, ls - flen + 1, step):
        frag = short[fstart : fstart + flen]
        for shift in range(0, ll - flen + 1, max(1, params.threading_stride)):
            seg = long_[shift : shift + flen]
            xf = kabsch(frag, seg, counter=counter)
            tm = _moved_tm_score(
                frag, seg, xf, d0, lnorm, work, dist, sbuf, counter=counter
            )
            if best is None or tm > best[0]:
                best = (tm, fstart, shift)
    if best is None:
        return None
    _, fstart, shift = best
    idx_short = np.arange(fstart, fstart + flen, dtype=np.intp)
    idx_long = np.arange(shift, shift + flen, dtype=np.intp)
    if swap:
        return Alignment(idx_long, idx_short, dp_score=best[0])
    return Alignment(idx_short, idx_long, dp_score=best[0])
