"""Initial alignment generators (TM-align step 2).

Three kinds, as described in the paper's §II: dynamic-programming
secondary-structure alignment, gapless structure matching (threading),
and a DP over a score matrix combining the previous two.  A fragment
threading variant (half-length windows) is included as in the original's
additional inits.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.geometry.distances import cross_distances
from repro.geometry.kabsch import kabsch
from repro.tmalign.dp import nw_align
from repro.tmalign.params import TMAlignParams
from repro.tmalign.result import Alignment
from repro.tmalign.tmscore import _moved_tm_score, tm_score_from_distances

__all__ = [
    "gapless_threading",
    "ss_alignment",
    "combined_alignment",
    "fragment_threading",
]


def _ss_codes(ss: str) -> np.ndarray:
    return np.frombuffer(ss.encode("ascii"), dtype=np.uint8)


def _gapless_alignment(shift: int, la: int, lb: int) -> tuple[np.ndarray, np.ndarray]:
    """Index pairs for correspondence j = i - shift, clipped to bounds."""
    i0 = max(0, shift)
    i1 = min(la, lb + shift)
    ai = np.arange(i0, i1, dtype=np.intp)
    return ai, ai - shift


def gapless_threading(
    xa: np.ndarray,
    ya: np.ndarray,
    d0: float,
    lnorm: int,
    params: Optional[TMAlignParams] = None,
    n_best: int = 2,
    min_overlap: int = 5,
    counter=None,
) -> list[Alignment]:
    """Slide chain A against chain B without gaps; keep the best shifts.

    Each shift is scored by one Kabsch superposition of the corresponded
    residues followed by a TM-score evaluation (the "GL score" of the
    original, without its extra refinement iterations).
    """
    params = params or TMAlignParams()
    la, lb = xa.shape[0], ya.shape[0]
    min_overlap = min(min_overlap, la, lb)
    scored: list[tuple[float, int]] = []
    stride = max(1, params.threading_stride)
    # the correspondence of a shift is contiguous in both chains, so the
    # coordinate subsets are plain views (no fancy-index copies); scoring
    # scratch is shared across shifts
    nmax = min(la, lb)
    work = np.empty((nmax, 3))
    dist = np.empty(nmax)
    sbuf = np.empty(nmax)
    for shift in range(-(lb - min_overlap), la - min_overlap + 1, stride):
        i0 = max(0, shift)
        i1 = min(la, lb + shift)
        m = i1 - i0
        if m < min_overlap:
            continue
        sa = xa[i0:i1]
        sb = ya[i0 - shift : i1 - shift]
        xf = kabsch(sa, sb, counter=counter)
        tm = _moved_tm_score(
            sa, sb, xf, d0, lnorm, work[:m], dist[:m], sbuf[:m], counter=counter
        )
        scored.append((tm, shift))
    scored.sort(key=lambda t: (-t[0], t[1]))
    out = []
    for tm, shift in scored[:n_best]:
        ai, aj = _gapless_alignment(shift, la, lb)
        out.append(Alignment(ai, aj, dp_score=tm))
    return out


def ss_alignment(
    ss_a: str,
    ss_b: str,
    params: Optional[TMAlignParams] = None,
    counter=None,
) -> Alignment:
    """DP alignment of secondary-structure strings (match=1, mismatch=0)."""
    params = params or TMAlignParams()
    ca = _ss_codes(ss_a)
    cb = _ss_codes(ss_b)
    score = (ca[:, None] == cb[None, :]).astype(np.float64)
    return nw_align(score, params.ss_gap_open, counter=counter)


def combined_alignment(
    xa: np.ndarray,
    ya: np.ndarray,
    transform,
    ss_a: str,
    ss_b: str,
    d0: float,
    params: Optional[TMAlignParams] = None,
    counter=None,
) -> Alignment:
    """DP over ``ss_mix * SS-match + (1-ss_mix) * TM distance score``.

    The distance term uses the best superposition found so far
    (``transform`` maps chain A onto chain B).
    """
    params = params or TMAlignParams()
    d = cross_distances(transform.apply(xa), ya)
    if counter is not None:
        counter.add("score_pair", d.size)
    dist_score = 1.0 / (1.0 + (d / d0) ** 2)
    ca = _ss_codes(ss_a)
    cb = _ss_codes(ss_b)
    ss_score = (ca[:, None] == cb[None, :]).astype(np.float64)
    score = params.ss_mix * ss_score + (1.0 - params.ss_mix) * dist_score
    return nw_align(score, params.gap_open, counter=counter)


def fragment_threading(
    xa: np.ndarray,
    ya: np.ndarray,
    d0: float,
    lnorm: int,
    params: Optional[TMAlignParams] = None,
    counter=None,
) -> Optional[Alignment]:
    """Gapless threading of an L/k window of the shorter chain.

    Catches alignments where only a sub-domain matches; returns None when
    the chains are too short to cut a meaningful fragment.
    """
    params = params or TMAlignParams()
    la, lb = xa.shape[0], ya.shape[0]
    swap = la > lb
    short, long_ = (ya, xa) if swap else (xa, ya)
    ls = short.shape[0]
    flen = max(ls // params.fragment_fraction, params.min_seed_len)
    if flen < params.min_seed_len or flen >= ls:
        return None
    best: tuple[float, int, int] | None = None
    step = max(1, flen // 2)
    work = np.empty((flen, 3))
    dist = np.empty(flen)
    sbuf = np.empty(flen)
    for fstart in range(0, ls - flen + 1, step):
        frag = short[fstart : fstart + flen]
        for shift in range(0, long_.shape[0] - flen + 1, max(1, params.threading_stride)):
            seg = long_[shift : shift + flen]
            xf = kabsch(frag, seg, counter=counter)
            tm = _moved_tm_score(
                frag, seg, xf, d0, lnorm, work, dist, sbuf, counter=counter
            )
            if best is None or tm > best[0]:
                best = (tm, fstart, shift)
    if best is None:
        return None
    _, fstart, shift = best
    idx_short = np.arange(fstart, fstart + flen, dtype=np.intp)
    idx_long = np.arange(shift, shift + flen, dtype=np.intp)
    if swap:
        return Alignment(idx_long, idx_short, dp_score=best[0])
    return Alignment(idx_short, idx_long, dp_score=best[0])
