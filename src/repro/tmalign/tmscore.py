"""TM-score machinery: scoring and the iterative superposition search.

The superposition search is TM-align's core optimisation: given a set of
matched residue pairs, find the rigid transform maximising the TM-score.
Following the original, the search seeds Kabsch superpositions from
contiguous fragments of the correspondence (full length, L/2, L/4, ...),
then iteratively re-superposes on the subset of pairs closer than a
distance cutoff until the subset is stable, keeping the best-scoring
transform seen anywhere.

``superposition_search`` runs the search *in lockstep across seeds*: all
fragment seeds of a given length are superposed with one
:func:`~repro.geometry.kabsch.kabsch_batch` call over strided windows,
every candidate transform is scored with one ``(k, n, 3)`` batched
matmul per iteration, and the pair-reselection proceeds for all
still-active seeds at once, retiring each seed when its selection
stabilises.  Per-seed selection sequences, op counts, and the best-score
update order are exactly those of the reference serial loop
(:func:`superposition_search_serial`), so both paths return repr-exact
identical scores.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.geometry.kabsch import _kabsch_batch_core, _kabsch_ragged_core, kabsch
from repro.geometry.transforms import RigidTransform
from repro.tmalign.params import TMAlignParams

__all__ = [
    "tm_score_from_distances",
    "superposition_search",
    "superposition_search_serial",
]


def tm_score_from_distances(
    d: np.ndarray, d0: float, lnorm: int, counter=None
) -> float:
    """TM-score of matched pairs at distances ``d``: Σ 1/(1+(d/d0)²) / Lnorm."""
    d = np.asarray(d, dtype=np.float64)
    if lnorm < 1:
        raise ValueError("lnorm must be >= 1")
    if d0 <= 0:
        raise ValueError("d0 must be positive")
    if counter is not None:
        counter.add("score_pair", d.size)
    return float((1.0 / (1.0 + (d / d0) ** 2)).sum() / lnorm)


def _pair_distances(moved: np.ndarray, target: np.ndarray) -> np.ndarray:
    diff = moved - target
    return np.sqrt((diff * diff).sum(axis=1))


def _moved_tm_score(
    pa: np.ndarray,
    pb: np.ndarray,
    xf: RigidTransform,
    d0: float,
    lnorm: int,
    work: np.ndarray,
    dist: np.ndarray,
    sbuf: np.ndarray,
    counter=None,
) -> float:
    """TM-score of ``xf.apply(pa)`` against ``pb`` using caller buffers.

    Computes exactly ``tm_score_from_distances(_pair_distances(
    xf.apply(pa), pb), d0, lnorm)`` — same operations in the same order —
    but every intermediate lands in ``work``/``dist``/``sbuf`` instead of
    a fresh allocation.  ``dist`` is left holding the pair distances for
    callers that reselect pairs on them.
    """
    np.matmul(pa, xf.rotation.T, out=work)
    work += xf.translation
    np.subtract(work, pb, out=work)
    np.multiply(work, work, out=work)
    np.add.reduce(work, axis=1, out=dist)
    np.sqrt(dist, out=dist)
    if counter is not None:
        counter.add("score_pair", dist.size)
    np.divide(dist, d0, out=sbuf)
    np.multiply(sbuf, sbuf, out=sbuf)
    np.add(sbuf, 1.0, out=sbuf)
    np.divide(1.0, sbuf, out=sbuf)
    return float(sbuf.sum() / lnorm)


def _moved_tm_scores_batch(
    pa_stack: np.ndarray,
    pb_stack: np.ndarray,
    rots: np.ndarray,
    tras: np.ndarray,
    d0: float,
    lnorm: int,
    work: np.ndarray,
    dist: np.ndarray,
    sbuf: np.ndarray,
    counter=None,
) -> np.ndarray:
    """Lockstep ``_moved_tm_score`` for ``k`` transforms at once.

    ``pa_stack``/``pb_stack`` broadcast against the ``(k, 3, 3)``
    rotation stack (pass ``pa[None]`` to score one coordinate set under
    every transform).  Each slice of the result is bit-identical to the
    serial call: the stacked matmul runs the same per-slice BLAS kernel,
    and all remaining stages are elementwise or reduce over the same
    axes.  ``dist`` is left holding the per-slice pair distances.
    """
    np.matmul(pa_stack, rots.transpose(0, 2, 1), out=work)
    work += tras[:, None, :]
    np.subtract(work, pb_stack, out=work)
    np.multiply(work, work, out=work)
    np.add.reduce(work, axis=2, out=dist)
    np.sqrt(dist, out=dist)
    if counter is not None:
        counter.add("score_pair", dist.size)
    np.divide(dist, d0, out=sbuf)
    np.multiply(sbuf, sbuf, out=sbuf)
    np.add(sbuf, 1.0, out=sbuf)
    np.divide(1.0, sbuf, out=sbuf)
    # same reduction ndarray.sum(axis=1) dispatches to, sans the dispatch
    return np.add.reduce(sbuf, axis=1) / lnorm


def _seed_schedule(
    n: int, fractions: Sequence[int], params: TMAlignParams
) -> list[tuple[int, int]]:
    """Ordered, deduplicated ``(start, flen)`` fragment seeds.

    Enumeration order matches the serial loop (fractions outer, window
    starts inner, first occurrence wins), which fixes the best-score
    update order of the search.
    """
    seeds: list[tuple[int, int]] = []
    seen: set[tuple[int, int]] = set()
    for frac in fractions:
        flen = max(n // frac, params.min_seed_len)
        flen = min(flen, n)
        step = max(flen // 2, 1)
        for start in range(0, n - flen + 1, step):
            if (start, flen) in seen:
                continue
            seen.add((start, flen))
            seeds.append((start, flen))
    return seeds


def _check_search_args(
    pa: np.ndarray, pb: np.ndarray, d0: float, d0_search: Optional[float]
) -> tuple[np.ndarray, np.ndarray, int, float]:
    pa = np.asarray(pa, dtype=np.float64)
    pb = np.asarray(pb, dtype=np.float64)
    if pa.shape != pb.shape or pa.ndim != 2 or pa.shape[1] != 3:
        raise ValueError(f"matched coordinate sets required, got {pa.shape}/{pb.shape}")
    n = pa.shape[0]
    if n < 3:
        raise ValueError("need at least 3 matched pairs")
    if d0_search is None:
        d0_search = min(8.0, max(4.5, d0))
    return pa, pb, n, d0_search


def superposition_search(
    pa: np.ndarray,
    pb: np.ndarray,
    d0: float,
    lnorm: int,
    params: Optional[TMAlignParams] = None,
    d0_search: Optional[float] = None,
    seed_fractions: Optional[Sequence[int]] = None,
    counter=None,
) -> tuple[float, RigidTransform]:
    """Maximise the TM-score over rigid motions of ``pa`` onto ``pb``.

    ``pa``/``pb`` are the coordinates of *matched* residue pairs (same
    length N ≥ 3).  Returns ``(best_tm, best_transform)`` with the score
    normalised by ``lnorm`` using scale ``d0``.

    ``d0_search`` is the initial pair-selection cutoff (defaults to the
    clipped d0 per TM-align); ``seed_fractions`` overrides the fragment
    seeding schedule (the refinement loop uses a cheaper schedule than
    the final scoring pass).

    All seeds run their iterative pair reselection in lockstep; the
    result (score, transform, charged op counts) is identical to
    :func:`superposition_search_serial`.
    """
    params = params or TMAlignParams()
    pa, pb, n, d0_search = _check_search_args(pa, pb, d0, d0_search)
    fractions = tuple(seed_fractions or params.n_seed_fractions)
    seeds = _seed_schedule(n, fractions, params)
    if len(seeds) == 1:
        # single-seed searches (the quick candidate evaluation) gain
        # nothing from the batch plumbing
        return superposition_search_serial(
            pa, pb, d0, lnorm, params=params, d0_search=d0_search,
            seed_fractions=fractions, counter=counter,
        )
    k = len(seeds)

    # --- phase 1: one batched Kabsch per fragment length -------------------
    # Windows of equal length stack into a contiguous (g, flen, 3) gather;
    # each slice has the same memory layout as the serial window view, so
    # kabsch_batch reproduces the serial seeds bit-for-bit.
    rots = np.empty((k, 3, 3))
    tras = np.empty((k, 3))
    by_flen: dict[int, list[int]] = {}
    for i, (_, flen) in enumerate(seeds):
        by_flen.setdefault(flen, []).append(i)
    for flen, idxs in by_flen.items():
        starts = np.asarray([seeds[i][0] for i in idxs], dtype=np.intp)
        rows = starts[:, None] + np.arange(flen, dtype=np.intp)
        rots[idxs], tras[idxs] = _kabsch_batch_core(
            pa[rows], pb[rows], counter=counter
        )

    # --- phase 2: lockstep score / reselect iterations ----------------------
    # Per-iteration records keep every (tm, transform) candidate so phase 3
    # can replay the serial best-update order; arrays are fresh per
    # iteration, so rows are stored as views, never copied.
    work = np.empty((k, n, 3))
    dist = np.empty((k, n))
    sbuf = np.empty((k, n))
    ids = list(range(k))
    pa_b = pa[None]
    prev_sel = np.empty((0, n), dtype=bool)
    has_prev = False
    records: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    seed_rows: list[list[tuple[int, int]]] = [[] for _ in range(k)]
    for _ in range(params.max_score_iters):
        ka = len(ids)
        tms = _moved_tm_scores_batch(
            pa_b, pb, rots, tras, d0, lnorm,
            work[:ka], dist[:ka], sbuf[:ka], counter=counter,
        )
        rec = len(records)
        records.append((tms, rots, tras))
        for row, oid in enumerate(ids):
            seed_rows[oid].append((rec, row))
        # pair selection with the serial cutoff escalation: every seed
        # restarts from d0_search and widens by 0.5 until >= 3 pairs or 8 Å
        sel = dist[:ka] < d0_search
        counts = np.add.reduce(sel, axis=1)
        if (counts < 3).any():
            cut = np.full(ka, d0_search)
            while True:
                lag = (counts < 3) & (cut < 8.0)
                if not lag.any():
                    break
                cut[lag] += 0.5
                sel[lag] = dist[:ka][lag] < cut[lag, None]
                counts[lag] = sel[lag].sum(axis=1)
        hopeless = counts < 3  # nothing close even at 8 Å
        if has_prev:
            converged = (sel == prev_sel).all(axis=1)
            drop = hopeless | converged
        else:
            drop = hopeless
        if drop.any():
            keep = ~drop
            if not keep.any():
                break
            ids = [oid for oid, k_ in zip(ids, keep.tolist()) if k_]
            sel = sel[keep]
            counts = counts[keep]
        # reselection Kabsch, batched across all still-active seeds: equal
        # selection sizes stack directly, mixed sizes go through one padded
        # ragged batch (bit-identical per slice either way)
        kn = len(ids)
        if kn == 1:
            rots, tras = _kabsch_batch_core(
                pa[sel[0]][None], pb[sel[0]][None], counter=counter
            )
        else:
            counts_l = counts.tolist()
            groups: dict[int, list[int]] = {}
            for row, m in enumerate(counts_l):
                groups.setdefault(m, []).append(row)
            if len(groups) == 1:
                m = counts_l[0]
                cols = np.nonzero(sel)[1].reshape(kn, m)
                rots, tras = _kabsch_batch_core(pa[cols], pb[cols], counter=counter)
            else:
                if counter is not None:
                    counter.add("kabsch", kn)
                    counter.add("kabsch_point", sum(counts_l))
                # pack rows grouped by selection size; remember the original
                # row of each packed slot to scatter the transforms back
                order: list[int] = []
                bounds: list[tuple[int, int, int]] = []
                lens: list[float] = []
                lo = 0
                for m, rows in groups.items():
                    hi = lo + len(rows)
                    order.extend(rows)
                    bounds.append((lo, hi, m))
                    lens.extend([float(m)] * len(rows))
                    lo = hi
                mmax = max(groups)
                # selected column indices, row-major over the packed order;
                # each packed group reshapes to (rows, m) because its rows
                # all select exactly m pairs
                cols_flat = np.nonzero(sel[order])[1]
                colbuf = np.zeros((kn, mmax), dtype=np.intp)
                cpos = 0
                for lo, hi, m in bounds:
                    cnt = (hi - lo) * m
                    colbuf[lo:hi, :m] = cols_flat[cpos : cpos + cnt].reshape(
                        hi - lo, m
                    )
                    cpos += cnt
                r_pack, t_pack = _kabsch_ragged_core(
                    pa[colbuf],
                    pb[colbuf],
                    bounds,
                    np.asarray(lens)[:, None],
                    np.arange(mmax, dtype=np.intp),
                )
                rots = np.empty((kn, 3, 3))
                tras = np.empty((kn, 3))
                rots[order] = r_pack
                tras[order] = t_pack
        prev_sel = sel
        has_prev = True

    # --- phase 3: replay the serial best-update order -----------------------
    best_tm = -1.0
    best_pos: Optional[tuple[int, int]] = None
    for oid in range(k):
        for rec, row in seed_rows[oid]:
            tm = float(records[rec][0][row])
            if tm > best_tm:
                best_tm = tm
                best_pos = (rec, row)
    if best_pos is None:
        return -1.0, RigidTransform.identity()
    rec, row = best_pos
    return best_tm, RigidTransform.from_trusted(
        records[rec][1][row], records[rec][2][row]
    )


def superposition_search_serial(
    pa: np.ndarray,
    pb: np.ndarray,
    d0: float,
    lnorm: int,
    params: Optional[TMAlignParams] = None,
    d0_search: Optional[float] = None,
    seed_fractions: Optional[Sequence[int]] = None,
    counter=None,
) -> tuple[float, RigidTransform]:
    """Reference one-seed-at-a-time search (the pre-batch implementation).

    Kept as the ground truth the lockstep path is property-tested
    against; also the fast path for single-seed schedules.
    """
    params = params or TMAlignParams()
    pa, pb, n, d0_search = _check_search_args(pa, pb, d0, d0_search)
    fractions = tuple(seed_fractions or params.n_seed_fractions)

    best_tm = -1.0
    best_xf = RigidTransform.identity()
    # scratch reused across every seed/iteration of this search
    work = np.empty((n, 3))
    dist = np.empty(n)
    sbuf = np.empty(n)
    for start, flen in _seed_schedule(n, fractions, params):
        xf = kabsch(pa[start : start + flen], pb[start : start + flen], counter=counter)
        prev_sel: Optional[np.ndarray] = None
        for _ in range(params.max_score_iters):
            tm = _moved_tm_score(
                pa, pb, xf, d0, lnorm, work, dist, sbuf, counter=counter
            )
            if tm > best_tm:
                best_tm = tm
                best_xf = xf
            d_cut = d0_search
            sel = dist < d_cut
            n_sel = int(sel.sum())
            while n_sel < 3 and d_cut < 8.0:
                d_cut += 0.5
                sel = dist < d_cut
                n_sel = int(sel.sum())
            if n_sel < 3:
                break  # hopeless seed: nothing is close
            if prev_sel is not None and np.array_equal(sel, prev_sel):
                break  # selection stable -> converged
            prev_sel = sel
            xf = kabsch(pa[sel], pb[sel], counter=counter)
    return best_tm, best_xf
