"""TM-score machinery: scoring and the iterative superposition search.

The superposition search is TM-align's core optimisation: given a set of
matched residue pairs, find the rigid transform maximising the TM-score.
Following the original, the search seeds Kabsch superpositions from
contiguous fragments of the correspondence (full length, L/2, L/4, ...),
then iteratively re-superposes on the subset of pairs closer than a
distance cutoff until the subset is stable, keeping the best-scoring
transform seen anywhere.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.geometry.kabsch import kabsch
from repro.geometry.transforms import RigidTransform
from repro.tmalign.params import TMAlignParams

__all__ = ["tm_score_from_distances", "superposition_search"]


def tm_score_from_distances(
    d: np.ndarray, d0: float, lnorm: int, counter=None
) -> float:
    """TM-score of matched pairs at distances ``d``: Σ 1/(1+(d/d0)²) / Lnorm."""
    d = np.asarray(d, dtype=np.float64)
    if lnorm < 1:
        raise ValueError("lnorm must be >= 1")
    if d0 <= 0:
        raise ValueError("d0 must be positive")
    if counter is not None:
        counter.add("score_pair", d.size)
    return float((1.0 / (1.0 + (d / d0) ** 2)).sum() / lnorm)


def _pair_distances(moved: np.ndarray, target: np.ndarray) -> np.ndarray:
    diff = moved - target
    return np.sqrt((diff * diff).sum(axis=1))


def _moved_tm_score(
    pa: np.ndarray,
    pb: np.ndarray,
    xf: RigidTransform,
    d0: float,
    lnorm: int,
    work: np.ndarray,
    dist: np.ndarray,
    sbuf: np.ndarray,
    counter=None,
) -> float:
    """TM-score of ``xf.apply(pa)`` against ``pb`` using caller buffers.

    Computes exactly ``tm_score_from_distances(_pair_distances(
    xf.apply(pa), pb), d0, lnorm)`` — same operations in the same order —
    but every intermediate lands in ``work``/``dist``/``sbuf`` instead of
    a fresh allocation.  ``dist`` is left holding the pair distances for
    callers that reselect pairs on them.
    """
    np.matmul(pa, xf.rotation.T, out=work)
    work += xf.translation
    np.subtract(work, pb, out=work)
    np.multiply(work, work, out=work)
    np.add.reduce(work, axis=1, out=dist)
    np.sqrt(dist, out=dist)
    if counter is not None:
        counter.add("score_pair", dist.size)
    np.divide(dist, d0, out=sbuf)
    np.multiply(sbuf, sbuf, out=sbuf)
    np.add(sbuf, 1.0, out=sbuf)
    np.divide(1.0, sbuf, out=sbuf)
    return float(sbuf.sum() / lnorm)


def superposition_search(
    pa: np.ndarray,
    pb: np.ndarray,
    d0: float,
    lnorm: int,
    params: Optional[TMAlignParams] = None,
    d0_search: Optional[float] = None,
    seed_fractions: Optional[Sequence[int]] = None,
    counter=None,
) -> tuple[float, RigidTransform]:
    """Maximise the TM-score over rigid motions of ``pa`` onto ``pb``.

    ``pa``/``pb`` are the coordinates of *matched* residue pairs (same
    length N ≥ 3).  Returns ``(best_tm, best_transform)`` with the score
    normalised by ``lnorm`` using scale ``d0``.

    ``d0_search`` is the initial pair-selection cutoff (defaults to the
    clipped d0 per TM-align); ``seed_fractions`` overrides the fragment
    seeding schedule (the refinement loop uses a cheaper schedule than
    the final scoring pass).
    """
    params = params or TMAlignParams()
    pa = np.asarray(pa, dtype=np.float64)
    pb = np.asarray(pb, dtype=np.float64)
    if pa.shape != pb.shape or pa.ndim != 2 or pa.shape[1] != 3:
        raise ValueError(f"matched coordinate sets required, got {pa.shape}/{pb.shape}")
    n = pa.shape[0]
    if n < 3:
        raise ValueError("need at least 3 matched pairs")
    if d0_search is None:
        d0_search = min(8.0, max(4.5, d0))
    fractions = tuple(seed_fractions or params.n_seed_fractions)

    best_tm = -1.0
    best_xf = RigidTransform.identity()
    seen_seeds: set[tuple[int, int]] = set()
    # scratch reused across every seed/iteration of this search
    work = np.empty((n, 3))
    dist = np.empty(n)
    sbuf = np.empty(n)
    for frac in fractions:
        flen = max(n // frac, params.min_seed_len)
        flen = min(flen, n)
        step = max(flen // 2, 1)
        for start in range(0, n - flen + 1, step):
            if (start, flen) in seen_seeds:
                continue
            seen_seeds.add((start, flen))
            xf = kabsch(pa[start : start + flen], pb[start : start + flen], counter=counter)
            prev_sel: Optional[np.ndarray] = None
            for _ in range(params.max_score_iters):
                tm = _moved_tm_score(
                    pa, pb, xf, d0, lnorm, work, dist, sbuf, counter=counter
                )
                if tm > best_tm:
                    best_tm = tm
                    best_xf = xf
                d_cut = d0_search
                sel = dist < d_cut
                while sel.sum() < 3 and d_cut < 8.0:
                    d_cut += 0.5
                    sel = dist < d_cut
                if sel.sum() < 3:
                    break  # hopeless seed: nothing is close
                if prev_sel is not None and (sel == prev_sel).all():
                    break  # selection stable -> converged
                prev_sel = sel
                xf = kabsch(pa[sel], pb[sel], counter=counter)
    return best_tm, best_xf
