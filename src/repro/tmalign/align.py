"""The TM-align orchestrator: initial alignments + iterative refinement."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cost.counters import CostCounter
from repro.geometry.distances import cross_distances
from repro.geometry.transforms import RigidTransform
from repro.structure.model import Chain
from repro.structure.secstruct import assign_secondary
from repro.tmalign.dp import nw_align
from repro.tmalign.initial import (
    combined_alignment,
    fragment_threading,
    gapless_threading,
    ss_alignment,
)
from repro.tmalign.params import TMAlignParams, d0_from_length
from repro.tmalign.result import Alignment, TMAlignResult
from repro.tmalign.tmscore import superposition_search

__all__ = ["tm_align"]

# Cheaper seeding schedule used inside the refinement loop; the full
# schedule from params is reserved for candidate evaluation and final
# scoring (mirrors TM-align's cheap in-loop TM-score search).
_REFINE_SEEDS = (1, 2)


def _refine(
    xa: np.ndarray,
    ya: np.ndarray,
    ali: Alignment,
    d0: float,
    lnorm: int,
    params: TMAlignParams,
    counter: CostCounter,
) -> tuple[float, Alignment, RigidTransform]:
    """Alternate superposition search and DP until the alignment repeats."""
    best_tm = -1.0
    best_ali = ali
    best_xf = RigidTransform.identity()
    seen = {ali.key()}
    cur = ali
    stale = 0
    for _ in range(params.max_refine_iters):
        if len(cur) < 3:
            break
        tm, xf = superposition_search(
            xa[cur.ai],
            ya[cur.aj],
            d0,
            lnorm,
            params=params,
            seed_fractions=_REFINE_SEEDS,
            counter=counter,
        )
        if tm > best_tm:
            best_tm, best_ali, best_xf = tm, cur, xf
            stale = 0
        else:
            stale += 1
            if stale >= params.refine_patience:
                break
        d = cross_distances(xf.apply(xa), ya)
        counter.add("score_pair", d.size)
        # score = 1 / (1 + (d/d0)^2), computed in place over d
        np.divide(d, d0, out=d)
        np.multiply(d, d, out=d)
        np.add(d, 1.0, out=d)
        np.divide(1.0, d, out=d)
        nxt = nw_align(d, params.gap_open, counter=counter)
        if nxt.key() in seen:
            break
        seen.add(nxt.key())
        cur = nxt
    return best_tm, best_ali, best_xf


def tm_align(
    chain_a: Chain,
    chain_b: Chain,
    params: Optional[TMAlignParams] = None,
    counter: Optional[CostCounter] = None,
) -> TMAlignResult:
    """Align ``chain_a`` onto ``chain_b`` and score with the TM-score.

    Returns a :class:`TMAlignResult` carrying TM-scores normalised by
    both chain lengths, the aligned-region RMSD, sequence identity, the
    residue correspondence, the rigid transform (A onto B), and the
    operation counts the cost model prices.

    ``counter``, when given, is additionally charged with the same op
    counts (useful when accumulating over a whole task).
    """
    params = params or TMAlignParams()
    local = CostCounter()
    local.add("align_fixed", 1)

    xa, ya = chain_a.coords, chain_b.coords
    la, lb = len(chain_a), len(chain_b)
    lmin = min(la, lb)
    d0_min = d0_from_length(lmin)

    # secondary structure (chains cache the string; cost charged always,
    # as the real program recomputes it per comparison)
    ss_a = chain_a.secondary
    ss_b = chain_b.secondary
    local.add("sec_res", la + lb)

    # --- initial alignments ------------------------------------------------
    candidates: list[Alignment] = []
    if params.use_threading_init:
        candidates.extend(
            gapless_threading(xa, ya, d0_min, lmin, params=params, counter=local)
        )
    if params.use_ss_init:
        candidates.append(
            ss_alignment(
                ss_a,
                ss_b,
                params=params,
                counter=local,
                codes_a=chain_a.ss_codes,
                codes_b=chain_b.ss_codes,
            )
        )
    if params.use_fragment_init:
        frag = fragment_threading(xa, ya, d0_min, lmin, params=params, counter=local)
        if frag is not None:
            candidates.append(frag)
    if not candidates and not params.use_combined_init:
        raise ValueError("all initial alignments disabled")

    # quick evaluation to give the combined init a starting superposition
    best_quick = (-1.0, RigidTransform.identity())
    for cand in candidates:
        if len(cand) < 3:
            continue
        tm, xf = superposition_search(
            xa[cand.ai],
            ya[cand.aj],
            d0_min,
            lmin,
            params=params,
            seed_fractions=(1,),
            counter=local,
        )
        if tm > best_quick[0]:
            best_quick = (tm, xf)
    if params.use_combined_init:
        candidates.append(
            combined_alignment(
                xa,
                ya,
                best_quick[1],
                ss_a,
                ss_b,
                d0_min,
                params=params,
                counter=local,
                codes_a=chain_a.ss_codes,
                codes_b=chain_b.ss_codes,
            )
        )

    # --- refinement ---------------------------------------------------------
    best_tm = -1.0
    best_ali: Optional[Alignment] = None
    best_xf = RigidTransform.identity()
    seen_keys: set[tuple] = set()
    for cand in candidates:
        if len(cand) < 3 or cand.key() in seen_keys:
            continue
        seen_keys.add(cand.key())
        tm, ali, xf = _refine(xa, ya, cand, d0_min, lmin, params, local)
        if tm > best_tm:
            best_tm, best_ali, best_xf = tm, ali, xf

    if best_ali is None or len(best_ali) < 3:  # degenerate tiny chains
        best_ali = candidates[0]
        best_tm = 0.0

    # --- final scoring -------------------------------------------------------
    pa = xa[best_ali.ai]
    pb = ya[best_ali.aj]
    tm_a, _ = superposition_search(
        pa, pb, d0_from_length(la), la, params=params, counter=local
    )
    tm_b, xf_b = superposition_search(
        pa, pb, d0_from_length(lb), lb, params=params, counter=local
    )
    diff = best_xf.apply(pa) - pb
    rmsd = float(np.sqrt((diff * diff).sum() / max(1, pa.shape[0])))

    ident = sum(
        1
        for i, j in zip(best_ali.ai.tolist(), best_ali.aj.tolist())
        if chain_a.sequence[i] == chain_b.sequence[j]
    )
    seq_id = ident / max(1, len(best_ali))

    if counter is not None:
        counter.merge(local)
    return TMAlignResult(
        name_a=chain_a.name,
        name_b=chain_b.name,
        len_a=la,
        len_b=lb,
        tm_norm_a=tm_a,
        tm_norm_b=tm_b,
        rmsd=rmsd,
        n_aligned=len(best_ali),
        seq_identity=seq_id,
        alignment=best_ali,
        transform=best_xf,
        op_counts=local.as_dict(),
    )
