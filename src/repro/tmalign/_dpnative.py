"""Optional compiled row sweep for the Needleman–Wunsch forward fill.

The NumPy forward pass in :mod:`repro.tmalign.dp` is dispatch-bound: it
issues ~8 whole-row ufunc calls per DP row, and a pairwise comparison
runs ~10^5 rows.  The recurrence itself is pure additions and binary max
selections over IEEE doubles, so the same dataflow compiled as one C
loop produces bit-identical matrices (there are no multiplications, so
no FMA contraction can change any value, and ``a >= b ? a : b``
reproduces ``np.maximum`` exactly for the non-NaN inputs the DP feeds
it).

The kernel is built on first use with the system C compiler and cached
as a shared object in the user's temp directory; anything going wrong —
no compiler, sandboxed filesystem, missing ctypes — degrades silently to
the NumPy sweep.  Set ``REPRO_NO_NATIVE_DP=1`` to force the fallback
(the equivalence tests exercise both paths).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
from typing import Optional

__all__ = ["load_forward_kernel", "NATIVE_DP_ENV"]

NATIVE_DP_ENV = "REPRO_NO_NATIVE_DP"

_SOURCE = r"""
#include <stddef.h>

/* Row sweep of the three-state Gotoh fill with free gap extension.
 *
 * Matrices are (la+1, lb+1) row-major views with a leading stride of
 * `stride` doubles (they live inside a larger reusable workspace); the
 * score matrix is (la, lb) with leading stride `sstride`.  Boundary row
 * 0 and column 0 are initialised by the caller.
 *
 * Per cell, identical dataflow to the NumPy whole-row sweep:
 *   M[i,j]  = score[i-1,j-1] + max(max(M[i-1,j-1], Iy[i-1,j-1]), Ix[i-1,j-1])
 *   Ix[i,j] = max(max(M[i-1,j], Iy[i-1,j]) + gap, Ix[i-1,j])
 *   Iy[i,j] = running max over j' <= j-1 of (max(M[i,j'], Ix[i,j']) + gap)
 */
static double mx(double a, double b) { return a >= b ? a : b; }

void nw_forward(double *M, double *Ix, double *Iy, const double *score,
                ptrdiff_t la, ptrdiff_t lb, ptrdiff_t stride,
                ptrdiff_t sstride, double gap)
{
    ptrdiff_t i, j;
    for (i = 1; i <= la; ++i) {
        const double *m_prev = M + (i - 1) * stride;
        const double *ix_prev = Ix + (i - 1) * stride;
        const double *iy_prev = Iy + (i - 1) * stride;
        double *m_cur = M + i * stride;
        double *ix_cur = Ix + i * stride;
        double *iy_cur = Iy + i * stride;
        const double *sc = score + (i - 1) * sstride;
        double run = 0.0; /* overwritten at j == 1 */
        for (j = 1; j <= lb; ++j) {
            double mi_diag = mx(m_prev[j - 1], iy_prev[j - 1]);
            double mi_up = mx(m_prev[j], iy_prev[j]);
            double opener = mx(m_cur[j - 1], ix_cur[j - 1]) + gap;
            m_cur[j] = sc[j - 1] + mx(mi_diag, ix_prev[j - 1]);
            ix_cur[j] = mx(mi_up + gap, ix_prev[j]);
            run = (j == 1) ? opener : mx(run, opener);
            iy_cur[j] = run;
        }
    }
}
"""

_CC_ARGS = ["-O2", "-fPIC", "-shared", "-ffp-contract=off"]


def _build_library() -> str:
    """Compile the kernel into a cached shared object; returns its path."""
    digest = hashlib.sha256(
        (_SOURCE + " ".join(_CC_ARGS)).encode()
    ).hexdigest()[:16]
    cache = os.path.join(
        tempfile.gettempdir(), f"repro-native-{os.getuid()}"
    )
    lib_path = os.path.join(cache, f"nw_{digest}.so")
    if os.path.exists(lib_path):
        return lib_path
    os.makedirs(cache, exist_ok=True)
    cc = os.environ.get("CC", "cc")
    with tempfile.TemporaryDirectory(dir=cache) as tmp:
        src = os.path.join(tmp, "nw.c")
        out = os.path.join(tmp, "nw.so")
        with open(src, "w") as fh:
            fh.write(_SOURCE)
        subprocess.run(
            [cc, *_CC_ARGS, "-o", out, src],
            check=True,
            capture_output=True,
            timeout=120,
        )
        # atomic publish so concurrent farm workers race benignly
        os.replace(out, lib_path)
    return lib_path


def load_forward_kernel() -> Optional[ctypes._CFuncPtr]:
    """ctypes handle to ``nw_forward``, or None when unavailable."""
    if os.environ.get(NATIVE_DP_ENV):
        return None
    try:
        lib = ctypes.CDLL(_build_library())
        fn = lib.nw_forward
        fn.restype = None
        fn.argtypes = [
            ctypes.c_void_p,  # M
            ctypes.c_void_p,  # Ix
            ctypes.c_void_p,  # Iy
            ctypes.c_void_p,  # score
            ctypes.c_ssize_t,  # la
            ctypes.c_ssize_t,  # lb
            ctypes.c_ssize_t,  # stride (doubles)
            ctypes.c_ssize_t,  # sstride (doubles)
            ctypes.c_double,  # gap
        ]
        return fn
    except Exception:
        return None
