"""Needleman–Wunsch dynamic programming with TM-align's gap model.

TM-align charges a gap-*open* penalty only (gap extension is free).  We
implement that as a three-state Gotoh DP with ``extend = 0``:

* ``M``  — residue i aligned to residue j;
* ``Ix`` — vertical gap run (chain A residues skipped);
* ``Iy`` — horizontal gap run (chain B residues skipped).

Leading gap runs are free (zero boundary conditions, as in TM-align);
trailing runs cost one open per direction like interior ones, because
the traceback starts at the corner — again matching the original.

Vectorization (per the HPC guides: no per-cell Python loops): with free
extension the in-row recurrence ``Iy[i,j] = max(open(j-1), Iy[i,j-1])``
is a running maximum, so each row is computed with a handful of
whole-row NumPy ops — ``M`` and ``Ix`` from the previous row, ``Iy`` via
``np.maximum.accumulate``.  The traceback recovers predecessor states by
exact float equality (all values are propagated, never recomputed), so no
pointer matrices are stored.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.tmalign._dpnative import load_forward_kernel
from repro.tmalign.result import Alignment

__all__ = ["nw_align", "nw_score_only"]

NEG = -1e18  # effectively -inf, but arithmetic-safe

# Compiled row sweep (bit-identical to the NumPy sweep below); None when
# no C compiler is available or REPRO_NO_NATIVE_DP is set.
_NATIVE_FORWARD = load_forward_kernel()

# Reusable DP workspace.  The three state matrices (plus two scratch rows)
# are grown to the largest (la+1, lb+1) seen by this process and sliced per
# call, so the refinement loop stops paying one large allocation triple per
# nw_align invocation.  The buffers are only valid until the next _forward
# call, which is fine: nw_align/nw_score_only never nest.
_WS_BUFS: list = [np.empty((0, 0))] * 3 + [np.empty(0)] * 3


def _workspace(la: int, lb: int):
    ra, rb = la + 1, lb + 1
    ca, cb = _WS_BUFS[0].shape
    if ra > ca or rb > cb:
        ca, cb = max(ra, ca), max(rb, cb)
        _WS_BUFS[0] = np.empty((ca, cb))
        _WS_BUFS[1] = np.empty((ca, cb))
        _WS_BUFS[2] = np.empty((ca, cb))
        _WS_BUFS[3] = np.empty(cb)
        _WS_BUFS[4] = np.empty(cb)
        _WS_BUFS[5] = np.empty(cb)
    return (
        _WS_BUFS[0][:ra, :rb],
        _WS_BUFS[1][:ra, :rb],
        _WS_BUFS[2][:ra, :rb],
        _WS_BUFS[3][: rb - 1],
        _WS_BUFS[4][: rb - 1],
        _WS_BUFS[5][:rb],
    )


def _forward(
    score: np.ndarray, gap_open: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Fill the three DP matrices; returns (M, Ix, Iy) of shape (la+1, lb+1).

    The returned matrices are views into a shared workspace; they are
    consumed (traceback / corner read) before the next call.  Only the
    boundary cells need initialisation — every interior cell is written
    by the row sweep below.
    """
    la, lb = score.shape
    M, Ix, Iy, t1, t2, mi = _workspace(la, lb)
    M[0].fill(NEG)
    M[1:, 0].fill(NEG)
    M[0, 0] = 0.0
    Ix[0].fill(NEG)
    Ix[0, 0] = 0.0  # lets a leading vertical gap terminate cleanly
    Ix[1:, 0].fill(0.0)  # free leading gaps
    Iy[0].fill(0.0)
    Iy[1:, 0].fill(NEG)

    if _NATIVE_FORWARD is not None and score.strides[1] == 8:
        # same dataflow as the sweep below, one call instead of ~8*la
        _NATIVE_FORWARD(
            M.ctypes.data,
            Ix.ctypes.data,
            Iy.ctypes.data,
            score.ctypes.data,
            la,
            lb,
            M.strides[0] // 8,
            score.strides[0] // 8,
            gap_open,
        )
        return M, Ix, Iy

    # max(M, Iy) of the previous row feeds both the M recurrence (after a
    # further max with Ix — max is order-insensitive up to the sign of
    # equal zeros, which nothing downstream observes) and the Ix opener,
    # so it is computed once.  The ufuncs are hoisted to locals: at ~la
    # calls per fill and ~10^3 fills per pairwise comparison, attribute
    # lookups are measurable.
    maximum = np.maximum
    add = np.add
    accumulate = np.maximum.accumulate
    for i in range(1, la + 1):
        ix_prev = Ix[i - 1]
        maximum(M[i - 1], Iy[i - 1], out=mi)
        # M[i, j] = score[i-1, j-1] + max over states at (i-1, j-1)
        maximum(mi[:-1], ix_prev[:-1], out=t1)
        add(score[i - 1], t1, out=M[i, 1:])
        # Ix[i, j]: vertical gap (consume A row) — open from M/Iy or extend
        add(mi[1:], gap_open, out=t1)
        maximum(t1, ix_prev[1:], out=Ix[i, 1:])
        # Iy[i, j]: horizontal gap — running max of openers to the left
        maximum(M[i, :-1], Ix[i, :-1], out=t2)
        add(t2, gap_open, out=t2)
        accumulate(t2, out=Iy[i, 1:])
    return M, Ix, Iy


def nw_score_only(
    score: np.ndarray, gap_open: float, counter=None
) -> float:
    """DP optimum (semi-global) without traceback."""
    score = np.asarray(score, dtype=np.float64)
    if score.ndim != 2 or score.size == 0:
        raise ValueError(f"score matrix must be 2-D non-empty, got {score.shape}")
    if gap_open > 0:
        raise ValueError("gap_open must be <= 0")
    if counter is not None:
        counter.add("dp_cell", score.shape[0] * score.shape[1])
    M, Ix, Iy = _forward(score, gap_open)
    return float(max(M[-1, -1], Ix[-1, -1], Iy[-1, -1]))


def nw_align(
    score: np.ndarray, gap_open: float, counter=None
) -> Alignment:
    """Optimal semi-global alignment for ``score`` under TM-align's gap model.

    Returns an :class:`Alignment` of matched (i, j) index pairs, both
    strictly increasing.
    """
    score = np.asarray(score, dtype=np.float64)
    if score.ndim != 2 or score.size == 0:
        raise ValueError(f"score matrix must be 2-D non-empty, got {score.shape}")
    if gap_open > 0:
        raise ValueError("gap_open must be <= 0")
    la, lb = score.shape
    if counter is not None:
        counter.add("dp_cell", la * lb)
    M, Ix, Iy = _forward(score, gap_open)

    # Traceback from the corner; predecessors found by exact equality on
    # propagated values (ties resolved with M > Ix > Iy precedence, the
    # same order the forward max would pick).  Cells are read with
    # ndarray.item() — plain Python floats share float64 IEEE semantics,
    # and the traceback visits ~la+lb cells per call.
    m_at, ix_at, iy_at, s_at = M.item, Ix.item, Iy.item, score.item
    gap = float(gap_open)
    i, j = la, lb
    v0, v1, v2 = m_at(i, j), ix_at(i, j), iy_at(i, j)
    if v0 >= v1 and v0 >= v2:
        state, dp_score = 0, v0
    elif v1 >= v2:
        state, dp_score = 1, v1
    else:
        state, dp_score = 2, v2
    ai: list[int] = []
    aj: list[int] = []
    while i > 0 or j > 0:
        if state == 0:  # M
            ai.append(i - 1)
            aj.append(j - 1)
            # compare by re-adding (same float expression the forward
            # pass evaluated) — subtracting would be inexact
            cur = m_at(i, j)
            s = s_at(i - 1, j - 1)
            i -= 1
            j -= 1
            if s + m_at(i, j) == cur:
                state = 0
            elif s + ix_at(i, j) == cur:
                state = 1
            else:
                state = 2
        elif state == 1:  # Ix: came from (i-1, j)
            cur = ix_at(i, j)
            i -= 1
            if ix_at(i, j) == cur:
                state = 1
            elif m_at(i, j) + gap == cur:
                state = 0
            else:
                state = 2
        else:  # Iy: came from (i, j-1)
            cur = iy_at(i, j)
            j -= 1
            if iy_at(i, j) == cur:
                state = 2
            elif m_at(i, j) + gap == cur:
                state = 0
            else:
                state = 1
        if i == 0 and state == 2:
            # remaining leading horizontal gap is free; walk out
            j = 0
        if j == 0 and state == 1:
            i = 0
    ai.reverse()
    aj.reverse()
    return Alignment.from_trusted(
        np.asarray(ai, dtype=np.intp), np.asarray(aj, dtype=np.intp), dp_score
    )
