"""TM-align: protein structure alignment based on the TM-score.

A from-scratch Python implementation of the TM-align algorithm of Zhang &
Skolnick (2005), the serial unit operation the paper parallelizes:

1. assign secondary structure from Cα geometry;
2. build initial alignments — gapless threading, secondary-structure
   dynamic programming, and a combined SS+distance DP (plus an optional
   fragment-threading init);
3. for each initial alignment, run the iterative TM-score refinement:
   superposition search (Kabsch over seed fragments + distance-cutoff
   reselection) alternated with TM-score-matrix Needleman–Wunsch DP until
   the alignment is stable;
4. report TM-scores normalised by both chain lengths, aligned-region
   RMSD, sequence identity, and the alignment itself.

All heavy kernels are NumPy-vectorized (anti-dependency-free row scans
for the DP, batched distance math) per the HPC coding guides, and every
kernel can charge a :class:`repro.cost.CostCounter` so the simulator can
price the work on 2013-era CPU models.
"""

from repro.tmalign.params import TMAlignParams, d0_from_length, d0_search_bounds
from repro.tmalign.result import TMAlignResult, Alignment
from repro.tmalign.dp import nw_align, nw_score_only
from repro.tmalign.tmscore import tm_score_from_distances, superposition_search
from repro.tmalign.align import tm_align
from repro.tmalign.scorer import tm_score_fixed_alignment
from repro.tmalign.metrics import gdt_score, gdt_ts, gdt_ha, lddt, maxsub_score

__all__ = [
    "gdt_score",
    "gdt_ts",
    "gdt_ha",
    "lddt",
    "maxsub_score",
    "TMAlignParams",
    "d0_from_length",
    "d0_search_bounds",
    "TMAlignResult",
    "Alignment",
    "nw_align",
    "nw_score_only",
    "tm_score_from_distances",
    "superposition_search",
    "tm_align",
    "tm_score_fixed_alignment",
]
