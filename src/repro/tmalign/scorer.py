"""TM-score of a *given* alignment (the standalone TM-score program).

Useful on its own (e.g. scoring a model against a native structure with
the identity correspondence) and as the scoring half of TM-align.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.structure.model import Chain
from repro.tmalign.params import TMAlignParams, d0_from_length
from repro.tmalign.result import Alignment
from repro.tmalign.tmscore import superposition_search

__all__ = ["tm_score_fixed_alignment"]


def tm_score_fixed_alignment(
    chain_a: Chain,
    chain_b: Chain,
    alignment: Optional[Alignment] = None,
    normalize_by: str = "b",
    params: Optional[TMAlignParams] = None,
    counter=None,
) -> float:
    """TM-score of ``chain_a`` vs ``chain_b`` under a fixed correspondence.

    With ``alignment=None`` the chains must have equal length and the
    identity correspondence is used (the classic TM-score use case:
    model vs native).  ``normalize_by`` picks the normalising length:
    ``"a"``, ``"b"`` (default, like the TM-score program's reference) or
    ``"min"``.
    """
    params = params or TMAlignParams()
    if alignment is None:
        if len(chain_a) != len(chain_b):
            raise ValueError(
                "identity correspondence needs equal-length chains; "
                f"got {len(chain_a)} vs {len(chain_b)}"
            )
        idx = np.arange(len(chain_a), dtype=np.intp)
        alignment = Alignment(idx, idx)
    if normalize_by == "a":
        lnorm = len(chain_a)
    elif normalize_by == "b":
        lnorm = len(chain_b)
    elif normalize_by == "min":
        lnorm = min(len(chain_a), len(chain_b))
    else:
        raise ValueError("normalize_by must be 'a', 'b' or 'min'")
    tm, _ = superposition_search(
        chain_a.coords[alignment.ai],
        chain_b.coords[alignment.aj],
        d0_from_length(lnorm),
        lnorm,
        params=params,
        counter=counter,
    )
    return tm
