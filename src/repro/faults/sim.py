"""Fault injection for the *simulated* SCC farm (rckskel/rckAlign).

The model is fail-stop with bounded detection: a slave core scheduled to
die does so while holding a job; after ``detect_seconds`` of simulated
time the failure is discovered (the flag the master's round-robin poll
finds is a tombstone instead of a result) and the master permanently
removes the slave from its poll ring and re-dispatches the lost job to a
surviving slave.  ``slow`` faults model thermally/voltage-degraded cores
that keep running at a fraction of nominal frequency — jobs complete,
just late, which stresses the dynamic farm's load balancing instead of
its reassignment path.

Everything is deterministic: plans are explicit slave lists or seeded
samples, and the simulator itself has no randomness.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

__all__ = ["SIM_FAULT_KINDS", "SimFaultPlan", "SlaveFault"]

SIM_FAULT_KINDS = ("kill", "slow")


@dataclass(frozen=True)
class SlaveFault:
    """One planned slave failure on the simulated chip.

    ``after_jobs`` counts jobs the slave completes before the fault
    fires: a kill fault strikes while the slave works on job number
    ``after_jobs`` (0-based), a slow fault degrades every job from that
    point on.
    """

    slave_id: int
    kind: str = "kill"
    after_jobs: int = 1
    slow_factor: float = 4.0
    detect_seconds: float = 0.25

    def __post_init__(self) -> None:
        if self.kind not in SIM_FAULT_KINDS:
            raise ValueError(
                f"unknown sim fault kind {self.kind!r}; known: {SIM_FAULT_KINDS}"
            )
        if self.after_jobs < 0:
            raise ValueError("after_jobs must be non-negative")
        if self.kind == "slow" and self.slow_factor <= 1.0:
            raise ValueError("slow faults need slow_factor > 1")
        if self.detect_seconds < 0:
            raise ValueError("detect_seconds must be non-negative")


@dataclass(frozen=True)
class SimFaultPlan:
    """Per-slave fault assignments for one simulated run."""

    faults: Tuple[SlaveFault, ...] = ()

    def __post_init__(self) -> None:
        ids = [f.slave_id for f in self.faults]
        if len(set(ids)) != len(ids):
            raise ValueError("at most one fault per slave")

    def for_slave(self, slave_id: int) -> Optional[SlaveFault]:
        for fault in self.faults:
            if fault.slave_id == slave_id:
                return fault
        return None

    def __bool__(self) -> bool:
        return bool(self.faults)

    @property
    def n_kills(self) -> int:
        return sum(1 for f in self.faults if f.kind == "kill")

    # -- constructors ------------------------------------------------------
    @classmethod
    def kill_n(
        cls,
        n: int,
        slave_ids: Sequence[int],
        seed: int = 0,
        after_jobs: int = 1,
        detect_seconds: float = 0.25,
        stagger_jobs: int = 2,
    ) -> "SimFaultPlan":
        """Seeded plan killing ``n`` of the given slaves mid-run.

        Victims are a seeded sample; their death points are staggered by
        ``stagger_jobs`` completed jobs so failures arrive spread over
        the sweep instead of as one synchronized burst.
        """
        if n < 0:
            raise ValueError("n must be non-negative")
        if n > len(slave_ids):
            raise ValueError(f"cannot kill {n} of {len(slave_ids)} slaves")
        rng = random.Random(seed)
        victims = rng.sample(list(slave_ids), n)
        return cls(
            tuple(
                SlaveFault(
                    slave_id=s,
                    kind="kill",
                    after_jobs=after_jobs + k * stagger_jobs,
                    detect_seconds=detect_seconds,
                )
                for k, s in enumerate(victims)
            )
        )

    @classmethod
    def slow_n(
        cls,
        n: int,
        slave_ids: Sequence[int],
        seed: int = 0,
        after_jobs: int = 0,
        slow_factor: float = 4.0,
    ) -> "SimFaultPlan":
        """Seeded plan degrading ``n`` slaves to ``1/slow_factor`` speed."""
        if n > len(slave_ids):
            raise ValueError(f"cannot slow {n} of {len(slave_ids)} slaves")
        rng = random.Random(seed)
        victims = rng.sample(list(slave_ids), n)
        return cls(
            tuple(
                SlaveFault(
                    slave_id=s,
                    kind="slow",
                    after_jobs=after_jobs,
                    slow_factor=slow_factor,
                )
                for s in victims
            )
        )
