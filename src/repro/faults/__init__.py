"""Deterministic, seedable fault injection for both farm backends.

Two injectors share one philosophy — failures are *planned data*, not
ambient randomness, so every chaos run is reproducible:

* :mod:`repro.faults.farm` targets the real process-pool farm
  (:mod:`repro.parallel`): worker-side exceptions, SIGKILL'd worker
  processes and stalled chunks, driving the retry/backoff/timeout
  machinery.
* :mod:`repro.faults.sim` targets the simulated SCC farm
  (:mod:`repro.core.skeletons`): fail-stop slave cores with bounded
  failure detection and frequency-degraded ("slow") cores, driving the
  master's job-reassignment logic and the ``exp_resilience`` harness.
"""

from repro.faults.farm import (
    FAULT_KINDS,
    FarmFaultPlan,
    InjectedFault,
    WorkerFault,
)
from repro.faults.sim import SIM_FAULT_KINDS, SimFaultPlan, SlaveFault

__all__ = [
    "FAULT_KINDS",
    "SIM_FAULT_KINDS",
    "FarmFaultPlan",
    "InjectedFault",
    "SimFaultPlan",
    "SlaveFault",
    "WorkerFault",
]
