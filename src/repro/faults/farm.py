"""Deterministic fault injection for the real process-pool farm.

A :class:`FarmFaultPlan` is a picklable, seedable description of
failures to inject into :mod:`repro.parallel` workers.  It is shipped to
every pool process through the worker initializer; workers consult it
before evaluating each ``(i, j)`` pair and, when a fault matches, do one
of:

* ``raise`` — raise :class:`InjectedFault` (exercises the error-status
  path and retry/backoff),
* ``kill``  — SIGKILL their own process (exercises BrokenProcessPool
  detection, pool restart and pair-level re-dispatch),
* ``stall`` — sleep for ``stall_seconds`` before working (exercises
  chunk timeouts and duplicate re-dispatch).

Faults are keyed on the pair and the *attempt number* the master stamps
on every dispatched chunk, so a fault restricted to ``attempts=(0,)``
fires exactly once and the retried evaluation succeeds — deterministic
chaos, byte-identical results.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

__all__ = ["FAULT_KINDS", "FarmFaultPlan", "InjectedFault", "WorkerFault"]

FAULT_KINDS = ("raise", "kill", "stall")


class InjectedFault(RuntimeError):
    """An artificial failure fired by a fault plan (never a real bug)."""


@dataclass(frozen=True)
class WorkerFault:
    """One planned failure: what to do, on which pair, on which attempts."""

    kind: str
    pair: Tuple[int, int]
    attempts: Tuple[int, ...] = (0,)
    stall_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; known: {FAULT_KINDS}")
        if self.kind == "stall" and self.stall_seconds <= 0:
            raise ValueError("stall faults need stall_seconds > 0")
        if any(a < 0 for a in self.attempts):
            raise ValueError("attempt numbers must be non-negative")

    def matches(self, i: int, j: int, attempt: int) -> bool:
        return (i, j) == tuple(self.pair) and attempt in self.attempts


@dataclass(frozen=True)
class FarmFaultPlan:
    """An ordered collection of worker faults (picklable, deterministic)."""

    faults: Tuple[WorkerFault, ...] = ()

    def should_fire(self, i: int, j: int, attempt: int) -> Optional[WorkerFault]:
        for fault in self.faults:
            if fault.matches(i, j, attempt):
                return fault
        return None

    def __bool__(self) -> bool:
        return bool(self.faults)

    # -- constructors ------------------------------------------------------
    @classmethod
    def single(
        cls,
        kind: str,
        pair: Tuple[int, int],
        attempts: Sequence[int] = (0,),
        stall_seconds: float = 0.0,
    ) -> "FarmFaultPlan":
        return cls(
            (WorkerFault(kind, tuple(pair), tuple(attempts), stall_seconds),)
        )

    @classmethod
    def sample(
        cls,
        seed: int,
        pairs: Sequence[Tuple[int, int]],
        n_faults: int = 1,
        kind: str = "raise",
        attempts: Sequence[int] = (0,),
        stall_seconds: float = 1.0,
    ) -> "FarmFaultPlan":
        """Seeded choice of ``n_faults`` distinct victim pairs."""
        if n_faults > len(pairs):
            raise ValueError(f"cannot pick {n_faults} faults from {len(pairs)} pairs")
        rng = random.Random(seed)
        chosen = rng.sample(list(pairs), n_faults)
        return cls(
            tuple(
                WorkerFault(kind, tuple(p), tuple(attempts), stall_seconds)
                for p in chosen
            )
        )

    @classmethod
    def parse(cls, spec: str) -> "FarmFaultPlan":
        """Parse a CLI fault spec.

        Grammar: comma-separated ``kind[:seconds]@i-j[#a0|a1|...]`` terms,
        e.g. ``kill@0-3`` (SIGKILL the worker evaluating pair (0, 3) on
        attempt 0), ``raise@1-2#0|1`` (raise on the first two attempts),
        ``stall:1.5@2-4`` (sleep 1.5 s before evaluating (2, 4)).
        """
        faults = []
        for term in filter(None, (t.strip() for t in spec.split(","))):
            try:
                head, _, tail = term.partition("@")
                kind, _, seconds = head.partition(":")
                pair_text, _, attempts_text = tail.partition("#")
                i_text, _, j_text = pair_text.partition("-")
                pair = (int(i_text), int(j_text))
                attempts = (
                    tuple(int(a) for a in attempts_text.split("|"))
                    if attempts_text
                    else (0,)
                )
                stall = float(seconds) if seconds else 0.0
            except ValueError as exc:
                raise ValueError(
                    f"bad fault term {term!r} (expected kind[:sec]@i-j[#a|...])"
                ) from exc
            faults.append(WorkerFault(kind, pair, attempts, stall))
        if not faults:
            raise ValueError(f"fault spec {spec!r} contains no faults")
        return cls(tuple(faults))
