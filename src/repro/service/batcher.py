"""Dynamic micro-batcher: coalesce in-flight pair jobs into kernel batches.

Concurrent ``align``/``search`` requests decompose into pair jobs that
land on one shared queue.  The batcher drains the queue in batches of up
to ``max_batch`` jobs — waiting up to ``batch_window`` seconds for
stragglers to coalesce when the queue is short — and dispatches each
batch to the :mod:`repro.parallel` farm (serial in-process below 2
workers, process pool with the PR-3 retry/backoff machinery above),
where the PR-4 batch-vectorized TM-align kernel does the work.

Batches are cut by *predicted cost*, not just job count: every admitted
job is priced by the farm's pair cost model
(:func:`repro.parallel.predict_pair_seconds`) and a batch closes early
when its accumulated predicted cost reaches ``max_batch_cost`` seconds.
A count-cut batch of long chains can otherwise hold the event loop's
worker thread for arbitrarily long; the cost cut bounds per-batch
latency the same way the farm's cost-packed chunks bound per-chunk
work.  The farm call below the batch then reuses the same model to pack
its own chunks, so all three dispatch paths (search API, matrix CLI,
service) share one cost-aware chunker.

Two protections keep overload graceful instead of fatal:

* **admission control** — a bounded pending queue; a job arriving at a
  full queue is shed immediately with a typed
  :class:`~repro.service.protocol.ServiceOverloaded`, and everything
  already admitted still completes;
* **in-flight coalescing** — a job whose cache key is already pending or
  dispatched attaches to the existing job's waiters instead of consuming
  queue capacity, so a thundering herd of identical queries costs one
  evaluation.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence

from repro.datasets.registry import Dataset
from repro.parallel import ParallelConfig, evaluate_pairs, predict_pair_seconds
from repro.psc.base import PSCMethod
from repro.service.cache import CacheKey
from repro.service.metrics import ServiceMetrics
from repro.service.protocol import (
    ServiceError,
    ServiceOverloaded,
    canonical_json,
)
from repro.structure.model import Chain

__all__ = ["PairJob", "MicroBatcher", "result_body"]


@dataclass
class PairJob:
    """One pairwise comparison awaiting evaluation."""

    key: CacheKey  # (hash_a, hash_b, method_name, params_hash)
    chain_a: Chain
    chain_b: Chain
    method: PSCMethod
    submitted_at: float = field(default_factory=time.perf_counter)
    predicted_seconds: float = 0.0  # cost-model price, set at admission

    @property
    def method_name(self) -> str:
        return self.key[2]

    @property
    def params_hash(self) -> str:
        return self.key[3]


def result_body(job: PairJob, scores: Dict[str, float]) -> str:
    """The canonical JSON body of one evaluated pair (what gets cached)."""
    return canonical_json(
        {
            "pair": [job.key[0], job.key[1]],
            "method": job.method_name,
            "params_hash": job.params_hash,
            "scores": dict(scores),
            "score": job.method.similarity(scores),
        }
    )


def _price_pair(chain_a: Chain, chain_b: Chain) -> float:
    """Predicted evaluation seconds for one pair (nominal CPU).

    Defensive: pricing exists to *improve* batching; a cost-model hiccup
    must never reject an admission.
    """
    try:
        return float(predict_pair_seconds([len(chain_a)], [len(chain_b)])[0])
    except Exception:
        return 0.0


def _hash_named(chain: Chain, content_hash: str) -> Chain:
    """A copy of ``chain`` named by its content hash.

    Batch datasets index chains by hash so two same-named uploads with
    different content can share a batch; the secondary-structure caches
    are computed on (and therefore retained by) the registry's original
    chain object, then carried over, so the server assigns SS once per
    structure, not once per request.
    """
    out = Chain(content_hash, chain.coords, chain.sequence, chain.family)
    out._secondary = chain.secondary
    out._ss_codes = chain.ss_codes
    return out


class MicroBatcher:
    """Bounded batch queue between the asyncio server and the farm.

    ``submit`` is awaited from request handlers; the ``run`` loop (one
    asyncio task, started via :meth:`start`) drains the queue and runs
    each batch in a worker thread so the event loop keeps serving while
    the kernel computes.  ``evaluate`` is injectable for deterministic
    overload tests; the default groups jobs by method+params and
    dispatches each group through :func:`repro.parallel.evaluate_pairs`.
    """

    def __init__(
        self,
        queue_limit: int = 64,
        max_batch: int = 16,
        batch_window: float = 0.002,
        max_batch_cost: float = 0.0,
        farm_config: Optional[ParallelConfig] = None,
        metrics: Optional[ServiceMetrics] = None,
        evaluate: Optional[Callable[[Sequence[PairJob]], List[str]]] = None,
        eval_delay: float = 0.0,
    ) -> None:
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_batch_cost < 0:
            raise ValueError("max_batch_cost must be >= 0")
        self.queue_limit = queue_limit
        self.max_batch = max_batch
        self.batch_window = batch_window
        self.max_batch_cost = max_batch_cost
        self.eval_delay = eval_delay
        self.farm_config = farm_config or ParallelConfig()
        self.metrics = metrics or ServiceMetrics()
        self._evaluate = evaluate or self._evaluate_batch
        self._pending: Deque[PairJob] = deque()
        self._waiters: Dict[CacheKey, List[asyncio.Future]] = {}
        self._wakeup = asyncio.Event()
        self._stopping = False
        self._task: Optional[asyncio.Task] = None
        # (corpus dataset, content-hash -> index) installed by the
        # service; one tuple so the executor thread reads a consistent
        # generation even while a registration swaps it
        self._corpus: tuple = (None, {})

    # -- public surface ----------------------------------------------------
    @property
    def depth(self) -> int:
        """Jobs admitted but not yet dispatched (the bounded queue)."""
        return len(self._pending)

    def start(self) -> None:
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(self.run())

    async def stop(self) -> None:
        """Drain what was admitted, then stop the run loop."""
        self._stopping = True
        self._wakeup.set()
        if self._task is not None:
            await self._task
            self._task = None

    def set_corpus(
        self, dataset: Optional[Dataset], hashes: Sequence[str] = ()
    ) -> None:
        """Install (or clear) the long-lived corpus dataset for batches.

        When every job in a batch group references registered corpus
        chains (by content hash), the group is evaluated against this
        shared dataset instead of an ad-hoc per-batch one — with the
        shared-memory plane enabled, every micro-batch then attaches to
        the segment the service pinned at registration time instead of
        paying a fresh dataset serialization per batch.  Scores are
        identical: MEASURED-mode results depend only on chain content,
        which the content hashes pin exactly.  A registration that
        changes the corpus re-installs a new generation; batches racing
        the swap fall back to the ad-hoc path for unknown hashes.
        """
        self._corpus = (dataset, {h: k for k, h in enumerate(hashes)})

    async def submit(
        self,
        key: CacheKey,
        chain_a: Chain,
        chain_b: Chain,
        method: PSCMethod,
    ) -> str:
        """Admit one pair job and await its canonical result body.

        Raises :class:`ServiceOverloaded` when the pending queue is full
        and the job cannot coalesce onto an identical in-flight one.
        """
        if self._stopping:
            raise ServiceError("service is shutting down")
        fut = asyncio.get_running_loop().create_future()
        waiters = self._waiters.get(key)
        if waiters is not None:
            waiters.append(fut)
            self.metrics.inc("batcher_coalesced")
            return await fut
        if len(self._pending) >= self.queue_limit:
            self.metrics.inc("batcher_shed")
            raise ServiceOverloaded(
                f"batch queue is full ({len(self._pending)}/"
                f"{self.queue_limit} jobs pending); retry later"
            )
        self._waiters[key] = [fut]
        self._pending.append(
            PairJob(
                key,
                chain_a,
                chain_b,
                method,
                predicted_seconds=_price_pair(chain_a, chain_b),
            )
        )
        self.metrics.set_gauge("queue_depth", len(self._pending))
        self._wakeup.set()
        return await fut

    # -- batch loop --------------------------------------------------------
    async def run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            await self._wakeup.wait()
            self._wakeup.clear()
            while self._pending:
                if (
                    len(self._pending) < self.max_batch
                    and self.batch_window > 0
                    and not self._stopping
                ):
                    await asyncio.sleep(self.batch_window)
                batch = self._cut_batch()
                self.metrics.set_gauge("queue_depth", len(self._pending))
                self.metrics.set_gauge("inflight_jobs", len(batch))
                self.metrics.inc("batches_dispatched")
                self.metrics.inc("jobs_dispatched", len(batch))
                t0 = time.perf_counter()
                try:
                    bodies = await loop.run_in_executor(
                        None, self._evaluate, batch
                    )
                except Exception as exc:
                    self.metrics.inc("batches_failed")
                    failure = ServiceError(
                        f"batch evaluation failed: {type(exc).__name__}: {exc}"
                    )
                    for job in batch:
                        self._resolve(job.key, error=failure)
                else:
                    self.metrics.observe(
                        "batch_dispatch", time.perf_counter() - t0
                    )
                    for job, body in zip(batch, bodies):
                        self._resolve(job.key, body=body)
                finally:
                    self.metrics.set_gauge("inflight_jobs", 0)
            if self._stopping:
                break

    def _cut_batch(self) -> List[PairJob]:
        """Pop the next batch: at most ``max_batch`` jobs, closed early
        when accumulated predicted cost reaches ``max_batch_cost`` (0 =
        count-only cutting).  Always takes at least one job, so a single
        pair more expensive than the whole budget still dispatches."""
        batch: List[PairJob] = []
        cost = 0.0
        while self._pending and len(batch) < self.max_batch:
            job = self._pending[0]
            if (
                batch
                and self.max_batch_cost > 0
                and cost + job.predicted_seconds > self.max_batch_cost
            ):
                self.metrics.inc("batcher_cost_cut")
                break
            batch.append(self._pending.popleft())
            cost += job.predicted_seconds
        return batch

    def _resolve(
        self,
        key: CacheKey,
        body: Optional[str] = None,
        error: Optional[Exception] = None,
    ) -> None:
        for fut in self._waiters.pop(key, []):
            if fut.done():  # waiter went away (cancelled request)
                continue
            if error is not None:
                fut.set_exception(error)
            else:
                fut.set_result(body)

    # -- default evaluation (worker thread) --------------------------------
    def _evaluate_batch(self, jobs: Sequence[PairJob]) -> List[str]:
        """Evaluate one batch through the farm; returns bodies in job order.

        Jobs are grouped by (method, params) — each group becomes one
        ad-hoc hash-indexed dataset plus an (i, j) pair list handed to
        :func:`repro.parallel.evaluate_pairs`, so a mixed batch still
        dispatches one farm call per distinct parameterisation.
        ``eval_delay`` is a test/CI knob that holds the worker thread to
        make overload scenarios deterministic.
        """
        if self.eval_delay > 0:
            time.sleep(self.eval_delay)
        groups: Dict[tuple, List[PairJob]] = {}
        for job in jobs:
            groups.setdefault((job.method_name, job.params_hash), []).append(job)
        bodies: Dict[CacheKey, str] = {}
        corpus_ds, corpus_idx = self._corpus
        for group in groups.values():
            if corpus_ds is not None and all(
                job.key[0] in corpus_idx and job.key[1] in corpus_idx
                for job in group
            ):
                # corpus fast path: all chains are registered, so reuse
                # the service's stable dataset (and its pinned
                # shared-memory plane) with orientation-preserving
                # (i, j) pairs — chain_a stays the aligner's first arg
                dataset = corpus_ds
                pairs = [
                    (corpus_idx[job.key[0]], corpus_idx[job.key[1]])
                    for job in group
                ]
            else:
                index: Dict[str, int] = {}
                chains: List[Chain] = []

                def idx_of(content_hash: str, chain: Chain) -> int:
                    if content_hash not in index:
                        index[content_hash] = len(chains)
                        chains.append(_hash_named(chain, content_hash))
                    return index[content_hash]

                pairs = [
                    (idx_of(job.key[0], job.chain_a), idx_of(job.key[1], job.chain_b))
                    for job in group
                ]
                dataset = Dataset(
                    "service-batch", tuple(chains), "ad-hoc micro-batch corpus"
                )
            results = evaluate_pairs(
                dataset, pairs, group[0].method, config=self.farm_config
            )
            for job, (_i, _j, scores, _counts) in zip(group, results):
                bodies[job.key] = result_body(job, scores)
        return [bodies[job.key] for job in jobs]
