"""Blocking client library for the PSC query service.

One :class:`ServiceClient` holds one TCP connection and issues requests
sequentially (responses are matched by id).  Typed server errors come
back as the exceptions from :mod:`repro.service.protocol` — most
importantly :class:`~repro.service.protocol.ServiceOverloaded`, which a
caller should treat as "busy now, retry with backoff".
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, Optional

from repro.service.protocol import ERROR_TYPES, ServiceError, encode_line

__all__ = ["ServiceClient"]

DEFAULT_PORT = 7743


class ServiceClient:
    """Line-protocol JSON client; use as a context manager."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        timeout: float = 60.0,
    ) -> None:
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._next_id = 0

    # -- plumbing ----------------------------------------------------------
    def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """One request/response round trip; returns the raw response dict."""
        self._next_id += 1
        payload = {"id": self._next_id, "op": op}
        payload.update({k: v for k, v in fields.items() if v is not None})
        self._file.write(encode_line(payload))
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ServiceError("connection closed by server")
        response = json.loads(line)
        if response.get("id") != self._next_id:
            raise ServiceError(
                f"response id {response.get('id')!r} does not match "
                f"request id {self._next_id}"
            )
        if not response.get("ok"):
            error = response.get("error") or {}
            exc_type = ERROR_TYPES.get(error.get("code", ""), ServiceError)
            raise exc_type(error.get("message", "service error"))
        return response

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- ops ---------------------------------------------------------------
    def align(
        self,
        a: str,
        b: str,
        method: str = "tmalign",
        params: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Pairwise comparison; returns the full response (``result`` +
        ``cached``) so callers can observe cache behaviour."""
        return self.request("align", a=a, b=b, method=method, params=params)

    def search(
        self,
        query: str,
        top: int = 10,
        method: str = "tmalign",
        params: Optional[Dict[str, Any]] = None,
        exclude_self: bool = True,
        prefilter: bool = False,
        prefilter_keep: Optional[float] = None,
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = dict(
            query=query,
            top=top,
            method=method,
            params=params,
            exclude_self=exclude_self,
        )
        # only opt-in requests carry prefilter fields, so default
        # request lines (and responses) stay byte-identical
        if prefilter:
            payload["prefilter"] = True
            if prefilter_keep is not None:
                payload["prefilter_keep"] = prefilter_keep
        return self.request("search", **payload)["result"]

    def register_pdb(
        self, name: str, pdb_text: str, corpus: bool = False
    ) -> Dict[str, Any]:
        return self.request(
            "register", name=name, pdb=pdb_text, corpus=corpus
        )["result"]

    def submit_matrix(
        self,
        dataset: Optional[str] = None,
        method: Optional[str] = None,
        runs_dir: Optional[str] = None,
        params: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        return self.request(
            "submit-matrix",
            dataset=dataset,
            method=method,
            runs_dir=runs_dir,
            params=params,
        )["result"]

    def status(
        self, run_id: Optional[str] = None, runs_dir: Optional[str] = None
    ) -> Dict[str, Any]:
        """Progress of one durable run, or — without ``run_id`` — the
        service-level status (corpus, matrix store, background jobs)."""
        return self.request("status", run_id=run_id, runs_dir=runs_dir)["result"]

    def matstore_build(self, root: Optional[str] = None) -> Dict[str, Any]:
        """Build (or prefix-extend) the matrix store over the corpus, in
        the background; poll :meth:`status` for completion."""
        return self.request("matstore-build", root=root)["result"]

    def matstore_lookup(self, a: str, b: str) -> Dict[str, Any]:
        """O(1) mmap lookup of a stored pair (all four metrics); raises
        :class:`~repro.service.protocol.NotFound` on a store miss."""
        return self.request("matstore-lookup", a=a, b=b)["result"]

    def healthz(self) -> Dict[str, Any]:
        return self.request("healthz")["result"]

    def metrics(self) -> Dict[str, Any]:
        return self.request("metrics")["result"]

    def shutdown(self) -> Dict[str, Any]:
        return self.request("shutdown")["result"]
