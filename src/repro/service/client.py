"""Blocking client library for the PSC query service.

One :class:`ServiceClient` holds one TCP connection and issues requests
sequentially (responses are matched by id).  Typed server errors come
back as the exceptions from :mod:`repro.service.protocol` — most
importantly :class:`~repro.service.protocol.ServiceOverloaded`, which a
caller should treat as "busy now, retry with backoff".

Connecting is resilient by default: a refused or timed-out connect is
retried with bounded exponential backoff (a restarting server shows up
as :class:`~repro.service.protocol.ServiceUnavailable` only once the
budget is exhausted, never as a raw ``ConnectionRefusedError``), and a
request whose *send* hits a dead socket reconnects once and re-sends.
The shard coordinator's async connections share the same backoff
schedule via :func:`backoff_delays`.
"""

from __future__ import annotations

import json
import socket
import time
from typing import Any, Dict, Iterator, Optional

from repro.service.protocol import (
    ERROR_TYPES,
    ServiceError,
    ServiceUnavailable,
    encode_line,
)

__all__ = ["ServiceClient", "backoff_delays", "DEFAULT_CONNECT_RETRIES"]

DEFAULT_PORT = 7743

#: reconnect budget shared by the blocking client and the coordinator's
#: async shard connections: N retries doubling from the base delay
DEFAULT_CONNECT_RETRIES = 4
DEFAULT_CONNECT_BACKOFF = 0.05


def backoff_delays(retries: int, base: float) -> Iterator[float]:
    """The bounded exponential-backoff schedule: base, 2*base, 4*base...

    One shared definition so the blocking client and the coordinator's
    async shard connections wait identically for a restarting server.
    """
    for attempt in range(max(0, retries)):
        yield base * (2**attempt)


class ServiceClient:
    """Line-protocol JSON client; use as a context manager."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        timeout: float = 60.0,
        connect_timeout: float = 5.0,
        connect_retries: int = DEFAULT_CONNECT_RETRIES,
        connect_backoff: float = DEFAULT_CONNECT_BACKOFF,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        self.connect_retries = connect_retries
        self.connect_backoff = connect_backoff
        self._sock: Optional[socket.socket] = None
        self._file = None
        self._next_id = 0
        self._connect()

    # -- plumbing ----------------------------------------------------------
    def _connect(self) -> None:
        """(Re-)establish the connection with bounded backoff."""
        self._teardown()
        delays = backoff_delays(self.connect_retries, self.connect_backoff)
        attempts = 0
        while True:
            attempts += 1
            try:
                self._sock = socket.create_connection(
                    (self.host, self.port), timeout=self.connect_timeout
                )
                break
            except OSError as exc:
                delay = next(delays, None)
                if delay is None:
                    raise ServiceUnavailable(
                        f"cannot connect to {self.host}:{self.port} after "
                        f"{attempts} attempts: {type(exc).__name__}: {exc}"
                    ) from exc
                time.sleep(delay)
        self._sock.settimeout(self.timeout)
        self._file = self._sock.makefile("rwb")

    def _teardown(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """One request/response round trip; returns the raw response dict."""
        self._next_id += 1
        payload = {"id": self._next_id, "op": op}
        payload.update({k: v for k, v in fields.items() if v is not None})
        line = encode_line(payload)
        try:
            self._file.write(line)
            self._file.flush()
        except (ConnectionError, BrokenPipeError, OSError):
            # dead socket caught at send time: the request was not
            # processed, so reconnecting and re-sending is safe
            self._connect()
            self._file.write(line)
            self._file.flush()
        response_line = self._file.readline()
        if not response_line:
            raise ServiceError("connection closed by server")
        response = json.loads(response_line)
        if response.get("id") != self._next_id:
            raise ServiceError(
                f"response id {response.get('id')!r} does not match "
                f"request id {self._next_id}"
            )
        if not response.get("ok"):
            error = response.get("error") or {}
            exc_type = ERROR_TYPES.get(error.get("code", ""), ServiceError)
            raise exc_type(error.get("message", "service error"))
        return response

    def close(self) -> None:
        self._teardown()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- ops ---------------------------------------------------------------
    def align(
        self,
        a: str,
        b: str,
        method: str = "tmalign",
        params: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Pairwise comparison; returns the full response (``result`` +
        ``cached``) so callers can observe cache behaviour."""
        return self.request("align", a=a, b=b, method=method, params=params)

    def search(
        self,
        query: str,
        top: int = 10,
        method: str = "tmalign",
        params: Optional[Dict[str, Any]] = None,
        exclude_self: bool = True,
        prefilter: bool = False,
        prefilter_keep: Optional[float] = None,
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = dict(
            query=query,
            top=top,
            method=method,
            params=params,
            exclude_self=exclude_self,
        )
        # only opt-in requests carry prefilter fields, so default
        # request lines (and responses) stay byte-identical
        if prefilter:
            payload["prefilter"] = True
            if prefilter_keep is not None:
                payload["prefilter_keep"] = prefilter_keep
        return self.request("search", **payload)["result"]

    def register_pdb(
        self, name: str, pdb_text: str, corpus: bool = False
    ) -> Dict[str, Any]:
        return self.request(
            "register", name=name, pdb=pdb_text, corpus=corpus
        )["result"]

    def submit_matrix(
        self,
        dataset: Optional[str] = None,
        method: Optional[str] = None,
        runs_dir: Optional[str] = None,
        params: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        return self.request(
            "submit-matrix",
            dataset=dataset,
            method=method,
            runs_dir=runs_dir,
            params=params,
        )["result"]

    def status(
        self, run_id: Optional[str] = None, runs_dir: Optional[str] = None
    ) -> Dict[str, Any]:
        """Progress of one durable run, or — without ``run_id`` — the
        service-level status (corpus, matrix store, background jobs)."""
        return self.request("status", run_id=run_id, runs_dir=runs_dir)["result"]

    def matstore_build(self, root: Optional[str] = None) -> Dict[str, Any]:
        """Build (or prefix-extend) the matrix store over the corpus, in
        the background; poll :meth:`status` for completion."""
        return self.request("matstore-build", root=root)["result"]

    def matstore_lookup(self, a: str, b: str) -> Dict[str, Any]:
        """O(1) mmap lookup of a stored pair (all four metrics); raises
        :class:`~repro.service.protocol.NotFound` on a store miss."""
        return self.request("matstore-lookup", a=a, b=b)["result"]

    def corpus(self) -> Dict[str, Any]:
        """The registry's corpus view: ordered hashes + names, plus the
        generation and fingerprint the coordinator partitions against."""
        return self.request("corpus")["result"]

    def healthz(self) -> Dict[str, Any]:
        return self.request("healthz")["result"]

    def metrics(self) -> Dict[str, Any]:
        return self.request("metrics")["result"]

    def shutdown(self, broadcast: bool = False) -> Dict[str, Any]:
        fields: Dict[str, Any] = {}
        if broadcast:
            # coordinator-only: forward the shutdown to every shard first
            fields["broadcast"] = True
        return self.request("shutdown", **fields)["result"]
