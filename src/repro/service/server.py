"""The always-on PSC query service: an asyncio TCP line-protocol server.

One :class:`PSCService` owns the structure registry (corpus loaded once
at startup), the LRU result cache, the dynamic micro-batcher in front of
the :mod:`repro.parallel` farm, and the durable-run bridge into
:mod:`repro.runs`.  Requests and responses are newline-delimited
canonical JSON (see :mod:`repro.service.protocol`).

Supported ops::

    align          pairwise comparison of two registered chains
    search         one-vs-all ranked search of the corpus (optionally
                   restricted to a coordinator-owned target slice)
    register       ad-hoc PDB upload into the registry
    corpus         ordered corpus view (hashes + names + generation +
                   fingerprint) for the shard coordinator
    submit-matrix  enqueue a durable all-vs-all run (repro.runs)
    status         progress/status of a durable run
    healthz        liveness + corpus summary
    metrics        counters, gauges, latency histograms, cache stats
    shutdown       stop serving (replies first, then exits)

Overload degrades gracefully: admission control on the batch queue sheds
excess jobs with a typed ``overloaded`` reply while everything already
admitted completes; repeated queries are served from the result cache
byte-identically to their first, uncached responses.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.parallel import ParallelConfig, RetryPolicy
from repro.service.batcher import MicroBatcher
from repro.service.cache import ResultCache, pair_key
from repro.service.metrics import ServiceMetrics
from repro.service.protocol import (
    MAX_LINE_BYTES,
    BadRequest,
    NotFound,
    ServiceError,
    ServiceOverloaded,
    decode_line,
    encode_line,
    error_response,
    ok_response,
    parse_fraction,
    parse_positive_int,
    resolve_method,
)
from repro.service.registry import StructureRegistry

__all__ = ["LineProtocolServer", "ServiceConfig", "PSCService"]


@dataclass(frozen=True)
class ServiceConfig:
    """Every knob of one service instance."""

    dataset: str = "ck34-mini"  # corpus loaded at startup ("" = start empty)
    host: str = "127.0.0.1"
    port: int = 0  # 0 = pick a free port (recorded on PSCService.port)
    queue_limit: int = 64  # admission control: max pending pair jobs
    max_batch: int = 16  # jobs per dispatched kernel batch
    batch_window: float = 0.002  # seconds to wait for a batch to fill
    max_batch_cost: float = 0.0  # predicted-seconds batch budget (0 = off)
    workers: int = 0  # farm processes per batch (<=1 = in-process)
    chunk: int = 0  # farm chunk size (0 = auto)
    retries: int = 0  # farm retry policy (0 = fail fast)
    backoff: float = 0.05
    adaptive: bool = True  # farm adaptive worker sizing
    shm: bool = True  # shared-memory dataset plane for farm batches
    cache_capacity: int = 1024  # LRU result-cache entries
    runs_dir: str = "runs"  # durable store for submit-matrix
    matstore_dir: str = ""  # precomputed matrix store root ("" = none)
    eval_delay: float = 0.0  # test/CI knob: sleep per batch dispatch

    def farm_config(self) -> ParallelConfig:
        retry = (
            RetryPolicy(max_retries=self.retries, backoff_seconds=self.backoff)
            if self.retries > 0
            else None
        )
        return ParallelConfig(
            workers=self.workers,
            chunk=self.chunk,
            retry=retry,
            adaptive=self.adaptive,
            shm=self.shm,
        )


def _require_str(payload: Dict[str, Any], field: str) -> str:
    value = payload.get(field)
    if not isinstance(value, str) or not value:
        raise BadRequest(f"request needs a non-empty string field {field!r}")
    return value


class LineProtocolServer:
    """The TCP front end shared by one-node services and the coordinator.

    Owns the asyncio server lifecycle and the per-connection request
    loop: newline-delimited canonical-JSON requests dispatched through
    ``self._ops`` (op name -> async handler returning ``(result,
    cached)``), every failure mapped onto a typed wire error, per-op
    latency observed into ``self.metrics``.  Subclasses define the ops;
    :class:`PSCService` adds the registry/batcher plumbing, the shard
    coordinator adds fan-out plumbing — the wire behaviour is one
    implementation, so a client (or the coordinator itself) cannot tell
    which kind of server answered.
    """

    def __init__(self, host: str, port: int, metrics: ServiceMetrics) -> None:
        self.host = host
        self.port = port
        self._bind = (host, port)
        self.metrics = metrics
        self._ops: Dict[str, Any] = {}
        self._server: Optional[asyncio.base_events.Server] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._conn_writers: set = set()

    # -- lifecycle ---------------------------------------------------------
    async def _on_start(self) -> None:
        """Subclass hook, awaited before the listening socket opens."""

    async def _aclose_extra(self) -> None:
        """Subclass hook, awaited between closing the listener and
        waiting for it to drain."""

    async def start(self) -> None:
        self._stop_event = asyncio.Event()
        await self._on_start()
        self._server = await asyncio.start_server(
            self._handle_connection,
            self._bind[0],
            self._bind[1],
            limit=MAX_LINE_BYTES,
        )
        self.host, self.port = self._server.sockets[0].getsockname()[:2]

    async def serve_until_stopped(self) -> None:
        """Block until a ``shutdown`` request (or :meth:`request_stop`)."""
        assert self._stop_event is not None, "start() first"
        await self._stop_event.wait()
        await asyncio.sleep(0.05)  # let the shutdown reply flush

    def request_stop(self) -> None:
        if self._stop_event is not None:
            self._stop_event.set()

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
        # sever live connections too: closing only the listener would
        # leave pooled peers (e.g. a coordinator's shard connections)
        # talking to a server that is supposed to be gone
        for writer in list(self._conn_writers):
            with contextlib.suppress(ConnectionError, RuntimeError):
                writer.close()
        await self._aclose_extra()
        if self._server is not None:
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(self._server.wait_closed(), timeout=0.5)
            self._server = None

    async def __aenter__(self):
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.aclose()

    # -- connection handling -----------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.metrics.inc("connections")
        self._conn_writers.add(writer)
        write_lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    response = error_response(
                        None, BadRequest("request line too long")
                    )
                    async with write_lock:
                        writer.write(encode_line(response))
                        await writer.drain()
                    break
                if not line:
                    break
                task = asyncio.ensure_future(
                    self._serve_request(line, writer, write_lock)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        except ConnectionError:
            pass
        finally:
            self._conn_writers.discard(writer)
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            writer.close()
            with contextlib.suppress(ConnectionError):
                await writer.wait_closed()

    async def _serve_request(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        request_id: Any = None
        op = "unknown"
        t0 = time.perf_counter()
        try:
            payload = decode_line(line)
            request_id = payload.get("id")
            op = payload.get("op") or "unknown"
            handler = self._ops.get(op)
            if handler is None:
                raise BadRequest(
                    f"unknown op {op!r}; known: {sorted(self._ops)}"
                )
            self.metrics.inc(f"requests_{op}")
            result, cached = await handler(payload)
            response = ok_response(request_id, result, cached)
        except Exception as exc:  # every failure maps onto the wire
            code = exc.code if isinstance(exc, ServiceError) else "internal"
            self.metrics.inc(f"errors_{code}")
            response = error_response(request_id, exc)
        self.metrics.observe(f"op_{op}", time.perf_counter() - t0)
        async with write_lock:
            with contextlib.suppress(ConnectionError, RuntimeError):
                writer.write(encode_line(response))
                await writer.drain()


class PSCService(LineProtocolServer):
    """One server instance: registry + cache + batcher + TCP front end."""

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        registry: Optional[StructureRegistry] = None,
        evaluate=None,
    ) -> None:
        self.config = config or ServiceConfig()
        super().__init__(self.config.host, self.config.port, ServiceMetrics())
        self.cache = ResultCache(self.config.cache_capacity)
        self.registry = registry or StructureRegistry()
        if self.config.dataset and registry is None:
            from repro.datasets.registry import load_dataset

            self.registry.load_dataset(load_dataset(self.config.dataset))
        self.batcher = MicroBatcher(
            queue_limit=self.config.queue_limit,
            max_batch=self.config.max_batch,
            batch_window=self.config.batch_window,
            max_batch_cost=self.config.max_batch_cost,
            farm_config=self.config.farm_config(),
            metrics=self.metrics,
            evaluate=evaluate,
            eval_delay=self.config.eval_delay,
        )
        # run_id -> (thread, {"error": ...}) for submit-matrix background runs
        self._matrix_jobs: Dict[str, Tuple[threading.Thread, Dict[str, Any]]] = {}
        # (corpus hashes, keep) -> SequencePrefilter; rebuilt only when a
        # registration changes the corpus or a request changes the knob
        self._prefilters: Dict[Tuple[Tuple[str, ...], float], Any] = {}
        # precomputed similarity-matrix store: reader instance swapped
        # whole after every build/extend, writes serialized by the lock
        self.matstore = None
        self._matstore_lock = threading.Lock()
        self._matstore_job: Optional[Tuple[threading.Thread, Dict[str, Any]]] = None
        if self.config.matstore_dir:
            from repro.matstore import MatrixStore, MatStoreError

            try:
                self.matstore = MatrixStore.open(self.config.matstore_dir)
            except MatStoreError:
                pass  # not built yet; matstore-build creates it
        # long-lived shared-memory plane over the registered corpus: one
        # pin per corpus generation, re-pinned on corpus registration
        self._corpus_plane = None
        self._refresh_corpus_plane()
        self._ops = {
            "align": self._op_align,
            "search": self._op_search,
            "register": self._op_register,
            "corpus": self._op_corpus,
            "submit-matrix": self._op_submit_matrix,
            "matstore-build": self._op_matstore_build,
            "matstore-lookup": self._op_matstore_lookup,
            "status": self._op_status,
            "healthz": self._op_healthz,
            "metrics": self._op_metrics,
            "shutdown": self._op_shutdown,
        }

    # -- lifecycle ---------------------------------------------------------
    async def _on_start(self) -> None:
        self.batcher.start()

    async def _aclose_extra(self) -> None:
        await self.batcher.stop()
        if self._corpus_plane is not None:
            from repro.parallel import shmplane

            shmplane.release(self._corpus_plane)
            self._corpus_plane = None

    # -- pair evaluation with cache ----------------------------------------
    def _store_scores(
        self, hash_a: str, hash_b: str, method_name: str, params_hash: str
    ) -> Optional[Dict[str, float]]:
        """Matrix-store consult for one pair, or None on a miss.

        Serves only the store's own orientation (TM-align is
        direction-dependent) and only methods/params the store was built
        with; every consult of a servable pair counts a hit or a miss.
        """
        store = self.matstore
        if store is None:
            return None
        from repro.matstore.store import SERVABLE_KEYS

        keys = SERVABLE_KEYS.get(method_name)
        if keys is None or params_hash != store.params_hash:
            return None
        hit = store.lookup(hash_a, hash_b)
        if hit is None or hit.swapped:
            self.metrics.inc("matstore_misses")
            return None
        self.metrics.inc("matstore_hits")
        return {k: hit.scores[k] for k in keys}

    async def _pair_body(
        self,
        hash_a: str,
        chain_a,
        hash_b: str,
        chain_b,
        method,
        method_name: str,
        params_hash: str,
    ) -> Tuple[str, bool]:
        """The canonical body for one pair: result cache, then the
        precomputed matrix store, then batched compute."""
        from repro.service.protocol import canonical_json

        key = pair_key(hash_a, hash_b, method_name, params_hash)
        body = self.cache.get(key)
        if body is not None:
            return body, True
        scores = self._store_scores(hash_a, hash_b, method_name, params_hash)
        if scores is not None:
            # same shape as the batcher's result_body: store hits are
            # byte-identical across requests and server restarts
            body = canonical_json(
                {
                    "pair": [hash_a, hash_b],
                    "method": method_name,
                    "params_hash": params_hash,
                    "scores": scores,
                    "score": method.similarity(scores),
                }
            )
            self.cache.put(key, body)
            self.metrics.set_gauge("cache_size", len(self.cache))
            return body, True
        body = await self.batcher.submit(key, chain_a, chain_b, method)
        self.cache.put(key, body)
        self.metrics.set_gauge("cache_size", len(self.cache))
        return body, False

    # -- ops ---------------------------------------------------------------
    async def _op_align(self, payload: Dict[str, Any]):
        method_name = payload.get("method", "tmalign")
        method, params_hash = resolve_method(method_name, payload.get("params"))
        hash_a, chain_a = self.registry.resolve(_require_str(payload, "a"))
        hash_b, chain_b = self.registry.resolve(_require_str(payload, "b"))
        body, cached = await self._pair_body(
            hash_a, chain_a, hash_b, chain_b, method, method_name, params_hash
        )
        return json.loads(body), cached

    def _corpus_prefilter(self, keep: float):
        """The cached sequence prefilter for the current corpus."""
        from repro.seqalign.prefilter import PrefilterConfig, SequencePrefilter

        hashes = tuple(h for h, _c in self.registry.corpus())
        key = (hashes, keep)
        pf = self._prefilters.get(key)
        if pf is None:
            chains = [c for _h, c in self.registry.corpus()]
            pf = SequencePrefilter.from_chains(
                chains, PrefilterConfig(keep=keep)
            )
            # keep one corpus generation at a time: a registration
            # changes the hash tuple and drops every stale filter
            self._prefilters = {
                k: v for k, v in self._prefilters.items() if k[0] == hashes
            }
            self._prefilters[key] = pf
            self.metrics.inc("prefilter_builds")
        return pf

    async def _op_search(self, payload: Dict[str, Any]):
        from repro.psc.search import rank_hits
        from repro.seqalign.prefilter import PrefilterConfig

        method_name = payload.get("method", "tmalign")
        method, params_hash = resolve_method(method_name, payload.get("params"))
        top = parse_positive_int(payload, "top", 10)
        use_prefilter = bool(payload.get("prefilter", False))
        keep = parse_fraction(
            payload, "prefilter_keep", PrefilterConfig.keep
        )
        hash_q, chain_q = self.registry.resolve(_require_str(payload, "query"))
        exclude_self = bool(payload.get("exclude_self", True))
        raw_targets = payload.get("targets")
        if raw_targets is not None:
            # shard-partitioned search: the coordinator restricts each
            # shard to the slice of the corpus it owns; everything else
            # (cache, batcher, ranking) is the single-node path
            if not isinstance(raw_targets, list) or not all(
                isinstance(t, str) and t for t in raw_targets
            ):
                raise BadRequest(
                    "targets must be a list of non-empty chain references"
                )
            seen: set = set()
            targets = []
            for ref in raw_targets:
                h, c = self.registry.resolve(ref)
                if h in seen or (exclude_self and h == hash_q):
                    continue
                seen.add(h)
                targets.append((h, c))
            if not targets:
                # an empty slice is a valid sub-search (e.g. the slice
                # held only the query itself): report zero candidates so
                # the coordinator's merge stays total
                return (
                    {
                        "query": hash_q,
                        "method": method_name,
                        "params_hash": params_hash,
                        "corpus": 0,
                        "from_cache": 0,
                        "hits": [],
                    },
                    True,
                )
        else:
            targets = [
                (h, c)
                for h, c in self.registry.corpus()
                if not (exclude_self and h == hash_q)
            ]
        if not targets:
            raise BadRequest("the search corpus is empty")
        eligible = len(targets)
        if use_prefilter:
            # the cheap tier runs BEFORE admission: pairs it sheds never
            # occupy micro-batcher slots or kernel batch lanes
            pf = self._corpus_prefilter(keep)
            corpus = self.registry.corpus()
            allowed = {h for h, _c in targets}
            excluded = {
                k
                for k, (h, _c) in enumerate(corpus)
                if h not in allowed
            }
            promoted = set(
                pf.promote_chain(chain_q, exclude=excluded)
            )
            targets = [
                (h, c)
                for k, (h, c) in enumerate(corpus)
                if k in promoted
            ]
            self.metrics.inc("prefilter_searches")
            self.metrics.inc(
                "prefilter_demoted", eligible - len(targets)
            )
        outcomes = await asyncio.gather(
            *(
                self._pair_body(
                    hash_q, chain_q, h, c, method, method_name, params_hash
                )
                for h, c in targets
            ),
            return_exceptions=True,
        )
        shed = sum(1 for r in outcomes if isinstance(r, ServiceOverloaded))
        if shed:
            raise ServiceOverloaded(
                f"search shed {shed}/{len(targets)} pair jobs at admission; "
                "retry later"
            )
        for r in outcomes:
            if isinstance(r, BaseException):
                raise r
        rows = []
        hash_by_name: Dict[str, str] = {}
        n_cached = 0
        for (h, _c), (body, cached) in zip(targets, outcomes):
            name = self.registry.name_of(h)
            rows.append((name, json.loads(body)["scores"]))
            hash_by_name[name] = h
            n_cached += bool(cached)
        hits = rank_hits(rows, method)
        result = {
            "query": hash_q,
            "method": method_name,
            "params_hash": params_hash,
            "corpus": len(targets),
            "from_cache": n_cached,
            "hits": [
                {
                    "chain": hit.chain_name,
                    "hash": hash_by_name[hit.chain_name],
                    "score": hit.score,
                    "scores": hit.details,
                }
                for hit in hits[:top]
            ],
        }
        if use_prefilter:
            # additive key only on the opt-in path: default responses
            # stay byte-identical under canonical JSON
            result["corpus"] = eligible
            result["prefilter"] = {
                "keep": keep,
                "promoted": len(targets),
                "demoted": eligible - len(targets),
            }
        return result, n_cached == len(targets)

    def corpus_dataset(self):
        """The registry corpus as a ``(Dataset, content_hashes)`` pair.

        One construction shared by matstore builds and the corpus plane,
        so every surface agrees on dataset identity — and therefore on
        the plane fingerprint.  Raises ``ValueError`` when the corpus is
        empty or holds duplicate chain names (callers decide whether
        that is an error or just "no plane").
        """
        from repro.datasets.registry import Dataset

        corpus = self.registry.corpus()
        dataset = Dataset(
            self.registry.dataset_name or "service-corpus",
            tuple(chain for _h, chain in corpus),
            "service registry corpus",
        )
        return dataset, tuple(h for h, _c in corpus)

    def _refresh_corpus_plane(self) -> None:
        """(Re-)pin the long-lived corpus plane after a corpus change.

        One plane per registered-corpus generation: the batcher's corpus
        fast path resolves batch jobs against this dataset, so every
        micro-batch attaches to the same live segment instead of
        serializing an ad-hoc corpus per batch.  The previous
        generation's pin is released (the LRU or the atexit backstop
        unlinks it); any failure just leaves the pickle path in charge.
        """
        old = self._corpus_plane
        self._corpus_plane = None
        dataset = None
        hashes: tuple = ()
        if self.config.workers > 1 and self.config.shm:
            try:
                dataset, hashes = self.corpus_dataset()
            except Exception:
                dataset = None
            if dataset is not None:
                from repro.parallel import shmplane

                self._corpus_plane = shmplane.plane_for(dataset)
        if self._corpus_plane is not None:
            self.batcher.set_corpus(dataset, hashes)
        else:
            self.batcher.set_corpus(None, ())
        if old is not None:
            from repro.parallel import shmplane

            shmplane.release(old)

    async def _op_register(self, payload: Dict[str, Any]):
        name = _require_str(payload, "name")
        text = _require_str(payload, "pdb")
        corpus = bool(payload.get("corpus", False))
        chain_hash = self.registry.register_pdb(text, name, corpus=corpus)
        _, chain = self.registry.resolve(chain_hash)
        if corpus:
            # the corpus generation changed: invalidate + re-pin the
            # shared plane so the next batch attaches to fresh content
            self._refresh_corpus_plane()
        self.metrics.inc("chains_registered")
        result = {
            "hash": chain_hash,
            "name": name,
            "residues": len(chain),
            "corpus": corpus,
        }
        if corpus and self.matstore is not None:
            # additive key only when a store is attached, so default
            # register responses stay byte-identical
            result["matstore"] = (
                "stored"
                if chain_hash in self.matstore
                else self._extend_matstore_async(chain_hash)
            )
        return result, None

    async def _op_corpus(self, payload: Dict[str, Any]):
        """The registry's corpus view, in registration order.

        This is what the shard coordinator partitions: ordered content
        hashes plus display names, stamped with the registry generation
        and corpus fingerprint so a cached view is revalidatable without
        re-reading the chain list.
        """
        return (
            {
                "dataset": self.registry.dataset_name,
                "generation": self.registry.generation,
                "fingerprint": self.registry.corpus_fingerprint(),
                "chains": [
                    {"hash": h, "name": self.registry.name_of(h)}
                    for h, _c in self.registry.corpus()
                ],
            },
            None,
        )

    # -- matrix store ------------------------------------------------------
    def _matstore_root(self) -> str:
        if self.config.matstore_dir:
            return self.config.matstore_dir
        if self.matstore is not None:
            return self.matstore.root
        return ""

    def _extend_matstore_async(self, chain_hash: str) -> str:
        """Kick off the incremental row computation for one new corpus
        chain: exactly ``n`` new pairs, journaled then appended at the
        block tails, behind the store writer lock."""
        root = self._matstore_root()

        def work() -> None:
            from repro.matstore import MatrixStore, extend_store

            try:
                with self._matstore_lock:
                    store = MatrixStore.open(root)
                    if chain_hash in store:
                        return
                    corpus = [self.registry.resolve(h)[1] for h in store.hashes]
                    _h, chain = self.registry.resolve(chain_hash)
                    extend_store(
                        store, corpus, chain, config=self.config.farm_config()
                    )
                    # reopen-and-swap inside the lock: with concurrent
                    # extends, an open outside could capture a pre-commit
                    # header and publish a stale reader after a newer one
                    self.matstore = MatrixStore.open(root)
                self.metrics.inc("matstore_extends")
            except BaseException as exc:
                self.metrics.inc("matstore_extend_errors")
                self._matstore_last_error = f"{type(exc).__name__}: {exc}"

        thread = threading.Thread(
            target=work, name=f"matstore-extend-{chain_hash[:8]}", daemon=True
        )
        thread.start()
        return "extending"

    async def _op_matstore_build(self, payload: Dict[str, Any]):
        root = payload.get("root") or self._matstore_root()
        if not root:
            raise BadRequest(
                "no matrix store root: pass 'root' or start the server "
                "with --matstore-dir"
            )
        if not self.registry.corpus():
            raise BadRequest("the registry corpus is empty; nothing to build")
        if self._matstore_job is not None and self._matstore_job[0].is_alive():
            raise BadRequest("a matstore build is already running")
        dataset, _hashes = self.corpus_dataset()
        n = len(dataset)
        outcome: Dict[str, Any] = {"error": None, "result": None}
        farm_config = self.config.farm_config()

        def work() -> None:
            from repro.matstore import MatrixStore, ensure_coverage

            try:
                with self._matstore_lock:
                    r = ensure_coverage(root, dataset, config=farm_config)
                    # swap under the lock, same reasoning as extend
                    self.matstore = MatrixStore.open(root)
                outcome["result"] = {
                    "n_pairs": r.n_pairs,
                    "n_computed": r.n_computed,
                    "wall_seconds": round(r.wall_seconds, 3),
                }
            except BaseException as exc:
                outcome["error"] = f"{type(exc).__name__}: {exc}"

        thread = threading.Thread(
            target=work, name="matstore-build", daemon=True
        )
        self._matstore_job = (thread, outcome)
        thread.start()
        self.metrics.inc("matstore_builds_submitted")
        return (
            {
                "root": root,
                "dataset": dataset.name,
                "n_chains": n,
                "n_pairs": n * (n - 1) // 2,
                "building": True,
            },
            None,
        )

    async def _op_matstore_lookup(self, payload: Dict[str, Any]):
        store = self.matstore
        if store is None:
            raise BadRequest(
                "no matrix store attached; run matstore-build first "
                "(server started with --matstore-dir)"
            )
        hash_a, _a = self.registry.resolve(_require_str(payload, "a"))
        hash_b, _b = self.registry.resolve(_require_str(payload, "b"))
        hit = store.lookup(hash_a, hash_b)
        if hit is None:
            self.metrics.inc("matstore_misses")
            raise NotFound(
                f"pair ({hash_a[:12]}..., {hash_b[:12]}...) is not in the "
                "matrix store"
            )
        self.metrics.inc("matstore_hits")
        return (
            {
                "pair": [hash_a, hash_b],
                "swapped": hit.swapped,
                "method": store.method,
                "params_hash": store.params_hash,
                "scores": hit.scores,
            },
            None,
        )

    def _matstore_summary(self) -> Dict[str, Any]:
        """Store stats + lookup counters for ``status`` and ``metrics``."""
        out: Dict[str, Any] = {"attached": self.matstore is not None}
        root = self._matstore_root()
        if root:
            out["root"] = root
        if self.matstore is not None:
            out.update(self.matstore.stats())
        counters = self.metrics.snapshot().get("counters", {})
        out["lookup_hits"] = counters.get("matstore_hits", 0)
        out["lookup_misses"] = counters.get("matstore_misses", 0)
        job = self._matstore_job
        if job is not None:
            out["building"] = job[0].is_alive()
            if job[1]["error"]:
                out["error"] = job[1]["error"]
            elif job[1]["result"] and not job[0].is_alive():
                out["last_build"] = job[1]["result"]
        last = getattr(self, "_matstore_last_error", None)
        if last:
            out["extend_error"] = last
        return out

    async def _op_submit_matrix(self, payload: Dict[str, Any]):
        from repro.datasets.registry import load_dataset
        from repro.runs import RunStore, matrix_run

        dataset_name = payload.get("dataset") or self.config.dataset
        method_name = payload.get("method", "sse_composition")
        method, _params_hash = resolve_method(method_name, payload.get("params"))
        try:
            dataset = load_dataset(dataset_name)
        except KeyError as exc:
            raise BadRequest(str(exc.args[0])) from None
        store = RunStore(payload.get("runs_dir") or self.config.runs_dir)
        run_id = store.new_run_id("service-matrix")
        output = os.path.join(store.run_dir(run_id), "matrix.csv")
        outcome: Dict[str, Any] = {"error": None}
        farm_config = self.config.farm_config()

        def work() -> None:
            try:
                matrix_run(
                    dataset, method, output, store,
                    run_id=run_id, config=farm_config,
                )
            except BaseException as exc:
                outcome["error"] = f"{type(exc).__name__}: {exc}"

        thread = threading.Thread(
            target=work, name=f"service-{run_id}", daemon=True
        )
        self._matrix_jobs[run_id] = (thread, outcome)
        thread.start()
        self.metrics.inc("matrix_runs_submitted")
        n = len(dataset)
        return (
            {
                "run_id": run_id,
                "dataset": dataset.name,
                "method": method_name,
                "n_pairs": n * (n - 1) // 2,
                "output": output,
            },
            None,
        )

    async def _op_status(self, payload: Dict[str, Any]):
        from repro.runs import RunStore, RunStoreError

        if not payload.get("run_id"):
            # service-level status: corpus + matrix store + background jobs
            return (
                {
                    "status": "ok",
                    "dataset": self.registry.dataset_name,
                    "corpus": len(self.registry.corpus()),
                    "chains": len(self.registry),
                    "registry_generation": self.registry.generation,
                    "corpus_fingerprint": self.registry.corpus_fingerprint(),
                    "matstore": self._matstore_summary(),
                    "matrix_runs": {
                        run_id: (
                            "running"
                            if thread.is_alive()
                            else ("failed" if outcome["error"] else "done")
                        )
                        for run_id, (thread, outcome) in sorted(
                            self._matrix_jobs.items()
                        )
                    },
                },
                None,
            )
        run_id = _require_str(payload, "run_id")
        runs_dir = payload.get("runs_dir") or self.config.runs_dir
        store = RunStore(runs_dir)
        job = self._matrix_jobs.get(run_id)
        try:
            run = store.open(run_id)
        except RunStoreError:
            if job is not None:  # submitted, directory not created yet
                return {"run_id": run_id, "status": "starting"}, None
            raise NotFound(f"no run {run_id!r} under {runs_dir!r}") from None
        done, total = run.progress()
        result = {
            "run_id": run_id,
            "status": run.manifest.status,
            "command": run.manifest.command,
            "dataset": run.manifest.dataset,
            "method": run.manifest.method,
            "done": done,
            "n_pairs": total,
        }
        if job is not None and job[1]["error"]:
            result["error"] = job[1]["error"]
        return result, None

    async def _op_healthz(self, payload: Dict[str, Any]):
        return (
            {
                "status": "ok",
                "dataset": self.registry.dataset_name,
                "corpus": len(self.registry.corpus()),
                "chains": len(self.registry),
                # generation + fingerprint let the coordinator (and
                # operators) detect shard/registry drift from liveness
                # probes alone
                "registry_generation": self.registry.generation,
                "corpus_fingerprint": self.registry.corpus_fingerprint(),
                "uptime_seconds": round(self.metrics.uptime_seconds, 3),
                "pid": os.getpid(),
            },
            None,
        )

    async def _op_metrics(self, payload: Dict[str, Any]):
        snap = self.metrics.snapshot()
        snap["cache"] = self.cache.stats()
        snap["registry"] = self.registry.stats()
        snap["queue"] = {
            "depth": self.batcher.depth,
            "limit": self.config.queue_limit,
            "max_batch": self.config.max_batch,
            "batch_window_seconds": self.config.batch_window,
        }
        snap["matrix_runs"] = {
            run_id: (
                "running"
                if thread.is_alive()
                else ("failed" if outcome["error"] else "done")
            )
            for run_id, (thread, outcome) in sorted(self._matrix_jobs.items())
        }
        snap["matstore"] = self._matstore_summary()
        return snap, None

    async def _op_shutdown(self, payload: Dict[str, Any]):
        self.request_stop()
        return {"stopping": True}, None
