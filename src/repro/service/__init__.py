"""Always-on PSC query service: registry, micro-batching, caching, serving.

The paper's rckAlign is a one-shot batch job; this package is the
long-lived server the ROADMAP's query-vs-corpus workloads need.  It
loads a structure corpus once into a content-hash
:class:`StructureRegistry`, coalesces concurrent ``align``/``search``
requests through a :class:`MicroBatcher` into batches dispatched to the
:mod:`repro.parallel` farm, memoizes pair results in a
:class:`ResultCache` (byte-identical responses on hit), bridges
``submit-matrix`` requests into durable :mod:`repro.runs` runs, and
serves it all over a stdlib asyncio TCP line protocol with admission
control — overload sheds typed :class:`ServiceOverloaded` replies
instead of stalling.

Start a server with ``python -m repro.cli serve``; talk to it with
``python -m repro.cli query ...`` or :class:`ServiceClient`.
"""

from repro.service.batcher import MicroBatcher, PairJob, result_body
from repro.service.cache import ResultCache, pair_key
from repro.service.client import ServiceClient, backoff_delays
from repro.service.loadgen import LoadgenConfig, generate_plan, run_load
from repro.service.metrics import LatencyHistogram, ServiceMetrics, percentile
from repro.service.protocol import (
    BadRequest,
    NotFound,
    ServiceError,
    ServiceOverloaded,
    ServiceUnavailable,
    canonical_json,
    resolve_method,
)
from repro.service.registry import StructureRegistry, chain_content_hash
from repro.service.server import LineProtocolServer, PSCService, ServiceConfig
from repro.service.shard import (
    AsyncShardConnection,
    CoordinatorConfig,
    ShardCoordinator,
    parse_shard_spec,
    partition_keys,
    rendezvous_owner,
    rendezvous_rank,
)

__all__ = [
    "AsyncShardConnection",
    "BadRequest",
    "CoordinatorConfig",
    "LatencyHistogram",
    "LineProtocolServer",
    "LoadgenConfig",
    "MicroBatcher",
    "NotFound",
    "PSCService",
    "PairJob",
    "ResultCache",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceMetrics",
    "ServiceOverloaded",
    "ServiceUnavailable",
    "ShardCoordinator",
    "StructureRegistry",
    "backoff_delays",
    "canonical_json",
    "chain_content_hash",
    "generate_plan",
    "pair_key",
    "parse_shard_spec",
    "partition_keys",
    "percentile",
    "rendezvous_owner",
    "rendezvous_rank",
    "resolve_method",
    "result_body",
    "run_load",
]
