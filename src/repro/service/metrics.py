"""In-process service metrics: counters, gauges, latency histograms.

Everything is plain dict/float state updated from the event loop (no
locks needed: the asyncio server mutates metrics only between awaits),
snapshotted into the JSON the ``metrics`` op returns.  Histograms use
fixed logarithmic millisecond buckets so the snapshot is stable and
diffable across runs.
"""

from __future__ import annotations

import math
import time
from collections import defaultdict
from typing import Dict, Sequence

__all__ = ["LatencyHistogram", "ServiceMetrics", "percentile"]


def percentile(samples: Sequence[float], q: float) -> float:
    """Exact ``q``-quantile (``0 <= q <= 1``) with linear interpolation.

    The load generator keeps raw per-request latencies, so its p50/p99
    come from the samples themselves — no histogram-bucket rounding.
    Returns 0.0 for an empty sample set.
    """
    if not samples:
        return 0.0
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    ordered = sorted(samples)
    pos = q * (len(ordered) - 1)
    lo = math.floor(pos)
    hi = math.ceil(pos)
    if lo == hi:
        return float(ordered[lo])
    frac = pos - lo
    return float(ordered[lo] * (1.0 - frac) + ordered[hi] * frac)

#: histogram bucket upper bounds, milliseconds
BUCKET_BOUNDS_MS = (1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000)


class LatencyHistogram:
    """Fixed-bucket latency histogram (milliseconds)."""

    def __init__(self) -> None:
        self.bucket_counts = [0] * (len(BUCKET_BOUNDS_MS) + 1)
        self.count = 0
        self.sum_ms = 0.0
        self.max_ms = 0.0

    def observe(self, seconds: float) -> None:
        ms = seconds * 1e3
        self.count += 1
        self.sum_ms += ms
        self.max_ms = max(self.max_ms, ms)
        for idx, bound in enumerate(BUCKET_BOUNDS_MS):
            if ms <= bound:
                self.bucket_counts[idx] += 1
                return
        self.bucket_counts[-1] += 1

    def snapshot(self) -> Dict[str, object]:
        buckets = {
            f"le_{bound}ms": n
            for bound, n in zip(BUCKET_BOUNDS_MS, self.bucket_counts)
        }
        buckets["le_inf"] = self.bucket_counts[-1]
        return {
            "count": self.count,
            "sum_ms": round(self.sum_ms, 3),
            "mean_ms": round(self.sum_ms / self.count, 3) if self.count else 0.0,
            "max_ms": round(self.max_ms, 3),
            "buckets": buckets,
        }


class ServiceMetrics:
    """Counters + gauges + per-op latency histograms."""

    def __init__(self) -> None:
        self.started_at = time.time()
        self.counters: Dict[str, int] = defaultdict(int)
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, LatencyHistogram] = defaultdict(LatencyHistogram)

    def inc(self, name: str, amount: int = 1) -> None:
        self.counters[name] += amount

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def observe(self, name: str, seconds: float) -> None:
        self.histograms[name].observe(seconds)

    @property
    def uptime_seconds(self) -> float:
        return time.time() - self.started_at

    def snapshot(self) -> Dict[str, object]:
        return {
            "uptime_seconds": round(self.uptime_seconds, 3),
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "latency": {
                name: hist.snapshot()
                for name, hist in sorted(self.histograms.items())
            },
        }
