"""Wire protocol of the PSC query service.

The service speaks newline-delimited JSON over TCP: each request is one
JSON object on one line, each response is one JSON object on one line.
Both are serialized *canonically* (sorted keys, compact separators), so
two responses carrying the same payload are byte-identical — the
property the result cache's hit-vs-recompute guarantee rests on.

Request shape::

    {"id": <any>, "op": "align", ...op-specific fields...}

Response shape::

    {"id": <echoed>, "ok": true,  "cached": <bool?>, "result": {...}}
    {"id": <echoed>, "ok": false, "error": {"code": ..., "message": ...}}

Error codes are stable strings (``overloaded``, ``bad-request``,
``not-found``, ``unavailable``, ``internal``); the client library maps
them back to the typed exceptions below, so a saturated server surfaces
as a :class:`ServiceOverloaded` in the caller, not as a parse job.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Optional, Tuple

from repro.psc.base import PSCMethod

__all__ = [
    "MAX_LINE_BYTES",
    "ServiceError",
    "BadRequest",
    "NotFound",
    "ServiceOverloaded",
    "ServiceUnavailable",
    "canonical_json",
    "encode_line",
    "decode_line",
    "ok_response",
    "error_response",
    "resolve_method",
    "parse_positive_int",
    "parse_fraction",
]

#: upper bound on one protocol line (requests carry whole PDB uploads)
MAX_LINE_BYTES = 8 * 1024 * 1024


class ServiceError(RuntimeError):
    """Base of all typed service failures; ``code`` goes on the wire."""

    code = "internal"

    def to_wire(self) -> Dict[str, str]:
        return {"code": self.code, "message": str(self)}


class BadRequest(ServiceError):
    """The request is malformed (unknown op, missing field, bad value)."""

    code = "bad-request"


class NotFound(ServiceError):
    """A referenced chain or run does not exist in the registry/store."""

    code = "not-found"


class ServiceOverloaded(ServiceError):
    """Admission control shed this request: the batch queue is full.

    The reply is typed so clients can distinguish "busy, retry later"
    from a real failure; the server keeps serving everything already
    admitted.
    """

    code = "overloaded"


class ServiceUnavailable(ServiceError):
    """The service (or a shard behind the coordinator) cannot be reached.

    Raised client-side when bounded reconnect-with-backoff runs out of
    attempts, and coordinator-side when an op cannot complete on any
    healthy shard.  Distinct from :class:`ServiceOverloaded`: the server
    is not shedding load, it is gone.
    """

    code = "unavailable"


#: wire-code -> exception class, for the client-side mapping
ERROR_TYPES: Dict[str, type] = {
    cls.code: cls
    for cls in (
        ServiceError,
        BadRequest,
        NotFound,
        ServiceOverloaded,
        ServiceUnavailable,
    )
}


def canonical_json(obj: Any) -> str:
    """Deterministic JSON: sorted keys, compact separators, no NaN."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), allow_nan=False)


def encode_line(obj: Any) -> bytes:
    """One canonical protocol line, newline-terminated."""
    return canonical_json(obj).encode("utf-8") + b"\n"


def decode_line(line: bytes) -> Dict[str, Any]:
    """Parse one protocol line into a dict; raises :class:`BadRequest`."""
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise BadRequest(f"request is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise BadRequest("request must be a JSON object")
    return payload


def ok_response(
    request_id: Any, result: Any, cached: Optional[bool] = None
) -> Dict[str, Any]:
    out: Dict[str, Any] = {"id": request_id, "ok": True, "result": result}
    if cached is not None:
        out["cached"] = cached
    return out


def error_response(request_id: Any, exc: Exception) -> Dict[str, Any]:
    wire = (
        exc.to_wire()
        if isinstance(exc, ServiceError)
        else {"code": "internal", "message": f"{type(exc).__name__}: {exc}"}
    )
    return {"id": request_id, "ok": False, "error": wire}


def parse_positive_int(
    payload: Dict[str, Any], field: str, default: int
) -> int:
    """A payload field that must be an integer ``>= 1``.

    One typed :class:`BadRequest` per failure mode — wrong JSON type
    (booleans and floats included) or a non-positive value — so clients
    get a one-line error instead of an internal traceback.
    """
    value = payload.get(field, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise BadRequest(
            f"{field} must be an integer, got {type(value).__name__}"
        )
    if value < 1:
        raise BadRequest(f"{field} must be >= 1, got {value}")
    return value


def parse_fraction(
    payload: Dict[str, Any], field: str, default: float
) -> float:
    """A payload field that must be a number in ``(0, 1]``."""
    value = payload.get(field, default)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise BadRequest(
            f"{field} must be a number, got {type(value).__name__}"
        )
    value = float(value)
    if not 0.0 < value <= 1.0:
        raise BadRequest(f"{field} must be in (0, 1], got {value}")
    return value


def _params_hash(payload: Dict[str, Any]) -> str:
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def resolve_method(
    method_name: str, overrides: Optional[Dict[str, Any]] = None
) -> Tuple[PSCMethod, str]:
    """Instantiate a PSC method from wire parameters.

    Returns ``(method, params_hash)`` where ``params_hash`` is a sha256
    over the *fully resolved* parameter set (defaults included), so two
    requests that spell the same effective parameters differently — or
    omit defaults — still share one cache entry, while any changed
    TM-align knob produces a different hash and therefore a cache miss.
    """
    from repro.psc.methods import get_method

    overrides = dict(overrides or {})
    if method_name in ("tmalign", "tmalign_full"):
        from repro.psc.methods import TMAlignFullMethod, TMAlignMethod
        from repro.tmalign.params import TMAlignParams, params_fingerprint

        try:
            params = TMAlignParams(**overrides)
        except (TypeError, ValueError) as exc:
            raise BadRequest(f"bad {method_name} params: {exc}") from None
        cls = TMAlignFullMethod if method_name == "tmalign_full" else TMAlignMethod
        return cls(params=params), params_fingerprint(params)
    try:
        method = get_method(method_name, **overrides)
    except KeyError as exc:
        raise BadRequest(str(exc.args[0])) from None
    except (TypeError, ValueError) as exc:
        raise BadRequest(f"bad {method_name} params: {exc}") from None
    return method, _params_hash({"method": method_name, **overrides})
