"""Open-loop load generator for the PSC service and shard coordinator.

The generator is *open-loop*: request arrival times are drawn up front
from a seeded Poisson process at the configured rate and fired on
schedule regardless of how fast responses come back — exactly the
discipline that exposes queueing collapse, which closed-loop clients
(waiting for each response before sending the next) structurally hide.
Requests spread over a pool of pipelined connections, every response is
classified (ok / shed / error / timeout) with its measured latency, and
the summary reports the numbers the scale-out story is judged on:
p50/p99 latency, completed throughput, shed rate, cache hit ratio.

Because the target speaks the one shared line protocol, the same
generator drives a single :class:`~repro.service.server.PSCService`
or a :class:`~repro.service.shard.ShardCoordinator` front end — the
1-shard vs N-shard comparison in ``bench --service`` is the same
workload aimed at two ports.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

from repro.service.metrics import percentile
from repro.service.protocol import (
    ServiceError,
    ServiceOverloaded,
    ServiceUnavailable,
)
from repro.service.shard import AsyncShardConnection

__all__ = ["LoadgenConfig", "generate_plan", "run_load", "run_load_async"]


@dataclass(frozen=True)
class LoadgenConfig:
    """One open-loop load run against a running service."""

    host: str = "127.0.0.1"
    port: int = 7743
    rate: float = 20.0  # mean arrivals per second (Poisson)
    duration: float = 5.0  # seconds of scheduled arrivals
    clients: int = 8  # pipelined connections round-robined over
    op: str = "align"  # "align" | "search"
    method: str = "tmalign"
    top: int = 5  # search only
    seed: int = 1234  # arrival times + pair sampling
    timeout: float = 30.0  # per-request budget
    drain_timeout: float = 60.0  # wait for in-flight requests at the end

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError("rate must be > 0")
        if self.duration <= 0:
            raise ValueError("duration must be > 0")
        if self.clients < 1:
            raise ValueError("clients must be >= 1")
        if self.op not in ("align", "search"):
            raise ValueError(f"op must be 'align' or 'search', got {self.op!r}")


def generate_plan(
    names: Sequence[str], config: LoadgenConfig
) -> List[Tuple[float, Dict[str, Any]]]:
    """The deterministic request schedule: ``(arrival_offset, payload)``.

    Exponential inter-arrivals (one seeded RNG) make the schedule a
    Poisson process at ``config.rate``; align pairs are sampled
    uniformly without replacement per request, so repeats — and
    therefore measurable cache hits — occur at the natural birthday
    rate for the corpus size.
    """
    if len(names) < 2:
        raise ValueError("the load plan needs at least two corpus chains")
    rng = random.Random(config.seed)
    plan: List[Tuple[float, Dict[str, Any]]] = []
    t = 0.0
    while True:
        t += rng.expovariate(config.rate)
        if t >= config.duration:
            break
        if config.op == "align":
            a, b = rng.sample(list(names), 2)
            payload: Dict[str, Any] = {
                "op": "align",
                "a": a,
                "b": b,
                "method": config.method,
            }
        else:
            payload = {
                "op": "search",
                "query": rng.choice(list(names)),
                "top": config.top,
                "method": config.method,
            }
        plan.append((t, payload))
    return plan


async def run_load_async(
    config: LoadgenConfig, plan: Sequence[Tuple[float, Dict[str, Any]]]
) -> Dict[str, Any]:
    """Fire ``plan`` open-loop at ``config.host:port``; returns the summary."""
    loop = asyncio.get_running_loop()
    conns = [
        AsyncShardConnection(config.host, config.port, timeout=config.timeout)
        for _ in range(config.clients)
    ]
    outcomes: List[Tuple[str, float, bool]] = []  # (kind, seconds, cached)

    async def fire(conn: AsyncShardConnection, payload: Dict[str, Any]) -> None:
        t0 = loop.time()
        try:
            response = await conn.request(payload)
        except ServiceOverloaded:
            outcomes.append(("shed", loop.time() - t0, False))
        except ServiceUnavailable:
            outcomes.append(("unavailable", loop.time() - t0, False))
        except ServiceError:
            outcomes.append(("error", loop.time() - t0, False))
        else:
            outcomes.append(
                ("ok", loop.time() - t0, bool(response.get("cached")))
            )

    tasks: List[asyncio.Task] = []
    start = loop.time()
    try:
        for k, (offset, payload) in enumerate(plan):
            delay = (start + offset) - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            tasks.append(
                asyncio.ensure_future(fire(conns[k % len(conns)], payload))
            )
        timeouts = 0
        if tasks:
            done, pending = await asyncio.wait(
                tasks, timeout=config.drain_timeout
            )
            timeouts = len(pending)
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        elapsed = loop.time() - start
    finally:
        await asyncio.gather(
            *(c.aclose() for c in conns), return_exceptions=True
        )

    n_ok = sum(1 for kind, _s, _c in outcomes if kind == "ok")
    n_shed = sum(1 for kind, _s, _c in outcomes if kind == "shed")
    n_error = sum(
        1 for kind, _s, _c in outcomes if kind in ("error", "unavailable")
    )
    n_cached = sum(1 for kind, _s, c in outcomes if kind == "ok" and c)
    ok_latencies = [s for kind, s, _c in outcomes if kind == "ok"]
    offered = len(plan)
    return {
        "offered": offered,
        "offered_rate_rps": round(offered / config.duration, 3),
        "ok": n_ok,
        "shed": n_shed,
        "errors": n_error,
        "timeouts": timeouts,
        "elapsed_seconds": round(elapsed, 3),
        "throughput_rps": round(n_ok / elapsed, 3) if elapsed > 0 else 0.0,
        "shed_rate": round(n_shed / offered, 4) if offered else 0.0,
        "cache_hit_ratio": round(n_cached / n_ok, 4) if n_ok else 0.0,
        "latency_ms": {
            "p50": round(percentile(ok_latencies, 0.50) * 1e3, 3),
            "p90": round(percentile(ok_latencies, 0.90) * 1e3, 3),
            "p99": round(percentile(ok_latencies, 0.99) * 1e3, 3),
            "mean": round(
                sum(ok_latencies) / len(ok_latencies) * 1e3, 3
            )
            if ok_latencies
            else 0.0,
            "max": round(max(ok_latencies) * 1e3, 3) if ok_latencies else 0.0,
        },
    }


def run_load(
    config: LoadgenConfig, names: Sequence[str]
) -> Dict[str, Any]:
    """Generate the plan and run it in a fresh event loop (blocking)."""
    plan = generate_plan(names, config)
    return asyncio.run(run_load_async(config, plan))
