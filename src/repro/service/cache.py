"""LRU result cache for pairwise comparison bodies.

Keys are ``(hash_a, hash_b, method, params_hash)`` — the full identity
of a pair result: content hashes of both chains (order matters, TM-align
scores are direction-dependent), the method name, and the hash of the
fully-resolved method parameters.  Values are the *canonical JSON body
strings* the server sends, so a cache hit returns bytes identical to the
original uncached response.

Counters (hits / misses / evictions / size) feed the ``metrics`` op.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple

__all__ = ["ResultCache", "pair_key"]

CacheKey = Tuple[str, str, str, str]


def pair_key(
    hash_a: str, hash_b: str, method: str, params_hash: str
) -> CacheKey:
    return (hash_a, hash_b, method, params_hash)


class ResultCache:
    """Bounded LRU mapping of pair keys to canonical result bodies."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[CacheKey, str]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: CacheKey) -> Optional[str]:
        """The cached body for ``key``, refreshing its recency; None on miss."""
        body = self._entries.get(key)
        if body is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return body

    def put(self, key: CacheKey, body: str) -> None:
        """Insert (or refresh) a body, evicting the least recently used."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self._entries[key] = body
            return
        self._entries[key] = body
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._entries

    def keys(self):
        """Current keys, least- to most-recently used (for tests/metrics)."""
        return list(self._entries)

    def stats(self) -> Dict[str, int]:
        return {
            "capacity": self.capacity,
            "size": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }
