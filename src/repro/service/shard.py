"""Sharded multi-node PSC service: the scatter-gather coordinator.

One :class:`ShardCoordinator` fronts N independent :class:`~repro.
service.server.PSCService` shard processes and speaks the exact same
newline-JSON line protocol, so ``ServiceClient`` / ``query`` work
against it unchanged.  The corpus is *partitioned by ownership* —
rendezvous (highest-random-weight) hashing over content hashes decides
which shard computes and caches each pair — while the registry itself
is *replicated*: ``register`` is written to every shard (write-all),
so any shard can serve any pair when its owner is down.

Op routing::

    search           scatter: each shard searches only the corpus slice
                     it owns (the ``targets`` restriction), the
                     coordinator merges the per-shard rankings through
                     :func:`repro.psc.search.rank_hits` — byte-identical
                     to a single-node search over the same corpus
    align            routed to the shard owning the target chain (the
                     same shard that owns search pairs ending there, so
                     caches line up), failing over in HRW order
    matstore-lookup  routed like align
    register         replicated write-all; partial failures come back
                     as a typed ``partial`` block, not an error
    corpus/status/healthz/metrics/shutdown
                     coordinator-level (status probes every shard and
                     reports drift between corpus fingerprints)

Degradation is graceful by construction: every shard request carries a
timeout, a slow sub-request can be hedged to the next shard in the
key's HRW preference order (``hedge_after``), a failed one fails over
down that same order, and when a corpus slice cannot be served by any
reachable shard the search returns what it has plus a typed
``partial`` block — never a hang, never a silent gap.
"""

from __future__ import annotations

import asyncio
import contextlib
import hashlib
import json
import os
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.service.client import (
    DEFAULT_CONNECT_BACKOFF,
    backoff_delays,
)
from repro.service.metrics import ServiceMetrics
from repro.service.protocol import (
    ERROR_TYPES,
    MAX_LINE_BYTES,
    BadRequest,
    ServiceError,
    ServiceOverloaded,
    ServiceUnavailable,
    encode_line,
    parse_positive_int,
    resolve_method,
)
from repro.service.server import LineProtocolServer

__all__ = [
    "rendezvous_rank",
    "rendezvous_owner",
    "partition_keys",
    "parse_shard_spec",
    "AsyncShardConnection",
    "CoordinatorConfig",
    "ShardCoordinator",
]

#: shortest hash prefix the coordinator resolves against its corpus view
#: (mirrors repro.service.registry.MIN_HASH_PREFIX)
_MIN_PREFIX = 8


# -- rendezvous (HRW) hashing ---------------------------------------------
def _hrw_weight(shard_id: str, key: str) -> bytes:
    return hashlib.sha256(f"{shard_id}|{key}".encode("utf-8")).digest()


def rendezvous_rank(key: str, shard_ids: Sequence[str]) -> List[str]:
    """Shards ordered by preference for ``key`` (highest weight first).

    sha256 makes the ranking deterministic across processes and
    platforms; because each (shard, key) weight is independent, removing
    a shard only reassigns the keys it owned (~1/N of them) and adding
    one only claims the keys it now wins — the classic HRW stability
    property the ownership tests pin down.
    """
    return sorted(
        shard_ids, key=lambda sid: (_hrw_weight(sid, key), sid), reverse=True
    )


def rendezvous_owner(key: str, shard_ids: Sequence[str]) -> str:
    """The owning shard for ``key``: first in the HRW preference order."""
    if not shard_ids:
        raise ValueError("rendezvous_owner needs at least one shard")
    return max(shard_ids, key=lambda sid: (_hrw_weight(sid, key), sid))


def partition_keys(
    keys: Iterable[str], shard_ids: Sequence[str]
) -> Dict[str, List[str]]:
    """Keys grouped by owning shard (input order preserved per shard)."""
    parts: Dict[str, List[str]] = {sid: [] for sid in shard_ids}
    for key in keys:
        parts[rendezvous_owner(key, shard_ids)].append(key)
    return parts


def parse_shard_spec(spec: str) -> str:
    """Normalize one ``host:port`` (or bare ``port``) shard address."""
    spec = spec.strip()
    if not spec:
        raise ValueError("empty shard address")
    host, sep, port_s = spec.rpartition(":")
    if not sep:
        host, port_s = "127.0.0.1", spec
    host = host or "127.0.0.1"
    try:
        port = int(port_s)
    except ValueError:
        raise ValueError(f"bad shard address {spec!r}") from None
    if not 1 <= port <= 65535:
        raise ValueError(f"shard port out of range in {spec!r}")
    return f"{host}:{port}"


# -- async shard connection ------------------------------------------------
class AsyncShardConnection:
    """One pipelined line-protocol connection to a shard.

    Requests are written with monotonically increasing ids and a reader
    task matches responses back to futures, so many coordinator
    coroutines share one TCP connection without head-of-line blocking
    server-side (the shard serves each line concurrently).  Connecting
    reuses the :func:`repro.service.client.backoff_delays` schedule —
    the same bounded reconnect-with-backoff the blocking client grew —
    and every failure surfaces as a typed
    :class:`~repro.service.protocol.ServiceUnavailable`.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        connect_timeout: float = 2.0,
        connect_retries: int = 1,
        connect_backoff: float = DEFAULT_CONNECT_BACKOFF,
    ) -> None:
        self.host = host
        self.port = port
        self.shard_id = f"{host}:{port}"
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        self.connect_retries = connect_retries
        self.connect_backoff = connect_backoff
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader_task: Optional[asyncio.Task] = None
        self._pending: Dict[int, asyncio.Future] = {}
        self._next_id = 0
        self._lock = asyncio.Lock()  # serializes connect + write

    async def _ensure_connected(self) -> None:
        if self._writer is not None and not self._writer.is_closing():
            return
        delays = backoff_delays(self.connect_retries, self.connect_backoff)
        attempts = 0
        while True:
            attempts += 1
            try:
                self._reader, self._writer = await asyncio.wait_for(
                    asyncio.open_connection(
                        self.host, self.port, limit=MAX_LINE_BYTES
                    ),
                    timeout=self.connect_timeout,
                )
                break
            except (OSError, asyncio.TimeoutError) as exc:
                delay = next(delays, None)
                if delay is None:
                    raise ServiceUnavailable(
                        f"cannot connect to shard {self.shard_id} after "
                        f"{attempts} attempts: {type(exc).__name__}: {exc}"
                    ) from exc
                await asyncio.sleep(delay)
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop(self._reader)
        )

    async def _read_loop(self, reader: asyncio.StreamReader) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    response = json.loads(line)
                except json.JSONDecodeError:
                    break
                fut = self._pending.pop(response.get("id"), None)
                if fut is not None and not fut.done():
                    fut.set_result(response)
        except (ConnectionError, OSError):
            pass
        finally:
            self._teardown(
                ServiceUnavailable(f"shard {self.shard_id} connection lost")
            )

    def _teardown(self, exc: Exception) -> None:
        for fut in self._pending.values():
            if not fut.done():
                fut.set_exception(exc)
        self._pending.clear()
        if self._writer is not None:
            with contextlib.suppress(Exception):
                self._writer.close()
        self._reader = None
        self._writer = None

    async def request(
        self, payload: Dict[str, Any], timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        """One round trip; returns the raw response dict.

        Typed shard errors re-raise as their protocol exceptions;
        transport failures and timeouts raise
        :class:`~repro.service.protocol.ServiceUnavailable`.
        """
        async with self._lock:
            await self._ensure_connected()
            self._next_id += 1
            request_id = self._next_id
            fut = asyncio.get_running_loop().create_future()
            self._pending[request_id] = fut
            try:
                self._writer.write(encode_line({"id": request_id, **payload}))
                await self._writer.drain()
            except (ConnectionError, OSError) as exc:
                self._pending.pop(request_id, None)
                self._teardown(
                    ServiceUnavailable(f"shard {self.shard_id} write failed")
                )
                raise ServiceUnavailable(
                    f"cannot send to shard {self.shard_id}: "
                    f"{type(exc).__name__}: {exc}"
                ) from exc
        try:
            response = await asyncio.wait_for(
                fut, timeout if timeout is not None else self.timeout
            )
        except asyncio.TimeoutError:
            self._pending.pop(request_id, None)
            raise ServiceUnavailable(
                f"shard {self.shard_id} timed out on op "
                f"{payload.get('op')!r}"
            ) from None
        if not response.get("ok"):
            error = response.get("error") or {}
            exc_type = ERROR_TYPES.get(error.get("code", ""), ServiceError)
            raise exc_type(error.get("message", "shard error"))
        return response

    async def aclose(self) -> None:
        if self._reader_task is not None:
            self._reader_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._reader_task
            self._reader_task = None
        self._teardown(ServiceUnavailable("connection closed"))


# -- coordinator -----------------------------------------------------------
@dataclass(frozen=True)
class CoordinatorConfig:
    """Every knob of one shard coordinator."""

    shards: Tuple[str, ...] = ()  # "host:port" shard addresses
    host: str = "127.0.0.1"
    port: int = 0  # 0 = pick a free port
    timeout: float = 30.0  # per shard sub-request
    connect_timeout: float = 2.0  # per shard TCP connect attempt
    connect_retries: int = 1  # reconnect budget per connect cycle
    connect_backoff: float = DEFAULT_CONNECT_BACKOFF
    hedge_after: float = 0.0  # duplicate a slow sub-request after (0 = off)
    down_after: int = 2  # consecutive failures before a shard is down
    probe_cooldown: float = 2.0  # seconds a down shard sits out


class _ShardState:
    """Per-shard health + drift bookkeeping."""

    def __init__(self, shard_id: str, conn: AsyncShardConnection) -> None:
        self.id = shard_id
        self.conn = conn
        self.requests = 0
        self.failures = 0
        self.consecutive_failures = 0
        self.down_since: Optional[float] = None  # monotonic, None = up
        self.last_error = ""
        self.generation: Optional[int] = None
        self.fingerprint: Optional[str] = None


class ShardCoordinator(LineProtocolServer):
    """Scatter-gather front end over N PSCService shards."""

    def __init__(self, config: CoordinatorConfig) -> None:
        if not config.shards:
            raise ValueError("CoordinatorConfig needs at least one shard")
        super().__init__(config.host, config.port, ServiceMetrics())
        self.config = config
        self._shards: Dict[str, _ShardState] = {}
        for spec in config.shards:
            shard_id = parse_shard_spec(spec)
            if shard_id in self._shards:
                continue
            host, _, port_s = shard_id.rpartition(":")
            conn = AsyncShardConnection(
                host,
                int(port_s),
                timeout=config.timeout,
                connect_timeout=config.connect_timeout,
                connect_retries=config.connect_retries,
                connect_backoff=config.connect_backoff,
            )
            self._shards[shard_id] = _ShardState(shard_id, conn)
        self._corpus_view: Optional[Dict[str, Any]] = None
        self._ops = {
            "align": self._op_align,
            "search": self._op_search,
            "register": self._op_register,
            "corpus": self._op_corpus,
            "matstore-lookup": self._op_matstore_lookup,
            "status": self._op_status,
            "healthz": self._op_healthz,
            "metrics": self._op_metrics,
            "shutdown": self._op_shutdown,
        }

    @property
    def shard_ids(self) -> List[str]:
        return list(self._shards)

    async def _aclose_extra(self) -> None:
        await asyncio.gather(
            *(st.conn.aclose() for st in self._shards.values()),
            return_exceptions=True,
        )

    # -- health ------------------------------------------------------------
    def _candidates(self) -> List[str]:
        """Shards eligible for routing: up, or down past the cooldown
        (optimistic reinclusion — a still-dead shard fails fast and goes
        straight back down)."""
        now = time.monotonic()
        return [
            sid
            for sid, st in self._shards.items()
            if st.down_since is None
            or now - st.down_since >= self.config.probe_cooldown
        ]

    def _record_success(self, st: _ShardState) -> None:
        st.consecutive_failures = 0
        if st.down_since is not None:
            st.down_since = None
            self.metrics.inc("shards_recovered")

    def _record_failure(self, st: _ShardState, exc: Exception) -> None:
        st.failures += 1
        st.consecutive_failures += 1
        st.last_error = f"{type(exc).__name__}: {exc}"
        self.metrics.inc("shard_failures")
        self.metrics.inc(f"shard_failures_{st.id}")
        if st.consecutive_failures >= self.config.down_after:
            if st.down_since is None:
                self.metrics.inc("shards_marked_down")
            st.down_since = time.monotonic()

    async def _shard_request(
        self,
        st: _ShardState,
        payload: Dict[str, Any],
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        """One tracked sub-request: health accounting + latency histogram."""
        st.requests += 1
        t0 = time.perf_counter()
        try:
            response = await st.conn.request(payload, timeout)
        except ServiceUnavailable as exc:
            self._record_failure(st, exc)
            raise
        except ServiceError:
            # a typed reply (bad-request, not-found, overloaded) means
            # the shard is alive and answering
            self._record_success(st)
            self.metrics.observe(f"shard_{st.id}", time.perf_counter() - t0)
            raise
        self._record_success(st)
        self.metrics.observe(f"shard_{st.id}", time.perf_counter() - t0)
        return response

    async def _request_with_failover(
        self, order: Sequence[str], payload: Dict[str, Any]
    ) -> Dict[str, Any]:
        """Try shards in preference order until one answers.

        Only transport failures (:class:`ServiceUnavailable`) fail over
        — registrations are replicated, so any shard *can* serve any
        pair; semantic errors propagate from the first shard that is
        actually reachable."""
        last: Optional[ServiceUnavailable] = None
        for k, sid in enumerate(order):
            if k:
                self.metrics.inc("failover_retries")
            try:
                return await self._shard_request(self._shards[sid], payload)
            except ServiceUnavailable as exc:
                last = exc
        raise ServiceUnavailable(
            f"op {payload.get('op')!r} failed on every reachable shard "
            f"({len(order)} tried): {last}"
        )

    async def _hedged_request(
        self, order: Sequence[str], payload: Dict[str, Any]
    ) -> Dict[str, Any]:
        """Failover request with an optional hedge: when the preferred
        shard has not answered within ``hedge_after`` seconds, the same
        request races on the next shard in HRW order and the first
        answer wins (the loser's waiter is simply dropped)."""
        if self.config.hedge_after <= 0 or len(order) < 2:
            return await self._request_with_failover(order, payload)
        primary = asyncio.ensure_future(
            self._request_with_failover(order[:1], payload)
        )
        try:
            return await asyncio.wait_for(
                asyncio.shield(primary), timeout=self.config.hedge_after
            )
        except asyncio.TimeoutError:
            pass  # primary still in flight: hedge below
        except ServiceUnavailable:
            return await self._request_with_failover(order[1:], payload)
        self.metrics.inc("hedged_requests")
        secondary = asyncio.ensure_future(
            self._request_with_failover(order[1:], payload)
        )
        pending = {primary, secondary}
        last_exc: Optional[Exception] = None
        while pending:
            done, pending = await asyncio.wait(
                pending, return_when=asyncio.FIRST_COMPLETED
            )
            for task in done:
                exc = task.exception()
                if exc is None:
                    for p in pending:
                        p.cancel()
                    return task.result()
                if isinstance(exc, ServiceUnavailable):
                    last_exc = exc
                    continue
                for p in pending:
                    p.cancel()
                raise exc
        raise last_exc or ServiceUnavailable("hedged request failed")

    # -- corpus view -------------------------------------------------------
    async def _get_corpus_view(self) -> Dict[str, Any]:
        """The cached corpus view (ordered hashes + names), read-one from
        the first reachable shard; invalidated by coordinator-side
        registers and by drift detected in status probes."""
        if self._corpus_view is not None:
            return self._corpus_view
        order = self._candidates() or list(self._shards)
        last: Optional[ServiceError] = None
        for sid in order:
            st = self._shards[sid]
            try:
                response = await self._shard_request(st, {"op": "corpus"})
            except ServiceError as exc:
                last = exc
                continue
            view = response["result"]
            st.generation = view.get("generation")
            st.fingerprint = view.get("fingerprint")
            self._corpus_view = view
            self.metrics.inc("corpus_view_reads")
            return view
        raise ServiceUnavailable(
            f"cannot read the corpus view from any shard: {last}"
        )

    @staticmethod
    def _resolve_in_view(view: Dict[str, Any], ref: str) -> Optional[str]:
        """A corpus content hash for ``ref`` (name, hash, or unambiguous
        prefix), or None when the view cannot resolve it."""
        chains = view.get("chains", [])
        for c in chains:
            if c["name"] == ref or c["hash"] == ref:
                return c["hash"]
        if len(ref) >= _MIN_PREFIX:
            matches = [c["hash"] for c in chains if c["hash"].startswith(ref)]
            if len(matches) == 1:
                return matches[0]
        return None

    def _route_order(self, key: str) -> List[str]:
        candidates = self._candidates()
        if not candidates:
            raise ServiceUnavailable(
                f"no reachable shards (of {len(self._shards)})"
            )
        return rendezvous_rank(key, candidates)

    @staticmethod
    def _forwardable(payload: Dict[str, Any]) -> Dict[str, Any]:
        return {k: v for k, v in payload.items() if k != "id"}

    # -- routed single-target ops -------------------------------------------
    def _pair_route_key(self, view: Dict[str, Any], payload: Dict[str, Any]) -> str:
        """The ownership key of a pair op: the target chain's content
        hash when the corpus view resolves it (so ``align(q, hit)``
        lands on the shard whose search cache already holds that pair),
        else the raw reference — still deterministic, just unwarmed."""
        ref_b = payload.get("b")
        if not isinstance(ref_b, str) or not ref_b:
            return ""
        return self._resolve_in_view(view, ref_b) or ref_b

    async def _op_align(self, payload: Dict[str, Any]):
        view = await self._get_corpus_view()
        key = self._pair_route_key(view, payload)
        response = await self._hedged_request(
            self._route_order(key), self._forwardable(payload)
        )
        return response["result"], response.get("cached")

    async def _op_matstore_lookup(self, payload: Dict[str, Any]):
        view = await self._get_corpus_view()
        key = self._pair_route_key(view, payload)
        response = await self._hedged_request(
            self._route_order(key), self._forwardable(payload)
        )
        return response["result"], response.get("cached")

    # -- replicated register --------------------------------------------------
    async def _op_register(self, payload: Dict[str, Any]):
        body = self._forwardable(payload)
        now = time.monotonic()
        attempted: List[_ShardState] = []
        skipped: Dict[str, str] = {}
        for sid, st in self._shards.items():
            if (
                st.down_since is not None
                and now - st.down_since < self.config.probe_cooldown
            ):
                # a down shard misses the write; the drift shows up in
                # status fingerprints when it comes back
                skipped[sid] = "down; write skipped"
                self.metrics.inc("register_skipped_down")
            else:
                attempted.append(st)
        outcomes = await asyncio.gather(
            *(self._shard_request(st, body) for st in attempted),
            return_exceptions=True,
        )
        ok: List[Dict[str, Any]] = []
        failures: Dict[str, str] = dict(skipped)
        semantic: Optional[Exception] = None
        for st, outcome in zip(attempted, outcomes):
            if isinstance(outcome, ServiceUnavailable):
                failures[st.id] = str(outcome)
            elif isinstance(outcome, ServiceError):
                semantic = outcome
                failures[st.id] = str(outcome)
            elif isinstance(outcome, BaseException):
                raise outcome
            else:
                ok.append(outcome["result"])
        self._corpus_view = None  # the corpus (may have) changed
        if not ok:
            if semantic is not None:
                raise semantic
            raise ServiceUnavailable(
                "register replicated to 0/"
                f"{len(self._shards)} shards: {failures}"
            )
        self.metrics.inc("registers_replicated")
        result = dict(ok[0])
        result["replicated"] = len(ok)
        result["shards"] = len(self._shards)
        if failures:
            # typed partial-result warning: the write landed somewhere,
            # but not everywhere — operators see exactly where
            result["partial"] = {
                "failed_shards": sorted(failures),
                "errors": failures,
            }
            self.metrics.inc("partial_results")
            self.metrics.inc("register_partial")
        return result, None

    # -- scatter-gather search ------------------------------------------------
    async def _op_search(self, payload: Dict[str, Any]):
        from repro.psc.search import rank_hits

        view = await self._get_corpus_view()
        hashes = [c["hash"] for c in view.get("chains", [])]
        if not hashes:
            raise BadRequest("the search corpus is empty")
        method_name = payload.get("method", "tmalign")
        method, params_hash = resolve_method(method_name, payload.get("params"))
        top = parse_positive_int(payload, "top", 10)
        query_ref = payload.get("query")
        exclude_self = bool(payload.get("exclude_self", True))
        if exclude_self and isinstance(query_ref, str):
            # drop the query's own hash from the scatter so no shard is
            # handed a slice that excludes down to nothing
            query_hash = self._resolve_in_view(view, query_ref)
            if query_hash is not None:
                hashes = [h for h in hashes if h != query_hash]
        if not hashes:
            raise BadRequest("the search corpus is empty")
        candidates = self._candidates()
        if not candidates:
            raise ServiceUnavailable(
                f"no reachable shards (of {len(self._shards)})"
            )
        parts = [
            (sid, owned)
            for sid, owned in partition_keys(hashes, candidates).items()
            if owned
        ]
        self.metrics.inc("searches_fanned")
        self.metrics.inc("search_fanout_width_total", len(parts))
        self.metrics.set_gauge("last_search_fanout", len(parts))
        base = self._forwardable(payload)

        async def run_part(sid: str, owned: List[str]) -> Dict[str, Any]:
            sub = dict(base)
            sub["targets"] = owned
            sub["top"] = min(top, len(owned))
            # the owner first, every other reachable shard as fallback:
            # registrations are replicated, so a re-routed slice returns
            # the same scores (just without the owner's warm cache)
            order = [sid] + [s for s in candidates if s != sid]
            return await self._hedged_request(order, sub)

        outcomes = await asyncio.gather(
            *(run_part(sid, owned) for sid, owned in parts),
            return_exceptions=True,
        )
        gathered: List[Dict[str, Any]] = []
        failed_shards: List[str] = []
        targets_missing = 0
        for (sid, owned), outcome in zip(parts, outcomes):
            if isinstance(outcome, ServiceOverloaded):
                # propagate backpressure instead of re-routing load onto
                # the remaining (equally busy) shards
                self.metrics.inc("search_shed")
                raise outcome
            if isinstance(outcome, ServiceUnavailable):
                failed_shards.append(sid)
                targets_missing += len(owned)
                continue
            if isinstance(outcome, BaseException):
                raise outcome
            gathered.append(outcome)
        if not gathered:
            raise ServiceUnavailable(
                f"search failed on every shard slice: {sorted(failed_shards)}"
            )
        rows: List[Tuple[str, Dict[str, float]]] = []
        hash_by_name: Dict[str, str] = {}
        corpus_total = 0
        from_cache = 0
        query_hash_out = None
        pf_promoted = 0
        pf_demoted = 0
        pf_keep = None
        for response in gathered:
            r = response["result"]
            query_hash_out = r["query"]
            corpus_total += r["corpus"]
            from_cache += r["from_cache"]
            for hit in r["hits"]:
                rows.append((hit["chain"], hit["scores"]))
                hash_by_name[hit["chain"]] = hit["hash"]
            if "prefilter" in r:
                pf_keep = r["prefilter"]["keep"]
                pf_promoted += r["prefilter"]["promoted"]
                pf_demoted += r["prefilter"]["demoted"]
        hits = rank_hits(rows, method)
        result: Dict[str, Any] = {
            "query": query_hash_out,
            "method": method_name,
            "params_hash": params_hash,
            "corpus": corpus_total,
            "from_cache": from_cache,
            "hits": [
                {
                    "chain": hit.chain_name,
                    "hash": hash_by_name[hit.chain_name],
                    "score": hit.score,
                    "scores": hit.details,
                }
                for hit in hits[:top]
            ],
        }
        if pf_keep is not None:
            result["prefilter"] = {
                "keep": pf_keep,
                "promoted": pf_promoted,
                "demoted": pf_demoted,
            }
        if failed_shards:
            # typed partial-result warning: these slices were lost even
            # after failover — the ranking above covers the rest
            result["partial"] = {
                "failed_shards": sorted(failed_shards),
                "targets_missing": targets_missing,
            }
            self.metrics.inc("partial_results")
            self.metrics.inc("search_partial")
        return result, from_cache == corpus_total and corpus_total > 0

    # -- coordinator-level ops ------------------------------------------------
    async def _op_corpus(self, payload: Dict[str, Any]):
        return await self._get_corpus_view(), None

    async def _op_status(self, payload: Dict[str, Any]):
        if payload.get("run_id"):
            raise BadRequest(
                "durable-run status is per-shard; query the shard directly"
            )
        probes = await asyncio.gather(
            *(
                self._shard_request(st, {"op": "status"}, timeout=5.0)
                for st in self._shards.values()
            ),
            return_exceptions=True,
        )
        shards: Dict[str, Any] = {}
        fingerprints: set = set()
        reachable = 0
        for st, probe in zip(self._shards.values(), probes):
            info: Dict[str, Any] = {
                "reachable": not isinstance(probe, BaseException),
                "down": st.down_since is not None,
                "requests": st.requests,
                "failures": st.failures,
                "consecutive_failures": st.consecutive_failures,
            }
            if isinstance(probe, BaseException):
                info["error"] = st.last_error or str(probe)
            else:
                reachable += 1
                r = probe["result"]
                st.generation = r.get("registry_generation")
                st.fingerprint = r.get("corpus_fingerprint")
                info["dataset"] = r.get("dataset")
                info["corpus"] = r.get("corpus")
                info["registry_generation"] = st.generation
                info["corpus_fingerprint"] = st.fingerprint
                if st.fingerprint:
                    fingerprints.add(st.fingerprint)
            shards[st.id] = info
        drift = len(fingerprints) > 1
        view = self._corpus_view
        if drift or (
            view is not None
            and fingerprints
            and view.get("fingerprint") not in fingerprints
        ):
            # shards moved underneath the cached view (e.g. a register
            # sent straight to one shard): re-read before the next scatter
            self._corpus_view = None
            self.metrics.inc("corpus_view_invalidated")
        if drift:
            self.metrics.inc("drift_detected")
        counters = self.metrics.snapshot()["counters"]
        return (
            {
                "status": (
                    "ok"
                    if reachable == len(self._shards) and not drift
                    else "degraded"
                ),
                "coordinator": True,
                "topology": sorted(self._shards),
                "shards_total": len(self._shards),
                "shards_reachable": reachable,
                "drift": drift,
                "shards": shards,
                "partial_results": counters.get("partial_results", 0),
                "hedged_requests": counters.get("hedged_requests", 0),
                "failover_retries": counters.get("failover_retries", 0),
            },
            None,
        )

    async def _op_healthz(self, payload: Dict[str, Any]):
        healthy = sum(
            1 for st in self._shards.values() if st.down_since is None
        )
        return (
            {
                "status": "ok" if healthy == len(self._shards) else "degraded",
                "coordinator": True,
                "shards_total": len(self._shards),
                "shards_healthy": healthy,
                "uptime_seconds": round(self.metrics.uptime_seconds, 3),
                "pid": os.getpid(),
            },
            None,
        )

    async def _op_metrics(self, payload: Dict[str, Any]):
        snap = self.metrics.snapshot()
        counters = snap["counters"]
        fanned = counters.get("searches_fanned", 0)
        snap["fanout"] = {
            "searches": fanned,
            "mean_width": (
                round(counters.get("search_fanout_width_total", 0) / fanned, 3)
                if fanned
                else 0.0
            ),
        }
        snap["topology"] = sorted(self._shards)
        snap["shards"] = {
            st.id: {
                "requests": st.requests,
                "failures": st.failures,
                "consecutive_failures": st.consecutive_failures,
                "down": st.down_since is not None,
                "last_error": st.last_error,
                "registry_generation": st.generation,
                "corpus_fingerprint": st.fingerprint,
            }
            for st in self._shards.values()
        }
        return snap, None

    async def _op_shutdown(self, payload: Dict[str, Any]):
        result: Dict[str, Any] = {"stopping": True}
        if payload.get("broadcast"):
            outcomes = await asyncio.gather(
                *(
                    self._shard_request(st, {"op": "shutdown"}, timeout=5.0)
                    for st in self._shards.values()
                ),
                return_exceptions=True,
            )
            result["shards_stopped"] = sum(
                1 for o in outcomes if not isinstance(o, BaseException)
            )
        self.request_stop()
        return result, None
