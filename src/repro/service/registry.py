"""Structure registry: load a corpus once, index every chain by content.

The registry is the server-side substitute for reloading a dataset per
request: chains are registered once (a whole registry dataset at start,
ad-hoc PDB uploads later) and addressed by **content hash** — the same
sha256-over-sequence-and-coordinates scheme :func:`repro.runs.manifest.
dataset_fingerprint` uses for whole datasets, applied per chain.  Two
registrations with identical content collapse onto one entry, so the
result cache (keyed on hash pairs) hits across names, uploads and
restarts of the same data.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Tuple

from repro.datasets.registry import Dataset
from repro.service.protocol import BadRequest, NotFound
from repro.structure.model import Chain

__all__ = ["chain_content_hash", "StructureRegistry"]

#: shortest hash prefix accepted as a chain reference
MIN_HASH_PREFIX = 8


def chain_content_hash(chain: Chain) -> str:
    """sha256 over the chain *content* (sequence + coordinates).

    The name is deliberately excluded: scores depend only on content
    (secondary structure is derived from the coordinates), so chains
    uploaded under different names share cache entries.
    """
    digest = hashlib.sha256()
    digest.update(chain.sequence.encode("ascii"))
    digest.update(chain.coords.tobytes())
    return digest.hexdigest()


class StructureRegistry:
    """Chains indexed by content hash and by name.

    ``corpus=True`` registrations (the served dataset, or uploads meant
    to be searchable) form the one-vs-all search corpus in registration
    order; plain registrations are addressable as queries but do not
    appear in search results.
    """

    def __init__(self) -> None:
        self._chains: Dict[str, Chain] = {}  # hash -> first-registered chain
        self._names: Dict[str, str] = {}  # name -> hash
        self._corpus: List[str] = []  # corpus hashes, registration order
        self._corpus_set: set[str] = set()
        self.dataset_name: str = ""
        self._generation = 0

    # -- registration ------------------------------------------------------
    def register(self, chain: Chain, corpus: bool = False) -> str:
        """Register one chain; returns its content hash (idempotent)."""
        h = chain_content_hash(chain)
        changed = False
        if h not in self._chains:
            self._chains[h] = chain
            changed = True
        known = self._names.get(chain.name)
        if known is not None and known != h:
            raise BadRequest(
                f"name {chain.name!r} is already registered with different "
                f"content (hash {known[:12]}...)"
            )
        if known is None:
            changed = True
        self._names[chain.name] = h
        if corpus and h not in self._corpus_set:
            self._corpus.append(h)
            self._corpus_set.add(h)
            changed = True
        if changed:
            self._generation += 1
        return h

    def register_pdb(self, text: str, name: str, corpus: bool = False) -> str:
        """Parse and register an ad-hoc PDB upload."""
        from repro.structure.pdbio import chain_from_pdb

        if not name:
            raise BadRequest("uploaded chain needs a name")
        try:
            chain = chain_from_pdb(text, name=name)
        except (ValueError, IndexError) as exc:
            raise BadRequest(f"cannot parse PDB upload {name!r}: {exc}") from None
        return self.register(chain, corpus=corpus)

    def load_dataset(self, dataset: Dataset) -> int:
        """Register every chain of a dataset into the search corpus."""
        for chain in dataset:
            self.register(chain, corpus=True)
        self.dataset_name = self.dataset_name or dataset.name
        return len(dataset)

    # -- lookup ------------------------------------------------------------
    def resolve(self, ref: str) -> Tuple[str, Chain]:
        """A chain by name, full hash, or unambiguous hash prefix."""
        if not ref:
            raise BadRequest("empty chain reference")
        h = self._names.get(ref)
        if h is not None:
            return h, self._chains[h]
        if ref in self._chains:
            return ref, self._chains[ref]
        if len(ref) >= MIN_HASH_PREFIX:
            matches = [k for k in self._chains if k.startswith(ref)]
            if len(matches) == 1:
                return matches[0], self._chains[matches[0]]
            if len(matches) > 1:
                raise BadRequest(f"hash prefix {ref!r} is ambiguous")
        raise NotFound(f"no chain named or hashed {ref!r} in the registry")

    def corpus(self) -> List[Tuple[str, Chain]]:
        """The search corpus as ``(hash, chain)`` in registration order."""
        return [(h, self._chains[h]) for h in self._corpus]

    def name_of(self, chain_hash: str) -> str:
        """A display name for a hash (first registered name wins)."""
        for name, h in self._names.items():
            if h == chain_hash:
                return name
        return chain_hash[:12]

    def __len__(self) -> int:
        return len(self._chains)

    def __contains__(self, chain_hash: str) -> bool:
        return chain_hash in self._chains

    @property
    def generation(self) -> int:
        """Monotonic registry version: bumps on every state change.

        A coordinator caches its corpus view keyed by this number; a
        shard whose generation moved underneath the cache is detectable
        without diffing chain lists.
        """
        return self._generation

    def corpus_fingerprint(self) -> str:
        """sha256 over the ordered corpus content hashes.

        Two registries answer searches identically iff their corpus
        content matches; the fingerprint makes that comparable across
        processes in one string (registration *order* is included: it is
        part of the served corpus identity, like the dataset fingerprint
        in :mod:`repro.runs.manifest`).
        """
        digest = hashlib.sha256()
        for h in self._corpus:
            digest.update(h.encode("ascii"))
            digest.update(b"\n")
        return digest.hexdigest()

    def stats(self) -> Dict[str, int]:
        return {
            "chains": len(self._chains),
            "corpus": len(self._corpus),
            "names": len(self._names),
            "generation": self._generation,
        }
