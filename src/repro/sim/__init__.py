"""Discrete-event simulation kernel.

A minimal, deterministic, simpy-like engine used to simulate the SCC
many-core processor and its network-on-chip.  Simulation *processes* are
Python generator functions that yield :class:`Event` objects (timeouts,
resource requests, store gets, other processes).  The kernel advances a
global clock and resumes processes when the events they wait on fire.

Determinism: events scheduled for the same simulated time fire in FIFO
order of scheduling (ties broken by a monotonically increasing sequence
number), so a given program produces bit-identical traces across runs.
"""

from repro.sim.engine import (
    Environment,
    Event,
    Process,
    Interrupt,
    SimulationError,
    AllOf,
    AnyOf,
)
from repro.sim.resources import Resource, Store, PriorityResource

__all__ = [
    "Environment",
    "Event",
    "Process",
    "Interrupt",
    "SimulationError",
    "AllOf",
    "AnyOf",
    "Resource",
    "Store",
    "PriorityResource",
]
