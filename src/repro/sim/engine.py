"""Core discrete-event engine: environment, events, processes.

The design follows the classic event-callback architecture used by simpy,
stripped to what the SCC simulation needs:

* :class:`Environment` owns the event queue and the clock.
* :class:`Event` is a one-shot waitable with a value and callbacks.
* :class:`Process` wraps a generator; each ``yield`` suspends the process
  on an event, and the event's value is sent back into the generator.

All times are floats in *seconds* of simulated time.
"""

from __future__ import annotations

import heapq
from collections.abc import Generator
from typing import Any, Callable, Iterable, Optional

__all__ = [
    "Environment",
    "Event",
    "Process",
    "Interrupt",
    "SimulationError",
    "AllOf",
    "AnyOf",
]


class SimulationError(RuntimeError):
    """Raised for illegal kernel operations (double trigger, bad yield...)."""


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


PENDING = object()  # sentinel: event value not yet set


class Event:
    """A one-shot occurrence processes can wait on.

    An event is *triggered* (scheduled) with either a success value or a
    failure exception; when the kernel pops it from the queue it becomes
    *processed* and its callbacks run.  Waiting on an already-processed
    event resumes the waiter immediately (at the current simulated time).
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_scheduled", "_processed")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        self._scheduled = False
        self._processed = False

    # -- state -----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._scheduled

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Schedule this event to fire successfully after ``delay``."""
        if self._scheduled:
            raise SimulationError("event already triggered")
        self._scheduled = True
        self._value = value
        self._ok = True
        self.env._schedule(self, delay)
        return self

    def succeed_now(self, value: Any = None) -> "Event":
        """Complete this event synchronously, bypassing the event queue.

        The event becomes triggered *and* processed immediately, so a
        later ``yield`` on it resumes the waiter without a queue
        round-trip.  Only valid for events that fire at the current
        simulated time with no waiters yet registered through the
        scheduler; the fast paths in :mod:`repro.sim.resources` use it
        to avoid flooding the queue with zero-delay completions.
        """
        if self._scheduled:
            raise SimulationError("event already triggered")
        self._scheduled = True
        self._value = value
        self._ok = True
        self._run_callbacks()
        return self

    def fail(self, exc: BaseException, delay: float = 0.0) -> "Event":
        """Schedule this event to fire as a failure carrying ``exc``."""
        if self._scheduled:
            raise SimulationError("event already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() needs an exception instance")
        self._scheduled = True
        self._value = exc
        self._ok = False
        self.env._schedule(self, delay)
        return self

    # -- kernel internals --------------------------------------------------
    def _run_callbacks(self) -> None:
        self._processed = True
        callbacks, self.callbacks = self.callbacks, None
        if callbacks:
            for cb in callbacks:
                cb(self)

    def add_callback(self, cb: Callable[["Event"], None]) -> None:
        """Register ``cb(event)``; runs immediately if already processed."""
        if self.callbacks is None:
            cb(self)
        else:
            self.callbacks.append(cb)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = (
            "processed"
            if self._processed
            else "triggered"
            if self._scheduled
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"


class Timeout(Event):
    """Event that fires after a fixed delay."""

    __slots__ = ()

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        super().__init__(env)
        self._scheduled = True
        self._value = value
        env._schedule(self, delay)


class Process(Event):
    """A running coroutine.  As an Event it fires when the coroutine ends.

    The coroutine's ``return`` value becomes the event value, so processes
    can be awaited: ``result = yield env.process(child())``.
    """

    __slots__ = ("_generator", "_waiting_on", "name")

    def __init__(
        self, env: "Environment", generator: Generator, name: str = ""
    ) -> None:
        if not isinstance(generator, Generator):
            raise TypeError(
                f"Process needs a generator, got {type(generator).__name__}; "
                "did you call the function instead of passing its generator?"
            )
        super().__init__(env)
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        # Bootstrap: resume the generator at the current time.
        init = Event(env)
        init.succeed()
        init.add_callback(self._resume)

    @property
    def is_alive(self) -> bool:
        return not self._scheduled

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._scheduled:
            raise SimulationError("cannot interrupt a finished process")
        if self._waiting_on is not None and self._waiting_on.callbacks is not None:
            try:
                self._waiting_on.callbacks.remove(self._resume)
            except ValueError:
                pass
            self._waiting_on = None
        event = Event(self.env)
        event.fail(Interrupt(cause))
        event.add_callback(self._resume)

    # -- driving the generator ---------------------------------------------
    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        self.env._active_process = self
        try:
            if event._ok:
                target = self._generator.send(
                    event._value if event._value is not PENDING else None
                )
            else:
                exc = event._value
                target = self._generator.throw(exc)
        except StopIteration as stop:
            self.env._active_process = None
            self.succeed(stop.value)
            return
        except Interrupt as exc:
            # Interrupt escaped the generator: treat as normal termination
            # failure so waiters see it.
            self.env._active_process = None
            self.fail(exc)
            return
        except BaseException as exc:
            self.env._active_process = None
            if self.callbacks:
                self.fail(exc)
                return
            raise
        finally:
            self.env._active_process = None

        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; processes may "
                "only yield Event objects (timeout, request, get, process)"
            )
        if target.env is not self.env:
            raise SimulationError("cannot wait on an event from another Environment")
        self._waiting_on = target
        target.add_callback(self._resume)


class AllOf(Event):
    """Fires once every child event has fired; value is the list of values.

    If any child fails, this fails with the first failure.
    """

    __slots__ = ("_events", "_remaining")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        self._remaining = len(self._events)
        if self._remaining == 0:
            self.succeed([])
            return
        for ev in self._events:
            ev.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self._scheduled:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([ev._value for ev in self._events])


class AnyOf(Event):
    """Fires as soon as one child fires; value is ``(index, value)``."""

    __slots__ = ("_events",)

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        if not self._events:
            raise ValueError("AnyOf needs at least one event")
        for idx, ev in enumerate(self._events):
            ev.add_callback(lambda event, idx=idx: self._on_child(idx, event))

    def _on_child(self, idx: int, event: Event) -> None:
        if self._scheduled:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self.succeed((idx, event._value))


class Environment:
    """Owns the clock and event queue; runs the simulation."""

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        self.event_count = 0  # processed events, for instrumentation

    @property
    def now(self) -> float:
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- factories ---------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(self._queue, (self._now + delay, self._seq, event))
        self._seq += 1

    # -- execution -----------------------------------------------------------
    def step(self) -> None:
        """Process the single next event."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, _, event = heapq.heappop(self._queue)
        self._now = when
        self.event_count += 1
        event._run_callbacks()

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until the queue drains, ``until`` time passes, or event fires.

        Returns the event's value when ``until`` is an Event.
        """
        if isinstance(until, Event):
            stop = until
            while not stop._processed:
                if not self._queue:
                    raise SimulationError(
                        "event queue drained before the awaited event fired "
                        "(deadlock: a process is waiting on something nobody "
                        "will trigger)"
                    )
                self.step()
            if not stop._ok:
                raise stop._value
            return stop._value

        horizon = float("inf") if until is None else float(until)
        while self._queue and self._queue[0][0] <= horizon:
            self.step()
        if until is not None:
            self._now = max(self._now, horizon)
        return None
