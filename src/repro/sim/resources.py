"""Shared-resource primitives built on the event kernel.

* :class:`Resource` — counted resource with a FIFO wait queue (models a
  link, a disk controller, a dispatch slot).
* :class:`PriorityResource` — same, but waiters carry a priority.
* :class:`Store` — unbounded FIFO of Python objects (models a mailbox or
  message channel); ``put`` never blocks, ``get`` blocks until an item is
  available.

All methods that may block return :class:`~repro.sim.engine.Event` objects
to be yielded from a process.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Optional

from repro.sim.engine import Environment, Event, SimulationError

__all__ = ["Resource", "PriorityResource", "Store"]


class Request(Event):
    """Pending acquisition of a :class:`Resource` slot."""

    __slots__ = ("resource",)

    def __init__(self, env: Environment, resource: "Resource") -> None:
        super().__init__(env)
        self.resource = resource


class Resource:
    """A counted resource with FIFO granting.

    Usage from a process::

        req = resource.request()
        yield req
        try:
            ...  # hold the resource
        finally:
            resource.release(req)
    """

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self._users: set[object] = set()  # Request events and fast-path tokens
        self._waiters: deque[Request] = deque()
        # instrumentation
        self.total_grants = 0
        self.peak_queue_len = 0

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue_len(self) -> int:
        return len(self._waiters)

    def request(self) -> Request:
        req = Request(self.env, self)
        if len(self._users) < self.capacity:
            # Uncontended fast path: grant synchronously so the waiter
            # resumes without a zero-delay trip through the event queue.
            self._users.add(req)
            self.total_grants += 1
            req.succeed_now(req)
        else:
            self._waiters.append(req)
            self.peak_queue_len = max(self.peak_queue_len, len(self._waiters))
        return req

    def try_acquire(self) -> Optional[object]:
        """Non-blocking acquire: an opaque hold token when the resource
        is free, else ``None``.  Pass the token to :meth:`release`.

        Equivalent to an immediately-granted :meth:`request` but without
        building an :class:`Event`, for hot paths that would discard it.
        """
        if len(self._users) < self.capacity and self.queue_len == 0:
            token = object()
            self._users.add(token)
            self.total_grants += 1
            return token
        return None

    def release(self, req: "Request | object") -> None:
        if req not in self._users:
            raise SimulationError("releasing a request that does not hold the resource")
        self._users.discard(req)
        while self._waiters and len(self._users) < self.capacity:
            self._grant(self._waiters.popleft())

    def _grant(self, req: Request) -> None:
        """Hand a queued request the resource (asynchronously: the waiter
        is suspended mid-yield, so it must resume through the queue)."""
        self._users.add(req)
        self.total_grants += 1
        req.succeed(req)


class PriorityResource(Resource):
    """Resource whose wait queue is ordered by (priority, fifo sequence)."""

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        super().__init__(env, capacity)
        self._pq: list[tuple[float, int, Request]] = []
        self._pq_seq = 0

    @property
    def queue_len(self) -> int:
        return len(self._pq)

    def request(self, priority: float = 0.0) -> Request:  # type: ignore[override]
        req = Request(self.env, self)
        if len(self._users) < self.capacity and not self._pq:
            self._users.add(req)
            self.total_grants += 1
            req.succeed_now(req)
        else:
            heapq.heappush(self._pq, (priority, self._pq_seq, req))
            self._pq_seq += 1
            self.peak_queue_len = max(self.peak_queue_len, len(self._pq))
        return req

    def release(self, req: Request) -> None:  # type: ignore[override]
        if req not in self._users:
            raise SimulationError("releasing a request that does not hold the resource")
        self._users.discard(req)
        while self._pq and len(self._users) < self.capacity:
            _, _, nxt = heapq.heappop(self._pq)
            self._grant(nxt)


class Store:
    """Unbounded FIFO message store.

    ``put(item)`` is immediate (returns an already-fired event so it can
    still be yielded uniformly); ``get()`` blocks until an item exists.
    """

    def __init__(self, env: Environment, name: str = "") -> None:
        self.env = env
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        # instrumentation
        self.total_puts = 0
        self.peak_depth = 0

    def __len__(self) -> int:
        return len(self._items)

    def peek(self) -> Optional[Any]:
        """Return the head item without removing it, or None when empty."""
        return self._items[0] if self._items else None

    def put(self, item: Any) -> Event:
        self.total_puts += 1
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
        else:
            self._items.append(item)
            self.peak_depth = max(self.peak_depth, len(self._items))
        # The completion token never blocks; complete it synchronously so
        # fire-and-forget puts don't each leave a dead event in the queue.
        done = Event(self.env)
        done.succeed_now(item)
        return done

    def get(self) -> Event:
        ev = Event(self.env)
        if self._items:
            # Item already available: complete synchronously (see put()).
            ev.succeed_now(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get: ``(True, item)`` or ``(False, None)``."""
        if self._items:
            return True, self._items.popleft()
        return False, None
