"""Synthetic stand-in for the Rost–Sander dataset (RS119).

The real RS119 is the 119-chain non-redundant set of Rost & Sander
(1993): diverse folds, lengths roughly 50–450 residues, many near-
singletons.  Our stand-in keeps 119 chains, builds 25 small families
(2–8 members) plus singletons, and draws parent lengths from a
log-normal matched to that range.  The longer length tail gives RS119 a
different DP/irregular work mix than CK34, which the cost-model
calibration exploits (see repro.cost.cpu).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.registry import Dataset
from repro.structure.synthetic import generate_family, random_fold_spec

__all__ = ["build_rs119", "RS119_SEED"]

RS119_SEED = 0x125119
_N_CHAINS = 119
_MIN_LEN, _MAX_LEN = 60, 450


def _draw_length(rng: np.random.Generator) -> int:
    """Log-normal length, clipped to the dataset's range (median ~195).

    RS119 is deliberately longer-chained than CK34 (the real set reaches
    ~450 residues); together with its 12.5x larger pair count this gives
    it ~20x CK34's alignment work, the mix difference the Table III
    calibration relies on (repro.cost.calibration).
    """
    length = int(np.exp(rng.normal(np.log(195.0), 0.40)))
    return int(np.clip(length, _MIN_LEN, _MAX_LEN))


def build_rs119() -> Dataset:
    rng = np.random.default_rng(RS119_SEED)
    chains = []
    fam_idx = 0
    while len(chains) < _N_CHAINS:
        remaining = _N_CHAINS - len(chains)
        members = int(min(remaining, rng.integers(1, 9)))
        length = _draw_length(rng)
        helix_frac = float(rng.uniform(0.1, 0.9))
        family = f"rsfam{fam_idx:02d}" if members > 1 else f"rs_single{fam_idx:02d}"
        spec = random_fold_spec(rng, length, helix_frac=helix_frac)
        chains.extend(
            generate_family(
                spec,
                members,
                rng,
                family=family,
                name_prefix=f"rs_{fam_idx:02d}",
                jitter=0.5,
                hinge_angle_deg=9.0,
                max_indel=7,
                seq_identity=0.5,
            )
        )
        fam_idx += 1
    chains = chains[:_N_CHAINS]
    assert len(chains) == _N_CHAINS
    return Dataset(
        "rs119",
        tuple(chains),
        "synthetic Rost-Sander stand-in: 119 chains, mixed families + singletons",
    )
