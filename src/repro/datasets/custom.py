"""User-supplied datasets: build a Dataset from a directory of PDB files.

The bundled CK34/RS119 stand-ins cover the paper's experiments; users
with real structures point this loader at a directory instead.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional

from repro.datasets.registry import Dataset
from repro.structure.pdbio import read_pdb_file

__all__ = ["load_dataset_from_dir"]


def load_dataset_from_dir(
    path: str | os.PathLike,
    name: Optional[str] = None,
    pattern: str = "*.pdb",
    min_residues: int = 10,
) -> Dataset:
    """Read every ``pattern`` file under ``path`` into a Dataset.

    Files shorter than ``min_residues`` Cα atoms are skipped with the
    reason recorded in the dataset description; unparseable files raise.
    Chains are named after the file stem and sorted for determinism.
    """
    root = Path(path)
    if not root.is_dir():
        raise NotADirectoryError(f"{root} is not a directory")
    files = sorted(root.glob(pattern))
    if not files:
        raise FileNotFoundError(f"no {pattern} files under {root}")
    chains = []
    skipped = []
    for f in files:
        chain = read_pdb_file(f)
        if len(chain) < min_residues:
            skipped.append(f.name)
            continue
        chains.append(chain)
    if not chains:
        raise ValueError(
            f"all {len(files)} files were shorter than {min_residues} residues"
        )
    desc = f"user dataset from {root} ({len(chains)} chains)"
    if skipped:
        desc += f"; skipped short: {', '.join(skipped[:5])}"
        if len(skipped) > 5:
            desc += f" (+{len(skipped) - 5} more)"
    return Dataset(name or root.name, tuple(chains), desc)
