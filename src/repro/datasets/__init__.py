"""Benchmark datasets.

Synthetic stand-ins for the two protein-domain datasets of the paper:

* **CK34** (Chew–Kedem, 34 chains) — a small set drawn from a handful of
  well-known fold families (globins, TIM barrels, ...).
* **RS119** (Rost–Sander, 119 chains) — a larger, more diverse set.

Chain counts match the paper exactly; family structure and length
distributions are chosen to be realistic (see DESIGN.md substitution
table).  All generation is seeded, so every call reproduces the same
structures bit-for-bit.
"""

from repro.datasets.registry import Dataset, load_dataset, DATASET_BUILDERS
from repro.datasets.ck34 import build_ck34
from repro.datasets.rs119 import build_rs119
from repro.datasets.pairs import all_vs_all_pairs, blocked_pairs, one_vs_all_pairs

__all__ = [
    "Dataset",
    "load_dataset",
    "DATASET_BUILDERS",
    "build_ck34",
    "build_rs119",
    "all_vs_all_pairs",
    "blocked_pairs",
    "one_vs_all_pairs",
]
