"""Dataset container and name-based registry."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping

from repro.structure.model import Chain

__all__ = ["Dataset", "load_dataset", "DATASET_BUILDERS"]


@dataclass(frozen=True)
class Dataset:
    """A named collection of protein chains with family metadata."""

    name: str
    chains: tuple[Chain, ...]
    description: str = ""

    def __post_init__(self) -> None:
        if not self.chains:
            raise ValueError("dataset must contain at least one chain")
        names = [c.name for c in self.chains]
        if len(set(names)) != len(names):
            raise ValueError("duplicate chain names in dataset")

    def __len__(self) -> int:
        return len(self.chains)

    def __iter__(self):
        return iter(self.chains)

    def __getitem__(self, idx: int) -> Chain:
        return self.chains[idx]

    def by_name(self, name: str) -> Chain:
        for chain in self.chains:
            if chain.name == name:
                return chain
        raise KeyError(f"no chain named {name!r} in dataset {self.name!r}")

    @property
    def families(self) -> Mapping[str, tuple[Chain, ...]]:
        out: Dict[str, list[Chain]] = {}
        for chain in self.chains:
            out.setdefault(chain.family or "singleton", []).append(chain)
        return {k: tuple(v) for k, v in out.items()}

    @property
    def total_residues(self) -> int:
        return sum(len(c) for c in self.chains)

    @property
    def mean_length(self) -> float:
        return self.total_residues / len(self.chains)

    def subset(self, n: int, name: str | None = None) -> "Dataset":
        """First ``n`` chains — used for fast test/benchmark variants."""
        if not 1 <= n <= len(self.chains):
            raise ValueError(f"cannot take {n} chains from {len(self.chains)}")
        return Dataset(
            name or f"{self.name}[:{n}]",
            self.chains[:n],
            f"first {n} chains of {self.name}",
        )


# Populated lazily to avoid import cycles; see _ensure_builders().
DATASET_BUILDERS: Dict[str, Callable[[], Dataset]] = {}
_CACHE: Dict[str, Dataset] = {}


def _ensure_builders() -> None:
    if DATASET_BUILDERS:
        return
    from repro.datasets.ck34 import build_ck34
    from repro.datasets.rs119 import build_rs119

    DATASET_BUILDERS["ck34"] = build_ck34
    DATASET_BUILDERS["rs119"] = build_rs119
    # Small variants for fast tests/benchmarks.
    DATASET_BUILDERS["ck34-mini"] = lambda: build_ck34().subset(8, "ck34-mini")
    DATASET_BUILDERS["rs119-mini"] = lambda: build_rs119().subset(12, "rs119-mini")


def load_dataset(name: str) -> Dataset:
    """Build (and memoize) a dataset by registry name."""
    _ensure_builders()
    key = name.lower()
    if key not in DATASET_BUILDERS:
        raise KeyError(f"unknown dataset {name!r}; known: {sorted(DATASET_BUILDERS)}")
    if key not in _CACHE:
        _CACHE[key] = DATASET_BUILDERS[key]()
    return _CACHE[key]
