"""Pair enumeration for one-vs-all and all-vs-all PSC tasks."""

from __future__ import annotations

from typing import Iterator

from repro.datasets.registry import Dataset

__all__ = ["all_vs_all_pairs", "blocked_pairs", "one_vs_all_pairs", "n_all_vs_all"]


def all_vs_all_pairs(
    n: int, *, ordered: bool = False, include_self: bool = False
) -> Iterator[tuple[int, int]]:
    """Index pairs for an all-vs-all task over ``n`` structures.

    Default is unordered pairs ``i < j`` (TM-align reports the scores
    normalised by both chains from a single comparison, so one job covers
    both directions — DESIGN.md §5.3).
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    for i in range(n):
        start = 0 if ordered else i
        for j in range(start, n):
            if i == j and not include_self:
                continue
            yield (i, j)


def n_all_vs_all(n: int, *, ordered: bool = False, include_self: bool = False) -> int:
    """Number of pairs :func:`all_vs_all_pairs` yields."""
    if ordered:
        return n * n if include_self else n * (n - 1)
    base = n * (n - 1) // 2
    return base + n if include_self else base


def blocked_pairs(n: int, block_size: int) -> Iterator[tuple[int, int]]:
    """Unordered pairs (i < j) in cache-friendly block-tile order.

    Pairs are grouped by (block_i, block_j) tiles so a master holding
    only ``2 * block_size`` structures in memory streams the dataset
    with few reloads — the ordering used by the memory-constrained
    rckAlign variant (paper future work: "datasets too large to be
    loaded into memory at once").
    """
    if block_size < 1:
        raise ValueError("block_size must be >= 1")
    n_blocks = (n + block_size - 1) // block_size
    for bi in range(n_blocks):
        for bj in range(bi, n_blocks):
            lo_i = bi * block_size
            hi_i = min(n, lo_i + block_size)
            lo_j = bj * block_size
            hi_j = min(n, lo_j + block_size)
            for i in range(lo_i, hi_i):
                start = max(i + 1, lo_j)
                for j in range(start, hi_j):
                    yield (i, j)


def one_vs_all_pairs(query_idx: int, dataset: Dataset) -> Iterator[tuple[int, int]]:
    """Pairs comparing ``query_idx`` against every other chain."""
    if not 0 <= query_idx < len(dataset):
        raise IndexError(f"query index {query_idx} out of range")
    for j in range(len(dataset)):
        if j != query_idx:
            yield (query_idx, j)
