"""Synthetic stand-in for the Chew–Kedem dataset (CK34).

The real CK34 is 34 protein domains from five fold families (globins,
α/β, TIM barrels, serpins, ...).  Our stand-in keeps 34 chains and a
five-family composition with family mean lengths spanning the real
dataset's range (~100–250 residues).  Seeded: identical on every call.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.registry import Dataset
from repro.structure.synthetic import generate_family, random_fold_spec

__all__ = ["build_ck34", "CK34_SEED", "CK34_FAMILIES"]

CK34_SEED = 0xCE34

# (family label, members, target parent length, helix fraction)
CK34_FAMILIES: tuple[tuple[str, int, int, float], ...] = (
    ("globin", 8, 140, 0.95),      # all-alpha, myoglobin-like
    ("tim", 7, 220, 0.50),         # alpha/beta barrel
    ("plasto", 7, 90, 0.10),       # beta sandwich, plastocyanin-like
    ("serpin", 6, 170, 0.35),      # mixed
    ("ferredoxin", 6, 110, 0.45),  # alpha+beta
)


def build_ck34() -> Dataset:
    rng = np.random.default_rng(CK34_SEED)
    chains = []
    for family, members, length, helix_frac in CK34_FAMILIES:
        spec = random_fold_spec(rng, length, helix_frac=helix_frac)
        chains.extend(
            generate_family(
                spec,
                members,
                rng,
                family=family,
                name_prefix=f"ck_{family}",
                jitter=0.45,
                hinge_angle_deg=7.0,
                max_indel=5,
                seq_identity=0.55,
            )
        )
    assert len(chains) == 34, f"CK34 must have 34 chains, built {len(chains)}"
    return Dataset(
        "ck34",
        tuple(chains),
        "synthetic Chew-Kedem stand-in: 34 domains, 5 fold families",
    )
