"""Power and energy model of the SCC chip.

The SCC was built for power-management research: it dissipates ~25 W
idle to ~125 W with all 48 cores busy at full voltage/frequency, split
between the cores and the uncore (mesh + memory controllers).  This
module prices a simulated run in joules so experiments can report the
energy (and energy-delay) side of the many-core story — e.g. where the
energy-optimal slave count lies for an all-vs-all task.

The model is the standard CMOS split:

* uncore power is constant while the chip is on;
* an idle core burns leakage + clock-tree power;
* a busy core adds dynamic power  ``C·V²·f``; with frequency scaling we
  assume the voltage tracks frequency linearly inside the SCC's
  operating range, so dynamic power scales ~cubically with the clock
  multiplier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

__all__ = ["PowerConfig", "EnergyReport", "estimate_rckalign_energy", "cpu_energy"]


@dataclass(frozen=True)
class PowerConfig:
    """Chip power parameters (defaults approximate the published SCC
    envelope: 48 busy cores at 800 MHz ≈ 125 W, idle chip ≈ 25 W)."""

    uncore_w: float = 19.0  # mesh, iMCs, I/O — always on
    core_idle_w: float = 0.125  # leakage + clocking per core
    core_active_w: float = 2.08  # additional dynamic power per busy core
    freq_multiplier: float = 1.0  # relative to 800 MHz
    voltage_tracks_frequency: bool = True

    def __post_init__(self) -> None:
        if min(self.uncore_w, self.core_idle_w, self.core_active_w) < 0:
            raise ValueError("power figures must be non-negative")
        if self.freq_multiplier <= 0:
            raise ValueError("freq_multiplier must be positive")

    @property
    def active_core_w(self) -> float:
        """Dynamic per-core power at the configured clock."""
        m = self.freq_multiplier
        scale = m**3 if self.voltage_tracks_frequency else m
        return self.core_active_w * scale

    def chip_power(self, busy_cores: int, total_cores: int = 48) -> float:
        """Instantaneous chip power with ``busy_cores`` active."""
        if not 0 <= busy_cores <= total_cores:
            raise ValueError("busy_cores out of range")
        return (
            self.uncore_w
            + total_cores * self.core_idle_w
            + busy_cores * self.active_core_w
        )


@dataclass(frozen=True)
class EnergyReport:
    """Energy accounting of one simulated run."""

    total_joules: float
    makespan_s: float
    busy_core_seconds: float
    idle_core_seconds: float

    @property
    def average_watts(self) -> float:
        return self.total_joules / self.makespan_s if self.makespan_s > 0 else 0.0

    @property
    def energy_delay_product(self) -> float:
        """J·s — the metric minimized by energy-aware sizing."""
        return self.total_joules * self.makespan_s


def estimate_rckalign_energy(
    report,
    config: PowerConfig | None = None,
    total_cores: int = 48,
) -> EnergyReport:
    """Energy of a :class:`~repro.core.rckalign.RckAlignReport` run.

    Busy time comes from the per-core compute accounting; cores not in
    the run (and slave idle gaps) burn idle power; the uncore burns its
    constant power for the whole makespan.
    """
    config = config or PowerConfig()
    makespan = report.total_seconds
    busy = sum(report.slave_busy_seconds.values()) + report.master_compute_seconds
    total_core_seconds = total_cores * makespan
    idle = max(0.0, total_core_seconds - busy)
    joules = (
        config.uncore_w * makespan
        + config.core_idle_w * total_core_seconds
        + config.active_core_w * busy
    )
    return EnergyReport(
        total_joules=joules,
        makespan_s=makespan,
        busy_core_seconds=busy,
        idle_core_seconds=idle,
    )


def cpu_energy(seconds: float, tdp_watts: float) -> float:
    """Crude energy for a conventional CPU run (busy at ~TDP)."""
    if seconds < 0 or tdp_watts < 0:
        raise ValueError("seconds and tdp_watts must be non-negative")
    return seconds * tdp_watts
