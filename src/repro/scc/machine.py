"""The simulated SCC machine: cores, programs, statistics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Mapping, Optional

from repro.cost.counters import CostCounter
from repro.noc.fabric import NocFabric
from repro.scc.config import SccConfig
from repro.sim.engine import Environment, Process

__all__ = ["SccMachine", "Core", "CoreStats"]


@dataclass
class CoreStats:
    """Per-core accounting of where simulated time went."""

    compute_s: float = 0.0
    comm_s: float = 0.0
    jobs_done: int = 0

    def busy_s(self) -> float:
        return self.compute_s + self.comm_s


class Core:
    """One SCC core: an execution context for simulation coroutines.

    Programs call ``yield from core.compute_cycles(...)`` /
    ``compute_counts(...)`` for processing time and use the machine's
    :class:`~repro.scc.rcce.Rcce` instance for communication.
    """

    def __init__(self, machine: "SccMachine", core_id: int) -> None:
        self.machine = machine
        self.id = core_id
        self.tile = machine.config.tile_of_core(core_id)
        self.cpu = machine.config.core_cpu
        self.stats = CoreStats()
        #: effective-frequency multiplier; fault injection sets this below
        #: 1.0 to model a thermally/voltage-degraded ("slow") core
        self.freq_scale = 1.0

    def __repr__(self) -> str:
        return f"Core(rck{self.id:02d}, tile {self.tile})"

    @property
    def env(self) -> Environment:
        return self.machine.env

    def compute_cycles(self, cycles: float) -> Generator:
        """Coroutine: burn ``cycles`` of core time."""
        if cycles < 0:
            raise ValueError("cycles must be non-negative")
        if self.freq_scale <= 0:
            raise ValueError("freq_scale must be positive")
        dt = cycles / (self.cpu.freq_hz * self.freq_scale)
        self.stats.compute_s += dt
        yield self.env.timeout(dt)

    def compute_counts(self, counts: CostCounter | Mapping[str, float]) -> Generator:
        """Coroutine: burn the time the core's CPU model prices for
        the given op counts."""
        yield from self.compute_cycles(self.cpu.cycles(counts))

    def compute_seconds(self, seconds: float) -> Generator:
        """Coroutine: burn wall-clock seconds (already CPU-priced)."""
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        self.stats.compute_s += seconds
        yield self.env.timeout(seconds)

    def dram_read(self, nbytes: int) -> Generator:
        """Coroutine: read from off-chip memory via the nearest iMC."""
        t0 = self.env.now
        yield from self.machine.fabric.dram_read(self.tile, nbytes)
        self.stats.comm_s += self.env.now - t0
        self.machine.record_comm(self.id, t0, self.env.now)


class SccMachine:
    """The whole simulated chip; owns the fabric and the cores."""

    def __init__(
        self, env: Optional[Environment] = None, config: Optional[SccConfig] = None
    ) -> None:
        self.env = env or Environment()
        self.config = config or SccConfig()
        self.fabric = NocFabric(self.env, self.config.noc)
        self.cores = [Core(self, i) for i in range(self.config.n_cores)]
        self._processes: list[Process] = []
        #: optional ``(core_id, start, end, kind)`` callback; installed by
        #: :class:`repro.scc.trace.Tracer` to record comm intervals
        self.trace_hook: Optional[Callable[[int, float, float, str], None]] = None

    def record_comm(self, core_id: int, start: float, end: float) -> None:
        """Report a communication interval to the tracer, if attached."""
        if self.trace_hook is not None and end > start:
            self.trace_hook(core_id, start, end, "comm")

    def core(self, core_id: int) -> Core:
        return self.cores[core_id]

    def spawn(
        self,
        core_id: int,
        program: Callable[..., Generator],
        *args: Any,
        name: str = "",
    ) -> Process:
        """Start ``program(core, *args)`` on a core.

        ``program`` must be a generator function whose first parameter is
        the :class:`Core`.
        """
        core = self.cores[core_id]
        proc = self.env.process(
            program(core, *args), name=name or f"rck{core_id:02d}:{program.__name__}"
        )
        self._processes.append(proc)
        return proc

    def run(self, until=None) -> Any:
        """Advance the simulation (see :meth:`Environment.run`)."""
        return self.env.run(until)

    @property
    def now(self) -> float:
        return self.env.now
