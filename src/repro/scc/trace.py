"""Execution tracing: per-core busy intervals and a text Gantt chart.

Attach a :class:`Tracer` to a machine before spawning programs; every
``compute_*`` burst is recorded as an interval, and every communication
burst (RCCE send/recv, DRAM reads) is reported through the machine's
``trace_hook`` and recorded as a ``comm`` interval.  ``render_gantt``
draws a fixed-width utilization chart, handy for eyeballing
master-bottleneck and tail-imbalance effects in simulated runs;
``chrome_trace`` exports the same intervals in the Chrome tracing JSON
format (load in ``chrome://tracing`` or Perfetto, one track per core).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.scc.machine import Core, SccMachine

__all__ = ["Interval", "Tracer", "chrome_trace", "render_gantt"]


@dataclass(frozen=True)
class Interval:
    core_id: int
    start: float
    end: float
    kind: str  # 'compute' | 'comm'

    @property
    def duration(self) -> float:
        return self.end - self.start


class Tracer:
    """Records compute bursts by wrapping ``Core.compute_cycles`` and
    comm bursts via the machine's ``trace_hook``."""

    def __init__(self, machine: SccMachine) -> None:
        self.machine = machine
        self.intervals: list[Interval] = []
        self._install()

    def _install(self) -> None:
        tracer = self

        for core in self.machine.cores:
            original = core.compute_cycles

            def traced(cycles: float, _core: Core = core, _orig=original):
                start = _core.env.now
                yield from _orig(cycles)
                tracer.intervals.append(
                    Interval(_core.id, start, _core.env.now, "compute")
                )

            # bind per-core wrapper (instance attribute shadows method)
            core.compute_cycles = traced  # type: ignore[method-assign]

        def comm_hook(core_id: int, start: float, end: float, kind: str) -> None:
            tracer.intervals.append(Interval(core_id, start, end, kind))

        self.machine.trace_hook = comm_hook

    def busy_fraction(self, core_id: int, until: Optional[float] = None) -> float:
        horizon = until if until is not None else self.machine.now
        if horizon <= 0:
            return 0.0
        busy = sum(
            iv.duration for iv in self.intervals if iv.core_id == core_id
        )
        return busy / horizon

    def core_intervals(self, core_id: int) -> list[Interval]:
        return [iv for iv in self.intervals if iv.core_id == core_id]

    def kind_intervals(self, core_id: int, kind: str) -> list[Interval]:
        return [
            iv
            for iv in self.intervals
            if iv.core_id == core_id and iv.kind == kind
        ]


def chrome_trace(tracer: Tracer, indent: Optional[int] = None) -> str:
    """Serialize the trace as Chrome tracing JSON ("trace event format").

    One complete event (``ph: "X"``) per interval: timestamps/durations in
    microseconds of simulated time, one thread track per core, the
    interval kind as event name and category.  Viewable in
    ``chrome://tracing`` and https://ui.perfetto.dev.
    """
    events = [
        {
            "name": iv.kind,
            "cat": iv.kind,
            "ph": "X",
            "ts": iv.start * 1e6,
            "dur": iv.duration * 1e6,
            "pid": 0,
            "tid": iv.core_id,
        }
        for iv in sorted(
            tracer.intervals, key=lambda iv: (iv.core_id, iv.start, iv.end)
        )
    ]
    meta = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": cid,
            "args": {"name": f"rck{cid:02d}"},
        }
        for cid in sorted({iv.core_id for iv in tracer.intervals})
    ]
    doc = {"traceEvents": meta + events, "displayTimeUnit": "ms"}
    return json.dumps(doc, indent=indent)


def render_gantt(
    tracer: Tracer,
    core_ids: Optional[Sequence[int]] = None,
    width: int = 72,
) -> str:
    """Fixed-width utilization chart: '#' busy, '.' idle, per core row."""
    horizon = tracer.machine.now
    if horizon <= 0:
        return "(no simulated time elapsed)"
    cores = (
        list(core_ids)
        if core_ids is not None
        else sorted({iv.core_id for iv in tracer.intervals})
    )
    lines = [f"0 {'-' * (width - 12)} {horizon:.3g}s"]
    for cid in cores:
        row = [0.0] * width
        for iv in tracer.core_intervals(cid):
            lo = int(iv.start / horizon * width)
            hi = max(lo + 1, int(iv.end / horizon * width))
            for k in range(lo, min(hi, width)):
                row[k] = 1.0
        bar = "".join("#" if v else "." for v in row)
        lines.append(f"rck{cid:02d} |{bar}| {tracer.busy_fraction(cid):5.1%}")
    return "\n".join(lines)
