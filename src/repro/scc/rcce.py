"""RCCE-like message passing on the simulated SCC.

Models the semantics and costs of Intel's RCCE "gory-free" interface:

* ``send``/``recv`` are *blocking rendezvous* operations: data moves
  through the receiver-side MPB in chunks of at most the core's MPB
  share, with a flag round-trip per chunk (receiver posts "buffer free",
  sender moves data and raises "data ready");
* an initial fixed-size header round communicates the payload size;
* ``barrier`` is the centralized counter algorithm (everyone pings the
  lowest-ranked member, which then releases everyone);
* ``bcast`` is root-sequential, as in the reference implementation.

Timing comes from :class:`~repro.noc.fabric.NocFabric` transfers, so
mesh contention is honoured; the *payload* is an arbitrary Python object
handed over on the final chunk, letting applications ship real data
through the simulated chip.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional, Sequence

from repro.scc.machine import Core, SccMachine
from repro.sim.engine import SimulationError
from repro.sim.resources import Store

__all__ = ["Rcce", "Message"]


@dataclass(frozen=True)
class Message:
    """What a receiver gets: source rank, payload object, modelled size."""

    source: int
    payload: Any
    nbytes: int


class _Channel:
    """Synchronisation state for one directed (src, dst) core pair."""

    __slots__ = ("ready", "done")

    def __init__(self, env) -> None:
        self.ready = Store(env)  # receiver -> sender: "MPB slot free"
        self.done = Store(env)  # sender -> receiver: "chunk ready" tokens


class Rcce:
    """One RCCE communication domain over an :class:`SccMachine`."""

    def __init__(self, machine: SccMachine) -> None:
        self.machine = machine
        self.config = machine.config
        self._channels: dict[tuple[int, int], _Channel] = {}
        # mailbox of completed messages per (src, dst), so recv can be
        # posted before or after the sender arrives
        self.sends = 0
        self.bytes_total = 0

    def _channel(self, src: int, dst: int) -> _Channel:
        key = (src, dst)
        ch = self._channels.get(key)
        if ch is None:
            ch = _Channel(self.machine.env)
            self._channels[key] = ch
        return ch

    # ------------------------------------------------------------------
    def send(
        self, core: Core, dst: int, payload: Any, nbytes: Optional[int] = None
    ) -> Generator:
        """Coroutine: blocking rendezvous send of ``payload`` to ``dst``.

        ``nbytes`` is the modelled wire size; by default it is taken
        from ``payload.nbytes_wire`` or falls back to 64 bytes.
        """
        if dst == core.id:
            raise ValueError("cannot send to self")
        nbytes = self._payload_bytes(payload) if nbytes is None else int(nbytes)
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        env = self.machine.env
        fabric = self.machine.fabric
        cfg = self.config
        ch = self._channel(core.id, dst)
        dst_tile = cfg.tile_of_core(dst)
        t0 = env.now
        self.sends += 1
        self.bytes_total += nbytes

        # header round: wait for the receiver, ship size header + flag
        yield ch.ready.get()
        yield from fabric.transfer(
            core.tile, dst_tile, cfg.rcce_chunk_header_bytes + cfg.rcce_flag_bytes
        )
        ch.done.put(("header", nbytes))

        chunk = cfg.rcce_chunk_bytes
        remaining = nbytes
        while True:
            this_chunk = min(chunk, remaining)
            yield ch.ready.get()
            yield from fabric.transfer(
                core.tile, dst_tile, this_chunk + cfg.rcce_flag_bytes
            )
            remaining -= this_chunk
            if remaining > 0:
                ch.done.put(("chunk", this_chunk))
            else:
                ch.done.put(("last", Message(core.id, payload, nbytes)))
                break
        core.stats.comm_s += env.now - t0
        self.machine.record_comm(core.id, t0, env.now)

    def recv(self, core: Core, src: int) -> Generator:
        """Coroutine: blocking receive from ``src``; returns a Message."""
        if src == core.id:
            raise ValueError("cannot receive from self")
        env = self.machine.env
        fabric = self.machine.fabric
        cfg = self.config
        ch = self._channel(src, core.id)
        src_tile = cfg.tile_of_core(src)
        t0 = env.now

        # post readiness for the header (flag write into sender's MPB)
        yield from fabric.transfer(core.tile, src_tile, cfg.rcce_flag_bytes)
        ch.ready.put(None)
        kind, _ = yield ch.done.get()
        if kind != "header":
            raise SimulationError(
                f"RCCE protocol error: expected header, got {kind!r}"
            )

        while True:
            yield from fabric.transfer(core.tile, src_tile, cfg.rcce_flag_bytes)
            ch.ready.put(None)
            kind, value = yield ch.done.get()
            if kind == "last":
                core.stats.comm_s += env.now - t0
                self.machine.record_comm(core.id, t0, env.now)
                return value
            if kind != "chunk":
                raise SimulationError(
                    f"RCCE protocol error: expected chunk, got {kind!r}"
                )

    # ------------------------------------------------------------------
    def barrier(self, core: Core, group: Sequence[int]) -> Generator:
        """Coroutine: block until every core in ``group`` arrives.

        Centralized algorithm: members signal the lowest rank, which
        releases them all (matches RCCE_barrier's flag counter loop).
        """
        group = sorted(group)
        if core.id not in group:
            raise ValueError(f"core {core.id} not in barrier group {group}")
        root = group[0]
        if core.id == root:
            for member in group:
                if member == root:
                    continue
                yield from self.recv(core, member)
            for member in group:
                if member == root:
                    continue
                yield from self.send(core, member, "barrier-release", nbytes=0)
        else:
            yield from self.send(core, root, "barrier-arrive", nbytes=0)
            yield from self.recv(core, root)

    def bcast(self, core: Core, root: int, group: Sequence[int], payload: Any = None, nbytes: Optional[int] = None) -> Generator:
        """Coroutine: root-sequential broadcast; returns the payload."""
        if core.id == root:
            for member in group:
                if member != root:
                    yield from self.send(core, member, payload, nbytes=nbytes)
            return payload
        msg = yield from self.recv(core, root)
        return msg.payload

    def scatter(
        self,
        core: Core,
        root: int,
        group: Sequence[int],
        items: Optional[Sequence[Any]] = None,
        nbytes_each: int = 64,
    ) -> Generator:
        """Coroutine: root sends ``items[k]`` to the k-th group member
        (root keeps its own slot); returns this core's item."""
        group = list(group)
        if core.id == root:
            if items is None or len(items) != len(group):
                raise ValueError("root must supply one item per group member")
            mine = None
            for member, item in zip(group, items):
                if member == root:
                    mine = item
                else:
                    yield from self.send(core, member, item, nbytes=nbytes_each)
            return mine
        msg = yield from self.recv(core, root)
        return msg.payload

    def gather(
        self,
        core: Core,
        root: int,
        group: Sequence[int],
        value: Any,
        nbytes_each: int = 64,
    ) -> Generator:
        """Coroutine: members send ``value`` to root; root returns the
        list in group order, others return None."""
        group = list(group)
        if core.id == root:
            out = []
            for member in group:
                if member == root:
                    out.append(value)
                else:
                    msg = yield from self.recv(core, member)
                    out.append(msg.payload)
            return out
        yield from self.send(core, root, value, nbytes=nbytes_each)
        return None

    def reduce(
        self,
        core: Core,
        root: int,
        group: Sequence[int],
        value: Any,
        op=None,
        nbytes_each: int = 64,
    ) -> Generator:
        """Coroutine: root returns op-fold of all members' values
        (default: sum); others return None."""
        gathered = yield from self.gather(core, root, group, value, nbytes_each)
        if gathered is None:
            return None
        if op is None:
            total = gathered[0]
            for v in gathered[1:]:
                total = total + v
            return total
        total = gathered[0]
        for v in gathered[1:]:
            total = op(total, v)
        return total

    # ------------------------------------------------------------------
    @staticmethod
    def _payload_bytes(payload: Any) -> int:
        size = getattr(payload, "nbytes_wire", None)
        if size is not None:
            return int(size)
        return 64
