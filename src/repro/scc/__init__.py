"""The simulated Single-chip Cloud Computer (SCC).

* :class:`SccConfig` — Table I of the paper as configuration: 6x4 tile
  mesh, 2 P54C cores per tile (48 cores), 16 KB message-passing buffer
  (MPB) per tile, 4 memory controllers.
* :class:`SccMachine` — cores as simulation coroutines on top of the
  :mod:`repro.noc` fabric.
* :class:`Rcce` — a faithful-latency model of Intel's RCCE library:
  blocking rendezvous send/recv with MPB-sized chunking, barrier and
  broadcast.  Payloads are real Python objects carried through the
  simulated network, so application data integrity is testable.
"""

from repro.scc.config import SccConfig
from repro.scc.machine import SccMachine, Core, CoreStats
from repro.scc.rcce import Rcce
from repro.scc.power import PowerConfig, EnergyReport, estimate_rckalign_energy
from repro.scc.trace import Tracer, render_gantt

__all__ = [
    "SccConfig",
    "SccMachine",
    "Core",
    "CoreStats",
    "Rcce",
    "PowerConfig",
    "EnergyReport",
    "estimate_rckalign_energy",
    "Tracer",
    "render_gantt",
]
