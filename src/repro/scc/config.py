"""SCC machine configuration (paper Table I)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cost.cpu import CpuModel, P54C_800
from repro.noc.fabric import NocConfig

__all__ = ["SccConfig"]


@dataclass(frozen=True)
class SccConfig:
    """Parameters of the simulated chip.

    Defaults reproduce the paper's Table I: a 6x4 mesh of 24 tiles, two
    P54C x86 cores per tile (48 total), a 16 KB MPB per tile shared by
    its two cores (8 KB each), four memory controllers.
    """

    noc: NocConfig = field(default_factory=NocConfig)
    cores_per_tile: int = 2
    core_cpu: CpuModel = P54C_800
    mpb_bytes_per_tile: int = 16 * 1024
    rcce_flag_bytes: int = 32  # one cache line per synchronisation flag
    rcce_chunk_header_bytes: int = 32

    def __post_init__(self) -> None:
        if self.cores_per_tile < 1:
            raise ValueError("cores_per_tile must be >= 1")
        if self.mpb_bytes_per_tile < 2 * self.rcce_flag_bytes:
            raise ValueError("MPB too small for flags")

    @property
    def n_tiles(self) -> int:
        return self.noc.width * self.noc.height

    @property
    def n_cores(self) -> int:
        return self.n_tiles * self.cores_per_tile

    @property
    def mpb_bytes_per_core(self) -> int:
        return self.mpb_bytes_per_tile // self.cores_per_tile

    @property
    def rcce_chunk_bytes(self) -> int:
        """Payload bytes movable per rendezvous round (MPB share minus
        the space reserved for flags and the chunk header)."""
        return self.mpb_bytes_per_core - 2 * self.rcce_flag_bytes - self.rcce_chunk_header_bytes

    def tile_of_core(self, core_id: int) -> int:
        if not 0 <= core_id < self.n_cores:
            raise ValueError(f"core id {core_id} out of range [0, {self.n_cores})")
        return core_id // self.cores_per_tile
