"""Command-line interface.

Experiment harnesses (regenerate the paper's tables/figures)::

    python -m repro.cli table1
    python -m repro.cli exp2 --quick --dataset both
    python -m repro.cli all --quick

Tool commands::

    python -m repro.cli align a.pdb b.pdb       # pairwise TM-align
    python -m repro.cli search query.pdb --dataset ck34 --top 10
    python -m repro.cli info --dataset rs119    # dataset summary
    python -m repro.cli bench                   # hot-path wall-clock bench
    python -m repro.cli serve --port 7743       # always-on query service
    python -m repro.cli serve-shard 7744 7745   # scatter-gather coordinator
    python -m repro.cli bench --service --check # 1 vs N shard load test
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Optional, Sequence

from repro.experiments import (
    SLAVE_GRID_FULL,
    SLAVE_GRID_QUICK,
    run_ablation_balancing,
    run_ablation_hierarchy,
    run_ablation_mcpsc,
    run_exp1,
    run_exp2,
    run_exp_resilience,
    run_table1,
    run_table3,
    run_table5,
)
from repro.experiments.ablations import (
    run_ablation_energy,
    run_ablation_frequency,
    run_ablation_inits,
    run_ablation_memory,
)

__all__ = ["main", "build_parser"]


def _grid(args) -> tuple[int, ...]:
    return SLAVE_GRID_QUICK if args.quick else SLAVE_GRID_FULL


# ---------------------------------------------------------------- experiments
def _cmd_table1(args) -> str:
    return run_table1().to_text()


def _cmd_table3(args) -> str:
    return run_table3(mode=args.mode).to_text()


def _cmd_exp1(args) -> str:
    return run_exp1(
        dataset=args.dataset, slave_counts=_grid(args), mode=args.mode
    ).to_text()


def _cmd_exp2(args) -> str:
    datasets = (args.dataset,) if args.dataset != "both" else ("ck34", "rs119")
    return run_exp2(
        datasets=datasets, slave_counts=_grid(args), mode=args.mode
    ).to_text()


def _cmd_table5(args) -> str:
    return run_table5(mode=args.mode).to_text()


def _cmd_ablations(args) -> str:
    parts = [
        run_ablation_balancing(mode=args.mode).to_text(),
        run_ablation_hierarchy(mode=args.mode).to_text(),
        run_ablation_mcpsc(mode=args.mode).to_text(),
        run_ablation_frequency(mode=args.mode).to_text(),
        run_ablation_memory(mode=args.mode).to_text(),
        run_ablation_energy(mode=args.mode).to_text(),
        run_ablation_inits().to_text(),
    ]
    return "\n\n".join(parts)


def _cmd_exp_resilience(args) -> str:
    dataset = args.dataset if args.dataset != "both" else "ck34"
    return run_exp_resilience(
        dataset=dataset,
        n_slaves=11 if args.quick else 23,
        failed_counts=(0, 1, 3),
        mode=args.mode,
    ).to_text()


def _cmd_all(args) -> str:
    out = []
    for name in ("table1", "table3", "exp1", "exp2", "table5", "ablations"):
        t0 = time.time()
        out.append(_EXPERIMENTS[name](args))
        out.append(f"[{name} regenerated in {time.time() - t0:.1f}s]")
    return "\n\n".join(out)


_EXPERIMENTS: dict[str, Callable] = {
    "table1": _cmd_table1,
    "table3": _cmd_table3,
    "exp1": _cmd_exp1,
    "exp2": _cmd_exp2,
    "exp-resilience": _cmd_exp_resilience,
    "table5": _cmd_table5,
    "ablations": _cmd_ablations,
    "all": _cmd_all,
}


# ----------------------------------------------------------------- tool cmds
def _load_chain(path: str, dataset_name: str):
    """A positional that is either a PDB file path or a chain name in
    the given dataset."""
    import os

    from repro.datasets import load_dataset
    from repro.structure import read_pdb_file

    if os.path.exists(path):
        return read_pdb_file(path)
    return load_dataset(dataset_name).by_name(path)


def _cmd_align(args) -> str:
    from repro.tmalign import tm_align
    from repro.tmalign.report import format_tmalign_report

    chain_a = _load_chain(args.chain_a, args.dataset)
    chain_b = _load_chain(args.chain_b, args.dataset)
    result = tm_align(chain_a, chain_b)
    return format_tmalign_report(result, chain_a, chain_b)


def _retry_from_args(args):
    from repro.parallel import RetryPolicy

    if args.retries <= 0 and args.chunk_timeout <= 0:
        return None
    return RetryPolicy(
        max_retries=max(args.retries, 1 if args.chunk_timeout > 0 else 0),
        backoff_seconds=args.backoff,
        chunk_timeout_seconds=args.chunk_timeout,
    )


def _faults_from_args(args):
    from repro.faults import FarmFaultPlan

    return FarmFaultPlan.parse(args.inject) if args.inject else None


def _run_store(args):
    from repro.runs import RunStore

    return RunStore(args.runs_dir)


def _cmd_search(args) -> str:
    from repro.datasets import load_dataset
    from repro.psc import get_method, one_vs_all
    from repro.runs import RunManifest

    dataset = load_dataset(args.dataset)
    query = _load_chain(args.query, args.dataset)
    prefilter_cfg = None
    if args.prefilter:
        from repro.seqalign.prefilter import PrefilterConfig

        if args.prefilter_keep is not None:
            prefilter_cfg = PrefilterConfig(keep=args.prefilter_keep)
        else:
            prefilter_cfg = PrefilterConfig()
    store = _run_store(args)
    manifest = RunManifest.for_task(
        run_id=store.new_run_id("search"),
        command="search",
        dataset=dataset,
        method_name=args.method,
        n_pairs=len(dataset),
        params={
            "query": query.name,
            "top": args.top,
            "workers": args.workers,
            "chunk": args.chunk,
            "prefilter_keep": (
                prefilter_cfg.keep if prefilter_cfg is not None else None
            ),
        },
    )
    run = store.create(manifest)
    try:
        hits = one_vs_all(
            query,
            dataset,
            method=get_method(args.method),
            workers=args.workers,
            chunk=args.chunk,
            retry=_retry_from_args(args),
            adaptive=not args.no_adaptive,
            shm=not args.no_shm,
            prefilter=prefilter_cfg,
        )
    except BaseException:
        run.mark("interrupted")
        raise
    lines = [
        f"query {query.name} ({len(query)} residues) vs {dataset.name} "
        f"({len(dataset)} chains) using {args.method}:",
    ]
    if prefilter_cfg is not None:
        n_elig = len(dataset) - any(c.name == query.name for c in dataset)
        lines.append(
            f"prefilter: promoted {len(hits)} of {n_elig} candidates "
            f"(keep={prefilter_cfg.keep})"
        )
    lines.append(f"{'rank':>4}  {'chain':<20} {'score':>8}")
    for rank, hit in enumerate(hits[: args.top], start=1):
        lines.append(f"{rank:>4}  {hit.chain_name:<20} {hit.score:>8.4f}")
    text = "\n".join(lines)
    from repro.runs.manifest import atomic_write_text

    atomic_write_text(run.artifact_path("result.txt"), text + "\n")
    run.mark("complete")
    return text + f"\n[run {run.run_id} recorded in {args.runs_dir}]"


def _cmd_matrix(args) -> str:
    """All-vs-all score matrix, journaled to a run directory and
    streamed to CSV (atomic finalize; resumable after interruption)."""
    from repro.datasets import load_dataset
    from repro.faults import InjectedFault
    from repro.parallel import ParallelConfig, WorkerCrash
    from repro.psc import get_method
    from repro.runs import JournalCorrupt, matrix_run

    dataset = load_dataset(args.dataset)
    method = get_method(args.method)
    config = ParallelConfig(
        workers=args.workers,
        chunk=args.chunk,
        retry=_retry_from_args(args),
        adaptive=not args.no_adaptive,
        shm=not args.no_shm,
    )
    store = _run_store(args)
    try:
        result = matrix_run(
            dataset,
            method,
            args.output,
            store,
            run_id=args.run_id or None,
            resume=args.resume or None,
            config=config,
            faults=_faults_from_args(args),
        )
    except JournalCorrupt as exc:
        raise SystemExit(f"corrupt journal: {exc}") from None
    except (WorkerCrash, InjectedFault) as exc:
        run_id = args.resume or args.run_id
        hint = (
            f" — completed pairs are journaled; continue with "
            f"`matrix --resume {run_id} --runs-dir {args.runs_dir}`"
            if run_id
            else " — completed pairs are journaled (see the `runs` command)"
        )
        raise SystemExit(f"matrix run failed: {exc}{hint}") from exc
    stats = result.stats
    sched = "cost-packed" if stats.cost_packed else f"chunk={stats.chunk_size}"
    if stats.chunk_sizes:
        sched += (
            f", realized chunks {stats.chunk_size_min}/"
            f"{stats.chunk_size_mean:.1f}/{stats.chunk_size_max} (min/mean/max)"
        )
    lines = [
        f"wrote {result.n_rows} pair scores to {result.output} (streamed, "
        f"workers={stats.workers}, {sched}; "
        f"run {result.run_id})",
    ]
    if stats.backoffs or stats.serial_fallback:
        lines.append(
            f"adaptive scheduler: {stats.backoffs} concurrency backoffs, "
            f"final window {stats.final_window}"
            + (", finished serially in-process" if stats.serial_fallback else "")
        )
    if result.n_journaled:
        lines.append(
            f"resumed: {result.n_journaled} pairs taken from the journal, "
            f"{result.n_computed} computed now"
        )
    if stats.retries or stats.pool_restarts or stats.chunk_timeouts:
        lines.append(
            f"absorbed faults: {stats.retries} chunk retries, "
            f"{stats.pool_restarts} pool restarts, "
            f"{stats.chunk_timeouts} stall re-dispatches"
        )
    lines.append(
        f"wall {stats.wall_seconds:.1f}s, {stats.pairs_per_second:.2f} pairs/s; "
        f"mean off-diagonal {result.score_key} = "
        f"{result.score_sum / max(1, result.n_pairs):.4f}"
    )
    return "\n".join(lines)


def _cmd_runs(args) -> str:
    """List durable runs under --runs-dir."""
    from repro.runs import JournalCorrupt

    store = _run_store(args)
    runs = store.list_runs()
    if not runs:
        return f"no runs under {args.runs_dir}"
    lines = [f"{'run':<34} {'command':<14} {'status':<12} {'done':>11}  dataset"]
    for run in runs:
        m = run.manifest
        try:
            done, total = run.progress()
        except JournalCorrupt as exc:
            raise SystemExit(f"corrupt journal: {exc}") from None
        lines.append(
            f"{m.run_id:<34} {m.command:<14} {m.status:<12} "
            f"{done:>5}/{total:<5}  {m.dataset}"
        )
    return "\n".join(lines)


def _cmd_trace(args) -> str:
    """Trace a simulated rckAlign farm; optionally export Chrome JSON."""
    from repro.core.rckalign import RckAlignConfig, run_rckalign
    from repro.faults import SimFaultPlan
    from repro.scc.trace import Tracer, chrome_trace, render_gantt

    plan = None
    if args.kill:
        plan = SimFaultPlan.kill_n(
            args.kill, list(range(1, args.slaves + 1)), seed=args.seed
        )
    box = {}
    report = run_rckalign(
        RckAlignConfig(
            dataset=args.dataset,
            n_slaves=args.slaves,
            mode=args.mode,
            fault_plan=plan,
        ),
        on_machine=lambda machine: box.update(tracer=Tracer(machine)),
    )
    tracer = box["tracer"]
    lines = [report.summary()]
    if report.failures_detected:
        lines.append(
            f"failures: {report.failures_detected} slave(s) died "
            f"({', '.join(f'rck{s:02d}' for s in report.failed_slaves)}), "
            f"{report.jobs_reassigned} job(s) reassigned"
        )
    if args.chrome:
        with open(args.chrome, "w", encoding="ascii") as fh:
            fh.write(chrome_trace(tracer))
        lines.append(
            f"wrote {len(tracer.intervals)} intervals to {args.chrome} "
            "(open in chrome://tracing or ui.perfetto.dev)"
        )
    if args.gantt:
        lines.append(render_gantt(tracer))
    return "\n".join(lines)


#: once-per-invocation deprecation notes already emitted (cleared in main())
_WARNED: set[str] = set()


def _warn_once(key: str, message: str) -> None:
    if key not in _WARNED:
        _WARNED.add(key)
        print(message, file=sys.stderr)


def _bench_output(args) -> Optional[str]:
    """Resolve the bench artefact path from --output/--no-output.

    ``--output ""`` is a deprecated spelling of --no-output: it folds
    onto the same code path after a once-per-invocation stderr note, so
    there is exactly one way the artefact gets skipped.
    """
    if args.output == "":
        _warn_once(
            "bench-output-empty",
            'note: `--output ""` is deprecated; use --no-output to skip '
            "the JSON artefact",
        )
        args.no_output = True
    return None if args.no_output else args.output


def _cmd_bench(args) -> str:
    if sum((args.kernel, args.prefilter, args.matstore, args.service)) > 1:
        raise SystemExit(
            "bench: --kernel, --prefilter, --matstore and --service are "
            "exclusive"
        )
    if args.kernel:
        return _cmd_bench_kernel(args)
    if args.prefilter:
        return _cmd_bench_prefilter(args)
    if args.matstore:
        return _cmd_bench_matstore(args)
    if args.service:
        return _cmd_bench_service(args)
    from repro.experiments.bench import format_bench_report, run_bench

    output = _bench_output(args)
    datasets = (args.dataset,) if args.dataset != "both" else ("ck34", "rs119")
    report = run_bench(
        datasets=datasets,
        slave_counts=_grid(args),
        mode=args.mode,
        output=output,
        micro=not args.no_micro,
    )
    text = format_bench_report(report)
    if output:
        text += f"\nwrote {output}"
    return text


def _cmd_bench_kernel(args) -> str:
    """``bench --kernel``: TM-align kernel micro-benchmark + perf gate."""
    from repro.experiments.bench import (
        DEFAULT_BENCH_OUTPUT,
        DEFAULT_KERNEL_BENCH_OUTPUT,
        BaselineError,
        format_kernel_bench_report,
        run_kernel_bench,
    )

    output = _bench_output(args)
    if output == DEFAULT_BENCH_OUTPUT:
        # the hot-path artefact default doesn't apply to the kernel bench
        output = DEFAULT_KERNEL_BENCH_OUTPUT
    try:
        report = run_kernel_bench(
            dataset=args.dataset if args.dataset != "both" else "ck34",
            output=output,
            baseline=args.baseline if args.baseline > 0 else None,
            min_ratio=args.min_ratio,
            repeats=1 if args.quick else args.repeats,
            stages=not args.no_micro,
            strict_baseline=args.check,
        )
    except BaselineError as exc:
        raise SystemExit(f"bench --check: {exc}") from None
    text = format_kernel_bench_report(report)
    if output:
        text += f"\nwrote {output}"
    if args.check and not report["regression"]["passed"]:
        print(text, file=sys.stderr)
        raise SystemExit(
            f"kernel perf regression: {report['pairs_per_second']:.2f} pairs/s "
            f"< {args.min_ratio:.2f} x baseline "
            f"{report['regression']['baseline_pairs_per_second']:.2f}"
        )
    return text


def _cmd_bench_prefilter(args) -> str:
    """``bench --prefilter``: hierarchical-search bench + recall gate."""
    from repro.experiments.bench import (
        DEFAULT_BENCH_OUTPUT,
        DEFAULT_PREFILTER_BENCH_OUTPUT,
        format_prefilter_bench_report,
        run_prefilter_bench,
    )

    output = _bench_output(args)
    if output == DEFAULT_BENCH_OUTPUT:
        # the hot-path artefact default doesn't apply to the prefilter bench
        output = DEFAULT_PREFILTER_BENCH_OUTPUT
    report = run_prefilter_bench(
        dataset=args.dataset if args.dataset != "both" else "ck34",
        output=output,
        keep=args.prefilter_keep,
        queries=args.queries,
        min_recall=args.min_recall,
        min_speedup=args.min_speedup if args.min_speedup is not None else 2.0,
    )
    text = format_prefilter_bench_report(report)
    if output:
        text += f"\nwrote {output}"
    if args.check and not report["regression"]["passed"]:
        print(text, file=sys.stderr)
        reg = report["regression"]
        raise SystemExit(
            f"prefilter gate failed: recall@10 {reg['recall_at_10']:.4f} "
            f"(min {reg['min_recall_at_10']:.2f}), speedup "
            f"{reg['speedup']:.2f}x (min {reg['min_speedup']:.2f})"
        )
    return text


def _cmd_bench_matstore(args) -> str:
    """``bench --matstore``: store build/extend/lookup bench + gate."""
    from repro.experiments.bench import (
        DEFAULT_BENCH_OUTPUT,
        DEFAULT_MATSTORE_BENCH_OUTPUT,
        format_matstore_bench_report,
        run_matstore_bench,
    )

    output = _bench_output(args)
    if output == DEFAULT_BENCH_OUTPUT:
        # the hot-path artefact default doesn't apply to the matstore bench
        output = DEFAULT_MATSTORE_BENCH_OUTPUT
    report = run_matstore_bench(
        dataset=args.dataset if args.dataset != "both" else "ck34",
        output=output,
        limit=8 if args.quick else None,
        min_speedup=(
            args.min_speedup if args.min_speedup is not None else 100.0
        ),
    )
    text = format_matstore_bench_report(report)
    if output:
        text += f"\nwrote {output}"
    if args.check and not report["regression"]["passed"]:
        print(text, file=sys.stderr)
        reg = report["regression"]
        raise SystemExit(
            f"matstore gate failed: lookup speedup {reg['speedup']:,.0f}x "
            f"(min {reg['min_speedup']:.0f}), one-row extend exact: "
            f"{reg['extend_exact']}"
        )
    return text


def _cmd_bench_service(args) -> str:
    """``bench --service``: 1-shard vs N-shard open-loop load test + gate."""
    from repro.experiments.bench import (
        DEFAULT_BENCH_OUTPUT,
        DEFAULT_SERVICE_BENCH_OUTPUT,
        format_service_bench_report,
        run_service_bench,
    )

    output = _bench_output(args)
    if output == DEFAULT_BENCH_OUTPUT:
        # the hot-path artefact default doesn't apply to the service bench
        output = DEFAULT_SERVICE_BENCH_OUTPUT
    report = run_service_bench(
        dataset=args.dataset if args.dataset != "both" else "ck34",
        output=output,
        shards=args.shards,
        min_speedup=(
            args.min_speedup if args.min_speedup is not None else 1.5
        ),
        quick=args.quick,
    )
    text = format_service_bench_report(report)
    if output:
        text += f"\nwrote {output}"
    if args.check and not report["regression"]["passed"]:
        print(text, file=sys.stderr)
        reg = report["regression"]
        raise SystemExit(
            f"service gate failed: N-shard throughput {reg['speedup']:.2f}x "
            f"single-shard at saturation (min {reg['min_speedup']:.2f}x)"
        )
    return text


def _cmd_bench_parallel(args) -> str:
    from repro.datasets import load_dataset
    from repro.experiments.bench import (
        format_parallel_bench_report,
        run_parallel_bench,
    )
    from repro.runs import RunManifest
    from repro.runs.manifest import atomic_write_text

    output = _bench_output(args)
    workers = tuple(int(w) for w in args.workers_grid.split(","))
    dataset = load_dataset(args.dataset)
    store = _run_store(args)
    run = store.create(
        RunManifest.for_task(
            run_id=store.new_run_id("bench-parallel"),
            command="bench-parallel",
            dataset=dataset,
            method_name="tmalign",
            n_pairs=len(dataset) * (len(dataset) - 1) // 2,
            params={"workers_grid": list(workers), "chunk": args.chunk},
        )
    )
    try:
        report = run_parallel_bench(
            dataset=args.dataset,
            workers_grid=workers,
            chunk=args.chunk,
            output=output,
            shm=not args.no_shm,
        )
    except BaseException:
        run.mark("interrupted")
        raise
    text = format_parallel_bench_report(report)
    import json as _json

    atomic_write_text(
        run.artifact_path("result.json"), _json.dumps(report, indent=1, default=str)
    )
    run.mark("complete")
    if output:
        text += f"\nwrote {output}"
    text += f"\n[run {run.run_id} recorded in {args.runs_dir}]"
    if args.check:
        best = report["regression"]["best_speedup_vs_serial"]
        if best < args.min_speedup:
            raise SystemExit(
                f"{text}\nparallel regression: best speedup "
                f"{best:.2f}x < {args.min_speedup:.2f}x serial"
            )
        not_identical = [
            p["workers"]
            for p in report["points"]
            if not p["bit_identical_to_serial"]
        ]
        ref = report.get("no_plane_reference")
        if ref and not ref["bit_identical_to_serial"]:
            not_identical.append(f"{ref['workers']} (no-plane ref)")
        if not_identical:
            raise SystemExit(
                f"{text}\nparallel regression: workers={not_identical} "
                f"diverged from the serial score table"
            )
        plane = report.get("plane") or {}
        if (
            args.min_startup_speedup > 0
            and plane
            and not plane.get("unavailable")
        ):
            speedup = plane.get("rebuild_delivery_speedup", 0.0)
            if speedup < args.min_startup_speedup:
                raise SystemExit(
                    f"{text}\nplane regression: dataset-delivery speedup "
                    f"{speedup:.1f}x < {args.min_startup_speedup:.1f}x "
                    f"(pool rebuilds are no longer near-free)"
                )
    return text


#: default TCP port of the query service (repro.service.client.DEFAULT_PORT)
_SERVICE_PORT = 7743


def _cmd_serve(args) -> str:
    """Run the always-on PSC query service until a ``shutdown`` request."""
    import asyncio

    from repro.service import PSCService, ServiceConfig

    config = ServiceConfig(
        dataset=args.dataset,
        host=args.host,
        port=args.port,
        queue_limit=args.queue_limit,
        max_batch=args.max_batch,
        batch_window=args.batch_window,
        max_batch_cost=args.max_batch_cost,
        workers=args.workers,
        chunk=args.chunk,
        retries=args.retries,
        backoff=args.backoff,
        adaptive=not args.no_adaptive,
        shm=not args.no_shm,
        cache_capacity=args.cache_capacity,
        runs_dir=args.runs_dir,
        eval_delay=args.eval_delay,
        matstore_dir=args.matstore_dir,
    )

    async def _serve() -> str:
        async with PSCService(config) as service:
            print(
                f"serving {service.registry.dataset_name or '(empty registry)'} "
                f"({len(service.registry)} chains) on "
                f"{service.host}:{service.port}",
                flush=True,
            )
            await service.serve_until_stopped()
            stats = service.cache.stats()
            return (
                f"stopped after {service.metrics.counters['connections']} "
                f"connections; cache {stats['hits']} hits, "
                f"{stats['misses']} misses, {stats['evictions']} evictions"
            )

    return asyncio.run(_serve())


def _cmd_serve_shard(args) -> str:
    """Run the scatter-gather coordinator over running shard services."""
    import asyncio

    from repro.service.shard import (
        CoordinatorConfig,
        ShardCoordinator,
        parse_shard_spec,
    )

    try:
        shards = tuple(parse_shard_spec(spec) for spec in args.shards)
    except ValueError as exc:
        raise SystemExit(f"serve-shard: {exc}")
    config = CoordinatorConfig(
        shards=shards,
        host=args.host,
        port=args.port,
        timeout=args.timeout,
        connect_timeout=args.connect_timeout,
        hedge_after=args.hedge_after,
        down_after=args.down_after,
        probe_cooldown=args.probe_cooldown,
    )

    async def _serve() -> str:
        async with ShardCoordinator(config) as coordinator:
            print(
                f"coordinating {len(config.shards)} shard(s) on "
                f"{coordinator.host}:{coordinator.port}",
                flush=True,
            )
            await coordinator.serve_until_stopped()
            counters = coordinator.metrics.counters
            return (
                f"coordinator stopped after {counters['connections']} "
                f"connections; {counters['partial_results']} partial "
                f"results, {counters['hedged_requests']} hedged, "
                f"{counters['failover_retries']} failovers"
            )

    return asyncio.run(_serve())


def _cmd_shard_topology(args) -> str:
    """Offline view of the rendezvous-hash ownership map (no sockets)."""
    from repro.service.registry import chain_content_hash
    from repro.service.shard import (
        parse_shard_spec,
        partition_keys,
        rendezvous_rank,
    )

    try:
        shards = [parse_shard_spec(spec) for spec in args.shards]
    except ValueError as exc:
        raise SystemExit(f"shard-topology: {exc}")
    if args.key:
        order = rendezvous_rank(args.key, shards)
        lines = [f"preference order for key {args.key!r}:"]
        lines.extend(
            f"{rank}. {shard_id}" for rank, shard_id in enumerate(order, 1)
        )
        return "\n".join(lines)

    from repro.datasets import load_dataset

    ds = load_dataset(args.dataset)
    name_by_hash = {}
    for chain in ds.chains:
        name_by_hash[chain_content_hash(chain)] = chain.name
    parts = partition_keys(list(name_by_hash), shards)
    lines = [
        f"{len(name_by_hash)} chains of {ds.name} over "
        f"{len(shards)} shard(s):"
    ]
    for shard_id in shards:
        owned = parts.get(shard_id, [])
        share = 100.0 * len(owned) / max(1, len(name_by_hash))
        lines.append(f"{shard_id:<24} {len(owned):>5} chains ({share:.1f}%)")
        if args.verbose:
            lines.extend(
                f"    {name_by_hash[h]:<20} {h[:12]}" for h in owned
            )
    return "\n".join(lines)


def _cmd_query(args) -> str:
    """One request against a running service (see the ``serve`` command)."""
    import json as _json

    from repro.service.client import ServiceClient

    operands = {
        "align": (2, "<chain-a> <chain-b>"),
        "search": (1, "<query-chain>"),
        "register": (2, "<name> <pdb-file>"),
        "submit-matrix": (0, "[--dataset D] [--method M] [--runs-dir R]"),
        "status": ((0, 1), "[run-id]"),
        "matstore-build": (0, "[--matstore-dir DIR]"),
        "matstore-lookup": (2, "<chain-a> <chain-b>"),
        "corpus": (0, ""),
        "healthz": (0, ""),
        "metrics": (0, ""),
        "shutdown": (0, "[--broadcast]"),
    }
    n_args, usage = operands[args.op]
    allowed = n_args if isinstance(n_args, tuple) else (n_args,)
    if len(args.args) not in allowed:
        raise SystemExit(f"usage: query {args.op} {usage}".rstrip())
    params = _json.loads(args.params) if args.params else None
    method = args.method or "tmalign"
    with ServiceClient(args.host, args.port, timeout=args.timeout) as client:
        if args.op == "align":
            a, b = args.args
            resp = client.align(a, b, method=method, params=params)
            result = resp["result"]
            lines = [
                f"align {a} vs {b} [{result['method']}]",
                f"score: {result['score']:.4f}",
            ]
            for key in sorted(result["scores"]):
                lines.append(f"  {key} = {result['scores'][key]:.4f}")
            lines.append(f"cached: {'yes' if resp.get('cached') else 'no'}")
            return "\n".join(lines)
        if args.op == "search":
            (query,) = args.args
            result = client.search(
                query,
                top=args.top,
                method=method,
                params=params,
                prefilter=args.prefilter,
                prefilter_keep=args.prefilter_keep,
            )
            lines = [
                f"query {query} vs {result['corpus']} corpus chains "
                f"[{result['method']}] ({result['from_cache']} from cache):",
            ]
            if "prefilter" in result:
                pf = result["prefilter"]
                lines.append(
                    f"prefilter: promoted {pf['promoted']} of "
                    f"{result['corpus']} candidates (keep={pf['keep']})"
                )
            lines.append(f"{'rank':>4}  {'chain':<20} {'score':>8}")
            for rank, hit in enumerate(result["hits"], start=1):
                lines.append(
                    f"{rank:>4}  {hit['chain']:<20} {hit['score']:>8.4f}"
                )
            return "\n".join(lines)
        if args.op == "register":
            name, path = args.args
            with open(path, encoding="ascii") as fh:
                text = fh.read()
            info = client.register_pdb(name, text, corpus=args.corpus)
            return (
                f"registered {info['name']} ({info['residues']} residues) "
                f"as {info['hash'][:12]}... (corpus: {info['corpus']})"
            )
        if args.op == "submit-matrix":
            info = client.submit_matrix(
                dataset=args.dataset or None,
                method=args.method or None,
                runs_dir=args.runs_dir or None,
                params=params,
            )
            return (
                f"submitted run {info['run_id']}: {info['n_pairs']} pairs of "
                f"{info['dataset']} via {info['method']} -> {info['output']}"
            )
        if args.op == "status":
            if args.args:
                (run_id,) = args.args
                info = client.status(run_id, runs_dir=args.runs_dir or None)
                line = f"run {info['run_id']}: {info['status']}"
                if "done" in info:
                    line += f" ({info['done']}/{info['n_pairs']} pairs)"
                if info.get("error"):
                    line += f"\nerror: {info['error']}"
                return line
            info = client.status()
            if info.get("coordinator"):
                lines = [
                    f"coordinator: {info['status']} "
                    f"({info['shards_reachable']}/{info['shards_total']} "
                    f"shards reachable, drift: "
                    f"{'yes' if info['drift'] else 'no'})",
                ]
                for shard_id in info["topology"]:
                    detail = info["shards"][shard_id]
                    if detail["reachable"]:
                        lines.append(
                            f"shard {shard_id}: up, "
                            f"{detail['dataset'] or '(empty)'} "
                            f"({detail['corpus']} corpus chains, "
                            f"generation {detail['registry_generation']}), "
                            f"{detail['requests']} requests, "
                            f"{detail['failures']} failures"
                        )
                    else:
                        lines.append(
                            f"shard {shard_id}: DOWN "
                            f"({detail.get('error') or 'unreachable'})"
                        )
                lines.append(
                    f"partial results: {info['partial_results']}, "
                    f"hedged: {info['hedged_requests']}, "
                    f"failovers: {info['failover_retries']}"
                )
                return "\n".join(lines)
            lines = [
                f"service: {info['status']} "
                f"({info['chains']} chains, dataset "
                f"{info['dataset'] or '(empty)'})",
            ]
            ms = info["matstore"]
            if ms.get("attached"):
                lines.append(
                    f"matstore: {ms['n_chains']} chains, "
                    f"{ms['pairs_stored']}/{ms['n_pairs']} pairs stored "
                    f"({ms['block_bytes']} block bytes) at {ms['root']}"
                )
                lines.append(
                    f"matstore lookups: {ms['lookup_hits']} hits, "
                    f"{ms['lookup_misses']} misses"
                )
            else:
                lines.append("matstore: not attached")
            if ms.get("building"):
                lines.append("matstore: build in progress")
            if ms.get("error"):
                lines.append(f"matstore error: {ms['error']}")
            return "\n".join(lines)
        if args.op == "matstore-build":
            info = client.matstore_build(root=args.matstore_dir or None)
            return (
                f"matstore build started at {info['root']}: "
                f"{info['n_chains']} corpus chains, {info['n_pairs']} pairs "
                "(background; poll `query status`)"
            )
        if args.op == "matstore-lookup":
            a, b = args.args
            info = client.matstore_lookup(a, b)
            lines = [
                f"matstore hit {a} vs {b} [{info['method']}]"
                + (" (stored swapped)" if info["swapped"] else ""),
            ]
            for key in sorted(info["scores"]):
                lines.append(f"  {key} = {info['scores'][key]:.4f}")
            return "\n".join(lines)
        if args.op == "corpus":
            info = client.corpus()
            lines = [
                f"corpus of {info['dataset'] or '(empty registry)'}: "
                f"{len(info['chains'])} chains, generation "
                f"{info['generation']}, fingerprint "
                f"{info['fingerprint'][:12]}..."
            ]
            lines.extend(
                f"  {entry['name']:<20} {entry['hash'][:12]}"
                for entry in info["chains"]
            )
            return "\n".join(lines)
        if args.op in ("healthz", "metrics"):
            result = client.healthz() if args.op == "healthz" else client.metrics()
            return _json.dumps(result, indent=1, sort_keys=True)
        # args.op == "shutdown" (argparse rejects anything else)
        client.shutdown(broadcast=args.broadcast)
        return "server is stopping"


def _cmd_matstore(args) -> str:
    """Durable all-vs-all matrix store: build, extend, query, verify,
    export (see :mod:`repro.matstore`)."""
    from repro.matstore import (
        MatStoreError,
        MatrixStore,
        build_store,
        ensure_coverage,
        export_csv,
    )
    from repro.runs import JournalCorrupt

    def load_limited():
        from repro.datasets import load_dataset

        ds = load_dataset(args.dataset)
        if args.limit:
            ds = ds.subset(args.limit)
        return ds

    def farm_config():
        from repro.parallel import ParallelConfig

        return ParallelConfig(
            workers=args.workers,
            chunk=args.chunk,
            retry=_retry_from_args(args),
            adaptive=not args.no_adaptive,
            shm=not args.no_shm,
        )

    def describe(result, verb: str) -> str:
        store = result.store
        lines = [
            f"{verb} {args.store}: {store.n_chains} chains, "
            f"{store.n_pairs} pairs committed "
            f"({result.n_computed} computed now, "
            f"{result.n_journaled} from the journal"
            + (f", {result.n_holes} prefilter holes" if result.n_holes else "")
            + f") in {result.wall_seconds:.1f}s"
        ]
        lines.extend(result.notes)
        return "\n".join(lines)

    try:
        if args.action == "build":
            result = build_store(
                load_limited(), args.store, config=farm_config()
            )
            return describe(result, "built")
        if args.action == "extend":
            result = ensure_coverage(
                args.store, load_limited(), config=farm_config()
            )
            return describe(result, "extended")
        store = MatrixStore.open(args.store)
        if args.action == "query":
            names = list(store.names)
            for name in (args.chain_a, args.chain_b):
                if name not in names:
                    raise SystemExit(
                        f"chain {name!r} is not in the store "
                        f"({store.n_chains} chains); see `matstore export`"
                    )
            hashes = store.hashes
            hit = store.lookup(
                hashes[names.index(args.chain_a)],
                hashes[names.index(args.chain_b)],
            )
            if hit is None:
                raise SystemExit(
                    f"pair {args.chain_a} vs {args.chain_b} is not stored "
                    "(prefilter hole or identical chains)"
                )
            lines = [
                f"{args.chain_a} vs {args.chain_b} [{store.method}]"
                + (" (stored swapped)" if hit.swapped else "")
            ]
            for key in sorted(hit.scores):
                lines.append(f"  {key} = {hit.scores[key]:.4f}")
            return "\n".join(lines)
        if args.action == "verify":
            report = store.verify()
            line = (
                f"store {args.store} verified: {report['pairs_checked']} "
                f"pairs cross-checked against the journal"
            )
            if report["holes"]:
                line += f", {report['holes']} prefilter holes"
            if report["uncommitted_journal_rows"]:
                line += (
                    f", {report['uncommitted_journal_rows']} journaled rows "
                    "awaiting commit"
                )
            if report["dropped_journal_lines"]:
                line += (
                    f", {report['dropped_journal_lines']} torn tail lines "
                    "dropped"
                )
            return line
        # args.action == "export" (argparse rejects anything else)
        n = export_csv(store, args.output)
        return f"exported {n} pair rows to {args.output}"
    except JournalCorrupt as exc:
        raise SystemExit(f"corrupt journal: {exc}") from None
    except MatStoreError as exc:
        raise SystemExit(f"matstore error: {exc}") from None


def _cmd_info(args) -> str:
    from repro.datasets import load_dataset

    ds = load_dataset(args.dataset)
    lines = [
        f"dataset {ds.name}: {len(ds)} chains, {ds.total_residues} residues "
        f"(mean length {ds.mean_length:.1f})",
        f"description: {ds.description}",
        "families:",
    ]
    for fam, members in sorted(ds.families.items()):
        lengths = [len(c) for c in members]
        lines.append(
            f"  {fam:<16} {len(members):>3} chains, "
            f"lengths {min(lengths)}-{max(lengths)}"
        )
    return "\n".join(lines)


def _positive_int(text: str) -> int:
    """argparse type: integer >= 1, rejected with a one-line error."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer, got {text!r}"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _fraction(text: str) -> float:
    """argparse type: number in (0, 1], rejected with a one-line error."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a number, got {text!r}"
        ) from None
    if not 0.0 < value <= 1.0:
        raise argparse.ArgumentTypeError(f"must be in (0, 1], got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rckalign",
        description=(
            "Reproduce 'Accelerating all-to-all protein structures comparison "
            "with TM-align using a NoC many-cores processor architecture' "
            "(IPDPSW 2013) — and use its tools directly."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p) -> None:
        p.add_argument(
            "--mode",
            default="model",
            choices=("model", "measured"),
            help="pair costing: analytic model (fast) or real aligner runs",
        )
        p.add_argument(
            "--quick",
            action="store_true",
            help="sweep only 5 slave counts instead of all 24",
        )
        p.add_argument(
            "--dataset",
            default="ck34",
            help="dataset for exp1/exp2 (exp2 also accepts 'both')",
        )

    for name in sorted(_EXPERIMENTS):
        p = sub.add_parser(name, help=f"regenerate {name}")
        add_common(p)
        p.set_defaults(fn=_EXPERIMENTS[name])

    p = sub.add_parser("align", help="pairwise TM-align of two structures")
    p.add_argument("chain_a", help="PDB file path or chain name in --dataset")
    p.add_argument("chain_b", help="PDB file path or chain name in --dataset")
    p.add_argument("--dataset", default="ck34")
    p.set_defaults(fn=_cmd_align)

    def add_farm(p) -> None:
        p.add_argument(
            "--workers",
            type=int,
            default=0,
            help="process-pool size (0/1 = serial in-process)",
        )
        p.add_argument(
            "--chunk",
            type=int,
            default=0,
            help="pairs per scheduling chunk (0 = cost-packed: chunks of "
            "roughly equal predicted work from the pair cost model)",
        )
        p.add_argument(
            "--no-adaptive",
            action="store_true",
            help="disable adaptive worker sizing (measured-throughput "
            "backoff when oversubscribed)",
        )
        p.add_argument(
            "--no-shm",
            action="store_true",
            help="disable the shared-memory dataset plane (workers "
            "unpickle the dataset instead of attaching zero-copy; "
            "results are bit-identical either way)",
        )

    def add_resilience(p) -> None:
        p.add_argument(
            "--retries",
            type=int,
            default=0,
            help="re-dispatches allowed per failed chunk (0 = fail fast)",
        )
        p.add_argument(
            "--backoff",
            type=float,
            default=0.05,
            help="base exponential-backoff delay between retries (s)",
        )
        p.add_argument(
            "--chunk-timeout",
            type=float,
            default=0.0,
            help="seconds before a stalled chunk gets a duplicate dispatch "
            "(0 = no stall detection)",
        )
        p.add_argument(
            "--inject",
            default="",
            help="deterministic fault plan for the farm workers, e.g. "
            "'kill@0-3', 'raise@1-2#0|1', 'stall:1.5@2-4' (comma-separated)",
        )

    def add_runs_dir(p) -> None:
        p.add_argument(
            "--runs-dir",
            default="runs",
            help="root directory of the durable run store",
        )

    p = sub.add_parser("search", help="one-vs-all ranked search")
    p.add_argument("query", help="PDB file path or chain name in --dataset")
    p.add_argument("--dataset", default="ck34")
    p.add_argument("--method", default="tmalign")
    p.add_argument("--top", type=_positive_int, default=10)
    p.add_argument(
        "--prefilter",
        action="store_true",
        help="hierarchical search: batched sequence tier promotes only "
        "the best candidates to the exact kernel",
    )
    p.add_argument(
        "--prefilter-keep",
        type=_fraction,
        default=None,
        metavar="FRACTION",
        help="promoted fraction of the candidate set, in (0, 1] "
        "(default: the benchmarked PrefilterConfig operating point)",
    )
    add_farm(p)
    add_resilience(p)
    add_runs_dir(p)
    p.set_defaults(fn=_cmd_search)

    p = sub.add_parser(
        "matrix",
        help="all-vs-all score matrix to CSV (journaled; resumable)",
    )
    p.add_argument("--dataset", default="ck34-mini")
    p.add_argument("--method", default="sse_composition")
    p.add_argument("--output", default="scores.csv")
    p.add_argument(
        "--run-id",
        default="",
        help="name the fresh run directory (default: auto-generated)",
    )
    p.add_argument(
        "--resume",
        default="",
        help="continue an interrupted run by id; journaled pairs are "
        "never recomputed",
    )
    add_farm(p)
    add_resilience(p)
    add_runs_dir(p)
    p.set_defaults(fn=_cmd_matrix)

    p = sub.add_parser("runs", help="list durable runs and their status")
    add_runs_dir(p)
    p.set_defaults(fn=_cmd_runs)

    p = sub.add_parser(
        "trace",
        help="trace a simulated rckAlign farm (Gantt / Chrome JSON)",
    )
    p.add_argument("--dataset", default="ck34-mini")
    p.add_argument("--slaves", type=int, default=5)
    p.add_argument(
        "--mode", default="model", choices=("model", "measured")
    )
    p.add_argument(
        "--kill",
        type=int,
        default=0,
        help="kill this many slaves mid-farm (seeded fault plan)",
    )
    p.add_argument("--seed", type=int, default=0, help="fault-plan seed")
    p.add_argument(
        "--chrome",
        default="",
        help="write the trace as Chrome tracing JSON to this path",
    )
    p.add_argument(
        "--gantt",
        action="store_true",
        help="also print the fixed-width utilization chart",
    )
    p.set_defaults(fn=_cmd_trace)

    p = sub.add_parser(
        "bench", help="wall-clock benchmark of the simulator hot paths"
    )
    add_common(p)
    p.add_argument(
        "--output",
        default="BENCH_hotpaths.json",
        help="JSON artefact path (BENCH_kernel.json with --kernel, "
        "BENCH_prefilter.json with --prefilter, BENCH_matstore.json "
        "with --matstore)",
    )
    p.add_argument(
        "--no-output",
        action="store_true",
        help="skip writing the JSON artefact",
    )
    p.add_argument(
        "--no-micro",
        action="store_true",
        help="skip the micro-benchmarks (with --kernel: the stage table)",
    )
    p.add_argument(
        "--kernel",
        action="store_true",
        help="benchmark the TM-align kernel (quick grid) instead of the "
        "simulator, writing per-stage timings to BENCH_kernel.json",
    )
    p.add_argument(
        "--prefilter",
        action="store_true",
        help="benchmark the hierarchical search (SW prefilter + exact "
        "kernel): throughput, end-to-end speedup and recall@k, writing "
        "BENCH_prefilter.json",
    )
    p.add_argument(
        "--matstore",
        action="store_true",
        help="benchmark the durable matrix store (build, one-row extend, "
        "mmap lookup vs recompute), writing BENCH_matstore.json "
        "(--quick limits to 8 chains)",
    )
    p.add_argument(
        "--service",
        action="store_true",
        help="load-test the sharded query service (1-shard vs N-shard "
        "behind a coordinator, open-loop arrivals), writing "
        "BENCH_service.json (--quick runs one short rate point)",
    )
    p.add_argument(
        "--shards",
        type=_positive_int,
        default=2,
        help="with --service: shard count of the N-shard topology",
    )
    p.add_argument(
        "--prefilter-keep",
        type=_fraction,
        default=None,
        metavar="FRACTION",
        help="with --prefilter: fraction of candidates the cheap tier "
        "promotes (default: the benchmarked PrefilterConfig operating point)",
    )
    p.add_argument(
        "--queries",
        type=_positive_int,
        default=None,
        metavar="N",
        help="with --prefilter: evenly-spaced query subsample for quick "
        "runs (default: every chain queries the corpus)",
    )
    p.add_argument(
        "--min-recall",
        type=_fraction,
        default=0.95,
        metavar="FRACTION",
        help="with --prefilter --check: mean recall@10 floor",
    )
    p.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="--check speedup floor (default: 2.0 with --prefilter, "
        "100.0 with --matstore, 1.5 with --service)",
    )
    p.add_argument(
        "--baseline",
        type=float,
        default=0.0,
        help="kernel pairs/s to regress against (default: the committed "
        "artefact at --output, else the recorded pre-PR constant)",
    )
    p.add_argument(
        "--min-ratio",
        type=float,
        default=0.8,
        help="regression gate: fraction of baseline pairs/s that must be met",
    )
    p.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timing passes for the kernel bench (best is reported)",
    )
    p.add_argument(
        "--check",
        action="store_true",
        help="with --kernel/--prefilter/--matstore/--service: exit "
        "non-zero when the regression gate fails",
    )
    p.set_defaults(fn=_cmd_bench)

    p = sub.add_parser(
        "bench-parallel",
        help="measured-mode all-vs-all wall-clock vs worker count",
    )
    p.add_argument("--dataset", default="ck34")
    p.add_argument(
        "--workers-grid",
        default="1,2,4,8",
        help="comma-separated worker counts to sweep",
    )
    p.add_argument(
        "--chunk",
        type=int,
        default=0,
        help="pairs per chunk (0 = cost-packed)",
    )
    p.add_argument(
        "--output",
        default="BENCH_parallel.json",
        help="JSON artefact path",
    )
    p.add_argument(
        "--no-output",
        action="store_true",
        help="skip writing the JSON artefact",
    )
    p.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero when the best measured point is slower than "
        "--min-speedup x serial (the farm may fall back to serial, "
        "never lose to it)",
    )
    p.add_argument(
        "--min-speedup",
        type=float,
        default=1.0,
        help="regression gate for --check: required best-point "
        "speedup_vs_serial",
    )
    p.add_argument(
        "--no-shm",
        action="store_true",
        help="disable the shared-memory dataset plane for the sweep "
        "(the plane section of the report still measures both paths)",
    )
    p.add_argument(
        "--min-startup-speedup",
        type=float,
        default=5.0,
        help="regression gate for --check: required dataset-delivery "
        "speedup of plane attach vs pickling on the large synthetic "
        "registry (0 disables the gate)",
    )
    add_runs_dir(p)
    p.set_defaults(fn=_cmd_bench_parallel)

    p = sub.add_parser(
        "serve",
        help="run the always-on PSC query service (TCP line-protocol JSON)",
    )
    p.add_argument(
        "--dataset",
        default="ck34-mini",
        help="corpus loaded into the registry at startup ('' = start empty)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port",
        type=int,
        default=_SERVICE_PORT,
        help="TCP port (0 = pick a free one; printed at startup)",
    )
    p.add_argument(
        "--queue-limit",
        type=int,
        default=64,
        help="admission control: max pending pair jobs before shedding",
    )
    p.add_argument(
        "--max-batch", type=int, default=16, help="pair jobs per kernel batch"
    )
    p.add_argument(
        "--batch-window",
        type=float,
        default=0.002,
        help="seconds to wait for a short batch to fill before dispatching",
    )
    p.add_argument(
        "--max-batch-cost",
        type=float,
        default=0.0,
        help="predicted-seconds budget per kernel batch; a batch closes "
        "early when its cost-model price reaches this (0 = count-only)",
    )
    p.add_argument(
        "--cache-capacity",
        type=int,
        default=1024,
        help="LRU result-cache entries",
    )
    p.add_argument(
        "--eval-delay",
        type=float,
        default=0.0,
        help="test/CI knob: extra seconds per dispatched batch",
    )
    p.add_argument(
        "--matstore-dir",
        default="",
        help="attach the durable matrix store at this root: align serves "
        "stored pairs as O(1) lookups, register extends by one row "
        "('' = no store)",
    )
    p.add_argument(
        "--retries",
        type=int,
        default=0,
        help="farm re-dispatches per failed chunk (0 = fail fast)",
    )
    p.add_argument(
        "--backoff",
        type=float,
        default=0.05,
        help="base exponential-backoff delay between farm retries (s)",
    )
    add_farm(p)
    add_runs_dir(p)
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser(
        "serve-shard",
        help="run the scatter-gather coordinator over running shard "
        "services (rendezvous-hash routing, write-all register)",
    )
    p.add_argument(
        "shards",
        nargs="+",
        metavar="HOST:PORT",
        help="shard service addresses (a bare port means 127.0.0.1)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port",
        type=int,
        default=_SERVICE_PORT,
        help="TCP port of the coordinator (0 = pick a free one; "
        "printed at startup)",
    )
    p.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        help="per shard-request budget in seconds",
    )
    p.add_argument(
        "--connect-timeout",
        type=float,
        default=2.0,
        help="per shard-connect budget in seconds",
    )
    p.add_argument(
        "--hedge-after",
        type=float,
        default=0.0,
        help="seconds before a slow shard request is hedged to the next "
        "shard in preference order (0 = off)",
    )
    p.add_argument(
        "--down-after",
        type=int,
        default=2,
        help="consecutive failures before a shard is marked down",
    )
    p.add_argument(
        "--probe-cooldown",
        type=float,
        default=2.0,
        help="seconds a down shard is skipped before being re-probed",
    )
    p.set_defaults(fn=_cmd_serve_shard)

    p = sub.add_parser(
        "shard-topology",
        help="offline rendezvous-hash ownership map for a shard list "
        "(no sockets; deterministic across processes)",
    )
    p.add_argument(
        "shards",
        nargs="+",
        metavar="HOST:PORT",
        help="shard identities exactly as passed to serve-shard",
    )
    p.add_argument(
        "--dataset",
        default="ck34-mini",
        help="dataset whose content-hash keys are partitioned",
    )
    p.add_argument(
        "--key",
        default="",
        help="print the full preference order for one key instead of "
        "the dataset map",
    )
    p.add_argument(
        "--verbose",
        action="store_true",
        help="list every owned chain under its shard",
    )
    p.set_defaults(fn=_cmd_shard_topology)

    p = sub.add_parser("query", help="query a running PSC service")
    p.add_argument(
        "op",
        choices=(
            "align",
            "search",
            "register",
            "submit-matrix",
            "status",
            "matstore-build",
            "matstore-lookup",
            "corpus",
            "healthz",
            "metrics",
            "shutdown",
        ),
    )
    p.add_argument(
        "args",
        nargs="*",
        help="op operands: align A B | search Q | register NAME FILE | "
        "status [RUN_ID] | matstore-lookup A B",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=_SERVICE_PORT)
    p.add_argument("--timeout", type=float, default=60.0)
    p.add_argument(
        "--method",
        default="",
        help="PSC method (default: tmalign; submit-matrix: server default)",
    )
    p.add_argument(
        "--params",
        default="",
        help='method parameter overrides as JSON, e.g. \'{"max_refine_iters": 5}\'',
    )
    p.add_argument(
        "--top", type=_positive_int, default=10, help="search: hits to show"
    )
    p.add_argument(
        "--prefilter",
        action="store_true",
        help="search: run the sequence prefilter tier server-side",
    )
    p.add_argument(
        "--prefilter-keep",
        type=_fraction,
        default=None,
        metavar="FRACTION",
        help="search: promoted fraction of the corpus, in (0, 1]",
    )
    p.add_argument(
        "--corpus",
        action="store_true",
        help="register: make the uploaded chain searchable",
    )
    p.add_argument(
        "--dataset", default="", help="submit-matrix: dataset to enumerate"
    )
    p.add_argument(
        "--runs-dir",
        default="",
        help="submit-matrix/status: run-store root (default: the server's)",
    )
    p.add_argument(
        "--matstore-dir",
        default="",
        help="matstore-build: store root (default: the server's)",
    )
    p.add_argument(
        "--broadcast",
        action="store_true",
        help="shutdown: coordinator forwards the shutdown to every shard "
        "before stopping itself",
    )
    p.set_defaults(fn=_cmd_query)

    p = sub.add_parser(
        "matstore",
        help="durable all-vs-all similarity-matrix store (mmap-able; "
        "incremental extends)",
    )
    msub = p.add_subparsers(dest="action", required=True)

    def add_store_root(mp) -> None:
        mp.add_argument(
            "--store",
            default="matstore",
            help="root directory of the matrix store",
        )

    def add_retry_flags(mp) -> None:
        mp.add_argument(
            "--retries",
            type=int,
            default=0,
            help="farm re-dispatches per failed chunk (0 = fail fast)",
        )
        mp.add_argument(
            "--backoff",
            type=float,
            default=0.05,
            help="base exponential-backoff delay between retries (s)",
        )
        mp.add_argument(
            "--chunk-timeout",
            type=float,
            default=0.0,
            help="seconds before a stalled chunk gets a duplicate dispatch",
        )

    mp = msub.add_parser(
        "build",
        help="compute and commit every pair of a dataset (resumable)",
    )
    add_store_root(mp)
    mp.add_argument("--dataset", default="ck34-mini")
    mp.add_argument(
        "--limit",
        type=_positive_int,
        default=None,
        metavar="N",
        help="build only the first N chains (prefix; extend later)",
    )
    add_farm(mp)
    add_retry_flags(mp)
    mp.set_defaults(fn=_cmd_matstore)

    mp = msub.add_parser(
        "extend",
        help="append the dataset chains the store is missing, one row "
        "(n pairs) per new chain — never a rebuild",
    )
    add_store_root(mp)
    mp.add_argument("--dataset", default="ck34-mini")
    mp.add_argument(
        "--limit",
        type=_positive_int,
        default=None,
        metavar="N",
        help="extend coverage up to the first N dataset chains",
    )
    add_farm(mp)
    add_retry_flags(mp)
    mp.set_defaults(fn=_cmd_matstore)

    mp = msub.add_parser(
        "query", help="O(1) mmap lookup of one stored pair (all metrics)"
    )
    add_store_root(mp)
    mp.add_argument("chain_a", help="chain name as stored")
    mp.add_argument("chain_b", help="chain name as stored")
    mp.set_defaults(fn=_cmd_matstore)

    mp = msub.add_parser(
        "verify",
        help="cross-check every committed block value against the "
        "CRC-checksummed journal",
    )
    add_store_root(mp)
    mp.set_defaults(fn=_cmd_matstore)

    mp = msub.add_parser(
        "export", help="write the committed matrix as CSV (atomic)"
    )
    add_store_root(mp)
    mp.add_argument("--output", default="matstore.csv")
    mp.set_defaults(fn=_cmd_matstore)

    p = sub.add_parser("info", help="dataset summary")
    p.add_argument("--dataset", default="ck34")
    p.set_defaults(fn=_cmd_info)

    return parser


def _arm_sigterm_cleanup() -> None:
    """Turn SIGTERM into SystemExit so finally/atexit teardown runs.

    Long ``matrix``/``serve`` runs own shared-memory segments; a default
    SIGTERM would kill the process without unlinking them (the
    resource-tracker "leaked shared_memory" warning, and stale
    ``/dev/shm`` files).  Installed only on the main thread and only
    when no handler is already set, so embedding applications keep
    their own signal policy.
    """
    import signal
    import threading

    if threading.current_thread() is not threading.main_thread():
        return
    def _sigterm(signum, frame):
        raise SystemExit(143)

    try:
        if signal.getsignal(signal.SIGTERM) is signal.SIG_DFL:
            signal.signal(signal.SIGTERM, _sigterm)
    except (ValueError, OSError):  # non-main interpreter contexts
        pass


def main(argv: Optional[Sequence[str]] = None) -> int:
    _WARNED.clear()  # deprecation notes fire once per invocation
    from repro.parallel import reset_worker_clamp_warnings

    reset_worker_clamp_warnings()  # worker-clamp warning fires once per run
    _arm_sigterm_cleanup()
    args = build_parser().parse_args(argv)
    t0 = time.time()
    try:
        print(args.fn(args))
    finally:
        # unlink every shared-memory plane this run owned — including on
        # SystemExit (SIGTERM above), KeyboardInterrupt and error paths
        from repro.parallel import shutdown_planes

        shutdown_planes()
    print(f"\n[done in {time.time() - t0:.1f}s]", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
