"""Command-line interface.

Experiment harnesses (regenerate the paper's tables/figures)::

    python -m repro.cli table1
    python -m repro.cli exp2 --quick --dataset both
    python -m repro.cli all --quick

Tool commands::

    python -m repro.cli align a.pdb b.pdb       # pairwise TM-align
    python -m repro.cli search query.pdb --dataset ck34 --top 10
    python -m repro.cli info --dataset rs119    # dataset summary
    python -m repro.cli bench                   # hot-path wall-clock bench
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Optional, Sequence

from repro.experiments import (
    SLAVE_GRID_FULL,
    SLAVE_GRID_QUICK,
    run_ablation_balancing,
    run_ablation_hierarchy,
    run_ablation_mcpsc,
    run_exp1,
    run_exp2,
    run_table1,
    run_table3,
    run_table5,
)
from repro.experiments.ablations import (
    run_ablation_energy,
    run_ablation_frequency,
    run_ablation_inits,
    run_ablation_memory,
)

__all__ = ["main", "build_parser"]


def _grid(args) -> tuple[int, ...]:
    return SLAVE_GRID_QUICK if args.quick else SLAVE_GRID_FULL


# ---------------------------------------------------------------- experiments
def _cmd_table1(args) -> str:
    return run_table1().to_text()


def _cmd_table3(args) -> str:
    return run_table3(mode=args.mode).to_text()


def _cmd_exp1(args) -> str:
    return run_exp1(
        dataset=args.dataset, slave_counts=_grid(args), mode=args.mode
    ).to_text()


def _cmd_exp2(args) -> str:
    datasets = (args.dataset,) if args.dataset != "both" else ("ck34", "rs119")
    return run_exp2(
        datasets=datasets, slave_counts=_grid(args), mode=args.mode
    ).to_text()


def _cmd_table5(args) -> str:
    return run_table5(mode=args.mode).to_text()


def _cmd_ablations(args) -> str:
    parts = [
        run_ablation_balancing(mode=args.mode).to_text(),
        run_ablation_hierarchy(mode=args.mode).to_text(),
        run_ablation_mcpsc(mode=args.mode).to_text(),
        run_ablation_frequency(mode=args.mode).to_text(),
        run_ablation_memory(mode=args.mode).to_text(),
        run_ablation_energy(mode=args.mode).to_text(),
        run_ablation_inits().to_text(),
    ]
    return "\n\n".join(parts)


def _cmd_all(args) -> str:
    out = []
    for name in ("table1", "table3", "exp1", "exp2", "table5", "ablations"):
        t0 = time.time()
        out.append(_EXPERIMENTS[name](args))
        out.append(f"[{name} regenerated in {time.time() - t0:.1f}s]")
    return "\n\n".join(out)


_EXPERIMENTS: dict[str, Callable] = {
    "table1": _cmd_table1,
    "table3": _cmd_table3,
    "exp1": _cmd_exp1,
    "exp2": _cmd_exp2,
    "table5": _cmd_table5,
    "ablations": _cmd_ablations,
    "all": _cmd_all,
}


# ----------------------------------------------------------------- tool cmds
def _load_chain(path: str, dataset_name: str):
    """A positional that is either a PDB file path or a chain name in
    the given dataset."""
    import os

    from repro.datasets import load_dataset
    from repro.structure import read_pdb_file

    if os.path.exists(path):
        return read_pdb_file(path)
    return load_dataset(dataset_name).by_name(path)


def _cmd_align(args) -> str:
    from repro.tmalign import tm_align
    from repro.tmalign.report import format_tmalign_report

    chain_a = _load_chain(args.chain_a, args.dataset)
    chain_b = _load_chain(args.chain_b, args.dataset)
    result = tm_align(chain_a, chain_b)
    return format_tmalign_report(result, chain_a, chain_b)


def _cmd_search(args) -> str:
    from repro.datasets import load_dataset
    from repro.psc import get_method, one_vs_all

    dataset = load_dataset(args.dataset)
    query = _load_chain(args.query, args.dataset)
    hits = one_vs_all(
        query,
        dataset,
        method=get_method(args.method),
        workers=args.workers,
        chunk=args.chunk,
    )
    lines = [
        f"query {query.name} ({len(query)} residues) vs {dataset.name} "
        f"({len(dataset)} chains) using {args.method}:",
        f"{'rank':>4}  {'chain':<20} {'score':>8}",
    ]
    for rank, hit in enumerate(hits[: args.top], start=1):
        lines.append(f"{rank:>4}  {hit.chain_name:<20} {hit.score:>8.4f}")
    return "\n".join(lines)


def _cmd_matrix(args) -> str:
    """All-vs-all score matrix for a dataset, streamed to CSV."""
    from repro.datasets import load_dataset
    from repro.datasets.pairs import all_vs_all_pairs
    from repro.parallel import FarmStats, ParallelConfig, iter_pair_results
    from repro.psc import get_method
    from repro.psc.io import stream_score_table_csv

    dataset = load_dataset(args.dataset)
    method = get_method(args.method)
    pairs = list(all_vs_all_pairs(len(dataset)))
    stats = FarmStats()
    results = iter_pair_results(
        dataset,
        pairs,
        method,
        config=ParallelConfig(workers=args.workers, chunk=args.chunk),
        stats=stats,
    )
    acc = {"sum": 0.0}

    def rows():
        # rows go to the CSV as they drain from the farm; only the running
        # score mean is kept in memory, never the table
        for i, j, scores, _ in results:
            acc["sum"] += scores[method.score_key]
            yield dataset[i].name, dataset[j].name, scores

    n_rows = stream_score_table_csv(rows(), args.output)
    lines = [
        f"wrote {n_rows} pair scores to {args.output} (streamed, "
        f"workers={stats.workers}, chunk={stats.chunk_size})",
        f"wall {stats.wall_seconds:.1f}s, {stats.pairs_per_second:.2f} pairs/s; "
        f"mean off-diagonal {method.score_key} = {acc['sum'] / max(1, n_rows):.4f}",
    ]
    return "\n".join(lines)


def _cmd_bench(args) -> str:
    from repro.experiments.bench import format_bench_report, run_bench

    datasets = (args.dataset,) if args.dataset != "both" else ("ck34", "rs119")
    report = run_bench(
        datasets=datasets,
        slave_counts=_grid(args),
        mode=args.mode,
        output=args.output,
        micro=not args.no_micro,
    )
    text = format_bench_report(report)
    if args.output:
        text += f"\nwrote {args.output}"
    return text


def _cmd_bench_parallel(args) -> str:
    from repro.experiments.bench import (
        format_parallel_bench_report,
        run_parallel_bench,
    )

    workers = tuple(int(w) for w in args.workers_grid.split(","))
    report = run_parallel_bench(
        dataset=args.dataset,
        workers_grid=workers,
        chunk=args.chunk,
        output=args.output,
    )
    text = format_parallel_bench_report(report)
    if args.output:
        text += f"\nwrote {args.output}"
    return text


def _cmd_info(args) -> str:
    from repro.datasets import load_dataset

    ds = load_dataset(args.dataset)
    lines = [
        f"dataset {ds.name}: {len(ds)} chains, {ds.total_residues} residues "
        f"(mean length {ds.mean_length:.1f})",
        f"description: {ds.description}",
        "families:",
    ]
    for fam, members in sorted(ds.families.items()):
        lengths = [len(c) for c in members]
        lines.append(
            f"  {fam:<16} {len(members):>3} chains, "
            f"lengths {min(lengths)}-{max(lengths)}"
        )
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rckalign",
        description=(
            "Reproduce 'Accelerating all-to-all protein structures comparison "
            "with TM-align using a NoC many-cores processor architecture' "
            "(IPDPSW 2013) — and use its tools directly."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p) -> None:
        p.add_argument(
            "--mode",
            default="model",
            choices=("model", "measured"),
            help="pair costing: analytic model (fast) or real aligner runs",
        )
        p.add_argument(
            "--quick",
            action="store_true",
            help="sweep only 5 slave counts instead of all 24",
        )
        p.add_argument(
            "--dataset",
            default="ck34",
            help="dataset for exp1/exp2 (exp2 also accepts 'both')",
        )

    for name in sorted(_EXPERIMENTS):
        p = sub.add_parser(name, help=f"regenerate {name}")
        add_common(p)
        p.set_defaults(fn=_EXPERIMENTS[name])

    p = sub.add_parser("align", help="pairwise TM-align of two structures")
    p.add_argument("chain_a", help="PDB file path or chain name in --dataset")
    p.add_argument("chain_b", help="PDB file path or chain name in --dataset")
    p.add_argument("--dataset", default="ck34")
    p.set_defaults(fn=_cmd_align)

    def add_farm(p) -> None:
        p.add_argument(
            "--workers",
            type=int,
            default=0,
            help="process-pool size (0/1 = serial in-process)",
        )
        p.add_argument(
            "--chunk",
            type=int,
            default=0,
            help="pairs per scheduling chunk (0 = auto)",
        )

    p = sub.add_parser("search", help="one-vs-all ranked search")
    p.add_argument("query", help="PDB file path or chain name in --dataset")
    p.add_argument("--dataset", default="ck34")
    p.add_argument("--method", default="tmalign")
    p.add_argument("--top", type=int, default=10)
    add_farm(p)
    p.set_defaults(fn=_cmd_search)

    p = sub.add_parser("matrix", help="all-vs-all score matrix to CSV")
    p.add_argument("--dataset", default="ck34-mini")
    p.add_argument("--method", default="sse_composition")
    p.add_argument("--output", default="scores.csv")
    add_farm(p)
    p.set_defaults(fn=_cmd_matrix)

    p = sub.add_parser(
        "bench", help="wall-clock benchmark of the simulator hot paths"
    )
    add_common(p)
    p.add_argument(
        "--output",
        default="BENCH_hotpaths.json",
        help="JSON artefact path ('' to skip writing)",
    )
    p.add_argument(
        "--no-micro",
        action="store_true",
        help="skip the evaluator/NoC/RCCE micro-benchmarks",
    )
    p.set_defaults(fn=_cmd_bench)

    p = sub.add_parser(
        "bench-parallel",
        help="measured-mode all-vs-all wall-clock vs worker count",
    )
    p.add_argument("--dataset", default="ck34")
    p.add_argument(
        "--workers-grid",
        default="1,2,4,8",
        help="comma-separated worker counts to sweep",
    )
    p.add_argument("--chunk", type=int, default=0, help="pairs per chunk (0 = auto)")
    p.add_argument(
        "--output",
        default="BENCH_parallel.json",
        help="JSON artefact path ('' to skip writing)",
    )
    p.set_defaults(fn=_cmd_bench_parallel)

    p = sub.add_parser("info", help="dataset summary")
    p.add_argument("--dataset", default="ck34")
    p.set_defaults(fn=_cmd_info)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    t0 = time.time()
    print(args.fn(args))
    print(f"\n[done in {time.time() - t0:.1f}s]", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
