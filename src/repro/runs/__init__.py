"""Durable run store: manifests, checksummed journals, resumable runs.

Long all-vs-all sweeps must survive worker crashes and master kills
without losing completed work.  This package gives every ``matrix`` /
``search`` / ``bench-parallel`` invocation a run directory holding a
manifest (dataset fingerprint, method, params), an append-only journal
of completed pairs with per-row checksums, and atomically finalized
artifacts — so ``matrix --resume <run>`` recomputes zero finished pairs
and still produces a byte-identical CSV.
"""

from repro.runs.manifest import RunManifest, dataset_fingerprint
from repro.runs.matrix import MatrixRunResult, matrix_run
from repro.runs.store import (
    JournalCorrupt,
    Run,
    RunJournal,
    RunStore,
    RunStoreError,
    read_journal,
    rewrite_journal,
)

__all__ = [
    "JournalCorrupt",
    "Run",
    "RunJournal",
    "RunManifest",
    "RunStore",
    "RunStoreError",
    "MatrixRunResult",
    "dataset_fingerprint",
    "matrix_run",
    "read_journal",
    "rewrite_journal",
]
