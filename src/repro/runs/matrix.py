"""Durable all-vs-all matrix runs: journaled execution with resume.

:func:`matrix_run` is the engine behind ``python -m repro.cli matrix``:
it evaluates the all-pairs job list over the farm, journals every
completed pair into a run directory as it drains, and finalizes the
score CSV atomically.  A run interrupted by a crash (worker or master)
can be continued with ``resume=<run_id>``: journaled pairs are **never
re-evaluated**, and the finalized CSV is byte-identical to the one an
uninterrupted run would have produced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.datasets.pairs import all_vs_all_pairs
from repro.datasets.registry import Dataset
from repro.parallel import FarmStats, ParallelConfig, iter_pair_results
from repro.psc.base import PSCMethod
from repro.psc.evaluator import EvalMode
from repro.runs.manifest import RunManifest
from repro.runs.store import Run, RunStore, RunStoreError

__all__ = ["MatrixRunResult", "matrix_run"]


@dataclass
class MatrixRunResult:
    """What one (possibly resumed) matrix run did."""

    run_id: str
    n_pairs: int
    n_computed: int  # pairs evaluated in *this* invocation
    n_journaled: int  # pairs found already complete in the journal
    n_rows: int  # rows in the finalized CSV
    output: str
    score_sum: float  # over all pairs, for the mean score report
    score_key: str
    stats: FarmStats = field(default_factory=FarmStats)


def matrix_run(
    dataset: Dataset,
    method: PSCMethod,
    output: str,
    store: RunStore,
    run_id: Optional[str] = None,
    resume: Optional[str] = None,
    config: Optional[ParallelConfig] = None,
    faults=None,
    mode: EvalMode | str = EvalMode.MEASURED,
) -> MatrixRunResult:
    """Evaluate (and journal) the all-vs-all matrix of ``dataset``.

    Exactly one of ``run_id`` (start a fresh run, optionally naming it)
    and ``resume`` (continue an interrupted run) may be given.  On a
    worker crash that exhausts the retry policy the journal keeps every
    completed pair and the run is marked ``interrupted`` before the
    exception propagates.
    """
    if resume and run_id:
        raise ValueError("pass either run_id or resume, not both")
    config = config or ParallelConfig()
    pairs = list(all_vs_all_pairs(len(dataset)))

    if resume:
        run = store.open(resume)
        run.manifest.check_inputs(dataset, method.name)
        if run.manifest.command != "matrix":
            raise RunStoreError(
                f"run {resume!r} is a {run.manifest.command!r} run, not a matrix"
            )
        run.mark("running")
    else:
        manifest = RunManifest.for_task(
            run_id=run_id or store.new_run_id("matrix"),
            command="matrix",
            dataset=dataset,
            method_name=method.name,
            mode=EvalMode(mode).value,
            n_pairs=len(pairs),
            params={
                "workers": config.workers,
                "chunk": config.chunk,
                "output": str(output),
            },
        )
        run = store.create(manifest)

    journaled = run.load_journal()
    todo = [p for p in pairs if p not in journaled]
    stats = FarmStats()
    n_computed = 0
    try:
        if todo:
            with run.journal() as journal:
                for i, j, scores, _ in iter_pair_results(
                    dataset,
                    todo,
                    method,
                    mode=mode,
                    config=config,
                    faults=faults,
                    stats=stats,
                ):
                    journal.append(i, j, scores)
                    n_computed += 1
    except BaseException:
        run.mark("interrupted")
        raise

    n_rows = run.finalize_csv(pairs, [c.name for c in dataset], output)
    run.mark("complete")

    final = run.load_journal()
    score_sum = sum(final.scores(p)[method.score_key] for p in pairs)
    return MatrixRunResult(
        run_id=run.run_id,
        n_pairs=len(pairs),
        n_computed=n_computed,
        n_journaled=len(journaled),
        n_rows=n_rows,
        output=str(output),
        score_sum=score_sum,
        score_key=method.score_key,
        stats=stats,
    )
