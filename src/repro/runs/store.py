"""Durable run store: run directories, checksummed journals, finalization.

Layout under the store root::

    <root>/<run_id>/manifest.json    # RunManifest (atomic rewrite on status change)
    <root>/<run_id>/journal.csv      # append-only completed-pair records
    <root>/<run_id>/<artifacts>      # command-specific outputs (result.txt, ...)

The journal is the crash-safety mechanism: one line per completed pair,
flushed as it is appended, each line carrying a CRC32 of its own
content.  A process killed mid-write leaves at most one truncated or
corrupt trailing line, which :meth:`Run.load_journal` drops; every line
before it is trusted and never recomputed on ``--resume``.

Score values are journaled as the exact ``format(value, "")`` strings
the CSV writers emit, so a finalized CSV rebuilt from the journal is
byte-identical to one streamed by an uninterrupted run.
"""

from __future__ import annotations

import csv
import io
import os
import zlib
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.runs.manifest import RunManifest, atomic_write_text

__all__ = [
    "RunStore",
    "Run",
    "RunJournal",
    "RunStoreError",
    "JournalCorrupt",
    "read_journal",
    "rewrite_journal",
]

_JOURNAL_NAME = "journal.csv"
_MANIFEST_NAME = "manifest.json"


class RunStoreError(RuntimeError):
    """A run directory is missing, malformed, or incompatible."""


class JournalCorrupt(RunStoreError):
    """A journal failed its checksum mid-file: real damage, not a torn
    tail.

    Callers surface ``str(exc)`` as a one-line error instead of a
    traceback; the matstore verifier raises the same type so one
    ``except`` covers both stores.
    """


def _crc(text: str) -> str:
    return format(zlib.crc32(text.encode("ascii")) & 0xFFFFFFFF, "08x")


def _encode_row(i: int, j: int, values: Sequence[str]) -> str:
    buf = io.StringIO()
    csv.writer(buf, lineterminator="").writerow([i, j, *values])
    body = buf.getvalue()
    return f"{body},{_crc(body)}\n"


class RunJournal:
    """Append-only writer for completed-pair records.

    The first appended row fixes the score-key set (written as a header
    line); later rows with different keys are rejected.  Every append is
    flushed so rows survive a SIGKILL of the writing process.
    """

    def __init__(self, path: str, keys: Optional[Sequence[str]] = None) -> None:
        self.path = path
        self.keys: Optional[Tuple[str, ...]] = tuple(keys) if keys else None
        # A resumed run reopens an existing journal: adopt its key header
        # instead of writing a second one mid-file.
        if os.path.exists(path) and os.path.getsize(path) > 0:
            with open(path, encoding="ascii", newline="") as fh:
                first = fh.readline()
            if first.startswith("#keys="):
                found = tuple(
                    k for k in first[len("#keys=") :].rstrip("\n").split(",") if k
                )
                if self.keys is not None and self.keys != found:
                    raise RunStoreError(
                        f"journal {path} has keys {list(found)}, "
                        f"caller expects {list(self.keys)}"
                    )
                self.keys = found
        self._fh = open(path, "a", encoding="ascii", newline="")
        if self.keys is not None and self._fh.tell() == 0:
            self._write_header()

    def _write_header(self) -> None:
        self._fh.write("#keys=" + ",".join(self.keys) + "\n")
        self._fh.flush()

    def append(self, i: int, j: int, scores: Mapping[str, float]) -> None:
        keys = tuple(sorted(scores))
        if self.keys is None:
            self.keys = keys
            self._write_header()
        elif keys != self.keys:
            raise RunStoreError(
                f"pair ({i}, {j}) has score keys {list(keys)}, journal "
                f"expects {list(self.keys)}"
            )
        values = [format(scores[k], "") for k in self.keys]
        self._fh.write(_encode_row(i, j, values))
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class Run:
    """One run directory: manifest + journal + artifacts."""

    def __init__(self, directory: str, manifest: RunManifest) -> None:
        self.directory = directory
        self.manifest = manifest

    @property
    def run_id(self) -> str:
        return self.manifest.run_id

    @property
    def journal_path(self) -> str:
        return os.path.join(self.directory, _JOURNAL_NAME)

    def artifact_path(self, name: str) -> str:
        return os.path.join(self.directory, name)

    # -- manifest ----------------------------------------------------------
    def save_manifest(self) -> None:
        atomic_write_text(
            os.path.join(self.directory, _MANIFEST_NAME), self.manifest.to_json()
        )

    def mark(self, status: str) -> None:
        self.manifest.status = status
        self.save_manifest()

    def progress(self) -> Tuple[int, int]:
        """``(completed, total)`` pairs for this run.

        Journaled commands count intact journal records; commands without
        a journal (search, benches) are all-or-nothing and report their
        manifest totals.  Shared by the ``runs`` CLI listing and the
        query service's ``status`` op.
        """
        m = self.manifest
        if m.command == "matrix":
            return len(self.load_journal()), m.n_pairs
        return m.n_pairs, m.n_pairs

    # -- journal -----------------------------------------------------------
    def journal(self) -> RunJournal:
        """Open the journal for appending (creates it on first use)."""
        return RunJournal(self.journal_path)

    def load_journal(self) -> "JournalState":
        """Read back every intact journal record.

        Corrupt or truncated trailing lines (the signature of a process
        killed mid-append) are dropped; a corrupt line followed by
        intact ones indicates real damage and raises
        :class:`JournalCorrupt`.
        """
        return read_journal(self.journal_path)

    # -- finalization ------------------------------------------------------
    def finalize_csv(
        self,
        pairs: Sequence[Tuple[int, int]],
        names: Sequence[str],
        path: str | os.PathLike,
    ) -> int:
        """Build the final score CSV from the journal, atomically.

        Rows are emitted in ``pairs`` order (the same job order an
        uninterrupted streamed run would have used), written to a
        same-directory temp file and moved into place with
        ``os.replace`` — the destination never holds a partial table.
        Returns the number of rows written.
        """
        state = self.load_journal()
        if state.keys is None or not state.rows:
            raise RunStoreError(f"run {self.run_id!r} has an empty journal")
        missing = [p for p in pairs if p not in state.rows]
        if missing:
            raise RunStoreError(
                f"run {self.run_id!r} is incomplete: {len(missing)} of "
                f"{len(pairs)} pairs missing (first: {missing[0]}); "
                "resume it before finalizing"
            )
        path = os.fspath(path)
        tmp = f"{path}.tmp.{os.getpid()}"
        n = 0
        try:
            with open(tmp, "w", newline="", encoding="ascii") as fh:
                writer = csv.writer(fh)
                writer.writerow(["chain_a", "chain_b", *state.keys])
                for i, j in pairs:
                    writer.writerow([names[i], names[j], *state.rows[(i, j)]])
                    n += 1
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        finally:
            if os.path.exists(tmp):  # pragma: no cover - error cleanup
                os.unlink(tmp)
        return n


class JournalState:
    """Decoded journal content: score keys + per-pair formatted values."""

    def __init__(self) -> None:
        self.keys: Optional[Tuple[str, ...]] = None
        self.rows: Dict[Tuple[int, int], List[str]] = {}
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.rows)

    def __contains__(self, pair: Tuple[int, int]) -> bool:
        return pair in self.rows

    def scores(self, pair: Tuple[int, int]) -> Dict[str, float]:
        """Numeric view of one journaled record."""
        if self.keys is None:
            raise RunStoreError("journal has no key header")
        return {k: float(v) for k, v in zip(self.keys, self.rows[pair])}


def read_journal(path: str) -> "JournalState":
    """Decode a CRC-checksummed journal file into a :class:`JournalState`.

    Corrupt or truncated trailing lines are dropped (``state.dropped``
    counts them); a corrupt line *followed by intact ones* means the
    file is damaged rather than merely torn by a crash, and raises the
    typed :class:`JournalCorrupt`.  Shared by the run store and the
    matrix store verifier.
    """
    state = JournalState()
    if not os.path.exists(path):
        return state
    bad_at: Optional[int] = None
    with open(path, encoding="ascii", newline="") as fh:
        for lineno, line in enumerate(fh, start=1):
            if lineno == 1 and line.startswith("#keys="):
                state.keys = tuple(
                    k for k in line[len("#keys=") :].rstrip("\n").split(",") if k
                )
                continue
            record = _decode_row(line)
            if record is None:
                bad_at = lineno
                state.dropped += 1
                continue
            if bad_at is not None:
                raise JournalCorrupt(
                    f"journal {path} has a corrupt record at "
                    f"line {bad_at} followed by intact ones — the file is "
                    "damaged, not merely truncated"
                )
            i, j, values = record
            if state.keys is not None and len(values) != len(state.keys):
                raise JournalCorrupt(
                    f"journal {path} record ({i}, {j}) has {len(values)} "
                    f"values for {len(state.keys)} keys"
                )
            state.rows[(i, j)] = values
    return state


def rewrite_journal(
    path: str,
    keys: Sequence[str],
    rows: Mapping[Tuple[int, int], Sequence[str]],
) -> None:
    """Atomically replace a journal with exactly ``rows`` (string values
    preserved verbatim, so surviving records stay byte-identical).

    Used to discard an uncommitted journal tail that is known to belong
    to different content than the resume in progress — the surviving
    rows are re-encoded with fresh CRCs and the file is swapped with
    ``os.replace``, so a crash mid-rewrite leaves the old journal
    intact.
    """
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "w", encoding="ascii", newline="") as fh:
            fh.write("#keys=" + ",".join(keys) + "\n")
            for (i, j), values in rows.items():
                fh.write(_encode_row(i, j, values))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):  # pragma: no cover - error cleanup
            os.unlink(tmp)


def _decode_row(line: str) -> Optional[Tuple[int, int, List[str]]]:
    line = line.rstrip("\n")
    if not line:
        return None
    body, sep, crc = line.rpartition(",")
    if not sep or _crc(body) != crc:
        return None
    try:
        fields = next(csv.reader([body]))
        i, j = int(fields[0]), int(fields[1])
    except (StopIteration, IndexError, ValueError):
        return None
    return i, j, fields[2:]


class RunStore:
    """Collection of run directories under one root."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = os.fspath(root)

    def run_dir(self, run_id: str) -> str:
        if not run_id or "/" in run_id or run_id.startswith("."):
            raise RunStoreError(f"illegal run id {run_id!r}")
        return os.path.join(self.root, run_id)

    def exists(self, run_id: str) -> bool:
        return os.path.exists(os.path.join(self.run_dir(run_id), _MANIFEST_NAME))

    def new_run_id(self, prefix: str) -> str:
        """A fresh, human-sortable run id unique within this store."""
        import time

        stamp = time.strftime("%Y%m%d-%H%M%S")
        base = f"{prefix}-{stamp}-{os.getpid() % 100000:05d}"
        run_id, k = base, 0
        while self.exists(run_id):
            k += 1
            run_id = f"{base}.{k}"
        return run_id

    def create(self, manifest: RunManifest) -> Run:
        directory = self.run_dir(manifest.run_id)
        if self.exists(manifest.run_id):
            raise RunStoreError(f"run {manifest.run_id!r} already exists")
        os.makedirs(directory, exist_ok=True)
        run = Run(directory, manifest)
        run.save_manifest()
        return run

    def open(self, run_id: str) -> Run:
        directory = self.run_dir(run_id)
        manifest_path = os.path.join(directory, _MANIFEST_NAME)
        if not os.path.exists(manifest_path):
            raise RunStoreError(
                f"no run {run_id!r} under {self.root!r} "
                f"(known: {sorted(self.list_ids())})"
            )
        with open(manifest_path, encoding="ascii") as fh:
            manifest = RunManifest.from_json(fh.read())
        return Run(directory, manifest)

    def list_ids(self) -> Iterator[str]:
        if not os.path.isdir(self.root):
            return
        for entry in sorted(os.listdir(self.root)):
            if os.path.exists(os.path.join(self.root, entry, _MANIFEST_NAME)):
                yield entry

    def list_runs(self) -> List[Run]:
        return [self.open(run_id) for run_id in self.list_ids()]
