"""Run manifests: what a durable run is, and how to recognise its inputs.

A manifest pins everything that determines a run's output — dataset
(by name *and* content fingerprint), method, evaluation mode, and the
task parameters — so a later ``--resume`` can refuse to graft new
results onto a journal that was produced from different inputs.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Optional

from repro.datasets.registry import Dataset

__all__ = ["RunManifest", "dataset_fingerprint", "atomic_write_text"]

#: manifest schema version, bumped on incompatible layout changes
MANIFEST_VERSION = 1


def dataset_fingerprint(dataset: Dataset) -> str:
    """Content hash of a dataset: chain names, sequences and coordinates.

    Two datasets with the same fingerprint produce bit-identical pair
    scores, so a journal recorded against one can be resumed against the
    other (in practice: the same registry dataset rebuilt in a new
    process).
    """
    digest = hashlib.sha256()
    digest.update(dataset.name.encode())
    for chain in dataset:
        digest.update(chain.name.encode())
        digest.update(chain.sequence.encode())
        digest.update(chain.coords.tobytes())
    return digest.hexdigest()


def atomic_write_text(path: str | os.PathLike, text: str) -> None:
    """Write ``text`` to ``path`` via a same-directory temp + rename."""
    path = os.fspath(path)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="ascii") as fh:
        fh.write(text)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


@dataclass
class RunManifest:
    """Identity and progress metadata of one durable run."""

    run_id: str
    command: str  # 'matrix' | 'search' | 'bench-parallel'
    dataset: str
    dataset_hash: str
    method: str
    mode: str = "measured"
    n_pairs: int = 0
    params: Dict[str, Any] = field(default_factory=dict)
    status: str = "running"  # 'running' | 'interrupted' | 'complete'
    created_at: float = field(default_factory=time.time)
    version: int = MANIFEST_VERSION

    @classmethod
    def for_task(
        cls,
        run_id: str,
        command: str,
        dataset: Dataset,
        method_name: str,
        mode: str = "measured",
        n_pairs: int = 0,
        params: Optional[Dict[str, Any]] = None,
    ) -> "RunManifest":
        return cls(
            run_id=run_id,
            command=command,
            dataset=dataset.name,
            dataset_hash=dataset_fingerprint(dataset),
            method=method_name,
            mode=mode,
            n_pairs=n_pairs,
            params=dict(params or {}),
        )

    def check_inputs(self, dataset: Dataset, method_name: str) -> None:
        """Raise if the given inputs cannot continue this run."""
        if self.method != method_name:
            raise ValueError(
                f"run {self.run_id!r} was recorded with method "
                f"{self.method!r}, cannot resume with {method_name!r}"
            )
        fp = dataset_fingerprint(dataset)
        if self.dataset_hash != fp:
            raise ValueError(
                f"run {self.run_id!r} was recorded against dataset "
                f"{self.dataset!r} (hash {self.dataset_hash[:12]}...); the "
                f"dataset supplied now hashes to {fp[:12]}... — refusing to "
                "mix results"
            )

    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=1, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunManifest":
        payload = json.loads(text)
        version = payload.get("version", 0)
        if version != MANIFEST_VERSION:
            raise ValueError(
                f"manifest version {version} not supported "
                f"(expected {MANIFEST_VERSION})"
            )
        return cls(**payload)
