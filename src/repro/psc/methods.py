"""Concrete PSC methods.

* :class:`TMAlignMethod` — the paper's method (full TM-align).
* :class:`KabschRmsdMethod` — gapless sliding-window Kabsch RMSD, a
  cheap geometric comparator.
* :class:`SSECompositionMethod` — secondary-structure composition
  distance, the cheapest of all.

The latter two exist so the multi-criteria PSC extension (paper §V) has
genuinely different algorithms with different complexities to partition
cores over.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

import numpy as np

from repro.cost.counters import CostCounter
from repro.cost.model import DEFAULT_PAIR_COST_MODEL, PairCostModel
from repro.geometry.kabsch import kabsch
from repro.psc.base import PSCMethod
from repro.structure.model import Chain
from repro.structure.secstruct import SS_COIL, SS_HELIX, SS_STRAND, SS_TURN
from repro.tmalign.align import tm_align
from repro.tmalign.metrics import gdt_ts, lddt
from repro.tmalign.params import TMAlignParams

__all__ = [
    "TMAlignMethod",
    "TMAlignFullMethod",
    "KabschRmsdMethod",
    "SSECompositionMethod",
    "METHOD_REGISTRY",
    "get_method",
]


class TMAlignMethod(PSCMethod):
    """Full TM-align; ranking score is the TM-score normalised by the
    target (second) chain."""

    name = "tmalign"
    score_key = "tm_norm_b"

    def __init__(
        self,
        params: Optional[TMAlignParams] = None,
        cost_model: Optional[PairCostModel] = None,
    ) -> None:
        self.params = params or TMAlignParams()
        self.cost_model = cost_model or DEFAULT_PAIR_COST_MODEL

    def compare(
        self, chain_a: Chain, chain_b: Chain, counter: CostCounter
    ) -> Dict[str, float]:
        res = tm_align(chain_a, chain_b, params=self.params, counter=counter)
        return {
            "tm_norm_a": res.tm_norm_a,
            "tm_norm_b": res.tm_norm_b,
            "rmsd": res.rmsd,
            "n_aligned": float(res.n_aligned),
            "seq_identity": res.seq_identity,
        }

    def estimate_counts(
        self, len_a: int, len_b: int, pair_key: str | None = None
    ) -> Mapping[str, float]:
        return self.cost_model.counts(len_a, len_b, pair_key)


class TMAlignFullMethod(TMAlignMethod):
    """TM-align plus the model-quality metrics the matrix store carries.

    Runs the kernel once, then scores GDT_TS and LDDT over the alignment
    it produced — the same alignment, so the extra metrics cost only the
    cheap rescoring passes, not another kernel run.
    """

    name = "tmalign_full"

    def compare(
        self, chain_a: Chain, chain_b: Chain, counter: CostCounter
    ) -> Dict[str, float]:
        res = tm_align(chain_a, chain_b, params=self.params, counter=counter)
        # gdt_ts needs >= 3 matched pairs, lddt >= 2; a degenerate best
        # alignment (very short or dissimilar chains) scores 0.0 rather
        # than raising, so one pathological pair cannot abort a whole
        # all-vs-all matrix build.  (0.0, not NaN: the matrix store
        # reserves NaN for never-computed holes.)
        matched = 0 if res.alignment is None else res.alignment.ai.size
        return {
            "tm_norm_a": res.tm_norm_a,
            "tm_norm_b": res.tm_norm_b,
            "rmsd": res.rmsd,
            "n_aligned": float(res.n_aligned),
            "seq_identity": res.seq_identity,
            "gdt_ts": gdt_ts(chain_a, chain_b, res.alignment) if matched >= 3 else 0.0,
            "lddt": lddt(chain_a, chain_b, res.alignment) if matched >= 2 else 0.0,
        }


class KabschRmsdMethod(PSCMethod):
    """Best gapless-superposition similarity.

    Slides the shorter chain along the longer one, superposing each
    window with Kabsch; the score is ``1 / (1 + best_rmsd)`` so that
    higher means more similar, like the other methods.
    """

    name = "kabsch_rmsd"
    score_key = "similarity"

    def __init__(self, stride: int = 4) -> None:
        if stride < 1:
            raise ValueError("stride must be >= 1")
        self.stride = stride

    # Fraction of TM-align's calibrated per-comparison fixed overhead
    # this method pays: it allocates no DP matrices and formats a single
    # number, so only the structure-marshalling part remains.
    FIXED_OVERHEAD_UNITS = 0.05

    def compare(
        self, chain_a: Chain, chain_b: Chain, counter: CostCounter
    ) -> Dict[str, float]:
        counter.add("align_fixed", self.FIXED_OVERHEAD_UNITS)
        short, long_ = (
            (chain_a.coords, chain_b.coords)
            if len(chain_a) <= len(chain_b)
            else (chain_b.coords, chain_a.coords)
        )
        n = short.shape[0]
        best = np.inf
        for start in range(0, long_.shape[0] - n + 1, self.stride) or [0]:
            seg = long_[start : start + n]
            xf = kabsch(short, seg, counter=counter)
            diff = xf.apply(short) - seg
            r = float(np.sqrt((diff * diff).sum() / n))
            counter.add("score_pair", n)
            best = min(best, r)
        if not np.isfinite(best):  # equal lengths, single window
            xf = kabsch(short, long_, counter=counter)
            diff = xf.apply(short) - long_
            best = float(np.sqrt((diff * diff).sum() / n))
        return {"best_rmsd": best, "similarity": 1.0 / (1.0 + best)}

    def estimate_counts(
        self, len_a: int, len_b: int, pair_key: str | None = None
    ) -> Mapping[str, float]:
        lmin, lmax = sorted((len_a, len_b))
        windows = max(1, (lmax - lmin) // self.stride + 1)
        return {
            "align_fixed": self.FIXED_OVERHEAD_UNITS,
            "kabsch": float(windows),
            "kabsch_point": float(windows * lmin),
            "score_pair": float(windows * lmin),
        }


class SSECompositionMethod(PSCMethod):
    """Secondary-structure composition similarity (histogram overlap).

    Compares the fractional H/E/T/C composition of the two chains —
    O(L) work, the cheapest comparator here.
    """

    name = "sse_composition"
    score_key = "similarity"

    _CLASSES = (SS_HELIX, SS_STRAND, SS_TURN, SS_COIL)

    # see KabschRmsdMethod: composition comparison touches almost nothing
    FIXED_OVERHEAD_UNITS = 0.01

    def compare(
        self, chain_a: Chain, chain_b: Chain, counter: CostCounter
    ) -> Dict[str, float]:
        counter.add("align_fixed", self.FIXED_OVERHEAD_UNITS)
        counter.add("sec_res", len(chain_a) + len(chain_b))
        fa = self._fractions(chain_a)
        fb = self._fractions(chain_b)
        overlap = float(np.minimum(fa, fb).sum())
        return {"similarity": overlap}

    def _fractions(self, chain: Chain) -> np.ndarray:
        ss = chain.secondary
        n = len(ss)
        return np.array([ss.count(c) / n for c in self._CLASSES])

    def estimate_counts(
        self, len_a: int, len_b: int, pair_key: str | None = None
    ) -> Mapping[str, float]:
        return {
            "align_fixed": self.FIXED_OVERHEAD_UNITS,
            "sec_res": float(len_a + len_b),
        }


METHOD_REGISTRY = {
    "tmalign": TMAlignMethod,
    "tmalign_full": TMAlignFullMethod,
    "kabsch_rmsd": KabschRmsdMethod,
    "sse_composition": SSECompositionMethod,
}


def get_method(name: str, **kwargs) -> PSCMethod:
    """Instantiate a registered method by name."""
    try:
        cls = METHOD_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown PSC method {name!r}; known: {sorted(METHOD_REGISTRY)}"
        ) from None
    return cls(**kwargs)
