"""Serial and parallel PSC task APIs: one-vs-all search, all-vs-all matrix.

These are the *algorithmic* (non-simulated) entry points a
bioinformatician would call directly; the paper's motivating task is the
ranked one-vs-all search ("retrieve a ranked list of proteins, where
structurally similar proteins are ranked higher").

Both tasks accept ``workers``/``chunk``: with ``workers > 1`` the pairs
are farmed over a process pool (see :mod:`repro.parallel`) with
bit-identical results; the default is the plain serial loop.  A
``retry`` policy (see :class:`repro.parallel.RetryPolicy`) makes the
farm absorb worker failures instead of aborting.  With ``chunk`` left at
0 the farm packs chunks by predicted pair cost and, unless ``adaptive``
is turned off, sizes its effective concurrency from measured throughput
(see :mod:`repro.parallel.costsched`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

from repro.cost.counters import CostCounter
from repro.datasets.registry import Dataset
from repro.psc.base import PSCMethod
from repro.psc.methods import TMAlignMethod
from repro.structure.model import Chain

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.parallel import RetryPolicy

__all__ = ["RankedHit", "rank_hits", "one_vs_all", "all_vs_all"]


@dataclass(frozen=True)
class RankedHit:
    """One entry of a ranked search result."""

    chain_name: str
    score: float
    details: Dict[str, float]


def rank_hits(
    rows: list[tuple[str, Dict[str, float]]], method: PSCMethod
) -> list[RankedHit]:
    """Rank raw ``(chain_name, scores)`` rows into :class:`RankedHit`\\ s.

    The single ranking rule shared by every search surface (serial loop,
    parallel farm, query service): descending similarity, chain name as
    the deterministic tie-break.
    """
    hits = [
        RankedHit(name, method.similarity(scores), dict(scores))
        for name, scores in rows
    ]
    hits.sort(key=lambda h: (-h.score, h.chain_name))
    return hits


def one_vs_all(
    query: Chain,
    dataset: Dataset,
    method: Optional[PSCMethod] = None,
    counter: Optional[CostCounter] = None,
    exclude_self: bool = True,
    workers: int = 0,
    chunk: int = 0,
    retry: Optional["RetryPolicy"] = None,
    adaptive: bool = True,
) -> list[RankedHit]:
    """Compare ``query`` against every dataset chain; rank by similarity."""
    method = method or TMAlignMethod()
    rows: list[tuple[str, Dict[str, float]]]
    if workers > 1:
        from repro.parallel import ParallelConfig, parallel_one_vs_all

        rows = parallel_one_vs_all(
            query,
            dataset,
            method,
            counter=counter,
            exclude_self=exclude_self,
            config=ParallelConfig(
                workers=workers, chunk=chunk, retry=retry, adaptive=adaptive
            ),
        )
    else:
        rows = []
        for chain in dataset:
            if exclude_self and chain.name == query.name:
                continue
            ctr = CostCounter()
            scores = method.compare(query, chain, ctr)
            if counter is not None:
                counter.merge(ctr)
            rows.append((chain.name, scores))
    return rank_hits(rows, method)


def all_vs_all(
    dataset: Dataset,
    method: Optional[PSCMethod] = None,
    counter: Optional[CostCounter] = None,
    workers: int = 0,
    chunk: int = 0,
    retry: Optional["RetryPolicy"] = None,
    adaptive: bool = True,
) -> Dict[tuple[str, str], Dict[str, float]]:
    """All unordered pairs (i<j) of the dataset; returns a score table.

    ``workers > 1`` farms the pairs over a process pool; scores and the
    merged ``counter`` are bit-identical to the serial loop.
    """
    method = method or TMAlignMethod()
    if workers > 1:
        from repro.parallel import ParallelConfig, parallel_all_vs_all

        return parallel_all_vs_all(
            dataset,
            method,
            counter=counter,
            config=ParallelConfig(
                workers=workers, chunk=chunk, retry=retry, adaptive=adaptive
            ),
        )
    out: Dict[tuple[str, str], Dict[str, float]] = {}
    n = len(dataset)
    for i in range(n):
        for j in range(i + 1, n):
            ctr = CostCounter()
            scores = method.compare(dataset[i], dataset[j], ctr)
            if counter is not None:
                counter.merge(ctr)
            out[(dataset[i].name, dataset[j].name)] = dict(scores)
    return out
