"""Serial PSC task APIs: one-vs-all ranked search and all-vs-all matrix.

These are the *algorithmic* (non-simulated) entry points a
bioinformatician would call directly; the paper's motivating task is the
ranked one-vs-all search ("retrieve a ranked list of proteins, where
structurally similar proteins are ranked higher").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.cost.counters import CostCounter
from repro.datasets.registry import Dataset
from repro.psc.base import PSCMethod
from repro.psc.methods import TMAlignMethod
from repro.structure.model import Chain

__all__ = ["RankedHit", "one_vs_all", "all_vs_all"]


@dataclass(frozen=True)
class RankedHit:
    """One entry of a ranked search result."""

    chain_name: str
    score: float
    details: Dict[str, float]


def one_vs_all(
    query: Chain,
    dataset: Dataset,
    method: Optional[PSCMethod] = None,
    counter: Optional[CostCounter] = None,
    exclude_self: bool = True,
) -> list[RankedHit]:
    """Compare ``query`` against every dataset chain; rank by similarity."""
    method = method or TMAlignMethod()
    hits: list[RankedHit] = []
    for chain in dataset:
        if exclude_self and chain.name == query.name:
            continue
        ctr = CostCounter()
        scores = method.compare(query, chain, ctr)
        if counter is not None:
            counter.merge(ctr)
        hits.append(RankedHit(chain.name, method.similarity(scores), dict(scores)))
    hits.sort(key=lambda h: (-h.score, h.chain_name))
    return hits


def all_vs_all(
    dataset: Dataset,
    method: Optional[PSCMethod] = None,
    counter: Optional[CostCounter] = None,
) -> Dict[tuple[str, str], Dict[str, float]]:
    """All unordered pairs (i<j) of the dataset; returns a score table."""
    method = method or TMAlignMethod()
    out: Dict[tuple[str, str], Dict[str, float]] = {}
    n = len(dataset)
    for i in range(n):
        for j in range(i + 1, n):
            ctr = CostCounter()
            scores = method.compare(dataset[i], dataset[j], ctr)
            if counter is not None:
                counter.merge(ctr)
            out[(dataset[i].name, dataset[j].name)] = dict(scores)
    return out
