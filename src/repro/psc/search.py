"""Serial and parallel PSC task APIs: one-vs-all search, all-vs-all matrix.

These are the *algorithmic* (non-simulated) entry points a
bioinformatician would call directly; the paper's motivating task is the
ranked one-vs-all search ("retrieve a ranked list of proteins, where
structurally similar proteins are ranked higher").

Both tasks accept ``workers``/``chunk``: with ``workers > 1`` the pairs
are farmed over a process pool (see :mod:`repro.parallel`) with
bit-identical results; the default is the plain serial loop.  A
``retry`` policy (see :class:`repro.parallel.RetryPolicy`) makes the
farm absorb worker failures instead of aborting.  With ``chunk`` left at
0 the farm packs chunks by predicted pair cost and, unless ``adaptive``
is turned off, sizes its effective concurrency from measured throughput
(see :mod:`repro.parallel.costsched`).  ``shm`` (default on) publishes
the dataset once as a shared-memory plane workers attach to zero-copy
(see :mod:`repro.parallel.shmplane`); ``shm=False`` forces the
historical pickle-per-worker path — scores are bit-identical either way.

Both tasks also accept ``prefilter`` — the cheap first tier of the
hierarchical search (:mod:`repro.seqalign.prefilter`).  Pass a
:class:`~repro.seqalign.prefilter.PrefilterConfig` (or a prebuilt
:class:`~repro.seqalign.prefilter.SequencePrefilter` over the same
corpus, e.g. the query service's cached instance) and only the
candidates its promotion policy keeps reach the exact kernel.  The
default ``prefilter=None`` runs the exact path, byte-identical to the
output before the prefilter existed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

from repro.cost.counters import CostCounter
from repro.datasets.registry import Dataset
from repro.psc.base import PSCMethod
from repro.psc.methods import TMAlignMethod
from repro.seqalign.prefilter import PrefilterConfig, SequencePrefilter
from repro.structure.model import Chain

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.parallel import RetryPolicy

__all__ = [
    "RankedHit",
    "rank_hits",
    "one_vs_all",
    "all_vs_all",
    "consult_store",
    "resolve_prefilter",
]

#: accepted by the ``prefilter`` parameter of both search tasks
Prefilter = Optional["PrefilterConfig | SequencePrefilter"]


def resolve_prefilter(
    prefilter: Prefilter, dataset: Dataset
) -> Optional[SequencePrefilter]:
    """Normalize a ``prefilter`` argument against a candidate corpus.

    ``None`` stays ``None`` (exact search); a
    :class:`~repro.seqalign.prefilter.PrefilterConfig` builds a fresh
    :class:`~repro.seqalign.prefilter.SequencePrefilter` over the
    dataset; a prebuilt instance is checked to cover the same corpus
    (name-for-name) so a cached filter can never silently score against
    stale candidates.
    """
    if prefilter is None:
        return None
    if isinstance(prefilter, PrefilterConfig):
        return SequencePrefilter.from_chains(dataset, prefilter)
    if isinstance(prefilter, SequencePrefilter):
        names = tuple(c.name for c in dataset)
        if prefilter.names != names:
            raise ValueError(
                "prebuilt prefilter does not cover this dataset "
                f"({len(prefilter.names)} candidates vs {len(names)})"
            )
        return prefilter
    raise TypeError(
        "prefilter must be None, a PrefilterConfig or a SequencePrefilter, "
        f"got {type(prefilter).__name__}"
    )


@dataclass(frozen=True)
class RankedHit:
    """One entry of a ranked search result."""

    chain_name: str
    score: float
    details: Dict[str, float]


def rank_hits(
    rows: list[tuple[str, Dict[str, float]]], method: PSCMethod
) -> list[RankedHit]:
    """Rank raw ``(chain_name, scores)`` rows into :class:`RankedHit`\\ s.

    The single ranking rule shared by every search surface (serial loop,
    parallel farm, query service): descending similarity, chain name as
    the deterministic tie-break.
    """
    hits = [
        RankedHit(name, method.similarity(scores), dict(scores))
        for name, scores in rows
    ]
    hits.sort(key=lambda h: (-h.score, h.chain_name))
    return hits


def one_vs_all(
    query: Chain,
    dataset: Dataset,
    method: Optional[PSCMethod] = None,
    counter: Optional[CostCounter] = None,
    exclude_self: bool = True,
    workers: int = 0,
    chunk: int = 0,
    retry: Optional["RetryPolicy"] = None,
    adaptive: bool = True,
    shm: bool = True,
    prefilter: Prefilter = None,
) -> list[RankedHit]:
    """Compare ``query`` against every dataset chain; rank by similarity.

    With ``prefilter`` set, the batched sequence tier scores all
    candidates first and only the promoted ones (see
    :meth:`~repro.seqalign.prefilter.PrefilterConfig.n_promoted`) pay
    the exact kernel; the returned ranking covers only those.
    """
    method = method or TMAlignMethod()
    pf = resolve_prefilter(prefilter, dataset)
    include: Optional[set[int]] = None
    if pf is not None:
        excluded = {
            k
            for k, chain in enumerate(dataset)
            if exclude_self and chain.name == query.name
        }
        include = set(pf.promote_chain(query, exclude=excluded))
    rows: list[tuple[str, Dict[str, float]]]
    if workers > 1:
        from repro.parallel import ParallelConfig, parallel_one_vs_all

        rows = parallel_one_vs_all(
            query,
            dataset,
            method,
            counter=counter,
            exclude_self=exclude_self,
            config=ParallelConfig(
                workers=workers, chunk=chunk, retry=retry, adaptive=adaptive,
                shm=shm,
            ),
            include=include,
        )
    else:
        rows = []
        for k, chain in enumerate(dataset):
            if exclude_self and chain.name == query.name:
                continue
            if include is not None and k not in include:
                continue
            ctr = CostCounter()
            scores = method.compare(query, chain, ctr)
            if counter is not None:
                counter.merge(ctr)
            rows.append((chain.name, scores))
    return rank_hits(rows, method)


def consult_store(
    store, dataset: Dataset, method: PSCMethod
) -> Dict[tuple[int, int], Dict[str, float]]:
    """Pairs of ``dataset`` a matrix store can serve for ``method``.

    Returns ``{(i, j): scores}`` for every unordered pair whose content
    hashes the store holds *in the same orientation the caller would
    compute* (TM-align is direction-dependent, so swapped hits are left
    to the kernel); scores are projected onto the method's key set.
    Raises ``ValueError`` when the store was built with a different
    method or parameterisation — serving those would be silently wrong.
    """
    from repro.matstore.store import SERVABLE_KEYS
    from repro.service.registry import chain_content_hash
    from repro.tmalign.params import params_fingerprint

    keys = SERVABLE_KEYS.get(method.name)
    if keys is None or store.method not in SERVABLE_KEYS:
        raise ValueError(
            f"matrix store (method {store.method!r}) cannot serve "
            f"method {method.name!r}"
        )
    fingerprint = params_fingerprint(method.params)
    if fingerprint != store.params_hash:
        raise ValueError(
            f"matrix store was built with params {store.params_hash[:12]}..., "
            f"request fingerprints to {fingerprint[:12]}..."
        )
    hashes = [chain_content_hash(c) for c in dataset]
    served: Dict[tuple[int, int], Dict[str, float]] = {}
    for i in range(len(dataset)):
        for j in range(i + 1, len(dataset)):
            hit = store.lookup(hashes[i], hashes[j])
            if hit is not None and not hit.swapped:
                served[(i, j)] = {k: hit.scores[k] for k in keys}
    return served


def all_vs_all(
    dataset: Dataset,
    method: Optional[PSCMethod] = None,
    counter: Optional[CostCounter] = None,
    workers: int = 0,
    chunk: int = 0,
    retry: Optional["RetryPolicy"] = None,
    adaptive: bool = True,
    shm: bool = True,
    prefilter: Prefilter = None,
    store=None,
    populate: bool = False,
) -> Dict[tuple[str, str], Dict[str, float]]:
    """All unordered pairs (i<j) of the dataset; returns a score table.

    ``workers > 1`` farms the pairs over a process pool; scores and the
    merged ``counter`` are bit-identical to the serial loop.

    With ``prefilter`` set, pair ``(i, j)`` is computed iff ``j`` is
    promoted for query ``i`` **or** ``i`` is promoted for query ``j``
    (the union keeps the table symmetric in what it covers); the
    returned table contains only the kept pairs.

    ``store`` (a :class:`repro.matstore.MatrixStore` or a store root
    path) consults the precomputed matrix first: pairs it holds are
    served as O(1) mmap lookups (float32, the store's precision) and
    only the misses reach the kernel.  ``populate=True`` additionally
    builds or prefix-extends the store to cover the dataset before
    consulting, so the sweep both fills and benefits from the matrix.
    """
    method = method or TMAlignMethod()
    served: Dict[tuple[int, int], Dict[str, float]] = {}
    if store is not None:
        from repro.matstore import MatrixStore, ensure_coverage

        def _populate(root):
            # the build step honours the caller's farm settings and
            # prefilter economy, not the defaults
            from repro.parallel import ParallelConfig

            return ensure_coverage(
                root,
                dataset,
                params=getattr(method, "params", None),
                config=ParallelConfig(
                    workers=workers, chunk=chunk, retry=retry,
                    adaptive=adaptive, shm=shm,
                ),
                prefilter=prefilter,
            ).store

        if isinstance(store, (str, bytes)) or hasattr(store, "__fspath__"):
            root = store
            if populate:
                store = _populate(root)
            else:
                store = MatrixStore.open(root)
        elif populate:
            store = _populate(store.root)
        served = consult_store(store, dataset, method)
    pf = resolve_prefilter(prefilter, dataset)
    n = len(dataset)
    keep: Optional[list[set[int]]] = None
    if pf is not None:
        promoted = [
            set(pf.promote_chain(dataset[i], exclude={i})) for i in range(n)
        ]
        keep = promoted
    if served:
        out = {
            (dataset[i].name, dataset[j].name): scores
            for (i, j), scores in served.items()
            if keep is None or j in keep[i] or i in keep[j]
        }
        pairs = [
            (i, j)
            for i in range(n)
            for j in range(i + 1, n)
            if (i, j) not in served
            and (keep is None or j in keep[i] or i in keep[j])
        ]
        if pairs:
            from repro.parallel import ParallelConfig, parallel_all_vs_all

            out.update(
                parallel_all_vs_all(
                    dataset,
                    method,
                    counter=counter,
                    config=ParallelConfig(
                        workers=workers, chunk=chunk, retry=retry,
                        adaptive=adaptive, shm=shm,
                    ),
                    pairs=pairs,
                )
            )
        return out
    if workers > 1:
        from repro.parallel import ParallelConfig, parallel_all_vs_all

        pairs = None
        if keep is not None:
            pairs = [
                (i, j)
                for i in range(n)
                for j in range(i + 1, n)
                if j in keep[i] or i in keep[j]
            ]
        return parallel_all_vs_all(
            dataset,
            method,
            counter=counter,
            config=ParallelConfig(
                workers=workers, chunk=chunk, retry=retry, adaptive=adaptive,
                shm=shm,
            ),
            pairs=pairs,
        )
    out: Dict[tuple[str, str], Dict[str, float]] = {}
    for i in range(n):
        for j in range(i + 1, n):
            if keep is not None and not (j in keep[i] or i in keep[j]):
                continue
            ctr = CostCounter()
            scores = method.compare(dataset[i], dataset[j], ctr)
            if counter is not None:
                counter.merge(ctr)
            out[(dataset[i].name, dataset[j].name)] = dict(scores)
    return out
