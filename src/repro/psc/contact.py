"""Contact-profile PSC method (fourth comparator for MC-PSC).

Exact maximum contact-map overlap is NP-hard, so practical pipelines use
alignment-free approximations.  This method compares per-residue
*contact profiles*: for each residue, the number of Cα contacts within
a cutoff, smoothed along the chain; the two profiles are then aligned
with the same extension-free Needleman–Wunsch DP TM-align uses, scoring
profile similarity.  Complexity is O(L²) for the contact maps plus one
O(La·Lb) DP — between TM-align and the Kabsch scan, giving the MC-PSC
partitioning study a third distinct cost class.
"""

from __future__ import annotations

from typing import Dict, Mapping

import numpy as np

from repro.cost.counters import CostCounter
from repro.geometry.distances import contact_map
from repro.psc.base import PSCMethod
from repro.structure.model import Chain
from repro.tmalign.dp import nw_align

__all__ = ["ContactProfileMethod"]


class ContactProfileMethod(PSCMethod):
    """Alignment of smoothed contact-degree profiles."""

    name = "contact_profile"
    score_key = "similarity"

    #: see KabschRmsdMethod — small share of TM-align's per-pair overhead
    FIXED_OVERHEAD_UNITS = 0.05

    def __init__(
        self, cutoff: float = 8.0, smooth_window: int = 5, gap_open: float = -0.5
    ) -> None:
        if cutoff <= 0:
            raise ValueError("cutoff must be positive")
        if smooth_window < 1 or smooth_window % 2 == 0:
            raise ValueError("smooth_window must be odd and >= 1")
        if gap_open > 0:
            raise ValueError("gap_open must be <= 0")
        self.cutoff = cutoff
        self.smooth_window = smooth_window
        self.gap_open = gap_open

    def _profile(self, chain: Chain, counter: CostCounter) -> np.ndarray:
        n = len(chain)
        counter.add("score_pair", n * n)  # contact-map distance evals
        degrees = contact_map(chain.coords, self.cutoff).sum(axis=1).astype(np.float64)
        kernel = np.ones(self.smooth_window) / self.smooth_window
        return np.convolve(degrees, kernel, mode="same")

    def compare(
        self, chain_a: Chain, chain_b: Chain, counter: CostCounter
    ) -> Dict[str, float]:
        counter.add("align_fixed", self.FIXED_OVERHEAD_UNITS)
        pa = self._profile(chain_a, counter)
        pb = self._profile(chain_b, counter)
        # similarity in (0, 1]: 1 / (1 + |da - db|)
        diff = np.abs(pa[:, None] - pb[None, :])
        score = 1.0 / (1.0 + diff)
        ali = nw_align(score, self.gap_open, counter=counter)
        matched = score[ali.ai, ali.aj].sum()
        lmin = min(len(chain_a), len(chain_b))
        return {
            "similarity": float(matched / lmin),
            "n_aligned": float(len(ali)),
        }

    def estimate_counts(
        self, len_a: int, len_b: int, pair_key: str | None = None
    ) -> Mapping[str, float]:
        return {
            "align_fixed": self.FIXED_OVERHEAD_UNITS,
            "score_pair": float(len_a * len_a + len_b * len_b),
            "dp_cell": float(len_a * len_b),
        }
