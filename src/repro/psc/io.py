"""Persistence of PSC results: score tables as CSV/JSON, score matrices.

A downstream user wants the all-vs-all numbers on disk, not in a Python
dict; these helpers write/read the score tables produced by
:func:`repro.psc.search.all_vs_all` (and the consensus tables) and pivot
them into dense matrices for clustering tools.
"""

from __future__ import annotations

import csv
import itertools
import json
import os
from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from repro.datasets.registry import Dataset

__all__ = [
    "write_score_table_csv",
    "stream_score_table_csv",
    "read_score_table_csv",
    "write_score_table_json",
    "read_score_table_json",
    "score_matrix",
]

PairKey = tuple[str, str]
Table = Mapping[PairKey, Mapping[str, float]]


def write_score_table_csv(table: Table, path: str | os.PathLike) -> None:
    """One row per pair; columns = union of all score keys (sorted)."""
    if not table:
        raise ValueError("empty score table")
    keys = sorted({k for result in table.values() for k in result})
    with open(path, "w", newline="", encoding="ascii") as fh:
        writer = csv.writer(fh)
        writer.writerow(["chain_a", "chain_b", *keys])
        for (a, b), result in sorted(table.items()):
            writer.writerow([a, b, *(format(result.get(k, ""), "") for k in keys)])


def stream_score_table_csv(
    rows, path: str | os.PathLike
) -> int:
    """Write ``(chain_a, chain_b, scores)`` rows to CSV as they arrive.

    Unlike :func:`write_score_table_csv` this never materialises the
    table: each row is written (and flushed from memory) as the iterator
    produces it, so an all-vs-all run over a large dataset streams
    straight to disk.  The column set is taken from the first row —
    every method emits a fixed score mapping, and a row with different
    keys raises.  Rows are written in arrival order (the parallel farm
    already yields them in job order).  Returns the number of rows.

    The write is atomic: rows stream into a same-directory temp file
    that is moved over ``path`` only after the iterator is exhausted and
    the data is fsynced, so a crash mid-run never leaves a partial table
    at the destination (a pre-existing file there survives untouched).
    """
    rows = iter(rows)
    try:
        first = next(rows)
    except StopIteration:
        raise ValueError("empty score table") from None
    keys = sorted(first[2])
    n = 0
    path = os.fspath(path)
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "w", newline="", encoding="ascii") as fh:
            writer = csv.writer(fh)
            writer.writerow(["chain_a", "chain_b", *keys])
            for a, b, result in itertools.chain([first], rows):
                if sorted(result) != keys:
                    raise ValueError(
                        f"row ({a}, {b}) has score keys {sorted(result)}, "
                        f"expected {keys}"
                    )
                writer.writerow([a, b, *(format(result[k], "") for k in keys)])
                n += 1
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
    return n


def read_score_table_csv(path: str | os.PathLike) -> Dict[PairKey, Dict[str, float]]:
    out: Dict[PairKey, Dict[str, float]] = {}
    with open(path, newline="", encoding="ascii") as fh:
        reader = csv.reader(fh)
        header = next(reader)
        if header[:2] != ["chain_a", "chain_b"]:
            raise ValueError(f"not a score-table CSV: header {header[:2]}")
        keys = header[2:]
        for row in reader:
            a, b, *values = row
            out[(a, b)] = {
                k: float(v) for k, v in zip(keys, values) if v != ""
            }
    return out


def write_score_table_json(table: Table, path: str | os.PathLike) -> None:
    payload = [
        {"chain_a": a, "chain_b": b, "scores": dict(result)}
        for (a, b), result in sorted(table.items())
    ]
    with open(path, "w", encoding="ascii") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)


def read_score_table_json(path: str | os.PathLike) -> Dict[PairKey, Dict[str, float]]:
    with open(path, encoding="ascii") as fh:
        payload = json.load(fh)
    return {
        (entry["chain_a"], entry["chain_b"]): dict(entry["scores"])
        for entry in payload
    }


def score_matrix(
    table: Table,
    score_key: str,
    dataset: Optional[Dataset] = None,
    names: Optional[Sequence[str]] = None,
    diagonal: float = 1.0,
    missing: float = np.nan,
) -> tuple[np.ndarray, list[str]]:
    """Pivot a pair table into a symmetric (N, N) matrix.

    Chain order comes from ``dataset``/``names`` when given, otherwise
    from the sorted set of names in the table.  Returns
    ``(matrix, names)``.
    """
    if dataset is not None:
        order = [c.name for c in dataset]
    elif names is not None:
        order = list(names)
    else:
        order = sorted({n for pair in table for n in pair})
    idx = {name: k for k, name in enumerate(order)}
    n = len(order)
    mat = np.full((n, n), missing, dtype=np.float64)
    np.fill_diagonal(mat, diagonal)
    for (a, b), result in table.items():
        if a not in idx or b not in idx:
            raise KeyError(f"pair ({a}, {b}) not in the requested chain order")
        value = float(result[score_key])
        mat[idx[a], idx[b]] = value
        mat[idx[b], idx[a]] = value
    return mat, order
