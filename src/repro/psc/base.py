"""The pairwise PSC method interface."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Mapping

from repro.cost.counters import CostCounter
from repro.structure.model import Chain

__all__ = ["PSCMethod"]


class PSCMethod(ABC):
    """A pairwise protein-structure-comparison method.

    Implementations provide the *real* computation (``compare``) and an
    analytic estimate of its operation counts (``estimate_counts``) used
    by the timing simulators in model mode.  ``score_key`` names the
    entry of the result mapping used for ranking (higher = more
    similar).
    """

    #: registry/display name, e.g. ``"tmalign"``
    name: str = "abstract"
    #: key of the ranking score in the result mapping
    score_key: str = "score"

    @abstractmethod
    def compare(
        self, chain_a: Chain, chain_b: Chain, counter: CostCounter
    ) -> Dict[str, float]:
        """Run the real comparison, charging ``counter`` with op counts.

        Returns a flat mapping of named scores (must include
        ``self.score_key``).
        """

    @abstractmethod
    def estimate_counts(
        self, len_a: int, len_b: int, pair_key: str | None = None
    ) -> Mapping[str, float]:
        """Analytic op-count estimate for a pair of the given lengths."""

    def similarity(self, result: Mapping[str, float]) -> float:
        """Ranking score from a result mapping (higher = more similar)."""
        return float(result[self.score_key])

    def __repr__(self) -> str:
        return f"<PSCMethod {self.name}>"
