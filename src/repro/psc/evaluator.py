"""Cost-aware pair evaluation shared by all runners.

The serial baseline, the distributed-MCPC baseline and rckAlign must
charge *identical* per-pair costs for the speedup tables to be
meaningful, so they all evaluate pairs through one :class:`JobEvaluator`:

* ``model`` mode (default for timing sweeps): op counts come from the
  method's analytic estimate; no structures are actually aligned.
* ``measured`` mode: the real method runs and its measured op counts
  are used.

Both modes memoize per pair, so a core-count sweep that replays the
same job list at every point pays the Python cost (analytic estimate or
real alignment) exactly once per pair; callers receive fresh copies of
the cached scores/counters, so the cache cannot be mutated from
outside.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, Mapping, Optional, Tuple

from repro.cost.counters import CostCounter
from repro.datasets.registry import Dataset
from repro.psc.base import PSCMethod
from repro.psc.methods import TMAlignMethod

__all__ = ["EvalMode", "JobEvaluator"]


class EvalMode(str, enum.Enum):
    MODEL = "model"
    MEASURED = "measured"


class JobEvaluator:
    """Evaluates (i, j) pairs of a dataset for one PSC method."""

    def __init__(
        self,
        dataset: Dataset,
        method: Optional[PSCMethod] = None,
        mode: EvalMode | str = EvalMode.MODEL,
    ) -> None:
        self.dataset = dataset
        self.method = method or TMAlignMethod()
        self.mode = EvalMode(mode)
        self._cache: Dict[Tuple[int, int], Tuple[Dict[str, float], CostCounter]] = {}

    def pair_key(self, i: int, j: int) -> str:
        return f"{self.dataset[i].name}|{self.dataset[j].name}"

    def evaluate(self, i: int, j: int) -> tuple[Dict[str, float], CostCounter]:
        """Return ``(scores, op_counts)`` for comparing chains i and j."""
        key = (i, j)
        cached = self._cache.get(key)
        if cached is None:
            counter = CostCounter()
            if self.mode is EvalMode.MODEL:
                est = self.method.estimate_counts(
                    len(self.dataset[i]), len(self.dataset[j]), self.pair_key(i, j)
                )
                for op, v in est.items():
                    counter.add(op, v)
                scores: Dict[str, float] = {"estimated": 1.0}
            else:
                scores = self.method.compare(self.dataset[i], self.dataset[j], counter)
            cached = (scores, counter)
            self._cache[key] = cached
        scores, counter = cached
        return dict(scores), counter.copy()

    def cache_len(self) -> int:
        """Number of memoized pairs (bench/diagnostic instrumentation)."""
        return len(self._cache)

    def prewarm(
        self,
        pairs: Optional[Iterable[Tuple[int, int]]] = None,
        workers: int = 0,
        chunk: int = 0,
        shm: bool = True,
    ) -> int:
        """Fill the per-pair memo cache up front, optionally in parallel.

        With ``workers > 1`` the uncached pairs are farmed over a process
        pool (the real win in MEASURED mode, where every pair is a full
        aligner run); the cached entries are bit-identical to what
        :meth:`evaluate` would have produced serially, so a simulation
        replaying the warmed cache is unaffected.  Returns the number of
        pairs actually computed.
        """
        from repro.datasets.pairs import all_vs_all_pairs

        wanted = list(pairs) if pairs is not None else list(
            all_vs_all_pairs(len(self.dataset))
        )
        todo = [key for key in wanted if key not in self._cache]
        if not todo:
            return 0
        from repro.parallel import ParallelConfig, iter_pair_results

        for i, j, scores, counts in iter_pair_results(
            self.dataset,
            todo,
            self.method,
            mode=self.mode,
            config=ParallelConfig(workers=workers, chunk=chunk, shm=shm),
        ):
            self._cache[(i, j)] = (scores, CostCounter(counts))
        return len(todo)

    def job_nbytes(self, i: int, j: int) -> int:
        """Wire size of the job the master ships (both structures)."""
        return self.dataset[i].nbytes_wire + self.dataset[j].nbytes_wire + 64

    def result_nbytes(self) -> int:
        """Wire size of a result record (scores, not the alignment)."""
        return 256
