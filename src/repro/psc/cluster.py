"""Fold clustering from all-vs-all similarity tables.

The end product of an all-vs-all PSC run is usually a clustering of the
database into fold families; this module provides the standard
average-linkage hierarchical clustering over ``1 - similarity``
distances (scipy backend) and agreement metrics against known labels.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

import numpy as np
from scipy.cluster.hierarchy import fcluster, linkage
from scipy.spatial.distance import squareform

from repro.datasets.registry import Dataset
from repro.psc.io import score_matrix

__all__ = ["cluster_families", "cluster_agreement", "adjusted_rand_index"]


def cluster_families(
    table: Mapping[tuple[str, str], Mapping[str, float]],
    score_key: str,
    dataset: Optional[Dataset] = None,
    names: Optional[Sequence[str]] = None,
    threshold: float = 0.5,
    method: str = "average",
) -> Dict[str, int]:
    """Cluster chains from an all-vs-all score table.

    ``threshold`` is a *similarity* cut: pairs more similar than it end
    up in the same cluster (for TM-scores, 0.5 is the conventional
    same-fold line).  Returns ``{chain_name: cluster_id}`` with cluster
    ids starting at 1.
    """
    if not 0.0 < threshold < 1.0:
        raise ValueError("threshold must be in (0, 1)")
    mat, order = score_matrix(table, score_key, dataset=dataset, names=names)
    if np.isnan(mat).any():
        raise ValueError("score table does not cover all pairs")
    dist = 1.0 - np.clip(mat, 0.0, 1.0)
    np.fill_diagonal(dist, 0.0)
    # enforce symmetry within float tolerance for squareform
    dist = (dist + dist.T) / 2.0
    condensed = squareform(dist, checks=False)
    tree = linkage(condensed, method=method)
    labels = fcluster(tree, t=1.0 - threshold, criterion="distance")
    return {name: int(lbl) for name, lbl in zip(order, labels)}


def adjusted_rand_index(labels_a: Sequence[int], labels_b: Sequence[int]) -> float:
    """Adjusted Rand index between two flat clusterings (in [-1, 1])."""
    a = np.asarray(labels_a)
    b = np.asarray(labels_b)
    if a.shape != b.shape or a.ndim != 1:
        raise ValueError("label arrays must be equal-length 1-D")
    n = a.size
    if n < 2:
        raise ValueError("need at least two items")
    cats_a = {v: k for k, v in enumerate(sorted(set(a.tolist())))}
    cats_b = {v: k for k, v in enumerate(sorted(set(b.tolist())))}
    cont = np.zeros((len(cats_a), len(cats_b)), dtype=np.int64)
    for x, y in zip(a.tolist(), b.tolist()):
        cont[cats_a[x], cats_b[y]] += 1

    def comb2(x):
        return x * (x - 1) / 2.0

    sum_cells = comb2(cont).sum()
    sum_rows = comb2(cont.sum(axis=1)).sum()
    sum_cols = comb2(cont.sum(axis=0)).sum()
    total = comb2(n)
    expected = sum_rows * sum_cols / total
    max_index = (sum_rows + sum_cols) / 2.0
    if max_index == expected:
        return 1.0
    return float((sum_cells - expected) / (max_index - expected))


def cluster_agreement(
    clusters: Mapping[str, int], dataset: Dataset
) -> float:
    """ARI between a clustering and the dataset's family labels."""
    names = [c.name for c in dataset]
    fams = {f: k for k, f in enumerate(sorted({c.family or c.name for c in dataset}))}
    truth = [fams[c.family or c.name] for c in dataset]
    predicted = [clusters[n] for n in names]
    return adjusted_rand_index(truth, predicted)
