"""Consensus PSC: combine several methods' rankings (paper §I–II).

"Several methods are used in the PSC domain and the current trend is to
generate consensus results by combining them" — multi-criteria PSC
exists precisely to feed consensus scoring.  This module aggregates the
per-method score tables an MC-PSC run produces into a single ranking:

* ``borda``     — mean of the per-method rank positions;
* ``mean_rank`` — identical to borda up to orientation (kept as an
  explicit name);
* ``zscore``    — mean of per-method standardized scores, which keeps
  magnitude information the rank transforms discard.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

import numpy as np

__all__ = ["consensus_scores", "consensus_from_mcpsc", "CONSENSUS_SCHEMES"]

CONSENSUS_SCHEMES = ("borda", "mean_rank", "zscore")

PairKey = tuple[str, str]


def _ranks(values: np.ndarray) -> np.ndarray:
    """Rank positions (1 = best/highest), average ranks for ties."""
    order = np.argsort(-values, kind="mergesort")
    ranks = np.empty(values.size, dtype=np.float64)
    ranks[order] = np.arange(1, values.size + 1)
    sorted_vals = values[order]
    i = 0
    while i < values.size:
        j = i
        while j + 1 < values.size and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        if j > i:
            ranks[order[i : j + 1]] = (i + 1 + j + 1) / 2.0
        i = j + 1
    return ranks


def consensus_scores(
    per_method: Mapping[str, Mapping[PairKey, float]],
    scheme: str = "borda",
) -> Dict[PairKey, float]:
    """Aggregate per-method pair scores into consensus scores.

    ``per_method`` maps method name -> {pair: similarity}.  All methods
    must cover the same pair set.  Higher consensus = more similar.
    """
    if scheme not in CONSENSUS_SCHEMES:
        raise ValueError(f"unknown scheme {scheme!r}; known: {CONSENSUS_SCHEMES}")
    if not per_method:
        raise ValueError("need at least one method")
    methods = list(per_method)
    pair_sets = [set(per_method[m]) for m in methods]
    pairs = sorted(pair_sets[0])
    for m, ps in zip(methods, pair_sets):
        if ps != pair_sets[0]:
            raise ValueError(f"method {m!r} covers a different pair set")

    matrix = np.array(
        [[float(per_method[m][p]) for p in pairs] for m in methods]
    )  # (n_methods, n_pairs)

    if scheme in ("borda", "mean_rank"):
        ranks = np.vstack([_ranks(row) for row in matrix])
        combined = -ranks.mean(axis=0)  # smaller mean rank = better
    else:  # zscore
        std = matrix.std(axis=1, keepdims=True)
        std[std == 0] = 1.0
        z = (matrix - matrix.mean(axis=1, keepdims=True)) / std
        combined = z.mean(axis=0)
    return {pair: float(score) for pair, score in zip(pairs, combined)}


def consensus_from_mcpsc(
    report,
    score_keys: Mapping[str, str],
    dataset,
    scheme: str = "borda",
) -> Dict[PairKey, float]:
    """Consensus over a :class:`~repro.core.framework.McPscReport`.

    ``score_keys`` maps method name -> the result key holding its
    similarity (e.g. ``{"tmalign": "tm_norm_b", ...}``).  Only methods
    present in both the report and ``score_keys`` participate.
    """
    per_method: Dict[str, Dict[PairKey, float]] = {}
    for method, results in report.per_method_results.items():
        if method not in score_keys:
            continue
        key = score_keys[method]
        table: Dict[PairKey, float] = {}
        for r in results:
            i, j = r.payload["i"], r.payload["j"]
            table[(dataset[i].name, dataset[j].name)] = float(r.payload[key])
        per_method[method] = table
    if not per_method:
        raise ValueError("no overlapping methods between report and score_keys")
    return consensus_scores(per_method, scheme)
