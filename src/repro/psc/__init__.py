"""Protein structure comparison methods and task-level helpers.

Defines the :class:`PSCMethod` interface the parallel framework farms
out, the TM-align method plus two light-weight alternatives used for
multi-criteria PSC (paper §V's extension), a cost-aware
:class:`JobEvaluator` shared by the serial baseline and the simulators,
and the serial one-vs-all ranked search API.
"""

from repro.psc.base import PSCMethod
from repro.psc.methods import (
    TMAlignMethod,
    KabschRmsdMethod,
    SSECompositionMethod,
    METHOD_REGISTRY,
    get_method,
)
from repro.psc.contact import ContactProfileMethod
from repro.seqalign.method import SequenceIdentityMethod

METHOD_REGISTRY["contact_profile"] = ContactProfileMethod
METHOD_REGISTRY["seq_identity"] = SequenceIdentityMethod
from repro.psc.evaluator import JobEvaluator, EvalMode
from repro.psc.search import one_vs_all, all_vs_all, rank_hits, RankedHit

__all__ = [
    "PSCMethod",
    "TMAlignMethod",
    "KabschRmsdMethod",
    "SSECompositionMethod",
    "ContactProfileMethod",
    "METHOD_REGISTRY",
    "get_method",
    "JobEvaluator",
    "EvalMode",
    "one_vs_all",
    "all_vs_all",
    "rank_hits",
    "RankedHit",
]
