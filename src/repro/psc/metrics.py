"""Quality metrics for PSC outputs: fold-detection ROC/AUC, precision@k.

The functional claim behind the paper's task ("retrieve a ranked list of
proteins, where structurally similar proteins are ranked higher") is
testable on the synthetic datasets because family labels are known:
within-family pairs are positives, cross-family pairs negatives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.datasets.registry import Dataset
from repro.psc.search import RankedHit

__all__ = [
    "roc_auc",
    "family_auc",
    "precision_at_k",
    "FamilyBenchmark",
    "evaluate_method_on_dataset",
]


def roc_auc(scores: Sequence[float], labels: Sequence[bool]) -> float:
    """Area under the ROC curve via the rank-sum (Mann–Whitney) identity.

    Ties get half credit.  Requires at least one positive and one
    negative label.
    """
    scores = np.asarray(scores, dtype=np.float64)
    labels = np.asarray(labels, dtype=bool)
    if scores.shape != labels.shape or scores.ndim != 1:
        raise ValueError("scores and labels must be equal-length 1-D")
    n_pos = int(labels.sum())
    n_neg = labels.size - n_pos
    if n_pos == 0 or n_neg == 0:
        raise ValueError("need both positive and negative labels")
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty_like(scores)
    ranks[order] = np.arange(1, scores.size + 1)
    # average ranks for ties
    sorted_scores = scores[order]
    i = 0
    while i < scores.size:
        j = i
        while j + 1 < scores.size and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        if j > i:
            ranks[order[i : j + 1]] = (i + 1 + j + 1) / 2.0
        i = j + 1
    rank_sum_pos = ranks[labels].sum()
    u = rank_sum_pos - n_pos * (n_pos + 1) / 2.0
    return float(u / (n_pos * n_neg))


def family_auc(
    score_table: Mapping[tuple[str, str], Mapping[str, float]],
    dataset: Dataset,
    score_key: str,
) -> float:
    """AUC of same-family detection from an all-vs-all score table."""
    fam = {c.name: c.family for c in dataset}
    scores = []
    labels = []
    for (a, b), result in score_table.items():
        scores.append(float(result[score_key]))
        labels.append(fam[a] is not None and fam[a] == fam[b])
    return roc_auc(scores, labels)


def precision_at_k(hits: Sequence[RankedHit], dataset: Dataset, query_family: str, k: int) -> float:
    """Fraction of the top-k ranked hits in the query's family."""
    if k < 1:
        raise ValueError("k must be >= 1")
    fam = {c.name: c.family for c in dataset}
    top = hits[:k]
    if not top:
        return 0.0
    return sum(1 for h in top if fam.get(h.chain_name) == query_family) / len(top)


@dataclass(frozen=True)
class FamilyBenchmark:
    """Summary of a method's fold-detection quality on a dataset."""

    method: str
    dataset: str
    auc: float
    n_pairs: int


def evaluate_method_on_dataset(method, dataset: Dataset) -> FamilyBenchmark:
    """All-vs-all with ``method``; returns the family-detection AUC."""
    from repro.psc.search import all_vs_all

    table = all_vs_all(dataset, method=method)
    auc = family_auc(table, dataset, method.score_key)
    return FamilyBenchmark(
        method=method.name, dataset=dataset.name, auc=auc, n_pairs=len(table)
    )
