"""Serial all-vs-all TM-align on one CPU (paper Table III).

Mirrors the paper's measurement conditions: the program loads all
structures once up front (the paper modified the single-core version to
do this, "to be equivalent to the way rckAlign works"), then runs every
pairwise comparison back to back.  Time is priced through the CPU model
from the evaluator's op counts, so the serial totals and the simulated
rckAlign slave work are consistent by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cost.cpu import CpuModel, P54C_800
from repro.datasets.pairs import all_vs_all_pairs
from repro.datasets.registry import Dataset, load_dataset
from repro.psc.base import PSCMethod
from repro.psc.evaluator import EvalMode, JobEvaluator

__all__ = ["SerialConfig", "SerialReport", "run_serial"]


@dataclass(frozen=True)
class SerialConfig:
    dataset: str | Dataset = "ck34"
    cpu: CpuModel = P54C_800
    mode: EvalMode | str = EvalMode.MODEL
    method: Optional[PSCMethod] = None
    ordered_pairs: bool = False
    include_self: bool = False
    # bulk load bandwidth for the initial dataset read (local disk)
    load_bandwidth_bytes_per_s: float = 50e6

    def resolve_dataset(self) -> Dataset:
        if isinstance(self.dataset, Dataset):
            return self.dataset
        return load_dataset(self.dataset)


@dataclass
class SerialReport:
    dataset_name: str
    cpu_name: str
    n_jobs: int
    total_seconds: float
    load_seconds: float
    compute_seconds: float
    per_pair_seconds: List[float]
    scores: Dict[tuple[int, int], Dict[str, float]]

    def summary(self) -> str:
        return (
            f"serial {self.dataset_name} on {self.cpu_name}: "
            f"{self.n_jobs} pairs in {self.total_seconds:.1f}s"
        )


def run_serial(
    config: SerialConfig, evaluator: Optional[JobEvaluator] = None
) -> SerialReport:
    """Price a serial all-vs-all run on the configured CPU."""
    dataset = config.resolve_dataset()
    evaluator = evaluator or JobEvaluator(dataset, config.method, config.mode)
    if evaluator.dataset is not dataset:
        raise ValueError("evaluator is bound to a different dataset")
    cpu = config.cpu

    pdb_bytes = sum(c.nbytes_pdb for c in dataset)
    load_seconds = (
        pdb_bytes / config.load_bandwidth_bytes_per_s
        + cpu.seconds({"io_byte": pdb_bytes})
    )

    per_pair: List[float] = []
    scores: Dict[tuple[int, int], Dict[str, float]] = {}
    for i, j in all_vs_all_pairs(
        len(dataset), ordered=config.ordered_pairs, include_self=config.include_self
    ):
        result, counts = evaluator.evaluate(i, j)
        per_pair.append(cpu.seconds(counts))
        scores[(i, j)] = result
    compute = sum(per_pair)
    return SerialReport(
        dataset_name=dataset.name,
        cpu_name=cpu.name,
        n_jobs=len(per_pair),
        total_seconds=load_seconds + compute,
        load_seconds=load_seconds,
        compute_seconds=compute,
        per_pair_seconds=per_pair,
        scores=scores,
    )
