"""Baselines the paper compares rckAlign against.

* :mod:`repro.baselines.serial` — the serial TM-align C port on a
  single CPU (AMD Athlon II X2 @ 2.4 GHz or one SCC P54C @ 800 MHz),
  Table III.
* :mod:`repro.baselines.distributed` — distributed TM-align: master on
  the MCPC host issuing per-pair jobs over pssh, each job paying
  process-spawn cost and NFS reads through the shared MCPC disk,
  Experiment I / Table II.
"""

from repro.baselines.serial import SerialConfig, SerialReport, run_serial
from repro.baselines.distributed import (
    DistributedConfig,
    DistributedReport,
    run_distributed,
)

__all__ = [
    "SerialConfig",
    "SerialReport",
    "run_serial",
    "DistributedConfig",
    "DistributedReport",
    "run_distributed",
]
