"""Distributed TM-align with the master on the MCPC (Experiment I).

Models the comparison system of the paper's Experiment I: a master
process on the SCC host PC (MCPC) issues one pssh remote execution per
pairwise comparison; the launched process on an SCC core must fault in
the TM-align binary over NFS, read both structure files over NFS, run
the comparison, and exit.  The paper names the two killers of this
scheme, and both are modelled:

(a) every NFS read goes through the single MCPC disk controller — a
    shared FIFO resource with finite bandwidth, so concurrent readers
    queue; and
(b) each job pays a fresh process-environment setup on its core.

Cost parameters are calibrated against Table II (see EXPERIMENTS.md):
the per-job overhead of ~5.7 s over the preloaded serial baseline at one
slave, shrinking with parallelism but bounded by NFS contention.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cost.cpu import CpuModel, P54C_800
from repro.datasets.pairs import all_vs_all_pairs
from repro.datasets.registry import Dataset, load_dataset
from repro.psc.base import PSCMethod
from repro.psc.evaluator import EvalMode, JobEvaluator
from repro.sim.engine import Environment
from repro.sim.resources import Resource, Store

__all__ = ["DistributedConfig", "DistributedReport", "run_distributed"]


@dataclass(frozen=True)
class DistributedConfig:
    """Parameters of the MCPC-master distributed run."""

    dataset: str | Dataset = "ck34"
    n_cores: int = 47
    core_cpu: CpuModel = P54C_800
    mode: EvalMode | str = EvalMode.MODEL
    method: Optional[PSCMethod] = None
    ordered_pairs: bool = False
    include_self: bool = False
    # calibrated overhead model (Table II):
    host_dispatch_seconds: float = 0.04  # pssh issue, serialized on the host
    spawn_seconds: float = 5.55  # process env setup on the P54C core
    binary_nbytes: int = 1_500_000  # TM-align binary+libs faulted over NFS
    nfs_bandwidth_bytes_per_s: float = 30e6
    nfs_request_latency_s: float = 0.008

    def resolve_dataset(self) -> Dataset:
        if isinstance(self.dataset, Dataset):
            return self.dataset
        return load_dataset(self.dataset)


@dataclass
class DistributedReport:
    dataset_name: str
    n_cores: int
    n_jobs: int
    total_seconds: float
    nfs_busy_seconds: float
    host_busy_seconds: float
    per_core_jobs: Dict[int, int]

    @property
    def nfs_utilization(self) -> float:
        return self.nfs_busy_seconds / self.total_seconds if self.total_seconds else 0.0

    def summary(self) -> str:
        return (
            f"distributed {self.dataset_name} on {self.n_cores} cores: "
            f"{self.total_seconds:.1f}s (NFS util {self.nfs_utilization:.2f})"
        )


def run_distributed(
    config: DistributedConfig, evaluator: Optional[JobEvaluator] = None
) -> DistributedReport:
    """Simulate the MCPC-master distributed all-vs-all run."""
    dataset = config.resolve_dataset()
    if config.n_cores < 1:
        raise ValueError("need at least one core")
    evaluator = evaluator or JobEvaluator(dataset, config.method, config.mode)
    if evaluator.dataset is not dataset:
        raise ValueError("evaluator is bound to a different dataset")
    cpu = config.core_cpu

    env = Environment()
    nfs = Resource(env, capacity=1)
    free_cores: Store = Store(env)
    for c in range(config.n_cores):
        free_cores.put(c)

    jobs = list(
        all_vs_all_pairs(
            len(dataset), ordered=config.ordered_pairs, include_self=config.include_self
        )
    )
    stats = {
        "nfs_busy": 0.0,
        "host_busy": 0.0,
        "per_core": {c: 0 for c in range(config.n_cores)},
    }

    def nfs_read(nbytes: int):
        req = nfs.request()
        yield req
        try:
            dt = (
                config.nfs_request_latency_s
                + nbytes / config.nfs_bandwidth_bytes_per_s
            )
            stats["nfs_busy"] += dt
            yield env.timeout(dt)
        finally:
            nfs.release(req)

    def core_job(core_id: int, i: int, j: int):
        # process spawn: environment setup + binary faulted over NFS
        yield env.timeout(config.spawn_seconds)
        yield from nfs_read(config.binary_nbytes)
        # the process reads its own two structure files over NFS
        yield from nfs_read(dataset[i].nbytes_pdb)
        yield from nfs_read(dataset[j].nbytes_pdb)
        # the comparison itself (same costing as every other runner)
        _, counts = evaluator.evaluate(i, j)
        yield env.timeout(cpu.seconds(counts))
        stats["per_core"][core_id] += 1
        free_cores.put(core_id)

    def host_master():
        running = []
        for i, j in jobs:
            core_id = yield free_cores.get()
            stats["host_busy"] += config.host_dispatch_seconds
            yield env.timeout(config.host_dispatch_seconds)
            running.append(env.process(core_job(core_id, i, j)))
        for proc in running:
            if not proc.processed:
                yield proc

    done = env.process(host_master())
    env.run(done)

    return DistributedReport(
        dataset_name=dataset.name,
        n_cores=config.n_cores,
        n_jobs=len(jobs),
        total_seconds=env.now,
        nfs_busy_seconds=stats["nfs_busy"],
        host_busy_seconds=stats["host_busy"],
        per_core_jobs=stats["per_core"],
    )
